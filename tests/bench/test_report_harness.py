"""Tests for the bench reporting and harness utilities."""

import pytest

from repro.bench import SweepConfig, Table, efficiency, schemes_for


# ------------------------------------------------------------------ table
def test_table_render_alignment_and_formats():
    t = Table(title="demo", columns=["a", "b"])
    t.add(a=1, b=0.000123456)
    t.add(a="long-value", b=None)
    t.note("a note")
    out = t.render()
    assert "== demo ==" in out
    assert "1.235e-04" in out
    assert "long-value" in out
    assert "# a note" in out
    assert out.count("\n") == 5  # title, header, rule, 2 rows, note


def test_table_series_and_column():
    t = Table(title="x", columns=["n", "scheme", "s"])
    t.add(n=1, scheme="a", s=10.0)
    t.add(n=2, scheme="a", s=20.0)
    t.add(n=1, scheme="b", s=30.0)
    assert t.series("n", "s", scheme="a") == {1: 10.0, 2: 20.0}
    assert t.series("scheme", "s", n=1) == {"a": 10.0, "b": 30.0}
    assert t.column("n") == [1, 2, 1]


def test_table_float_formats():
    t = Table(title="f", columns=["v"])
    t.add(v=0.0)
    t.add(v=1234.5)
    t.add(v=0.25)
    out = t.render()
    assert "0" in out
    assert "1.234e+03" in out or "1.235e+03" in out
    assert "0.25" in out


# ----------------------------------------------------------------- sweeps
def test_sweep_presets():
    q = SweepConfig.quick()
    f = SweepConfig.full()
    assert max(f.node_counts) > max(q.node_counts)
    assert f.cores_per_node >= q.cores_per_node
    m = q.machine(4)
    assert m.nodes == 4
    assert m.cores_per_node == q.cores_per_node


def test_sweep_machine_overrides():
    q = SweepConfig.quick()
    m = q.machine(2, eager_threshold=1024)
    assert m.net.eager_threshold == 1024


def test_schemes_for_skips_nlnr_below_one_layer():
    """The paper did not run NLNR under 32 nodes (36-core machine)."""
    assert "nlnr" not in schemes_for(2, 4)
    assert "nlnr" in schemes_for(4, 4)
    assert "nlnr" in schemes_for(16, 8)
    assert "noroute" in schemes_for(1, 8)


def test_efficiency_weak_and_strong():
    # Weak: perfect scaling keeps time flat.
    assert efficiency(1.0, 1, 1.0, 8, weak=True) == pytest.approx(1.0)
    assert efficiency(1.0, 1, 2.0, 8, weak=True) == pytest.approx(0.5)
    # Strong: perfect scaling divides time by the node ratio.
    assert efficiency(8.0, 1, 1.0, 8, weak=False) == pytest.approx(1.0)
    assert efficiency(8.0, 1, 2.0, 8, weak=False) == pytest.approx(0.5)


def test_cli_single_quick_figure(capsys):
    from repro.bench.cli import main

    rc = main(["--fig", "capacity"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "mailbox capacity sweep" in out
    assert "harness wall-clock" in out
