"""Determinism golden tests: same seed + config => byte-identical runs.

For one small scenario per paper figure (fig5-fig8), the entire
observable output of two *fresh* simulator runs -- the aggregated stats
dict, the per-rank stats, and the exported per-interval metrics CSV --
must match byte for byte.  This pins the reproduction's central
trustworthiness claim: the DES is a pure function of (seed, config).
"""

import csv
import io
import json
import struct

import pytest

from repro.apps import (
    make_connected_components,
    make_degree_counting,
    make_kmer_counting,
)
from repro.bench.fig5 import measure_bandwidth
from repro.core.context import YgmWorld
from repro.graph import er_stream, rmat_stream
from repro.machine import small
from repro.trace import Tracer
from repro.trace.metrics import WALL_CLOCK_COLUMNS


def _stats_bytes(result) -> bytes:
    """The run's stats as canonical JSON bytes (floats via repr: exact)."""
    payload = {
        "elapsed": repr(result.elapsed),
        "finish_times": [repr(t) for t in result.finish_times],
        "aggregate": {
            k: repr(v) for k, v in sorted(result.mailbox_stats.as_dict().items())
        },
        "per_rank": [
            {k: repr(v) for k, v in sorted(s.as_dict().items())}
            for s in result.per_rank_stats
        ],
    }
    return json.dumps(payload, sort_keys=True).encode()


def _run_once(make_app, tmp_path, tag: str, seed: int = 3, scheme: str = "nlnr"):
    tracer = Tracer()
    world = YgmWorld(
        small(nodes=2, cores_per_node=2),
        scheme=scheme,
        seed=seed,
        mailbox_capacity=32,
        tracer=tracer,
    )
    result = world.run(make_app())
    tracer.close()
    csv_path = tmp_path / f"{tag}.csv"
    tracer.export_metrics(str(csv_path), interval=result.elapsed / 16)
    return _stats_bytes(result), csv_path.read_bytes()


FIGURE_SCENARIOS = {
    # fig6: degree counting on an ER stream (weak-scaling workload).
    "fig6": lambda: make_degree_counting(
        er_stream(64, 40, seed=5), batch_size=16
    ),
    # fig7: connected components on an RMAT stream, delegates enabled.
    "fig7": lambda: make_connected_components(
        rmat_stream(6, 40, seed=5), delegate_threshold=8.0, batch_size=16
    ),
    # fig8: skewed k-mer counting (the imbalance scenario).
    "fig8": lambda: make_kmer_counting(
        n_reads_per_rank=16, read_len=16, k=6, skew=0.6, batch_size=16
    ),
}


def _project_deterministic(csv_bytes: bytes) -> bytes:
    """The metrics CSV minus its host-wall-clock columns.

    ``wall_ms``/``events_per_sec`` measure the host, not the simulation,
    so they differ run-to-run by construction; every other column
    (including the DES step count ``events``) must stay byte-identical.
    """
    reader = csv.DictReader(io.StringIO(csv_bytes.decode()))
    assert WALL_CLOCK_COLUMNS <= set(reader.fieldnames)
    kept = [c for c in reader.fieldnames if c not in WALL_CLOCK_COLUMNS]
    # The process column is deterministic and must survive projection:
    # without it, rows from different workers are indistinguishable.
    assert "rank_group" in kept
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=kept, extrasaction="ignore")
    writer.writeheader()
    for row in reader:
        writer.writerow(row)
    return out.getvalue().encode()


@pytest.mark.parametrize("fig", sorted(FIGURE_SCENARIOS), ids=str)
def test_two_fresh_runs_are_byte_identical(fig, tmp_path):
    make_app = FIGURE_SCENARIOS[fig]
    stats1, csv1 = _run_once(make_app, tmp_path, f"{fig}_run1")
    stats2, csv2 = _run_once(make_app, tmp_path, f"{fig}_run2")
    assert stats1 == stats2
    assert _project_deterministic(csv1) == _project_deterministic(csv2)
    assert csv1  # the metrics export actually produced rows
    # The throughput columns are present and account for the whole run:
    # the per-bin event counts sum to the kernel's step total.
    rows = list(csv.DictReader(io.StringIO(csv1.decode())))
    assert sum(int(r["events"]) for r in rows) > 0
    assert sum(float(r["wall_ms"]) for r in rows) > 0.0


@pytest.mark.parametrize("scheme", ("node_aware", "adaptive"))
@pytest.mark.parametrize("combining", (False, True), ids=["plain", "combining"])
def test_new_schemes_golden_with_and_without_combining(
    scheme, combining, tmp_path
):
    """The PR 9 schemes (and the in-network combiner) keep the central
    determinism claim: two fresh runs are byte-identical."""

    def make_app():
        return make_degree_counting(
            er_stream(64, 40, seed=5), batch_size=16, combining=combining
        )

    stats1, csv1 = _run_once(make_app, tmp_path, f"{scheme}_run1", scheme=scheme)
    stats2, csv2 = _run_once(make_app, tmp_path, f"{scheme}_run2", scheme=scheme)
    assert stats1 == stats2
    assert _project_deterministic(csv1) == _project_deterministic(csv2)
    if combining:
        stats = json.loads(stats1)["aggregate"]
        assert int(stats["entries_combined"]) > 0


def _chatter(ctx):
    got = []
    mb = ctx.mailbox(recv=lambda m: got.append(m))
    n = ctx.nranks
    for i in range(25):
        yield from mb.send((ctx.rank * 5 + i * 3) % n, (ctx.rank, i))
    yield from mb.wait_empty()
    return sorted(got)


def _run_pdes_once(tmp_path, tag: str):
    from repro.pdes import PdesWorld

    tracer = Tracer()
    world = PdesWorld(
        8,
        scheme="nlnr",
        seed=3,
        cores_per_node=2,
        workers=2,
        flight=True,
        tracer=tracer,
    )
    result = world.run(_chatter)
    tracer.close()
    csv_path = tmp_path / f"{tag}.csv"
    tracer.export_metrics(str(csv_path), interval=result.elapsed / 16)
    return _stats_bytes(result), csv_path.read_bytes()


def test_flight_recorded_pdes_metrics_project_deterministically(tmp_path):
    """Multi-process metrics rows carry per-worker ``rank_group`` labels
    and stay byte-identical under the wall-clock projection."""
    stats1, csv1 = _run_pdes_once(tmp_path, "pdes_run1")
    stats2, csv2 = _run_pdes_once(tmp_path, "pdes_run2")
    assert stats1 == stats2
    assert _project_deterministic(csv1) == _project_deterministic(csv2)
    rows = list(csv.DictReader(io.StringIO(csv1.decode())))
    groups = {r["rank_group"] for r in rows}
    assert groups == {"driver", "worker0", "worker1"}
    # Worker wall clock is now attributed per process, not folded into
    # one meaningless total: each worker's rows carry its own samples.
    for group in ("worker0", "worker1"):
        assert sum(int(r["events"]) for r in rows if r["rank_group"] == group) > 0


def test_fig5_bandwidth_measurement_is_bit_identical():
    a = measure_bandwidth(1 << 12, repeats=2)
    b = measure_bandwidth(1 << 12, repeats=2)
    assert struct.pack("<d", a) == struct.pack("<d", b)
    assert a > 0


def test_different_seeds_change_the_run():
    # Sanity check that the golden comparison is not vacuous: the stats
    # digest must move when the seed (hence k-mer reads) moves.
    make_app = FIGURE_SCENARIOS["fig8"]

    def run(seed):
        world = YgmWorld(
            small(nodes=2, cores_per_node=2),
            scheme="nlnr",
            seed=seed,
            mailbox_capacity=32,
        )
        return _stats_bytes(world.run(make_app()))

    assert run(3) != run(4)
