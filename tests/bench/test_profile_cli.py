"""End-to-end tests of the bench CLI's causal-profile mode."""

import html.parser
import json

import pytest

from repro.bench.cli import main
from repro.bench.harness import SweepConfig
from repro.bench.profiling import pick_nodes, profile_figure, run_profiled

#: Tiny sweep: 2 nodes x 2 cores is the smallest shape where all four
#: paper schemes are valid (NLNR needs nodes >= cores).
TINY = SweepConfig(cores_per_node=2, node_counts=(2,), mailbox_capacity=64)


class _HTMLChecker(html.parser.HTMLParser):
    def __init__(self):
        super().__init__()
        self.tags = 0

    def handle_starttag(self, tag, attrs):
        self.tags += 1
        for name, value in attrs:
            assert name not in ("src", "href"), (
                f"external asset reference <{tag} {name}={value!r}>"
            )


def test_pick_nodes_prefers_all_schemes_valid():
    assert pick_nodes(TINY) == 2
    assert pick_nodes(SweepConfig.quick()) == 4  # 4 cores -> first n >= 4
    # No candidate large enough: fall back to the biggest offered.
    small = SweepConfig(cores_per_node=8, node_counts=(1, 2), mailbox_capacity=64)
    assert pick_nodes(small) == 2


def test_profile_figure_covers_all_schemes():
    profiles = profile_figure("6a", TINY)
    assert [p.scheme for p in profiles] == [
        "noroute", "node_local", "node_remote", "nlnr"
    ]
    for p in profiles:
        assert p.elapsed > 0
        assert p.messages > 0
        assert p.packets > 0
        assert p.critical_path
        assert len(p.rank_buckets) == p.nranks == 4
        assert sum(p.cp_stages.values()) == pytest.approx(p.elapsed, rel=1e-9)


def test_profile_figure_rejects_unprofilable():
    with pytest.raises(ValueError, match="no profiled mode"):
        profile_figure("capacity", TINY)


def test_run_profiled_writes_reports(tmp_path, capsys):
    html_path = tmp_path / "p.html"
    json_path = tmp_path / "p.json"
    table = run_profiled("6a", TINY, str(html_path), str(json_path))
    rendered = table.render()
    assert "nlnr" in rendered and "comm_share" in rendered

    doc = json.loads(json_path.read_text())
    assert doc["schema"] == 1
    assert doc["meta"]["fig"] == "6a"
    assert len(doc["schemes"]) == 4
    for scheme in doc["schemes"]:
        assert scheme["critical_path"]
        assert scheme["rank_buckets"]
        assert set(scheme["cp_stages"])

    page = html_path.read_text()
    checker = _HTMLChecker()
    checker.feed(page)
    assert checker.tags > 50  # a real document, not a stub
    assert page.startswith("<!DOCTYPE html>")


def test_cli_profile_mode(tmp_path, capsys, monkeypatch):
    # Shrink the sweep the CLI builds so the smoke test stays fast.
    monkeypatch.setattr(SweepConfig, "quick", classmethod(lambda cls: TINY))
    out_path = tmp_path / "profile.html"
    rc = main(["6a", "--profile", "--profile-out", str(out_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Causal profile" in out and "wall-clock" in out
    assert out_path.exists()
    assert json.loads((tmp_path / "profile.json").read_text())["schemes"]


def test_cli_profile_rejects_unprofilable_figure(tmp_path):
    with pytest.raises(SystemExit):
        main(["capacity", "--profile", "--profile-out", str(tmp_path / "p.html")])
