"""Tests for the wall-clock perf harness (``python -m repro.bench --perf``).

Timing values are noise; these tests pin the *harness*: statistics,
report schema, baseline comparison, and CLI plumbing.  Only the cheap
microbenchmarks run (smoke mode, subset selection), so the suite stays
fast.
"""

import json

import pytest

from repro.bench.perf import (
    BENCHMARKS,
    SCHEMA_VERSION,
    host_fingerprint,
    load_baseline,
    median_iqr,
    run_perf,
    speedup,
)

FAST_SUBSET = ["kernel_events", "packer_small"]


# ------------------------------------------------------------- statistics
def test_median_iqr_odd_and_even():
    median, iqr = median_iqr([5.0, 1.0, 3.0])
    assert median == 3.0 and iqr == 2.0
    median, iqr = median_iqr([1.0, 2.0, 3.0, 4.0])
    assert median == 2.5 and iqr == pytest.approx(1.5)


def test_median_iqr_single_value():
    assert median_iqr([7.0]) == (7.0, 0.0)


def test_speedup_is_direction_aware():
    up = {"median": 200.0, "higher_is_better": True}
    down = {"median": 0.5, "higher_is_better": False}
    assert speedup(up, 100.0) == pytest.approx(2.0)  # throughput doubled
    assert speedup(down, 1.0) == pytest.approx(2.0)  # wall time halved
    assert speedup(up, 0.0) is None


def test_host_fingerprint_identifies_interpreter():
    info = host_fingerprint()
    assert info["implementation"]
    assert info["python"].count(".") >= 1
    assert info["cpu_count"] >= 1


# ----------------------------------------------------------------- registry
def test_benchmark_names_are_unique_and_typed():
    names = [s.name for s in BENCHMARKS]
    assert len(names) == len(set(names))
    for spec in BENCHMARKS:
        # Macro wall-clock benches are lower-is-better; micro throughput
        # benches higher-is-better.
        assert spec.higher_is_better == (spec.unit != "seconds")


# ------------------------------------------------------------------ reports
def test_smoke_run_writes_schema_versioned_report(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    rc = run_perf(out_path=str(out), smoke=True, only=FAST_SUBSET)
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema_version"] == SCHEMA_VERSION
    assert doc["mode"] == "smoke" and doc["repeats"] == 1
    assert set(doc["benchmarks"]) == set(FAST_SUBSET)
    for entry in doc["benchmarks"].values():
        assert entry["median"] > 0
        assert len(entry["values"]) == 1
        assert entry["iqr"] >= 0
        assert entry["unit"] and "higher_is_better" in entry
    assert doc["host"]["cpu_count"] >= 1
    assert "baseline" not in doc


def test_baseline_comparison_embeds_speedups(tmp_path):
    base = tmp_path / "base.json"
    out = tmp_path / "new.json"
    run_perf(out_path=str(base), smoke=True, only=FAST_SUBSET)
    run_perf(
        out_path=str(out), smoke=True, only=FAST_SUBSET, baseline_path=str(base)
    )
    doc = json.loads(out.read_text())
    assert doc["baseline"]["path"] == str(base)
    assert set(doc["baseline"]["benchmarks"]) == set(FAST_SUBSET)
    assert set(doc["speedups"]) == set(FAST_SUBSET)
    for ratio in doc["speedups"].values():
        assert ratio > 0


def test_unknown_benchmark_selection_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown benchmark"):
        run_perf(out_path=str(tmp_path / "x.json"), smoke=True, only=["nope"])


def test_baseline_schema_mismatch_rejected(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema_version": SCHEMA_VERSION + 1}))
    with pytest.raises(ValueError, match="schema_version"):
        load_baseline(str(bad))
    assert load_baseline(str(tmp_path / "missing.json")) is None


# --------------------------------------------------------------------- CLI
def test_cli_perf_flag_runs_harness(tmp_path, capsys):
    from repro.bench.cli import main

    out = tmp_path / "cli_perf.json"
    rc = main(
        [
            "--perf",
            "--smoke",
            "--perf-out",
            str(out),
            "--perf-only",
            "kernel_events",
        ]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    assert list(doc["benchmarks"]) == ["kernel_events"]
    assert "kernel_events" in capsys.readouterr().out
