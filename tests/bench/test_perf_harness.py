"""Tests for the wall-clock perf harness (``python -m repro.bench --perf``).

Timing values are noise; these tests pin the *harness*: statistics,
report schema, baseline comparison, and CLI plumbing.  Only the cheap
microbenchmarks run (smoke mode, subset selection), so the suite stays
fast.
"""

import json

import pytest

from repro.bench.perf import (
    BENCHMARKS,
    SCHEMA_VERSION,
    host_class,
    host_fingerprint,
    load_baseline,
    median_iqr,
    run_gate,
    run_perf,
    speedup,
)

FAST_SUBSET = ["kernel_events", "packer_small"]


# ------------------------------------------------------------- statistics
def test_median_iqr_odd_and_even():
    median, iqr = median_iqr([5.0, 1.0, 3.0])
    assert median == 3.0 and iqr == 2.0
    median, iqr = median_iqr([1.0, 2.0, 3.0, 4.0])
    assert median == 2.5 and iqr == pytest.approx(1.5)


def test_median_iqr_single_value():
    assert median_iqr([7.0]) == (7.0, 0.0)


def test_speedup_is_direction_aware():
    up = {"median": 200.0, "higher_is_better": True}
    down = {"median": 0.5, "higher_is_better": False}
    assert speedup(up, 100.0) == pytest.approx(2.0)  # throughput doubled
    assert speedup(down, 1.0) == pytest.approx(2.0)  # wall time halved
    assert speedup(up, 0.0) is None


def test_host_fingerprint_identifies_interpreter():
    info = host_fingerprint()
    assert info["implementation"]
    assert info["python"].count(".") >= 1
    assert info["cpu_count"] >= 1


# ----------------------------------------------------------------- registry
def test_benchmark_names_are_unique_and_typed():
    names = [s.name for s in BENCHMARKS]
    assert len(names) == len(set(names))
    for spec in BENCHMARKS:
        # Macro wall-clock benches are lower-is-better; micro throughput
        # benches higher-is-better.
        assert spec.higher_is_better == (spec.unit != "seconds")


# ------------------------------------------------------------------ reports
def test_smoke_run_writes_schema_versioned_report(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    rc = run_perf(out_path=str(out), smoke=True, only=FAST_SUBSET)
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema_version"] == SCHEMA_VERSION
    assert doc["mode"] == "smoke" and doc["repeats"] == 1
    assert set(doc["benchmarks"]) == set(FAST_SUBSET)
    for entry in doc["benchmarks"].values():
        assert entry["median"] > 0
        assert len(entry["values"]) == 1
        assert entry["iqr"] >= 0
        assert entry["unit"] and "higher_is_better" in entry
    assert doc["host"]["cpu_count"] >= 1
    assert "baseline" not in doc


def test_baseline_comparison_embeds_speedups(tmp_path):
    base = tmp_path / "base.json"
    out = tmp_path / "new.json"
    run_perf(out_path=str(base), smoke=True, only=FAST_SUBSET)
    run_perf(
        out_path=str(out), smoke=True, only=FAST_SUBSET, baseline_path=str(base)
    )
    doc = json.loads(out.read_text())
    assert doc["baseline"]["path"] == str(base)
    assert set(doc["baseline"]["benchmarks"]) == set(FAST_SUBSET)
    assert set(doc["speedups"]) == set(FAST_SUBSET)
    for ratio in doc["speedups"].values():
        assert ratio > 0


def test_unknown_benchmark_selection_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown benchmark"):
        run_perf(out_path=str(tmp_path / "x.json"), smoke=True, only=["nope"])


def test_baseline_schema_mismatch_rejected(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema_version": SCHEMA_VERSION + 1}))
    with pytest.raises(ValueError, match="schema_version"):
        load_baseline(str(bad))
    assert load_baseline(str(tmp_path / "missing.json")) is None


# ------------------------------------------------------------------ gate
def _gate_report(
    tmp_path,
    name,
    columnar=1000.0,
    scalar=100.0,
    mode="full",
    host=None,
):
    doc = {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "host": host if host is not None else host_fingerprint(),
        "benchmarks": {
            "mailbox_messages": {"median": columnar, "higher_is_better": True},
            "mailbox_scalar_send": {"median": scalar, "higher_is_better": True},
        },
    }
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def test_gate_passes_on_healthy_ratio(tmp_path, capsys):
    report = _gate_report(tmp_path, "r.json", columnar=500.0, scalar=100.0)
    assert run_gate(report) == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "5.00x" in out


def test_gate_fails_when_columnar_loses_its_floor(tmp_path, capsys):
    report = _gate_report(tmp_path, "r.json", columnar=110.0, scalar=100.0)
    assert run_gate(report) == 1
    assert "FAIL" in capsys.readouterr().out


def test_gate_fails_on_missing_report_or_benchmarks(tmp_path, capsys):
    assert run_gate(str(tmp_path / "nope.json")) == 1
    path = tmp_path / "partial.json"
    path.write_text(
        json.dumps({"schema_version": SCHEMA_VERSION, "benchmarks": {}})
    )
    assert run_gate(str(path)) == 1
    assert "mailbox_scalar_send" in capsys.readouterr().out


def test_gate_enforces_baseline_floor_on_matching_host(tmp_path, capsys):
    # Same host fingerprint and mode: >20% below the baseline median fails.
    base = _gate_report(tmp_path, "base.json", columnar=1000.0)
    ok = _gate_report(tmp_path, "ok.json", columnar=850.0)
    bad = _gate_report(tmp_path, "bad.json", columnar=700.0)
    assert run_gate(ok, baseline_path=base) == 0
    assert run_gate(bad, baseline_path=base) == 1
    assert "0.70x" in capsys.readouterr().out


def test_gate_skips_baseline_across_hosts_and_modes(tmp_path, capsys):
    other = dict(host_fingerprint(), cpu_model="Imaginary CPU 9000")
    base_other = _gate_report(tmp_path, "b1.json", columnar=10_000.0, host=other)
    base_smoke = _gate_report(tmp_path, "b2.json", columnar=10_000.0, mode="smoke")
    report = _gate_report(tmp_path, "r.json", columnar=500.0, scalar=100.0)
    # A 20x faster baseline from elsewhere must not fail this host.
    assert run_gate(report, baseline_path=base_other) == 0
    assert run_gate(report, baseline_path=base_smoke) == 0
    out = capsys.readouterr().out
    assert out.count("baseline check skipped") == 2
    # The synthetic reports carry no pdes_transport entry, so each gate
    # run also notes the ring check as skipped (not failed).
    assert out.count("ring check skipped") == 2


def test_host_class_ignores_platform_patch_noise():
    fp = host_fingerprint()
    relabelled = dict(fp, platform="Linux-9.99-different-build")
    assert host_class(fp) == host_class(relabelled)
    assert host_class(fp) != host_class(dict(fp, cpu_count=1 + fp["cpu_count"]))


def test_committed_baseline_passes_its_own_gate():
    # The repo's BENCH_perf.json must satisfy the ratio floor -- CI runs
    # the gate against it on every push.
    import pathlib

    repo = pathlib.Path(__file__).resolve().parent.parent.parent
    assert run_gate(str(repo / "BENCH_perf.json")) == 0


# --------------------------------------------------------------------- CLI
def test_cli_perf_flag_runs_harness(tmp_path, capsys):
    from repro.bench.cli import main

    out = tmp_path / "cli_perf.json"
    rc = main(
        [
            "--perf",
            "--smoke",
            "--perf-out",
            str(out),
            "--perf-only",
            "kernel_events",
        ]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    assert list(doc["benchmarks"]) == ["kernel_events"]
    assert "kernel_events" in capsys.readouterr().out


def test_cli_perf_gate_standalone(tmp_path, capsys):
    from repro.bench.cli import main

    report = _gate_report(tmp_path, "r.json", columnar=500.0, scalar=100.0)
    assert main(["--perf-gate", report]) == 0
    bad = _gate_report(tmp_path, "bad.json", columnar=100.0, scalar=100.0)
    assert main(["--perf-gate", bad]) == 1
    out = capsys.readouterr().out
    assert "PASS" in out and "FAIL" in out
