"""Public-API hygiene: exports exist, are documented, and are stable."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.machine",
    "repro.mpi",
    "repro.serde",
    "repro.core",
    "repro.core.routing",
    "repro.graph",
    "repro.linalg",
    "repro.apps",
    "repro.baselines",
    "repro.bench",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    assert mod.__doc__, f"{name} lacks a module docstring"
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_documented(name):
    """Every public class/function exported by __all__ has a docstring."""
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        obj = getattr(mod, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_version_is_exposed():
    import repro

    assert repro.__version__


def test_top_level_surface():
    import repro

    for name in ("YgmWorld", "Mailbox", "RecordSpec", "get_scheme", "PAPER_SCHEMES"):
        assert name in repro.__all__


def test_paper_schemes_all_constructible():
    from repro import PAPER_SCHEMES, SCHEMES, get_scheme

    for name in list(SCHEMES):
        scheme = get_scheme(name, 8, 4)
        assert scheme.nranks == 32
    assert set(PAPER_SCHEMES) <= set(SCHEMES)
