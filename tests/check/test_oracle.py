"""The routing-differential oracle: all apps x all schemes x both scales
match the sequential references, and the oracle genuinely compares."""

import numpy as np
import pytest

from repro.check import run_oracle
from repro.check.oracle import ORACLE_APPS, ORACLE_SCALES
from repro.check import sequential
from repro.graph import er_stream


def test_full_oracle_all_apps_all_schemes_two_scales():
    """ISSUE 2/9 acceptance: 6 apps x 6 routing policies x 2 graph
    scales, bit-identical across schemes and vs the sequential
    references."""
    report = run_oracle()
    assert report.ok, report.render()
    apps = {e.app for e in report.entries}
    scales = {e.scale for e in report.entries}
    assert apps == set(ORACLE_APPS)
    assert scales == set(ORACLE_SCALES)
    # 6 schemes + 1 cross-scheme entry per (app, scale).
    assert len(report.entries) == len(ORACLE_APPS) * len(ORACLE_SCALES) * 7
    schemes = {e.check for e in report.entries}
    assert {"noroute", "node_local", "node_remote", "nlnr", "node_aware",
            "adaptive", "cross-scheme"} <= schemes


def test_oracle_with_combining_all_apps_tiny():
    """ISSUE 9: the 6-scheme sweep with in-network combining enabled.

    The integer and min-relax algebras stay bit-identical across schemes
    (and vs the references); combined SpMV is tolerance-verified and
    must be *excluded* from the cross-scheme digest comparison."""
    report = run_oracle(scales=["tiny"], combining=True)
    assert report.ok, report.render()
    spmv_checks = {e.check for e in report.entries if e.app == "spmv"}
    assert "cross-scheme" not in spmv_checks
    other_checks = {
        e.check for e in report.entries if e.app == "degree_count"
    }
    assert "cross-scheme" in other_checks


def test_oracle_detects_a_wrong_reference(monkeypatch):
    # Sabotage one reference; the oracle must notice, proving the
    # comparison is live rather than vacuously green.
    monkeypatch.setattr(
        sequential,
        "ref_degrees",
        lambda stream, nranks: np.zeros(stream.num_vertices, dtype=np.int64),
    )
    report = run_oracle(apps=["degree_count"], scales=["tiny"])
    assert not report.ok
    assert "FAIL" in report.render()
    bad = [e for e in report.entries if not e.ok]
    assert all(e.detail for e in bad)


def test_oracle_rejects_unknown_app():
    with pytest.raises(ValueError, match="unknown oracle app"):
        run_oracle(apps=["nonesuch"], scales=["tiny"])


# --------------------------------------- sequential references, self-checks
def test_ref_bfs_and_sssp_agree_on_reachability():
    stream = er_stream(40, 25, seed=3)
    bfs = sequential.ref_bfs(stream, 0, nranks=4)
    sssp = sequential.ref_sssp(stream, 0, nranks=4, weight_seed=1)
    from repro.apps.bfs import UNREACHED

    assert np.array_equal(bfs == UNREACHED, np.isinf(sssp))
    assert bfs[0] == 0 and sssp[0] == 0.0


def test_ref_cc_labels_are_component_minima():
    stream = er_stream(30, 12, seed=9)
    labels = sequential.ref_connected_components(stream, nranks=4)
    # Labels are idempotent (label of label is itself) and <= vertex id.
    assert np.array_equal(labels[labels], labels)
    assert (labels <= np.arange(30)).all()


def test_oracle_perturbed_schedules_new_schemes():
    """ISSUE 9: the node-aware and adaptive schemes (with combining)
    hold the oracle's assertions under perturbed kernel schedules too --
    the combined result must be schedule-independent, not just
    right-on-the-default-schedule."""
    from repro.check import ShuffledTiebreaker

    report = run_oracle(
        apps=["degree_count", "connected_components"],
        scales=["tiny"],
        schemes=["node_aware", "adaptive"],
        tiebreaker=ShuffledTiebreaker(seed=11),
        combining=True,
    )
    assert report.ok, report.render()
    assert {e.check for e in report.entries} >= {
        "node_aware", "adaptive", "cross-scheme"
    }
