"""The schedule fuzzer: campaign passes on the real stack, and the
machinery (tiebreakers, divergence detection, window minimization)
behaves as documented."""

import numpy as np
import pytest

from repro.check import (
    InvariantViolation,
    ShuffledTiebreaker,
    fuzz_schedules,
    mailbox_quiescence_scenario,
    minimize_window,
    results_equal,
)
from repro.check.fuzz import _mix


# ------------------------------------------------- the acceptance campaign
def test_quiescence_scenario_survives_50_interleavings():
    """ISSUE 2 acceptance: >= 50 perturbed interleavings of the mailbox
    quiescence scenario with all invariants and results holding."""
    report = fuzz_schedules(mailbox_quiescence_scenario(), runs=50, seed=0)
    assert report.ok, report.render()
    assert report.runs == 50
    assert len(set(report.seeds)) == 50  # distinct derived schedules


@pytest.mark.parametrize("scheme", ["noroute", "node_remote"])
def test_campaign_other_schemes(scheme):
    report = fuzz_schedules(
        mailbox_quiescence_scenario(scheme=scheme, capacity=2),
        runs=10,
        seed=1,
    )
    assert report.ok, report.render()


def test_reentrant_ttl_forwarding_campaign():
    """The most adversarial scenario from this harness's development
    campaign (3,600 interleavings, zero failures): records re-forwarded
    from inside the delivery callback until their TTL expires, plus
    self-sends and empty batches, at capacity 1 (flush on every post).
    Pinned here with its original seed as the regression scenario."""
    from repro.check import run_checked
    from repro.machine import bench_machine
    from repro.serde import RecordSpec

    spec = RecordSpec("hop", [("dest", "u8"), ("ttl", "i8")])

    def rank_main(ctx):
        seen = []

        def on_batch(batch):
            ttl = batch["ttl"]
            alive = ttl > 0
            seen.extend(batch["dest"][~alive].tolist())
            if alive.any():
                nxt = (batch["dest"][alive] + 1) % ctx.nranks
                out = spec.build(dest=nxt, ttl=ttl[alive] - 1)
                mb.post_batch(nxt.astype(np.int64), out, spec=spec)

        def on_recv(msg):
            seen.append(("scalar", msg))

        mb = ctx.mailbox(recv=on_recv, recv_batch=on_batch, capacity=1)
        yield from mb.send(ctx.rank, ("self", ctx.rank))
        mb.post_batch(np.empty(0, dtype=np.int64), spec.zeros(0), spec=spec)
        dests = np.arange(8, dtype=np.int64) % ctx.nranks
        batch = spec.build(
            dest=dests.astype(np.uint64), ttl=np.full(8, 3, dtype=np.int64)
        )
        yield from mb.send_batch(dests, batch, spec=spec)
        yield from mb.wait_empty()
        return tuple(sorted(map(str, seen)))

    def run_fn(tb):
        result, _ = run_checked(
            bench_machine(2, cores_per_node=2), rank_main, scheme="nlnr",
            mailbox_capacity=1, tiebreaker=tb,
        )
        return tuple(result.values)

    report = fuzz_schedules(run_fn, runs=15, seed=0xBEEF)
    assert report.ok, report.render()


# -------------------------------------------------------------- tiebreakers
def test_tiebreaker_is_deterministic_and_seed_sensitive():
    a = ShuffledTiebreaker(seed=7)
    assert [a(0.0, s) for s in range(8)] == [a(0.0, s) for s in range(8)]
    b = ShuffledTiebreaker(seed=8)
    assert [a(0.0, s) for s in range(8)] != [b(0.0, s) for s in range(8)]


def test_tiebreaker_window_restriction():
    tb = ShuffledTiebreaker(seed=7, window=(10, 20))
    assert tb(0.0, 9) == 0 and tb(0.0, 20) == 0
    assert tb(0.0, 15) == ShuffledTiebreaker(seed=7)(0.0, 15) != 0


def test_perturbed_run_is_reproducible():
    run_fn = mailbox_quiescence_scenario()
    tb = ShuffledTiebreaker(seed=1234)
    assert results_equal(run_fn(tb), run_fn(ShuffledTiebreaker(seed=1234)))


# ------------------------------------------------------------ results_equal
def test_results_equal_is_bit_exact():
    a = np.array([1.0, 2.0])
    assert results_equal(a, a.copy())
    assert not results_equal(a, a.astype(np.float32))  # dtype matters
    assert not results_equal(a, np.array([1.0, 2.0 + 1e-16 + 4e-16]))
    assert results_equal(float("nan"), float("nan"))  # same bit pattern
    assert results_equal({"x": (1, [a])}, {"x": (1, [a.copy()])})
    assert not results_equal({"x": 1}, {"y": 1})


# ------------------------------------------- failure detection + minimization
def _synthetic_run_fn(critical_seq):
    """Fails (diverges) iff the tiebreaker perturbs ``critical_seq``."""

    def run_fn(tb):
        if tb is None or tb(0.0, critical_seq) == 0:
            return "baseline"
        return "diverged"

    return run_fn


def test_fuzzer_reports_divergence_with_reproducer():
    report = fuzz_schedules(_synthetic_run_fn(3), runs=10, seed=0)
    assert not report.ok
    assert {f.kind for f in report.failures} == {"divergence"}
    # Every reported seed reproduces its failure exactly.
    run_fn = _synthetic_run_fn(3)
    for failure in report.failures:
        assert run_fn(failure.tiebreaker()) == "diverged"
    with pytest.raises(InvariantViolation, match="FAILED"):
        report.raise_if_failed()


def test_fuzzer_reports_invariant_and_crash_kinds():
    def invariant_run(tb):
        if tb is None:
            return 0
        raise InvariantViolation("boom")

    def crash_run(tb):
        if tb is None:
            return 0
        raise RuntimeError("kaboom")

    assert {
        f.kind for f in fuzz_schedules(invariant_run, runs=3).failures
    } == {"invariant"}
    assert {
        f.kind for f in fuzz_schedules(crash_run, runs=3).failures
    } == {"error"}


def test_minimize_window_localizes_the_critical_event():
    critical = 42
    run_fn = _synthetic_run_fn(critical)
    seed = _mix(0, 1)  # any seed with a nonzero key at seq 42
    assert ShuffledTiebreaker(seed)(0.0, critical) != 0
    minimized = minimize_window(run_fn, seed, max_seq=1024)
    assert minimized is not None
    window, detail = minimized
    assert window == (critical, critical + 1)
    assert "divergence" in detail


def test_minimize_window_rejects_non_reproducing_seed():
    run_fn = _synthetic_run_fn(10**9)  # never perturbed within max_seq
    assert minimize_window(run_fn, seed=1, max_seq=64) is None
