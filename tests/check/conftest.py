"""Fixtures for the correctness-harness suite.

``checked_world`` is the fixture the tentpole exposes: a factory that
builds invariant-audited :class:`YgmWorld` instances.  Any test can opt
into full invariant checking by building its world through it; every
checker is finalized again at teardown so end-of-run violations fail the
test even if the test forgot to call ``finalize`` itself.
"""

import pytest

from repro.check import InvariantChecker
from repro.core.context import YgmWorld


@pytest.fixture
def checked_world():
    """Factory ``(machine, **ygm_kwargs) -> (YgmWorld, InvariantChecker)``."""
    checkers = []

    def factory(machine, **kwargs):
        checker = InvariantChecker()
        world = YgmWorld(machine, tracer=checker.tracer, **kwargs)
        checker.watch(world)
        checkers.append(checker)
        return world, checker

    yield factory
    for checker in checkers:
        checker.finalize()
