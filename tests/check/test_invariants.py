"""The invariant checker: passes on healthy runs, fires on injected faults.

The fault-injection tests feed the checker hand-crafted trace events (or
deliberately broken worlds) and assert each invariant actually detects
its violation -- mutation coverage for the checker itself, since the
healthy stack (hopefully) never trips it.
"""

import numpy as np
import pytest

from repro.apps import make_degree_counting
from repro.apps.degree_count import gather_global_degrees
from repro.check import InvariantChecker, InvariantViolation, run_checked
from repro.check.sequential import ref_degrees
from repro.core.stats import MailboxStats
from repro.graph import er_stream
from repro.machine import small
from repro.mpi.world import World


def _quiescent_args(**overrides):
    args = dict(
        mailbox=0, epoch=1, rank=0, size=2,
        term_sent=10, term_received=10,
        entries_sent=10, entries_received=10, queued=0,
    )
    args.update(overrides)
    return args


# ---------------------------------------------------------------- healthy runs
def test_clean_run_passes_and_counts_epochs(checked_world):
    stream = er_stream(48, 30, seed=5)
    world, checker = checked_world(small(), scheme="nlnr")
    result = world.run(make_degree_counting(stream, batch_size=16))
    summary = checker.finalize(result)
    assert summary["epochs_checked"] == 1  # one wait_empty epoch
    assert summary["events_seen"] > 0
    degrees = gather_global_degrees(result.values, 48, world.nranks)
    assert np.array_equal(degrees, ref_degrees(stream, world.nranks))


def test_run_checked_helper():
    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append, capacity=4)
        for i in range(6):
            yield from mb.send((ctx.rank + 1) % ctx.nranks, i)
        yield from mb.wait_empty()
        return sorted(got)

    result, checker = run_checked(small(), rank_main, scheme="node_local")
    assert result.values == [[0, 1, 2, 3, 4, 5]] * 4
    assert checker.epochs_checked == 1


# ------------------------------------------------------------- fault injection
def test_unbalanced_totals_detected():
    checker = InvariantChecker()
    with pytest.raises(InvariantViolation, match="unbalanced"):
        checker.tracer.instant(
            1.0, "mailbox", "quiescent", "rank 0",
            **_quiescent_args(term_sent=10, term_received=7),
        )


def test_buffered_messages_at_quiescence_detected():
    checker = InvariantChecker()
    with pytest.raises(InvariantViolation, match="still buffered"):
        checker.tracer.instant(
            1.0, "mailbox", "quiescent", "rank 0",
            **_quiescent_args(queued=3),
        )


def test_duplicate_epoch_report_detected():
    checker = InvariantChecker()
    checker.tracer.instant(
        1.0, "mailbox", "quiescent", "rank 0", **_quiescent_args()
    )
    with pytest.raises(InvariantViolation, match="twice"):
        checker.tracer.instant(
            2.0, "mailbox", "quiescent", "rank 0", **_quiescent_args()
        )


def test_total_disagreement_detected():
    checker = InvariantChecker()
    checker.tracer.instant(
        1.0, "mailbox", "quiescent", "rank 0", **_quiescent_args()
    )
    with pytest.raises(InvariantViolation, match="disagree"):
        checker.tracer.instant(
            2.0, "mailbox", "quiescent", "rank 1",
            **_quiescent_args(rank=1, term_sent=12, term_received=12),
        )


def test_partial_epoch_detected_at_finalize():
    checker = InvariantChecker()
    checker.tracer.instant(
        1.0, "mailbox", "quiescent", "rank 0", **_quiescent_args(size=4)
    )
    with pytest.raises(InvariantViolation, match="only some ranks"):
        checker.finalize()
    assert InvariantChecker(strict_epochs=False).finalize() is not None


def test_negative_resource_depth_detected():
    checker = InvariantChecker()
    with pytest.raises(InvariantViolation, match="negative"):
        checker.tracer.counter(1.0, "resource", "queue", "nic_tx[0]", -1)


def test_time_moving_backwards_detected():
    checker = InvariantChecker()
    world = checker.watch(World(small()))
    world.sim._now = 5.0
    checker.tracer.instant(5.0, "mailbox", "tick", "rank 0")
    world.sim._now = 1.0
    with pytest.raises(InvariantViolation, match="backwards"):
        checker.tracer.instant(1.0, "mailbox", "tick", "rank 0")


def test_undrained_unexpected_queue_detected():
    # An MPI send nobody ever receives parks a packet in the unexpected
    # queue; the checker must refuse to call that run clean.
    checker = InvariantChecker()
    world = checker.watch(World(small(nodes=1, cores_per_node=2)))

    def rank_main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, b"orphan", tag=0, nbytes=8)
        return None

    world.run(rank_main)
    with pytest.raises(InvariantViolation, match="unexpected queue"):
        checker.finalize()


def test_conservation_checks_fire_on_bad_stats():
    checker = InvariantChecker()

    class FakeResult:
        mailbox_stats = MailboxStats(
            app_messages_sent=5, app_messages_delivered=4
        )
        per_rank_stats = [MailboxStats()] * 2

    with pytest.raises(InvariantViolation, match="not conserved"):
        checker.check_conservation(FakeResult())


# ------------------------------------------------------------------ wiring
def test_watch_rejects_foreign_tracer():
    from repro.trace import Tracer

    world = World(small(), tracer=Tracer())
    with pytest.raises(ValueError, match="different tracer"):
        InvariantChecker().watch(world)


def test_checker_requires_mailbox_category():
    from repro.trace import Tracer

    with pytest.raises(ValueError, match="mailbox"):
        InvariantChecker(tracer=Tracer(categories={"app"}))
