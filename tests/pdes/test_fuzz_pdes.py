"""Schedule fuzzing re-run under the parallel engine (satellite: fuzz).

The fuzzer's contract is schedule-robustness: under any perturbation of
same-timestamp event order, the mixed-traffic quiescence scenario must
converge to the unperturbed baseline's application values.  The
parallel engine composes a user tiebreaker *within* each push instant
(its own key reproduces serial order *between* instants), so a fuzzed
partitioned run explores yet another class of schedules -- and must
still land on the same values, with quiescence (wait_empty) terminating
correctly on every partition.
"""

import pytest

from repro.check.fuzz import ShuffledTiebreaker, quiescence_rank_main, results_equal
from repro.core.context import YgmWorld
from repro.pdes import PdesWorld, assert_equivalent


NODES, CORES = 4, 2


def _baseline():
    return YgmWorld(NODES, scheme="nlnr", seed=0, cores_per_node=CORES).run(
        quiescence_rank_main()
    )


def test_unperturbed_pdes_matches_serial_baseline():
    serial = _baseline()
    par = PdesWorld(NODES, scheme="nlnr", seed=0, cores_per_node=CORES, workers=2).run(
        quiescence_rank_main()
    )
    assert_equivalent(par, serial)


@pytest.mark.parametrize("fuzz_seed", [1, 7, 23, 99, 1234])
def test_fuzzed_pdes_schedules_converge_to_the_baseline_values(fuzz_seed):
    baseline = _baseline()
    par = PdesWorld(
        NODES,
        scheme="nlnr",
        seed=0,
        cores_per_node=CORES,
        workers=2,
        tiebreaker=ShuffledTiebreaker(fuzz_seed),
    ).run(quiescence_rank_main())
    # A perturbed schedule is a different simulation -- timestamps and
    # stats may legitimately move -- but the application-level outcome
    # (every mailbox's delivered multiset, here canonicalised to sorted
    # tuples by the scenario itself) must be exactly the baseline's.
    assert results_equal(par.values, baseline.values)


@pytest.mark.parametrize("fuzz_seed", [7, 99])
def test_fuzzed_serial_and_fuzzed_pdes_agree_on_values(fuzz_seed):
    serial = YgmWorld(
        NODES,
        scheme="nlnr",
        seed=0,
        cores_per_node=CORES,
        tiebreaker=ShuffledTiebreaker(fuzz_seed),
    ).run(quiescence_rank_main())
    par = PdesWorld(
        NODES,
        scheme="nlnr",
        seed=0,
        cores_per_node=CORES,
        workers=2,
        tiebreaker=ShuffledTiebreaker(fuzz_seed),
    ).run(quiescence_rank_main())
    assert results_equal(par.values, serial.values)
