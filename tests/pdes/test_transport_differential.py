"""Transport and window-batching differentials (satellite: differential).

The shm-ring transport and the window-batch horizons are pure
mechanism: every (transport, K) combination must reproduce the serial
run bit for bit, window batching must actually collapse barrier rounds
on quiet workloads, and a worker that dies holding encoded exports in
its ring must have that traffic drained and named in the error -- not
silently dropped or misattributed as a stall.
"""

import os

import pytest

from repro.core.context import YgmWorld
from repro.pdes import (
    PdesError,
    PdesStallError,
    PdesWorld,
    ShmTransport,
    assert_equivalent,
)
from repro.pdes.rings import send_batch


def chatter(ctx):
    got = []
    mb = ctx.mailbox(recv=lambda m: got.append(m))
    n = ctx.nranks
    for i in range(25):
        yield from mb.send((ctx.rank * 5 + i * 3) % n, (ctx.rank, i))
    yield from mb.wait_empty()
    return sorted(got)


@pytest.mark.parametrize("window_batch", [1, 0, 4], ids=["k1", "adaptive", "k4"])
@pytest.mark.parametrize("transport", ["shm", "pipe"])
def test_every_transport_and_batching_mode_is_bit_identical(
    transport, window_batch
):
    serial = YgmWorld(8, scheme="nlnr", seed=1, cores_per_node=2).run(chatter)
    engine = PdesWorld(
        8, scheme="nlnr", seed=1, cores_per_node=2, workers=4,
        transport=transport, window_batch=window_batch,
    )
    parallel = engine.run(chatter)
    assert_equivalent(parallel, serial)
    assert engine.exported_packets > 0


def test_transport_env_variable_selects_the_default(monkeypatch):
    monkeypatch.setenv("PDES_TRANSPORT", "pipe")
    assert PdesWorld(4, workers=2).transport == "pipe"
    monkeypatch.setenv("PDES_TRANSPORT", "shm")
    assert PdesWorld(4, workers=2).transport == "shm"
    monkeypatch.setenv("PDES_TRANSPORT", "smoke-signals")
    with pytest.raises(PdesError, match="unknown PDES transport"):
        PdesWorld(4, workers=2)


def bursty(ctx):
    # Every rank fires a cross-partition burst of ~1.5 KiB payloads in
    # one window: far more than a 4 KiB ring can hold.
    got = []
    mb = ctx.mailbox(recv=lambda m: got.append(m))
    n = ctx.nranks
    for i in range(8):
        yield from mb.send((ctx.rank + n // 2) % n, bytes([i]) * 1500)
    yield from mb.wait_empty()
    return sorted(got)


def test_tiny_ring_spills_but_stays_bit_identical():
    serial = YgmWorld(8, scheme="nlnr", seed=1, cores_per_node=2).run(bursty)
    engine = PdesWorld(
        8, scheme="nlnr", seed=1, cores_per_node=2, workers=2,
        ring_bytes=4096,  # far below one window's traffic
    )
    parallel = engine.run(bursty)
    assert_equivalent(parallel, serial)
    assert engine.spilled_batches > 0  # the spill path truly ran


def make_quiet_tail(dt):
    # Rank 0 ticks through 60 pure-local timer events spaced just over
    # one lookahead apart; no rank ever sends.  Every window is
    # export-free, so under K = 1 each event needs its own barrier
    # round while batched horizons may legally cover K windows at once.
    def quiet_tail(ctx):
        if ctx.rank == 0:
            for _ in range(60):
                yield ctx.sim.timeout(dt)
        return ctx.rank

    return quiet_tail


@pytest.mark.parametrize("window_batch", [8, 0], ids=["k8", "adaptive"])
def test_window_batching_collapses_rounds_on_quiet_workloads(window_batch):
    lookahead = PdesWorld(4, cores_per_node=1, workers=2).lookahead
    quiet_tail = make_quiet_tail(1.01 * lookahead)
    serial = YgmWorld(4, scheme="nlnr", seed=0, cores_per_node=1).run(quiet_tail)

    def rounds(k):
        engine = PdesWorld(
            4, scheme="nlnr", seed=0, cores_per_node=1, workers=2,
            window_batch=k,
        )
        assert_equivalent(engine.run(quiet_tail), serial)
        return engine.rounds

    baseline = rounds(1)
    batched = rounds(window_batch)
    assert batched < baseline / 2  # same result, far fewer barriers


def test_adaptive_k_grows_on_quiet_workloads():
    engine = PdesWorld(4, cores_per_node=1, workers=2, window_batch=0)
    engine.run(make_quiet_tail(1.01 * engine.lookahead))
    assert engine.max_window_batch > 1


# -- death attribution -------------------------------------------------------
def _exports(n=3):
    import numpy as np

    from repro.core.coalescing import P2PColumns
    from repro.mpi.envelope import Packet

    out = []
    for i in range(n):
        cols = P2PColumns(
            dests=np.array([1], dtype=np.int64),
            payloads=np.array([i], dtype=object),
            nbytes=np.array([8], dtype=np.int64),
        )
        pkt = Packet(src=0, dst=1, ctx=0, kind=("ygm", 1, "app"), tag=0,
                     payload=[cols], nbytes=cols.wire_bytes)
        out.append((float(i), 0, 1, pkt.nbytes, pkt))
    return out


@pytest.fixture
def engine_with_rings():
    engine = PdesWorld(4, cores_per_node=1, workers=2)
    engine._rings = ShmTransport(2, ring_bytes=8192)
    try:
        yield engine
    finally:
        engine._teardown_rings()


def test_dead_worker_ring_batches_are_drained_and_counted(engine_with_rings):
    engine = engine_with_rings
    ring = engine._rings.from_worker[1]
    send_batch(ring, _exports(3), bytearray())
    send_batch(ring, _exports(2), bytearray())
    note = engine._ring_attribution([1])
    assert "partition 1 left 2 undelivered export batch(es)" in note
    assert "(5 message(s))" in note
    assert ring.used == 0  # drained, not left to leak into a reuse


def test_dead_worker_partial_frame_is_reported_as_partial(engine_with_rings):
    engine = engine_with_rings
    ring = engine._rings.from_worker[0]
    # A producer that died mid-write: bytes present, frame incomplete.
    ring._write(0, b"\x00" * 10)
    ring._store(0, 10)
    note = engine._ring_attribution([0])
    assert "partition 0 left 10 unread byte(s) (partial batch)" in note


def test_dead_worker_corrupt_batch_is_reported_as_corrupt(engine_with_rings):
    engine = engine_with_rings
    ring = engine._rings.from_worker[1]
    ring.try_push(b"\xff\xfe definitely not a batch")
    note = engine._ring_attribution([1])
    assert "partition 1 left a corrupt batch" in note


def test_clean_rings_add_no_attribution(engine_with_rings):
    assert engine_with_rings._ring_attribution([0, 1]) == ""


def test_mid_run_death_error_names_the_partition_not_a_stall():
    # Integration: a worker dying outright mid-window must produce the
    # EOF-death diagnosis (with any ring attribution appended), and
    # must NOT be misreported as a PdesStallError even with a long
    # timeout still pending.
    def rank_main(ctx):
        if ctx.rank == 3:
            os._exit(13)
        return ctx.rank
        yield

    engine = PdesWorld(4, cores_per_node=1, workers=2, window_timeout=300.0)
    with pytest.raises(PdesError) as ei:
        engine.run(rank_main)
    assert not isinstance(ei.value, PdesStallError)
    msg = str(ei.value)
    assert "exited without a report" in msg
    assert "partition(s) [1]" in msg
