"""SPSC ring mechanics: wrap-around, fencing, overflow spill.

The rings move every export batch of a run, so the framing must
survive arbitrary interleavings of variable-sized records across the
wrap boundary, and every desync -- wrong sequence, truncated frame,
double pop -- must raise :class:`RingError` instead of mispairing a
batch with a window.
"""

import random

import numpy as np
import pytest

from repro.core.coalescing import P2PColumns
from repro.mpi.envelope import Packet
from repro.pdes import RingError, ShmTransport, SpscRing
from repro.pdes.rings import (
    _DATA_OFF,
    DESC_NONE,
    recv_batch,
    send_batch,
)


def make_ring(capacity=256):
    backing = bytearray(_DATA_OFF + capacity)
    return SpscRing(memoryview(backing), capacity)


def pop(ring):
    data = bytes(ring.begin_pop())
    ring.commit_pop()
    return data


def test_push_pop_roundtrip():
    ring = make_ring()
    assert ring.try_push(b"hello") == 0
    assert ring.try_push(b"world!") == 1
    assert pop(ring) == b"hello"
    assert pop(ring) == b"world!"
    assert ring.used == 0


def test_full_ring_refuses_then_recovers():
    ring = make_ring(capacity=64)
    assert ring.try_push(b"x" * 40) == 0  # 16-byte header + 40 payload
    assert ring.try_push(b"y" * 40) is None  # would overflow: spill path
    assert pop(ring) == b"x" * 40
    assert ring.try_push(b"y" * 40) == 1  # space freed, seq continues
    assert pop(ring) == b"y" * 40


def test_records_wrap_around_the_capacity_boundary():
    ring = make_ring(capacity=64)
    wrapped = 0
    for i in range(50):
        payload = bytes([i]) * (11 + (i * 7) % 23)
        assert ring.try_push(payload) == i
        # Did this record's bytes straddle the modular boundary?
        if (ring._load(0) % 64) < len(payload) + 16:
            wrapped += 1
        assert pop(ring) == payload
    assert wrapped > 5  # the loop genuinely exercised wrap-around


def test_interleaved_pushes_and_pops_preserve_fifo_order():
    rng = random.Random(42)
    ring = make_ring(capacity=128)
    sent, got, next_id = [], [], 0
    for _ in range(400):
        if rng.random() < 0.6:
            payload = bytes([next_id % 256]) * rng.randrange(1, 40)
            if ring.try_push(payload) is not None:
                sent.append(payload)
                next_id += 1
        elif sent[len(got):]:
            got.append(pop(ring))
    got.extend(pop(ring) for _ in sent[len(got):])
    assert got == sent


def test_sequence_fence_detects_desync():
    ring = make_ring()
    ring.try_push(b"a")
    ring._pop_seq = 5  # simulate a consumer that lost records
    with pytest.raises(RingError, match="sequence fence"):
        ring.begin_pop()


def test_empty_pop_and_double_commit_raise():
    ring = make_ring()
    with pytest.raises(RingError, match="empty"):
        ring.begin_pop()
    ring.try_push(b"a")
    ring.begin_pop()
    ring.commit_pop()
    with pytest.raises(RingError, match="without begin_pop"):
        ring.commit_pop()


def test_truncated_record_is_detected():
    ring = make_ring()
    ring.try_push(b"full payload here")
    # Simulate a producer that died mid-write: rewind the tail so only
    # part of the framed record is published.
    ring._store(0, ring._load(0) - 5)
    with pytest.raises(RingError, match="truncated"):
        ring.begin_pop()


# -- batch descriptors -------------------------------------------------------
def _exports(n=4, bulk=1):
    out = []
    for i in range(n):
        cols = P2PColumns(
            dests=np.arange(bulk, dtype=np.int64),
            payloads=np.array([i] * bulk, dtype=object),
            nbytes=np.full(bulk, 8, dtype=np.int64),
        )
        pkt = Packet(src=0, dst=1, ctx=0, kind=("ygm", 1, "app"), tag=0,
                     payload=[cols], nbytes=cols.wire_bytes)
        out.append((float(i), 0, 1, pkt.nbytes, pkt))
    return out


def test_empty_batch_sends_no_bytes():
    ring = make_ring()
    assert send_batch(ring, [], bytearray()) == DESC_NONE
    assert ring.used == 0
    assert recv_batch(ring, DESC_NONE) == []


def test_batch_rides_the_ring_and_decodes():
    ring = make_ring(capacity=4096)
    exports = _exports()
    desc = send_batch(ring, exports, bytearray())
    assert desc[0] == "ring"
    back = recv_batch(ring, desc)
    assert [b[4].payload[0].payloads[0] for b in back] == [0, 1, 2, 3]
    assert ring.used == 0  # consumed


def test_oversized_batch_takes_the_spill_path():
    ring = make_ring(capacity=4096)
    exports = _exports(n=2, bulk=2000)  # ~tens of KiB of columns
    desc = send_batch(ring, exports, bytearray())
    assert desc[0] == "spill"
    assert ring.used == 0  # nothing was half-written
    back = recv_batch(ring, desc)
    assert len(back) == 2
    assert back[0][4].payload[0].count == 2000
    # The ring stays usable (and in sequence) after a spill.
    desc2 = send_batch(ring, _exports(n=1), bytearray())
    assert desc2 == ("ring", 0)
    assert len(recv_batch(ring, desc2)) == 1


def test_spill_threshold_property_random_batch_sizes():
    rng = random.Random(7)
    ring = make_ring(capacity=2048)
    for _ in range(60):
        exports = _exports(n=rng.randrange(1, 4), bulk=rng.randrange(1, 120))
        desc = send_batch(ring, exports, bytearray())
        back = recv_batch(ring, desc)
        assert len(back) == len(exports)
        for (t, src, dst, nbytes, pkt), orig in zip(back, exports):
            assert (t, src, dst, nbytes) == orig[:4]
            np.testing.assert_array_equal(
                pkt.payload[0].payloads, orig[4].payload[0].payloads
            )
        assert ring.used == 0


def test_descriptor_record_mismatch_raises():
    ring = make_ring(capacity=4096)
    d0 = send_batch(ring, _exports(n=1), bytearray())
    send_batch(ring, _exports(n=1), bytearray())
    recv_batch(ring, d0)
    with pytest.raises(RingError, match="descriptor names record"):
        recv_batch(ring, ("ring", 0))  # already consumed


def test_unknown_descriptor_raises():
    with pytest.raises(RingError, match="unknown batch descriptor"):
        recv_batch(make_ring(), ("warp", 9))


# -- the shared segment ------------------------------------------------------
def test_shm_transport_carves_independent_ring_pairs():
    rings = ShmTransport(2, ring_bytes=4096)
    try:
        all_rings = rings.to_worker + rings.from_worker
        assert len(all_rings) == 4
        for i, ring in enumerate(all_rings):
            ring.try_push(bytes([i]) * 10)
        for i, ring in enumerate(all_rings):
            assert pop(ring) == bytes([i]) * 10  # no slot overlap
    finally:
        rings.close()
        rings.unlink()


def test_shm_transport_rejects_tiny_rings():
    with pytest.raises(ValueError, match="too small"):
        ShmTransport(1, ring_bytes=16)


def test_close_and_unlink_are_idempotent(tmp_path):
    rings = ShmTransport(1, ring_bytes=4096)
    name = rings.name
    import pathlib

    assert pathlib.Path("/dev/shm", name).exists()
    rings.close()
    rings.close()
    rings.unlink()
    rings.unlink()
    assert not pathlib.Path("/dev/shm", name).exists()
