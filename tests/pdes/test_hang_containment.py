"""A stalled worker must not hang the driver (satellite: hang containment).

A partition that stops making progress -- here a rank program spinning
in host-time ``time.sleep`` inside the forked worker -- never reaches
the window barrier.  The driver's per-window timeout must fire, kill
every worker process and raise :class:`PdesStallError` naming the stuck
partition, instead of blocking forever on the pipe.
"""

import time

import pytest

from repro.pdes import PdesStallError, PdesWorld


def test_stalled_partition_is_detected_killed_and_named():
    def rank_main(ctx):
        if ctx.rank == 3:
            # Host-time stall inside the worker: the simulated clock
            # never advances, the barrier report never arrives.
            time.sleep(600.0)
        return ctx.rank
        yield  # make it a generator

    engine = PdesWorld(4, cores_per_node=1, workers=2, window_timeout=1.0)
    t0 = time.monotonic()
    with pytest.raises(PdesStallError) as ei:
        engine.run(rank_main)
    waited = time.monotonic() - t0

    # Partition 1 owns nodes 2-3 (hence rank 3); partition 0 reported fine.
    assert ei.value.stalled == [1]
    assert "partition(s) [1]" in str(ei.value)
    # The driver honoured the timeout rather than waiting out the sleep.
    assert waited < 30.0


def test_workers_are_reaped_after_a_stall():
    def rank_main(ctx):
        if ctx.rank == 0:
            time.sleep(600.0)
        return ctx.rank
        yield

    engine = PdesWorld(4, cores_per_node=1, workers=2, window_timeout=1.0)
    with pytest.raises(PdesStallError) as ei:
        engine.run(rank_main)
    assert ei.value.stalled == [0]
    # No orphaned simulation processes: every forked worker is dead.
    import multiprocessing

    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        stragglers = [
            p for p in multiprocessing.active_children()
            if p.name.startswith("pdes-part")
        ]
        if not stragglers:
            break
        time.sleep(0.05)
    assert not stragglers
