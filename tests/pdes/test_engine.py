"""Engine-level behaviour: protocol, error paths, diagnostics, tracing."""

import pytest

from repro.core.context import YgmWorld
from repro.machine import bench_machine, small
from repro.pdes import PdesError, PdesWorld, assert_equivalent, run_pdes
from repro.sim import DeadlockError
from repro.trace import Tracer


def ping_all(ctx):
    got = []
    mb = ctx.mailbox(recv=lambda m: got.append(m))
    for i in range(10):
        yield from mb.send((ctx.rank + 1 + i) % ctx.nranks, (ctx.rank, i))
    yield from mb.wait_empty()
    return sorted(got)


def test_single_partition_is_exactly_the_serial_kernel():
    # workers=1 keeps the native in-flight path (no export hook at all),
    # so even raw delivery order is trivially serial.
    serial = YgmWorld(4, scheme="nlnr", seed=2, cores_per_node=2).run(ping_all)
    par = PdesWorld(4, scheme="nlnr", seed=2, cores_per_node=2, workers=1).run(
        ping_all
    )
    assert_equivalent(par, serial)
    assert par.values == serial.values


def test_run_pdes_convenience_wrapper():
    serial = YgmWorld(4, scheme="nlnr", seed=0, cores_per_node=2).run(ping_all)
    par = run_pdes(ping_all, 4, scheme="nlnr", workers=2, cores_per_node=2)
    assert_equivalent(par, serial)


def test_window_protocol_diagnostics_count_rounds_and_exports():
    engine = PdesWorld(4, scheme="nlnr", seed=0, cores_per_node=2, workers=2)
    engine.run(ping_all)
    assert engine.rounds > 1
    assert engine.exported_packets > 0


def test_zero_lookahead_is_rejected():
    machine = bench_machine(2, cores_per_node=2, latency=0.0)
    assert machine.net.min_wire_latency == 0.0
    with pytest.raises(PdesError, match="lookahead"):
        PdesWorld(machine, workers=2)


def test_more_workers_than_nodes_is_rejected():
    with pytest.raises(ValueError):
        PdesWorld(2, cores_per_node=2, workers=3)


def test_global_deadlock_is_detected_across_partitions():
    # Rank 3 (partition 1) blocks forever; every other rank finishes.
    # The stuck partition reports an empty heap, no partition can move,
    # and the driver must rule global deadlock rather than spin.
    def rank_main(ctx):
        if ctx.rank == 3:
            yield ctx.sim.event("never")
        return ctx.rank

    with pytest.raises(DeadlockError):
        PdesWorld(4, cores_per_node=1, workers=2).run(rank_main)


def test_rank_exception_becomes_its_value_exactly_like_serial():
    # The serial kernel stores an exception escaping a rank program as
    # that rank's value (run_until_complete holds a completion callback,
    # so the failure is captured, not raised).  Partitioned runs must
    # mirror that, including shipping the exception across the pipe.
    def rank_main(ctx):
        if ctx.rank == 2:
            raise ValueError("boom on rank 2")
        return ctx.rank
        yield  # make it a generator

    serial = YgmWorld(4, scheme="nlnr", seed=0, cores_per_node=1).run(rank_main)
    par = PdesWorld(4, cores_per_node=1, workers=2).run(rank_main)
    assert [type(v) for v in par.values] == [type(v) for v in serial.values]
    assert par.values[2].args == serial.values[2].args == ("boom on rank 2",)


def test_worker_internal_error_surfaces_as_pdes_error_with_traceback(monkeypatch):
    # An error inside the worker machinery itself (not a rank program)
    # must come back as a PdesError naming the partition and carrying
    # the worker's traceback.  The fault is injected by patching the
    # worker's step before fork -- children inherit the patched module.
    from repro.pdes.worker import PartitionRuntime

    orig = PartitionRuntime.step

    def faulty_step(self, horizon, imports, drain):
        if self.part == 1:
            raise RuntimeError("synthetic worker fault")
        return orig(self, horizon, imports, drain)

    monkeypatch.setattr(PartitionRuntime, "step", faulty_step)
    with pytest.raises(PdesError) as ei:
        PdesWorld(4, cores_per_node=2, workers=2).run(ping_all)
    msg = str(ei.value)
    assert "partition 1" in msg
    assert "Traceback" in msg and "synthetic worker fault" in msg


def test_worker_death_surfaces_as_pdes_error():
    # A worker dying outright (simulated segfault: os._exit skips all
    # exception handling) is detected as EOF on its pipe, not a hang.
    def rank_main(ctx):
        if ctx.rank == 3:
            import os

            os._exit(13)
        return ctx.rank
        yield

    with pytest.raises(PdesError, match="without a report"):
        PdesWorld(4, cores_per_node=1, workers=2).run(rank_main)


def test_all_ranks_failing_still_terminates_cleanly():
    # Even with no successful rank anywhere (the completion instant is a
    # failure event), the engine terminates and mirrors serial values.
    def rank_main(ctx):
        raise RuntimeError(f"rank {ctx.rank} dead")
        yield

    serial = YgmWorld(4, scheme="nlnr", seed=0, cores_per_node=1).run(rank_main)
    par = PdesWorld(4, cores_per_node=1, workers=2).run(rank_main)
    assert [v.args for v in par.values] == [v.args for v in serial.values]
    assert par.elapsed == serial.elapsed


def test_driver_tracer_records_window_and_completion_events():
    tracer = Tracer()
    engine = PdesWorld(
        4, scheme="nlnr", seed=0, cores_per_node=2, workers=2, tracer=tracer
    )
    engine.run(ping_all)
    names = [ev.name for ev in tracer.events if ev.cat == "pdes"]
    assert "window" in names
    assert "barrier" in names
    assert names[-1] == "complete"
    windows = [
        ev for ev in tracer.events if ev.cat == "pdes" and ev.name == "window"
    ]
    # Horizon is always lookahead past the window floor.
    lookahead = engine.lookahead
    for ev in windows:
        assert ev.args["horizon"] == pytest.approx(ev.ts + lookahead)


def test_small_preset_machine_runs_partitioned():
    machine = small(nodes=2, cores_per_node=2)
    serial = YgmWorld(machine, scheme="nlnr", seed=7).run(ping_all)
    par = PdesWorld(machine, scheme="nlnr", seed=7, workers=2).run(ping_all)
    assert_equivalent(par, serial)
