"""Quiescence totals are partition-composable (satellite: termination).

The serial termination detector agrees on global ``last_totals`` while
each rank keeps its *own* round sample in ``last_contribution``.  The
identity the parallel engine's audit relies on: summing contributions
over any disjoint split of the ranks -- e.g. a 2-partition PDES split
-- reconstructs the agreed totals exactly.
"""

import pytest

from repro.core.context import YgmWorld
from repro.pdes import PdesError, PdesWorld
from repro.pdes.engine import PdesWorld as _Engine


def chatter(contexts):
    def rank_main(ctx):
        contexts.append(ctx)
        got = []
        mb = ctx.mailbox(recv=lambda m: got.append(m))
        for i in range(12):
            yield from mb.send((ctx.rank * 5 + i) % ctx.nranks, i)
        yield from mb.wait_empty()
        return len(got)

    return rank_main


def _samples(contexts):
    """(rank -> (totals, contribution)) for the single app mailbox."""
    out = {}
    for ctx in sorted(contexts, key=lambda c: c.world_rank):
        (mb,) = ctx.mailboxes
        out[ctx.world_rank] = (mb.term_totals, mb.term_contribution)
    return out


def test_contributions_sum_to_agreed_totals_on_a_two_partition_split():
    contexts = []
    YgmWorld(4, scheme="nlnr", seed=1, cores_per_node=2).run(chatter(contexts))
    samples = _samples(contexts)
    assert len(samples) == 8

    # Every rank agreed on the same global snapshot.
    totals = {t for t, _ in samples.values()}
    assert len(totals) == 1
    (totals,) = totals

    # The PDES node split: ranks 0-3 on partition 0, ranks 4-7 on 1.
    def group_sum(ranks):
        sent = sum(samples[r][1][0] for r in ranks)
        recv = sum(samples[r][1][1] for r in ranks)
        return sent, recv

    s0, r0 = group_sum(range(0, 4))
    s1, r1 = group_sum(range(4, 8))
    assert (s0 + s1, r0 + r1) == tuple(totals)
    # Each partition's share is a real share, not a copy of the totals.
    assert (s0, r0) != tuple(totals)
    assert (s1, r1) != tuple(totals)


def test_pdes_run_audits_the_identity_end_to_end():
    # PdesWorld._assemble runs _audit_term on every run; completing
    # without PdesError means the cross-partition identity held.
    contexts = []
    engine = PdesWorld(4, scheme="nlnr", seed=1, cores_per_node=2, workers=2)
    result = engine.run(chatter(contexts))
    assert sum(result.values) == 4 * 2 * 12  # every message delivered once


def test_audit_rejects_disagreeing_totals():
    engine = _Engine(4, cores_per_node=2, workers=2)
    term = {
        0: [(7, (10, 10), (6, 6))],
        1: [(7, (11, 11), (4, 4))],  # different agreed totals: protocol bug
    }
    with pytest.raises(PdesError, match="disagree"):
        engine._audit_term(term)


def test_audit_rejects_non_composing_contributions():
    engine = _Engine(4, cores_per_node=2, workers=2)
    term = {
        0: [(7, (10, 10), (6, 6))],
        1: [(7, (10, 10), (5, 4))],  # 11 != 10: lost/double-counted traffic
    }
    with pytest.raises(PdesError, match="composable"):
        engine._audit_term(term)
