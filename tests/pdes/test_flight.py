"""Flight-recorder battery: non-perturbation, zero disabled cost,
attribution schema, clock alignment and ring telemetry.

The recorder's contract has two halves.  *On*, it may only read
simulated state: a flight-recorded run must stay bit-identical to the
serial oracle across transports and partition counts.  *Off*, the
worker window path may pay exactly one cached-attribute check and the
per-event pump loop must not mention the recorder at all -- enforced
structurally (bytecode inspection) rather than by timing, so the test
is deterministic on any host.
"""

import dis
import json
import tracemalloc

import pytest

from repro.core.context import YgmWorld
from repro.pdes import (
    DRIVER_PHASES,
    WORKER_PHASES,
    PdesWorld,
    ShmTransport,
    assert_equivalent,
    estimate_offset,
)
from repro.pdes.rings import SpscRing
from repro.pdes.worker import PartitionRuntime
from repro.trace import Tracer
from repro.trace.pdes_report import (
    MIN_COVERAGE,
    AttributionError,
    render_html,
    validate,
    write_report,
)


def chatter(ctx):
    got = []
    mb = ctx.mailbox(recv=lambda m: got.append(m))
    n = ctx.nranks
    for i in range(25):
        yield from mb.send((ctx.rank * 5 + i * 3) % n, (ctx.rank, i))
    yield from mb.wait_empty()
    return sorted(got)


def _serial():
    return YgmWorld(8, scheme="nlnr", seed=1, cores_per_node=2).run(chatter)


def _flight_world(workers, transport, **kw):
    return PdesWorld(
        8, scheme="nlnr", seed=1, cores_per_node=2, workers=workers,
        transport=transport, flight=True, **kw,
    )


# -- non-perturbation ---------------------------------------------------------
@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("transport", ["shm", "pipe"])
def test_recording_is_bit_identical_to_serial(transport, workers):
    serial = _serial()
    engine = _flight_world(workers, transport)
    parallel = engine.run(chatter)
    assert_equivalent(parallel, serial)
    log = engine.flight_log
    assert log is not None
    assert len(log.workers) == workers
    assert len(log.offsets) == workers
    # Every worker recorded spans in every phase bucket.
    for p in range(workers):
        phases = {s[0] for s in log.aligned_spans(p)}
        assert phases == set(WORKER_PHASES)
    assert {s[0] for s in log.driver.spans} == set(DRIVER_PHASES)


# -- zero cost when disabled --------------------------------------------------
def test_disabled_window_path_is_one_attribute_check():
    """`PartitionRuntime.step` may load `self.flight` exactly once; the
    phases it delegates to must not mention the recorder or any clock."""
    loads = [
        ins
        for ins in dis.get_instructions(PartitionRuntime.step)
        if ins.opname.startswith("LOAD") and ins.argval == "flight"
    ]
    assert len(loads) == 1
    assert "perf_counter" not in PartitionRuntime.step.__code__.co_names
    for fn in (
        PartitionRuntime.pump,
        PartitionRuntime.inject,
        PartitionRuntime._advance,
        PartitionRuntime.peek,
        PartitionRuntime.recv_imports,
        PartitionRuntime._ship_exports,
    ):
        names = fn.__code__.co_names
        assert "flight" not in names, fn.__qualname__
        assert "perf_counter" not in names, fn.__qualname__


def test_disabled_run_allocates_nothing_from_flight_module():
    serial = _serial()
    tracemalloc.start()
    try:
        engine = PdesWorld(
            8, scheme="nlnr", seed=1, cores_per_node=2, workers=2
        )
        parallel = engine.run(chatter)
        snap = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert_equivalent(parallel, serial)
    assert engine.flight_log is None
    flight_allocs = snap.filter_traces(
        [tracemalloc.Filter(True, "*pdes/flight.py")]
    ).statistics("filename")
    assert flight_allocs == []


# -- clock alignment ----------------------------------------------------------
def test_offset_estimator_uses_the_min_rtt_probe():
    # Worker clock runs 5.0s ahead.  Probe 1 has a symmetric 0.1s RTT;
    # probe 2 is contaminated by 0.4s of scheduling noise.
    probes = [
        (0.0, 5.05, 0.1),
        (1.0, 6.1, 1.4),
    ]
    assert estimate_offset(probes) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        estimate_offset([])


def test_clock_offsets_are_small_on_a_shared_monotonic_clock():
    engine = _flight_world(2, "shm")
    engine.run(chatter)
    # Linux perf_counter is system-wide CLOCK_MONOTONIC: the handshake
    # estimate must come out far below a millisecond.
    for off in engine.flight_log.offsets:
        assert abs(off) < 0.1


# -- attribution document -----------------------------------------------------
def test_attribution_validates_and_tiles_the_wall_clock(tmp_path):
    engine = _flight_world(4, "shm")
    engine.run(chatter)
    doc = engine.flight_log.attribution()
    validate(doc)  # raises on schema/coverage violations
    assert doc["driver"]["coverage"] >= MIN_COVERAGE
    for w in doc["workers"]:
        assert w["coverage"] >= MIN_COVERAGE
        assert set(w["buckets"]) == set(WORKER_PHASES)
        assert w["ring"]["exports"]["pushes"] > 0
    assert set(doc["driver"]["buckets"]) == set(DRIVER_PHASES)
    se = doc["serial_equivalent"]
    assert 0.0 <= se["fraction"] <= 1.0
    assert se["compute_s"] == pytest.approx(
        sum(w["buckets"]["compute"] for w in doc["workers"])
    )
    assert doc["rounds"], "per-round ring telemetry series missing"
    assert doc["meta"]["workers"] == 4
    # The JSON document round-trips.
    html_path = tmp_path / "attr.html"
    json_path = tmp_path / "attr.json"
    write_report(doc, str(html_path), str(json_path))
    assert json.loads(json_path.read_text())["schema"] == doc["schema"]


def test_validation_rejects_malformed_documents():
    engine = _flight_world(2, "shm")
    engine.run(chatter)
    doc = engine.flight_log.attribution()
    bad = dict(doc, schema=999)
    with pytest.raises(AttributionError, match="schema"):
        validate(bad)
    bad = json.loads(json.dumps(doc))
    bad["workers"][0]["coverage"] = 0.5
    with pytest.raises(AttributionError, match="tile only"):
        validate(bad)
    bad = json.loads(json.dumps(doc))
    del bad["workers"][0]["buckets"]["compute"]
    with pytest.raises(AttributionError, match="buckets"):
        validate(bad)


def test_report_html_is_self_contained(tmp_path):
    engine = _flight_world(2, "shm")
    engine.run(chatter)
    html = render_html(engine.flight_log.attribution())
    # Self-contained: no external fetches of any kind.
    assert "src=" not in html
    assert "href=" not in html
    assert html.count("<") > 50
    assert "Serial-equivalent fraction" in html


# -- merged chrome trace ------------------------------------------------------
def test_chrome_merge_has_one_process_group_per_worker(tmp_path):
    tracer = Tracer()
    engine = PdesWorld(
        8, scheme="nlnr", seed=1, cores_per_node=2, workers=2,
        flight=True, tracer=tracer,
    )
    engine.run(chatter)
    path = tmp_path / "trace.json"
    tracer.export_chrome(
        str(path), extra_events=engine.flight_log.to_chrome_events()
    )
    doc = json.loads(path.read_text())
    names = {
        e["pid"]: e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert names[100] == "pdes driver (wall clock)"
    assert names[101] == "pdes worker 0 (wall clock)"
    assert names[102] == "pdes worker 1 (wall clock)"
    spans = [
        e for e in doc["traceEvents"] if e.get("cat") == "pdes-flight"
        and e.get("ph") == "X"
    ]
    assert {e["name"] for e in spans if e["pid"] == 100} == set(DRIVER_PHASES)
    assert {e["name"] for e in spans if e["pid"] == 101} == set(WORKER_PHASES)
    # Worker simulated-time events were merged into the rank lanes too.
    assert any(
        e.get("pid") == 1 and e.get("cat") in ("mailbox", "mpi")
        for e in doc["traceEvents"]
    )


# -- ring telemetry -----------------------------------------------------------
def test_ring_stats_count_pushes_pops_highwater_and_spills():
    shm = ShmTransport(1, ring_bytes=4096)
    ring = shm.to_worker[0]
    try:
        payload = b"x" * 100
        assert ring.try_push(payload) is not None
        st = ring.stats
        assert st.pushes == 1
        assert st.bytes_pushed == 116  # 16-byte record header + payload
        assert st.high_water == 116
        # A push that cannot fit is refused and counted as a spill.
        assert ring.try_push(b"y" * 8000) is None
        assert st.spills == 1
        assert st.pushes == 1
        view = ring.begin_pop()
        assert bytes(view) == payload
        view.release()
        ring.commit_pop()
        assert st.pops == 1
        assert st.bytes_popped == 116
        assert ring.used == 0
        assert st.high_water == 116  # peak, not current
    finally:
        shm.close()
        shm.unlink()


def test_ring_stats_survive_the_run():
    engine = _flight_world(2, "shm")
    engine.run(chatter)
    stats = engine.ring_stats
    assert stats is not None
    assert len(stats["to_worker"]) == 2
    assert sum(s["pushes"] for s in stats["to_worker"]) > 0
    assert sum(s["pops"] for s in stats["from_worker"]) > 0


def test_stall_note_names_the_congested_ring():
    engine = PdesWorld(
        8, scheme="nlnr", seed=1, cores_per_node=2, workers=2
    )
    shm = ShmTransport(2, ring_bytes=4096)
    engine._rings = shm
    try:
        # Prime partition 1's import ring with an undrained record and a
        # recorded spill, as a mid-window stall would leave it.
        assert shm.to_worker[1].try_push(b"z" * 64) is not None
        shm.to_worker[1].stats.spills = 3
        note = engine._ring_stall_note([1])
        assert "partition 1 import ring" in note
        assert "3 spill(s)" in note
        assert "4096" in note
        # A quiet partition contributes nothing.
        assert engine._ring_stall_note([0]) == ""
    finally:
        engine._rings = None
        shm.close()
        shm.unlink()
