"""No shared-memory segment outlives a run (satellite: shm lifecycle).

The driver creates one segment before forking and must unlink it on
*every* exit path -- normal completion, worker crash, stall kill,
KeyboardInterrupt -- or repeated runs leak /dev/shm until the host
starves.  The subprocess test additionally proves the interpreter
shuts down without ``resource_tracker`` leak warnings: only the driver
ever registers the segment, so the one unlink leaves the tracker quiet.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.pdes import PdesError, PdesStallError, PdesWorld

SHM_DIR = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="no /dev/shm on this platform"
)


def segments():
    return sorted(p.name for p in SHM_DIR.glob("repro_pdes_*"))


def ping_all(ctx):
    got = []
    mb = ctx.mailbox(recv=lambda m: got.append(m))
    for i in range(10):
        yield from mb.send((ctx.rank + 1 + i) % ctx.nranks, (ctx.rank, i))
    yield from mb.wait_empty()
    return sorted(got)


def test_normal_run_leaves_no_segment():
    before = segments()
    engine = PdesWorld(4, cores_per_node=2, workers=2)
    engine.run(ping_all)
    assert segments() == before


def test_segment_exists_during_the_run_and_is_gone_after():
    # The transport object records its name; verify the file truly hit
    # /dev/shm and truly left (not merely that close() was called).
    engine = PdesWorld(4, cores_per_node=2, workers=2)
    seen = {}
    orig_spawn = PdesWorld._spawn

    def spying_spawn(self, rank_main):
        out = orig_spawn(self, rank_main)
        seen["name"] = self._rings.name
        assert (SHM_DIR / self._rings.name).exists()
        return out

    engine._spawn = spying_spawn.__get__(engine)
    engine.run(ping_all)
    assert not (SHM_DIR / seen["name"]).exists()


def test_worker_crash_leaves_no_segment():
    def rank_main(ctx):
        if ctx.rank == 3:
            os._exit(13)
        return ctx.rank
        yield

    before = segments()
    with pytest.raises(PdesError):
        PdesWorld(4, cores_per_node=1, workers=2).run(rank_main)
    assert segments() == before


def test_stall_kill_leaves_no_segment():
    def rank_main(ctx):
        if ctx.rank == 0:
            time.sleep(600.0)
        return ctx.rank
        yield

    before = segments()
    with pytest.raises(PdesStallError):
        PdesWorld(
            4, cores_per_node=1, workers=2, window_timeout=1.0
        ).run(rank_main)
    assert segments() == before


def test_keyboard_interrupt_leaves_no_segment():
    engine = PdesWorld(4, cores_per_node=2, workers=2)
    orig_recv = PdesWorld._recv
    calls = {"n": 0}

    def interrupted_recv(self, conns, procs, expect, round_no):
        calls["n"] += 1
        if calls["n"] == 2:  # past spawn, mid-protocol
            raise KeyboardInterrupt
        return orig_recv(self, conns, procs, expect, round_no)

    engine._recv = interrupted_recv.__get__(engine)
    before = segments()
    with pytest.raises(KeyboardInterrupt):
        engine.run(ping_all)
    assert segments() == before
    assert engine._rings is None  # torn down, not merely unlinked


def test_interpreter_exit_is_quiet_after_runs(tmp_path):
    # resource_tracker leak warnings surface at interpreter shutdown;
    # run a full engine lifecycle (normal + crashed) in a child python
    # and require a silent stderr.
    script = tmp_path / "driver.py"
    script.write_text(
        "import os\n"
        "from repro.pdes import PdesError, PdesWorld\n"
        "def ok(ctx):\n"
        "    return ctx.rank\n"
        "    yield\n"
        "def crash(ctx):\n"
        "    if ctx.rank == 3:\n"
        "        os._exit(13)\n"
        "    return ctx.rank\n"
        "    yield\n"
        "PdesWorld(4, cores_per_node=1, workers=2).run(ok)\n"
        "try:\n"
        "    PdesWorld(4, cores_per_node=1, workers=2).run(crash)\n"
        "except PdesError:\n"
        "    pass\n"
        "print('done')\n"
    )
    env = dict(os.environ, PYTHONPATH=str(Path(__file__).parents[2] / "src"))
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "done" in proc.stdout
    assert "leaked" not in proc.stderr
    assert "resource_tracker" not in proc.stderr
    assert segments() == []
