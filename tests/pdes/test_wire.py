"""The pickle-free wire codec round-trips export batches exactly.

Every payload shape the mailbox can put on a packet -- columnar runs
(int, float and object payload columns), mixed coalescing-entry lists,
scalar objects, bytearrays -- must survive ``encode_batch`` ->
``decode_batch`` with exact types and values, because the decoded
packets re-enter the serial kernel and any drift breaks bit-identity.
The corruption checks at the bottom prove a mispaired or truncated
batch fails loudly instead of delivering wrong traffic.
"""

import numpy as np
import pytest

from repro.core.coalescing import BatchEntry, BcastEntry, P2PColumns, P2PEntry
from repro.mpi.envelope import Packet
from repro.pdes import WireError, decode_batch, encode_batch


def roundtrip(exports):
    out = bytearray()
    encode_batch(exports, out)
    return decode_batch(bytes(out))


def cols_packet(payloads, lins=None, src=1, dst=2, t=3.5):
    payloads = np.array(payloads, dtype=object)
    n = len(payloads)
    cols = P2PColumns(
        dests=np.arange(n, dtype=np.int64),
        payloads=payloads,
        nbytes=np.full(n, 8, dtype=np.int64),
        lins=None if lins is None else np.asarray(lins, dtype=np.int64),
    )
    pkt = Packet(
        src=src, dst=dst, ctx=0, kind=("ygm", 1, "app"), tag=0,
        payload=[cols], nbytes=cols.wire_bytes,
    )
    return (t, src, dst, pkt.nbytes, pkt)


def assert_cols_equal(a: P2PColumns, b: P2PColumns):
    np.testing.assert_array_equal(a.dests, b.dests)
    np.testing.assert_array_equal(a.nbytes, b.nbytes)
    if a.lins is None:
        assert b.lins is None
    else:
        np.testing.assert_array_equal(a.lins, b.lins)
    assert a.count == b.count
    assert a.wire_bytes == b.wire_bytes
    assert list(a.payloads) == list(b.payloads)
    # Exact element types: bool is an int subclass and np scalars
    # compare equal to Python ints, so equality alone is not enough.
    assert [type(x) for x in a.payloads] == [type(x) for x in b.payloads]


def test_empty_batch():
    assert roundtrip([]) == []


def test_int_column_fast_path_roundtrips_exactly():
    exp = cols_packet([1, -2, 3 * 10**17, 0])
    ((t, src, dst, nbytes, pkt),) = roundtrip([exp])
    assert (t, src, dst, nbytes) == exp[:4]
    assert (pkt.src, pkt.dst, pkt.ctx, pkt.kind, pkt.tag, pkt.nbytes) == (
        exp[4].src, exp[4].dst, exp[4].ctx, exp[4].kind, exp[4].tag,
        exp[4].nbytes,
    )
    (back,) = pkt.payload
    assert_cols_equal(exp[4].payload[0], back)
    assert back.dests.dtype == np.int64 and back.nbytes.dtype == np.int64


def test_float_column_roundtrips_exactly():
    exp = cols_packet([1.5, -0.0, float("inf"), 2.0**-1074])
    ((*_, pkt),) = roundtrip([exp])
    assert_cols_equal(exp[4].payload[0], pkt.payload[0])


def test_lins_column_roundtrips():
    exp = cols_packet([5, 6], lins=[100, 200])
    ((*_, pkt),) = roundtrip([exp])
    assert_cols_equal(exp[4].payload[0], pkt.payload[0])


@pytest.mark.parametrize(
    "payloads",
    [
        [True, False, True],           # bool: int subclass, must survive
        [1, 2.5, 3],                   # mixed int/float
        [np.int64(1), np.int64(2)],    # numpy scalars compare == python
        [1, None, ("x", 3)],           # arbitrary objects
        [2**70, 1],                    # overflows int64
    ],
    ids=["bools", "mixed", "np-scalars", "objects", "bigint"],
)
def test_non_i64_payloads_take_object_fallback_and_keep_exact_types(payloads):
    exp = cols_packet(payloads)
    ((*_, pkt),) = roundtrip([exp])
    assert_cols_equal(exp[4].payload[0], pkt.payload[0])


def test_generic_form_handles_odd_dest_dtype():
    cols = P2PColumns(
        dests=np.array([1, 2], dtype=np.int32),  # not the fast-path i64
        payloads=np.array([10, 20], dtype=object),
        nbytes=np.array([8, 8], dtype=np.int64),
    )
    pkt = Packet(src=0, dst=1, ctx=0, kind="k", tag=0,
                 payload=[cols], nbytes=cols.wire_bytes)
    ((*_, back),) = roundtrip([(0.5, 0, 1, pkt.nbytes, pkt)])
    np.testing.assert_array_equal(back.payload[0].dests, cols.dests)
    assert list(back.payload[0].payloads) == [10, 20]


def test_decoded_column_slices_are_independently_mutable():
    a, b = cols_packet([1, 2], t=1.0), cols_packet([3, 4], t=2.0)
    (_, _, _, _, pa), (_, _, _, _, pb) = roundtrip([a, b])
    ca, cb = pa.payload[0], pb.payload[0]
    snapshot = cb.dests.copy()
    ca.dests[:] = -1  # disjoint slices of one stream: no cross-talk
    np.testing.assert_array_equal(cb.dests, snapshot)
    assert ca.dests.flags.writeable and cb.dests.flags.writeable


def test_mixed_entry_list_roundtrips():
    dtype = np.dtype([("u", np.int64), ("v", np.int64)])
    entries = [
        P2PEntry(dest=5, payload=("x", 3), nbytes=17, lin=9),
        BcastEntry(origin=2, payload=b"abc", nbytes=3),
        BatchEntry(
            np.array([6, 7], dtype=np.int64),
            np.array([(1, 2), (3, 4)], dtype=dtype),
        ),
        P2PColumns(
            dests=np.array([1], dtype=np.int64),
            payloads=np.array([42], dtype=object),
            nbytes=np.array([8], dtype=np.int64),
        ),
    ]
    pkt = Packet(src=0, dst=1, ctx=3, kind="k", tag=7,
                 payload=entries, nbytes=99)
    ((*_, back),) = roundtrip([(1.0, 0, 1, 99, pkt)])
    p2p, bcast, batch, cols = back.payload
    assert (p2p.dest, p2p.payload, p2p.nbytes, p2p.lin) == (5, ("x", 3), 17, 9)
    assert (bcast.origin, bcast.payload, bcast.nbytes) == (2, b"abc", 3)
    np.testing.assert_array_equal(batch.batch, entries[2].batch)
    assert batch.batch.dtype == dtype
    assert_cols_equal(entries[3], cols)


@pytest.mark.parametrize(
    "payload",
    [None, 42, ("tuple", [1, 2]), b"bytes", bytearray(b"mutable")],
    ids=["none", "int", "tuple", "bytes", "bytearray"],
)
def test_scalar_payloads_roundtrip_with_exact_type(payload):
    pkt = Packet(src=0, dst=1, ctx=0, kind="k", tag=0,
                 payload=payload, nbytes=4)
    ((*_, back),) = roundtrip([(1.0, 0, 1, 4, pkt)])
    assert back.payload == payload
    assert type(back.payload) is type(payload)


def test_envelope_metadata_and_lineage_survive():
    pkt = Packet(src=3, dst=4, ctx=2, kind=("ygm", 9, "term"), tag=5,
                 payload=None, nbytes=0, lin=12345)
    ((t, src, dst, nbytes, back),) = roundtrip([(7.25, 3, 4, 0, pkt)])
    assert back == pkt
    assert (back.ctx, back.kind, back.tag, back.lin) == (
        2, ("ygm", 9, "term"), 5, 12345,
    )


def test_meta_dictionary_shares_repeated_headers():
    # 100 packets sharing one (ctx, kind, tag) spend one uvarint each on
    # the header; the same traffic with all-distinct kinds cannot share
    # and must encode much larger.  (The payload/column bytes are equal
    # between the two, so the delta is pure meta encoding.)
    def batch(kind_of):
        pkts = [
            (float(i), 0, 1, 4,
             Packet(src=0, dst=1, ctx=0, kind=kind_of(i), tag=0,
                    payload=i, nbytes=4))
            for i in range(100)
        ]
        out = bytearray()
        encode_batch(pkts, out)
        return out

    shared = batch(lambda i: ("ygm", 1, "app"))
    distinct = batch(lambda i: ("ygm", i, "app"))
    assert len(distinct) - len(shared) > 100 * 5
    back = decode_batch(bytes(shared))
    assert [b[4].payload for b in back] == list(range(100))
    assert all(b[4].kind == ("ygm", 1, "app") for b in back)


def test_divergent_envelope_takes_the_seven_tuple_fallback():
    # A hand-built export whose packet fields disagree with its batch
    # row: the packet's own envelope must win on decode.
    pkt = Packet(src=9, dst=8, ctx=1, kind="k", tag=2, payload=None, nbytes=7)
    ((t, src, dst, nbytes, back),) = roundtrip([(1.0, 0, 1, 4, pkt)])
    assert (t, src, dst, nbytes) == (1.0, 0, 1, 4)  # the routing row
    assert (back.src, back.dst, back.nbytes) == (9, 8, 7)  # the packet


def test_unpackable_payload_raises_wire_error_naming_the_escape_hatch():
    class Opaque:
        pass

    pkt = Packet(src=0, dst=1, ctx=0, kind="k", tag=0,
                 payload=Opaque(), nbytes=4)
    with pytest.raises(WireError, match="PDES_TRANSPORT=pipe"):
        encode_batch([(1.0, 0, 1, 4, pkt)], bytearray())


def test_mispaired_side_stream_is_detected():
    # Flip the lins-present flag of the only record: the decoder then
    # leaves the lins run unconsumed and must refuse the batch rather
    # than hand back silently-shifted columns.
    out = bytearray()
    encode_batch([cols_packet([1, 2, 3], lins=[7, 8, 9])], out)
    assert out[-2] == 1  # ... lflag, mode=COL_INT64 is the final byte
    out[-2] = 0
    with pytest.raises(WireError, match="not fully consumed"):
        decode_batch(bytes(out))


def test_truncated_batch_fails_loudly():
    out = bytearray()
    encode_batch([cols_packet([1, 2, 3])], out)
    with pytest.raises(Exception):  # serde/Wire/ValueError, never silence
        decode_batch(bytes(out[: len(out) // 2]))
