"""`min_wire_latency` is a true lower bound (satellite: lookahead).

The parallel engine's safety rests on one inequality: no remote packet,
of any size, can be observed by another node earlier than
``t_wire + net.min_wire_latency``.  If the bound ever exceeded an
actual ``remote_delay``, a window could process an event that an
in-flight import should have preceded -- silent causality violation.
These property tests hammer the inequality under randomized model
parameters, across the eager/rendezvous protocol boundary, and after
in-place mutation of a (frozen) model -- the memo-staleness bug class.
"""

import random

import pytest

from repro.machine.netmodel import NetworkModel


def random_model(rng: random.Random) -> NetworkModel:
    return NetworkModel(
        latency=rng.uniform(1e-8, 1e-5),
        nic_gap=rng.uniform(1e-8, 1e-5),
        eager_rate=rng.uniform(1e8, 2e10),
        rendezvous_rate=rng.uniform(1e8, 4e10),
        eager_threshold=rng.choice([1, 7, 256, 4096, 16384, 1 << 20]),
        handshake_latency=rng.uniform(0.0, 1e-5),
        send_overhead=rng.uniform(0.0, 1e-6),
        recv_overhead=rng.uniform(0.0, 1e-6),
    )


def probe_sizes(net: NetworkModel):
    """Sizes straddling every protocol decision point."""
    t = net.eager_threshold
    return sorted(
        {1, 8, 64, t - 1, t, t + 1, 4 * t, 1 << 22} - {0, -1}
        | {s for s in (t - 2, 2 * t) if s > 0}
    )


@pytest.mark.parametrize("seed", range(50))
def test_lower_bound_holds_under_randomized_parameters(seed):
    rng = random.Random(seed)
    net = random_model(rng)
    bound = net.min_wire_latency
    assert bound >= 0.0
    for nbytes in probe_sizes(net):
        assert bound <= net.remote_delay(nbytes), (
            f"min_wire_latency {bound!r} exceeds remote_delay({nbytes}) = "
            f"{net.remote_delay(nbytes)!r} for {net!r}"
        )
        # The memoised triple the transport actually charges agrees.
        assert bound <= net.packet_costs(nbytes)[1]


def test_bound_is_tight():
    # Not just any lower bound: some packet size achieves it exactly.
    net = NetworkModel()
    sizes = probe_sizes(net)
    assert min(net.remote_delay(n) for n in sizes) == net.min_wire_latency


@pytest.mark.parametrize("seed", range(20))
def test_lower_bound_tracks_in_place_mutation(seed):
    # The dataclass is frozen but ablation helpers/tests mutate via
    # object.__setattr__; packet_costs memoisation once went stale that
    # way (PR 6).  min_wire_latency is deliberately unmemoised, so it
    # must follow the mutated parameters immediately -- and keep
    # lower-bounding the (cache-invalidating) packet_costs.
    rng = random.Random(1000 + seed)
    net = random_model(rng)
    for nbytes in probe_sizes(net):
        net.packet_costs(nbytes)  # warm the memo under the old params
    object.__setattr__(net, "latency", rng.uniform(1e-9, 1e-4))
    object.__setattr__(net, "handshake_latency", rng.uniform(0.0, 1e-4))
    object.__setattr__(net, "nic_gap", rng.uniform(1e-9, 1e-4))
    bound = net.min_wire_latency
    assert bound == min(
        net.latency,
        net.latency + 2.0 * (net.handshake_latency + net.nic_gap),
    )
    for nbytes in probe_sizes(net):
        assert bound <= net.remote_delay(nbytes)
        assert bound <= net.packet_costs(nbytes)[1]
