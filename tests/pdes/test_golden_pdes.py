"""Determinism goldens re-validated under the parallel engine.

The golden suite (tests/bench) pins the claim that a serial run is a
pure function of (seed, config).  Here the same figure scenarios are
run partitioned and their canonical stats digest -- elapsed, per-rank
finish times, aggregated and per-rank statistics, floats via repr --
must be byte-identical to the serial digest.  This is the strongest
single check in the battery: one flipped bit anywhere in the pipeline
(timestamps, delivery order, stats accounting) changes the digest.
"""

import pytest

from repro.core.context import YgmWorld
from repro.machine import small
from repro.pdes import PdesWorld

from tests.bench.test_determinism_golden import FIGURE_SCENARIOS, _stats_bytes


def _serial_digest(make_app):
    world = YgmWorld(
        small(nodes=2, cores_per_node=2),
        scheme="nlnr",
        seed=3,
        mailbox_capacity=32,
    )
    return _stats_bytes(world.run(make_app()))


@pytest.mark.parametrize("fig", sorted(FIGURE_SCENARIOS), ids=str)
def test_partitioned_golden_digest_is_byte_identical(fig):
    make_app = FIGURE_SCENARIOS[fig]
    engine = PdesWorld(
        small(nodes=2, cores_per_node=2),
        scheme="nlnr",
        seed=3,
        mailbox_capacity=32,
        workers=2,
    )
    parallel = _stats_bytes(engine.run(make_app()))
    assert parallel == _serial_digest(make_app)
    assert engine.exported_packets > 0


def test_partitioned_digest_moves_with_the_seed():
    # Non-vacuousness: the parallel digest tracks the seed exactly as
    # the serial one does.
    make_app = FIGURE_SCENARIOS["fig8"]

    def run(seed):
        engine = PdesWorld(
            small(nodes=2, cores_per_node=2),
            scheme="nlnr",
            seed=seed,
            mailbox_capacity=32,
            workers=2,
        )
        return _stats_bytes(engine.run(make_app()))

    assert run(3) != run(4)
