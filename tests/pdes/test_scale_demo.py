"""The Quartz-scale demo shape, test-sized (satellite: scale demo).

``examples/pdes_quartz_scale.py`` runs the full 1024-node / 10^7-message
halo exchange; this battery entry proves the same *shape* -- hundreds
of nodes, a million-message halo exchange, adaptive window batching --
completes partitioned with bit-identical stats, every run, in the
``pdes_slow`` tier.
"""

import pytest

from repro.core.context import YgmWorld
from repro.machine import bench_machine
from repro.pdes import PdesWorld, assert_equivalent

pytestmark = pytest.mark.pdes_slow


def test_halo_exchange_at_scale_is_bit_identical():
    import importlib.util
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "pdes_quartz_scale",
        Path(__file__).parents[2] / "examples" / "pdes_quartz_scale.py",
    )
    demo = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(demo)

    nodes, msgs_per_rank = 256, 4000  # ~1.0M messages
    machine = bench_machine(nodes, cores_per_node=1)
    rank_main = demo.make_halo(msgs_per_rank)
    serial = YgmWorld(machine, scheme="nlnr", seed=0).run(rank_main)
    engine = PdesWorld(machine, scheme="nlnr", seed=0, workers=2)
    parallel = engine.run(rank_main)
    assert_equivalent(parallel, serial)
    assert parallel.values == serial.values
    assert sum(parallel.values) == nodes * msgs_per_rank
    assert engine.exported_packets > 0
    assert engine.max_window_batch > 1  # adaptive K engaged at scale
