"""Coalesced batches survive the worker transport (satellite: serialization).

Cross-partition packets are shipped between processes as serialized
batches -- pickled over the pipe on the legacy transport, serde-encoded
through shared-memory rings on the default one.  Two layers of proof:
the batch entry types round-trip through pickle field-for-field
(including the columnar struct-of-arrays runs), and a mixed-traffic
workload (scalar p2p + reentrant echo + broadcast + fixed-width record
batches) is bit-identical to serial in both columnar and object layouts
under *both* transports -- i.e. whatever layout the mailbox chose, the
process crossing preserved it.  (The ring codec itself is exercised
in depth by test_wire.py.)
"""

import pickle

import numpy as np
import pytest

from repro.check.fuzz import quiescence_rank_main
from repro.core.coalescing import BatchEntry, BcastEntry, P2PColumns, P2PEntry
from repro.core.context import YgmWorld
from repro.pdes import PdesWorld, assert_equivalent


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_p2p_entry_roundtrips():
    e = roundtrip(P2PEntry(dest=5, payload=("x", 3), nbytes=17, lin=9))
    assert (e.kind, e.dest, e.payload, e.nbytes, e.lin) == (
        "p2p", 5, ("x", 3), 17, 9,
    )


def test_bcast_entry_roundtrips():
    e = roundtrip(BcastEntry(origin=2, payload=b"abc", nbytes=3))
    assert (e.kind, e.origin, e.payload, e.nbytes, e.lin) == (
        "bcast", 2, b"abc", 3, None,
    )


def test_batch_entry_roundtrips():
    dtype = np.dtype([("u", np.int64), ("v", np.int64)])
    batch = np.array([(1, 2), (3, 4)], dtype=dtype)
    dests = np.array([6, 7], dtype=np.int64)
    e = roundtrip(BatchEntry(dests, batch))
    assert e.kind == "batch"
    np.testing.assert_array_equal(e.dests, dests)
    np.testing.assert_array_equal(e.batch, batch)
    assert e.batch.dtype == dtype
    assert e.lins is None


def test_p2p_columns_roundtrip_preserves_all_columns_and_derived_fields():
    cols = P2PColumns(
        dests=np.array([1, 2, 3], dtype=np.int64),
        payloads=np.array([("a", 1), None, 42], dtype=object),
        nbytes=np.array([4, 1, 9], dtype=np.int64),
        lins=np.array([10, 11, 12], dtype=np.int64),
    )
    back = roundtrip(cols)
    assert back.kind == "p2p_cols"
    np.testing.assert_array_equal(back.dests, cols.dests)
    assert list(back.payloads) == list(cols.payloads)
    np.testing.assert_array_equal(back.nbytes, cols.nbytes)
    np.testing.assert_array_equal(back.lins, cols.lins)
    assert back.count == 3
    assert back.wire_bytes == cols.wire_bytes


@pytest.mark.parametrize("transport", ["shm", "pipe"])
@pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "objects"])
def test_mixed_traffic_crosses_the_transport_bit_identically(columnar, transport):
    rank_main = quiescence_rank_main()
    serial = YgmWorld(
        4, scheme="nlnr", seed=3, cores_per_node=2, columnar=columnar
    ).run(rank_main)
    engine = PdesWorld(
        4, scheme="nlnr", seed=3, cores_per_node=2, columnar=columnar,
        workers=2, transport=transport,
    )
    parallel = engine.run(rank_main)
    assert_equivalent(parallel, serial)
    # Real batches crossed the transport; the equivalence was not vacuous.
    assert engine.exported_packets > 0
