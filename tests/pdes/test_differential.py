"""The serial-vs-parallel conformance battery.

Every oracle application under every routing scheme, partitioned 1, 2,
4 and 8 ways across worker processes, must reproduce the serial run
bit for bit: gathered application output, per-rank finish times,
elapsed, transport counters and statistics (``idle_time`` within a few
ulps -- see ``repro.pdes.conformance`` for the one measured carve-out).

The fast subset runs in the default test pass; the full cross-product
is marked ``pdes_slow`` (``pytest -m pdes_slow tests/pdes``).
"""

import pytest

from repro.check.fuzz import results_equal
from repro.check.oracle import ORACLE_APPS, _build_case
from repro.core.context import YgmWorld
from repro.machine import bench_machine
from repro.pdes import PdesWorld, assert_equivalent

#: The battery machine: 8 nodes x 2 cores = 16 ranks, so the partition
#: sweep covers 1 (degenerate serial path), 2, 4 and 8 workers.
NODES, CORES = 8, 2
SCHEMES = (
    "noroute", "node_local", "node_remote", "nlnr", "node_aware", "adaptive"
)
WORKER_COUNTS = (1, 2, 4, 8)
SEED = 5

#: Always-run subset: every scheme at 2 workers on one app, every app
#: at 2 workers on one scheme, plus higher partition counts -- chosen
#: to include the known idle-time-ulp configuration (sssp/node_local).
FAST = {
    *(("degree_count", s, 2) for s in SCHEMES),
    *((a, "nlnr", 2) for a in ORACLE_APPS),
    ("sssp", "node_local", 2),
    ("kmer_count", "nlnr", 4),
    ("bfs", "nlnr", 8),
}

_serial_cache = {}
_case_cache = {}


def _case(app):
    if app not in _case_cache:
        _case_cache[app] = _build_case(app, "small", NODES * CORES, seed=SEED)
    return _case_cache[app]


def _serial(app, scheme):
    key = (app, scheme)
    if key not in _serial_cache:
        machine = bench_machine(nodes=NODES, cores_per_node=CORES)
        _serial_cache[key] = YgmWorld(machine, scheme=scheme, seed=SEED).run(
            _case(app).make()
        )
    return _serial_cache[key]


def _params():
    for app in ORACLE_APPS:
        for scheme in SCHEMES:
            for workers in WORKER_COUNTS:
                marks = () if (app, scheme, workers) in FAST else (
                    pytest.mark.pdes_slow,
                )
                yield pytest.param(
                    app, scheme, workers,
                    id=f"{app}-{scheme}-w{workers}",
                    marks=marks,
                )


@pytest.mark.parametrize("app,scheme,workers", list(_params()))
def test_parallel_run_is_bit_identical_to_serial(app, scheme, workers):
    case = _case(app)
    serial = _serial(app, scheme)
    machine = bench_machine(nodes=NODES, cores_per_node=CORES)
    engine = PdesWorld(machine, scheme=scheme, seed=SEED, workers=workers)
    parallel = engine.run(case.make())
    assert_equivalent(
        parallel,
        serial,
        values_equal=lambda a, b: results_equal(case.gather(a), case.gather(b)),
    )
    if workers > 1:
        # The run actually crossed partitions (the comparison is not
        # vacuously serial).
        assert engine.exported_packets > 0
        assert engine.rounds > 1


def test_raw_delivery_order_matches_serial_when_no_wire_tie_crosses_partitions():
    """Callback-level delivery order -- not just aggregates -- is serial.

    At 4 nodes this workload has no exact-same-float-instant wire
    collisions across partitions, so the per-rank receive logs must
    match the serial run *in order*, element for element.  (Across such
    collisions only the colliding instant's order is canonicalised; see
    test below.)
    """

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=lambda m: got.append(m))
        n = ctx.nranks
        for i in range(40):
            dst = (ctx.rank * 7 + i * 3) % n
            yield from mb.send(dst, (ctx.rank, i))
        yield from mb.wait_empty()
        return got

    serial = YgmWorld(4, scheme="nlnr", seed=0, cores_per_node=2).run(rank_main)
    for workers in (2, 4):
        parallel = PdesWorld(
            4, scheme="nlnr", seed=0, cores_per_node=2, workers=workers
        ).run(rank_main)
        assert_equivalent(parallel, serial)


def test_same_instant_cross_partition_ties_preserve_multisets_and_stats():
    """The documented residual: when two wire events on different
    partitions collide at the exact same float instant, their relative
    delivery order is canonicalised rather than serial's (unknowable)
    heap artifact -- but the delivered multiset per rank, every
    timestamp, and all statistics still match."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=lambda m: got.append(m))
        n = ctx.nranks
        for i in range(40):
            dst = (ctx.rank * 7 + i * 3) % n
            yield from mb.send(dst, (ctx.rank, i))
        yield from mb.wait_empty()
        return got

    serial = YgmWorld(8, scheme="noroute", seed=0, cores_per_node=2).run(rank_main)
    parallel = PdesWorld(
        8, scheme="noroute", seed=0, cores_per_node=2, workers=2
    ).run(rank_main)
    assert_equivalent(
        parallel,
        serial,
        values_equal=lambda a, b: all(
            sorted(x) == sorted(y) for x, y in zip(a, b)
        ),
    )


@pytest.mark.parametrize("scheme", ("nlnr", "node_aware", "adaptive"))
def test_combining_parallel_bit_identical_to_serial(scheme):
    """In-network combining under partitioning: merged windows depend
    only on (seed, config), never on which process simulates a node, so
    the combined run must stay bit-identical across partitions too."""
    case = _build_case(
        "degree_count", "small", NODES * CORES, seed=SEED, combining=True
    )
    machine = bench_machine(nodes=NODES, cores_per_node=CORES)
    serial = YgmWorld(machine, scheme=scheme, seed=SEED).run(case.make())
    assert serial.mailbox_stats.entries_combined > 0
    engine = PdesWorld(machine, scheme=scheme, seed=SEED, workers=2)
    parallel = engine.run(case.make())
    assert_equivalent(
        parallel,
        serial,
        values_equal=lambda a, b: results_equal(case.gather(a), case.gather(b)),
    )
    assert engine.exported_packets > 0
