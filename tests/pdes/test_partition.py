"""NodePartition: the contiguous node->partition mapping."""

import pytest

from repro.pdes import NodePartition


def test_even_split():
    p = NodePartition(8, 2, 4)
    assert [p.node_range(i) for i in range(4)] == [(0, 2), (2, 4), (4, 6), (6, 8)]
    assert list(p.ranks_of(1)) == [4, 5, 6, 7]


def test_uneven_split_first_blocks_get_extra_node():
    # numpy.array_split semantics: 7 nodes over 3 parts -> 3, 2, 2.
    p = NodePartition(7, 4, 3)
    assert [p.node_range(i) for i in range(3)] == [(0, 3), (3, 5), (5, 7)]


@pytest.mark.parametrize("nodes,cores,nparts", [(8, 2, 1), (8, 2, 3), (5, 3, 5), (16, 8, 7)])
def test_owner_maps_are_total_and_consistent(nodes, cores, nparts):
    p = NodePartition(nodes, cores, nparts)
    # Every node owned exactly once, by contiguous blocks.
    owners = [p.owner_of_node(n) for n in range(nodes)]
    assert owners == sorted(owners)
    assert set(owners) == set(range(nparts))
    # Rank side agrees with node side and covers all ranks exactly once.
    seen = []
    for part in range(nparts):
        for r in p.ranks_of(part):
            assert p.owner_of_rank(r) == part
            assert p.owner_of_node(r // cores) == part
            seen.append(r)
    assert sorted(seen) == list(range(nodes * cores))


def test_single_partition_owns_everything():
    p = NodePartition(4, 2, 1)
    assert list(p.ranks_of(0)) == list(range(8))


def test_rejects_bad_partition_counts():
    with pytest.raises(ValueError):
        NodePartition(4, 2, 0)
    with pytest.raises(ValueError):
        NodePartition(4, 2, 5)  # more partitions than nodes


def test_repr_names_the_blocks():
    assert "nodes[0:2]" in repr(NodePartition(4, 2, 2))
