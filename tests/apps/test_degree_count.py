"""Degree counting (Algorithm 1) vs direct bincount, across schemes."""

import numpy as np
import pytest

from repro import YgmWorld
from repro.apps import (
    gather_global_degrees,
    make_degree_counting,
    make_degree_counting_scalar,
)
from repro.core.routing import PAPER_SCHEMES
from repro.graph import er_stream, rmat_stream
from repro.machine import small


def reference_degrees(stream, nranks):
    """Direct recount of the whole distributed edge stream."""
    deg = np.zeros(stream.num_vertices, dtype=np.int64)
    for rank in range(nranks):
        u, v = stream.all_edges(rank)
        deg += np.bincount(u, minlength=len(deg))
        deg += np.bincount(v, minlength=len(deg))
    return deg


@pytest.mark.parametrize("scheme", PAPER_SCHEMES)
def test_degree_counting_matches_reference(scheme):
    nodes, cores = 2, 2
    stream = er_stream(num_vertices=64, edges_per_rank=500, seed=3)
    world = YgmWorld(small(nodes=nodes, cores_per_node=cores), scheme=scheme)
    res = world.run(make_degree_counting(stream, batch_size=128))
    got = gather_global_degrees(res.values, 64, nodes * cores)
    assert np.array_equal(got, reference_degrees(stream, nodes * cores))
    # Every edge produced exactly two application messages.
    total_edges = 500 * nodes * cores
    assert res.mailbox_stats.app_messages_sent == 2 * total_edges


def test_degree_counting_rmat():
    stream = rmat_stream(scale=8, edges_per_rank=400, seed=1)
    world = YgmWorld(small(nodes=3, cores_per_node=2), scheme="nlnr")
    res = world.run(make_degree_counting(stream, batch_size=100))
    got = gather_global_degrees(res.values, 256, 6)
    assert np.array_equal(got, reference_degrees(stream, 6))


def test_scalar_transcription_matches_vectorized():
    stream = er_stream(num_vertices=32, edges_per_rank=60, seed=9)
    world_v = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_remote")
    world_s = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_remote")
    res_v = world_v.run(make_degree_counting(stream, batch_size=32))
    res_s = world_s.run(make_degree_counting_scalar(stream, batch_size=32))
    deg_v = gather_global_degrees(res_v.values, 32, 4)
    deg_s = gather_global_degrees(res_s.values, 32, 4)
    assert np.array_equal(deg_v, deg_s)


def test_small_capacity_still_correct():
    stream = er_stream(num_vertices=50, edges_per_rank=300, seed=2)
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr")
    res = world.run(make_degree_counting(stream, batch_size=64, capacity=16))
    got = gather_global_degrees(res.values, 50, 4)
    assert np.array_equal(got, reference_degrees(stream, 4))
    assert res.mailbox_stats.flushes > 4


def test_single_rank_world():
    stream = er_stream(num_vertices=20, edges_per_rank=100, seed=4)
    world = YgmWorld(small(nodes=1, cores_per_node=1), scheme="noroute")
    res = world.run(make_degree_counting(stream))
    got = gather_global_degrees(res.values, 20, 1)
    assert np.array_equal(got, reference_degrees(stream, 1))
