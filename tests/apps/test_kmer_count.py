"""Distributed k-mer counting vs a direct recount."""

import numpy as np
import pytest

from repro import YgmWorld
from repro.apps.kmer_count import (
    kmer_owner,
    make_kmer_counting,
    merge_counts,
    random_reads,
    shear_kmers,
    unpack_kmer,
)
from repro.machine import small


# ------------------------------------------------------------ primitives
def test_shear_kmers_simple():
    # Read ACGT with k=2 -> AC, CG, GT -> packed 0b0001, 0b0110, 0b1011.
    reads = np.array([[0, 1, 2, 3]], dtype=np.uint8)
    kmers = shear_kmers(reads, 2)
    assert list(kmers) == [0b0001, 0b0110, 0b1011]
    assert [unpack_kmer(int(km), 2) for km in kmers] == ["AC", "CG", "GT"]


def test_shear_kmers_counts():
    reads = random_reads(10, 50, np.random.default_rng(0))
    kmers = shear_kmers(reads, 21)
    assert len(kmers) == 10 * (50 - 21 + 1)


def test_shear_k_bounds():
    reads = random_reads(2, 10, np.random.default_rng(0))
    with pytest.raises(ValueError):
        shear_kmers(reads, 0)
    with pytest.raises(ValueError):
        shear_kmers(reads, 33)
    assert len(shear_kmers(random_reads(2, 3, np.random.default_rng(0)), 5)) == 0


def test_unpack_roundtrip():
    rng = np.random.default_rng(1)
    reads = random_reads(1, 16, rng)
    km = shear_kmers(reads, 16)[0]
    text = unpack_kmer(int(km), 16)
    codes = np.array([["ACGT".index(c) for c in text]], dtype=np.uint8)
    assert shear_kmers(codes, 16)[0] == km


def test_owner_deterministic_and_in_range():
    kmers = shear_kmers(random_reads(5, 40, np.random.default_rng(2)), 15)
    o1 = kmer_owner(kmers, 7)
    o2 = kmer_owner(kmers, 7)
    assert np.array_equal(o1, o2)
    assert o1.min() >= 0 and o1.max() < 7


def test_skewed_reads_have_hot_kmers():
    rng = np.random.default_rng(3)
    kmers = shear_kmers(random_reads(200, 60, rng, skew=0.9), 8)
    _, counts = np.unique(kmers, return_counts=True)
    assert counts.max() > 20 * np.median(counts)


# ------------------------------------------------------------ end to end
def reference_counts(nranks, n_reads, read_len, k, seed, skew=0.0):
    """Recount all k-mers directly using each rank's RNG stream."""
    from repro.mpi.world import World  # for the seed derivation
    merged = {}
    for rank in range(nranks):
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(rank,))
        )
        kmers = shear_kmers(random_reads(n_reads, read_len, rng, skew=skew), k)
        uniq, cnt = np.unique(kmers, return_counts=True)
        for km, c in zip(uniq.tolist(), cnt.tolist()):
            merged[km] = merged.get(km, 0) + c
    return merged


@pytest.mark.parametrize("scheme", ["noroute", "node_remote", "nlnr"])
def test_kmer_counting_matches_recount(scheme):
    nranks, n_reads, read_len, k, seed = 4, 20, 40, 9, 11
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme=scheme, seed=seed)
    res = world.run(
        make_kmer_counting(n_reads, read_len, k, batch_size=256)
    )
    got = merge_counts(res.values)
    assert got == reference_counts(nranks, n_reads, read_len, k, seed)


def test_frequent_kmers_extracted():
    nranks, seed = 4, 13
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr", seed=seed)
    res = world.run(
        make_kmer_counting(
            50, 30, 6, frequent_threshold=3, batch_size=512, skew=0.8
        )
    )
    ref = reference_counts(nranks, 50, 30, 6, seed, skew=0.8)
    expected_frequent = sorted(km for km, c in ref.items() if c > 3)
    got_frequent = sorted(km for _, freq in res.values for km in freq)
    assert got_frequent == expected_frequent
    assert len(got_frequent) > 0


def test_ownership_disjoint():
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_local", seed=0)
    res = world.run(make_kmer_counting(10, 25, 7))
    merge_counts(res.values)  # raises on overlap
    # Every counted k-mer is owned by the rank that counted it.
    for rank, (counts, _) in enumerate(res.values):
        if counts:
            owners = kmer_owner(np.array(list(counts), dtype=np.uint64), 4)
            assert (owners == rank).all()
