"""YGM SpMV (Algorithm 2) vs scipy, with and without delegates."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import YgmWorld
from repro.core.routing import PAPER_SCHEMES
from repro.graph import DelegateSet, build_delegates, rmat_edges
from repro.linalg import gather_global_y, make_spmv, partition_spmv_problem
from repro.machine import small


def random_problem(n, nnz, seed, skewed=False):
    rng = np.random.default_rng(seed)
    if skewed:
        scale = int(np.log2(n))
        rows, cols = rmat_edges(scale, nnz, rng)
    else:
        rows = rng.integers(0, n, nnz)
        cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    x = rng.standard_normal(n)
    return rows, cols, vals, x


def run_spmv(nodes, cores, scheme, rows, cols, vals, x, n, delegates=None, **kw):
    nranks = nodes * cores
    problems = [
        partition_spmv_problem(r, nranks, n, rows, cols, vals, x, delegates)
        for r in range(nranks)
    ]
    world = YgmWorld(small(nodes=nodes, cores_per_node=cores), scheme=scheme)
    res = world.run(make_spmv(problems, **kw))
    y = gather_global_y(res.values, n, nranks)
    return y, res


def reference_y(n, rows, cols, vals, x):
    a = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    return a @ x


@pytest.mark.parametrize("scheme", PAPER_SCHEMES)
def test_spmv_no_delegates_matches_scipy(scheme):
    n, nnz = 60, 400
    rows, cols, vals, x = random_problem(n, nnz, seed=0)
    y, res = run_spmv(2, 2, scheme, rows, cols, vals, x, n)
    assert np.allclose(y, reference_y(n, rows, cols, vals, x))
    # Without delegates every cross-rank nonzero is one message.
    assert res.mailbox_stats.app_messages_sent > 0


def test_spmv_with_delegates_matches_scipy():
    n, nnz = 64, 2000
    rows, cols, vals, x = random_problem(n, nnz, seed=1, skewed=True)
    delegates = build_delegates(rows, cols, n, threshold=80)
    assert delegates.count > 0
    y, res = run_spmv(2, 2, "nlnr", rows, cols, vals, x, n, delegates=delegates)
    assert np.allclose(y, reference_y(n, rows, cols, vals, x))


def test_delegates_reduce_messages():
    """Colocating delegate edges must strictly cut message volume on a
    skewed matrix (the Fig 8a vs 8c distinction)."""
    n, nnz = 64, 4000
    rows, cols, vals, x = random_problem(n, nnz, seed=2, skewed=True)
    delegates = build_delegates(rows, cols, n, threshold=50)
    assert delegates.count > 0
    y1, res_plain = run_spmv(2, 2, "nlnr", rows, cols, vals, x, n)
    y2, res_del = run_spmv(2, 2, "nlnr", rows, cols, vals, x, n, delegates=delegates)
    assert np.allclose(y1, y2)
    assert (
        res_del.mailbox_stats.app_messages_sent
        < res_plain.mailbox_stats.app_messages_sent
    )


def test_spmv_all_delegated_sends_nothing():
    """If every vertex is a delegate, SpMV is fully local + allreduce."""
    n, nnz = 16, 100
    rows, cols, vals, x = random_problem(n, nnz, seed=3)
    delegates = DelegateSet(np.arange(n))
    y, res = run_spmv(2, 2, "node_remote", rows, cols, vals, x, n, delegates=delegates)
    assert np.allclose(y, reference_y(n, rows, cols, vals, x))
    assert res.mailbox_stats.app_messages_sent == 0


def test_spmv_empty_matrix():
    n = 8
    z = np.empty(0, dtype=np.int64)
    zv = np.empty(0, dtype=np.float64)
    x = np.ones(n)
    y, _ = run_spmv(2, 2, "nlnr", z, z, zv, x, n)
    assert np.allclose(y, 0.0)


def test_spmv_duplicate_entries_summed():
    n = 8
    rows = np.array([3, 3, 3])
    cols = np.array([5, 5, 5])
    vals = np.array([1.0, 2.0, 4.0])
    x = np.ones(n)
    y, _ = run_spmv(2, 2, "node_local", rows, cols, vals, x, n)
    assert y[3] == pytest.approx(7.0)


def test_spmv_messages_counted():
    n, nnz = 32, 256
    rows, cols, vals, x = random_problem(n, nnz, seed=4)
    y, res = run_spmv(2, 2, "noroute", rows, cols, vals, x, n)
    total_msgs = sum(r.messages_sent for r in res.values)
    total_local = sum(r.local_accumulations for r in res.values)
    assert total_msgs + total_local == nnz
    assert res.mailbox_stats.app_messages_sent == total_msgs
