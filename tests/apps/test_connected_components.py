"""Connected components vs networkx, with and without delegates."""

import networkx as nx
import numpy as np
import pytest

from repro import YgmWorld
from repro.apps import gather_global_labels, make_connected_components
from repro.core.routing import PAPER_SCHEMES
from repro.graph import er_stream, rmat_stream
from repro.machine import small


def reference_labels(stream, nranks):
    """Min component id per vertex, via networkx."""
    g = nx.Graph()
    g.add_nodes_from(range(stream.num_vertices))
    for rank in range(nranks):
        u, v = stream.all_edges(rank)
        g.add_edges_from(zip(u.tolist(), v.tolist()))
    labels = np.arange(stream.num_vertices, dtype=np.int64)
    for comp in nx.connected_components(g):
        m = min(comp)
        for v in comp:
            labels[v] = m
    return labels


@pytest.mark.parametrize("scheme", PAPER_SCHEMES)
def test_cc_no_delegates_matches_networkx(scheme):
    nodes, cores = 2, 2
    stream = er_stream(num_vertices=64, edges_per_rank=40, seed=5)
    world = YgmWorld(small(nodes=nodes, cores_per_node=cores), scheme=scheme)
    res = world.run(make_connected_components(stream, batch_size=64))
    got = gather_global_labels(res.values, 64, 4)
    assert np.array_equal(got, reference_labels(stream, 4))
    assert res.mailbox_stats.bcasts_initiated == 0


@pytest.mark.parametrize("scheme", ["node_remote", "nlnr"])
def test_cc_with_delegates_matches_networkx(scheme):
    """Skewed RMAT graph with an aggressive threshold: many delegates."""
    nodes, cores = 2, 2
    stream = rmat_stream(scale=7, edges_per_rank=300, seed=6)
    world = YgmWorld(small(nodes=nodes, cores_per_node=cores), scheme=scheme)
    res = world.run(
        make_connected_components(stream, delegate_threshold=20.0, batch_size=128)
    )
    got = gather_global_labels(res.values, 128, 4)
    assert np.array_equal(got, reference_labels(stream, 4))
    # Delegates existed and were synchronised with asynchronous broadcasts.
    assert res.values[0].delegate_count > 0
    assert res.mailbox_stats.bcasts_initiated > 0


def test_cc_delegate_and_plain_agree():
    stream = rmat_stream(scale=6, edges_per_rank=200, seed=7)
    w1 = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr")
    w2 = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr")
    res_plain = w1.run(make_connected_components(stream))
    res_del = w2.run(make_connected_components(stream, delegate_threshold=10.0))
    l1 = gather_global_labels(res_plain.values, 64, 4)
    l2 = gather_global_labels(res_del.values, 64, 4)
    assert np.array_equal(l1, l2)


def test_cc_path_graph_takes_many_passes():
    """A long path exercises multi-pass convergence (O(diam) passes)."""
    # Build a custom stream-like object over a fixed edge list.
    from repro.graph.generators import EdgeStream

    class FixedStream(EdgeStream):
        def __init__(self, edges, n):
            object.__setattr__(self, "kind", "fixed")
            object.__setattr__(self, "num_vertices", n)
            object.__setattr__(self, "edges_per_rank", len(edges))
            object.__setattr__(self, "seed", 0)
            object.__setattr__(self, "scale", 0)
            object.__setattr__(self, "params", (0.25,) * 4)
            self._edges = edges

        def all_edges(self, rank):
            if rank == 0:
                u = np.array([e[0] for e in self._edges], dtype=np.int64)
                v = np.array([e[1] for e in self._edges], dtype=np.int64)
                return u, v
            z = np.empty(0, dtype=np.int64)
            return z, z

        def batches(self, rank, batch_size):
            yield self.all_edges(rank)

    n = 16
    stream = FixedStream([(i, i + 1) for i in range(n - 1)], n)
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_local")
    res = world.run(make_connected_components(stream, batch_size=8))
    labels = gather_global_labels(res.values, n, 4)
    assert (labels == 0).all()
    assert res.values[0].passes > 2


def test_cc_disconnected_components():
    from repro.graph.generators import EdgeStream

    class TwoTriangles(EdgeStream):
        def __init__(self):
            object.__setattr__(self, "kind", "fixed")
            object.__setattr__(self, "num_vertices", 8)
            object.__setattr__(self, "edges_per_rank", 6)
            object.__setattr__(self, "seed", 0)
            object.__setattr__(self, "scale", 0)
            object.__setattr__(self, "params", (0.25,) * 4)

        def all_edges(self, rank):
            if rank == 0:
                u = np.array([1, 2, 3, 5, 6, 7], dtype=np.int64)
                v = np.array([2, 3, 1, 6, 7, 5], dtype=np.int64)
                return u, v
            z = np.empty(0, dtype=np.int64)
            return z, z

        def batches(self, rank, batch_size):
            yield self.all_edges(rank)

    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr")
    res = world.run(make_connected_components(TwoTriangles()))
    labels = gather_global_labels(res.values, 8, 4)
    assert list(labels) == [0, 1, 1, 1, 4, 5, 5, 5]
