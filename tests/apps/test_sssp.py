"""Asynchronous SSSP vs networkx Dijkstra."""

import networkx as nx
import numpy as np
import pytest

from repro import YgmWorld
from repro.apps.sssp import edge_weights, gather_global_sssp, make_sssp
from repro.graph import er_stream, rmat_stream
from repro.machine import small


def reference_sssp(stream, nranks, source, weight_seed=0):
    g = nx.Graph()
    g.add_nodes_from(range(stream.num_vertices))
    for rank in range(nranks):
        u, v = stream.all_edges(rank)
        w = edge_weights(u, v, weight_seed)
        for a, b, ww in zip(u.tolist(), v.tolist(), w.tolist()):
            # Parallel edges: keep the lighter one (min-plus semantics).
            if g.has_edge(a, b):
                g[a][b]["weight"] = min(g[a][b]["weight"], ww)
            else:
                g.add_edge(a, b, weight=ww)
    out = np.full(stream.num_vertices, np.inf)
    for v, d in nx.single_source_dijkstra_path_length(g, source).items():
        out[v] = d
    return out


@pytest.mark.parametrize("scheme", ["noroute", "node_remote", "nlnr"])
def test_sssp_matches_dijkstra(scheme):
    stream = er_stream(num_vertices=80, edges_per_rank=80, seed=31)
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme=scheme)
    res = world.run(make_sssp(stream, source=3, batch_size=64))
    got = gather_global_sssp(res.values, 80, 4)
    ref = reference_sssp(stream, 4, 3)
    assert np.allclose(got, ref, equal_nan=False)


def test_sssp_skewed_graph():
    stream = rmat_stream(scale=7, edges_per_rank=300, seed=32)
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr")
    res = world.run(make_sssp(stream, source=0, batch_size=128))
    got = gather_global_sssp(res.values, 128, 4)
    ref = reference_sssp(stream, 4, 0)
    assert np.allclose(got, ref)


def test_sssp_unreached_are_inf():
    stream = er_stream(num_vertices=300, edges_per_rank=20, seed=33)
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_local")
    res = world.run(make_sssp(stream, source=0, batch_size=64))
    got = gather_global_sssp(res.values, 300, 4)
    ref = reference_sssp(stream, 4, 0)
    assert np.array_equal(np.isinf(got), np.isinf(ref))
    assert np.isinf(got).any()


def test_sssp_distances_at_most_hops():
    """Weights are in (0, 1], so dijkstra distance <= hop distance."""
    from repro.apps.bfs import UNREACHED, gather_global_distances, make_bfs

    stream = er_stream(num_vertices=64, edges_per_rank=100, seed=34)
    w1 = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr")
    res_s = w1.run(make_sssp(stream, source=1))
    w2 = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr")
    res_b = w2.run(make_bfs(stream, source=1))
    d_sssp = gather_global_sssp(res_s.values, 64, 4)
    d_bfs = gather_global_distances(res_b.values, 64, 4)
    reached = d_bfs != UNREACHED
    assert (d_sssp[reached] <= d_bfs[reached] + 1e-12).all()


def test_edge_weights_deterministic_and_bounded():
    u = np.arange(1000, dtype=np.int64)
    v = (u * 7 + 3) % 1000
    w1 = edge_weights(u, v, seed=5)
    w2 = edge_weights(u, v, seed=5)
    w3 = edge_weights(u, v, seed=6)
    assert np.array_equal(w1, w2)
    assert not np.array_equal(w1, w3)
    assert (w1 > 0).all() and (w1 <= 1.0 + 2**-50).all()


def test_sssp_source_validation():
    stream = er_stream(num_vertices=10, edges_per_rank=5, seed=0)
    with pytest.raises(ValueError):
        make_sssp(stream, source=11)
