"""Asynchronous BFS vs networkx hop distances."""

import networkx as nx
import numpy as np
import pytest

from repro import YgmWorld
from repro.apps.bfs import UNREACHED, gather_global_distances, make_bfs
from repro.core.routing import PAPER_SCHEMES
from repro.graph import er_stream, rmat_stream
from repro.machine import small


def reference_distances(stream, nranks, source):
    g = nx.Graph()
    g.add_nodes_from(range(stream.num_vertices))
    for rank in range(nranks):
        u, v = stream.all_edges(rank)
        g.add_edges_from(zip(u.tolist(), v.tolist()))
    out = np.full(stream.num_vertices, UNREACHED, dtype=np.int64)
    for v, d in nx.single_source_shortest_path_length(g, source).items():
        out[v] = d
    return out


@pytest.mark.parametrize("scheme", PAPER_SCHEMES)
def test_bfs_matches_networkx(scheme):
    stream = er_stream(num_vertices=96, edges_per_rank=60, seed=21)
    nranks = 4
    source = 5
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme=scheme)
    res = world.run(make_bfs(stream, source=source, batch_size=64))
    got = gather_global_distances(res.values, 96, nranks)
    assert np.array_equal(got, reference_distances(stream, nranks, source))


def test_bfs_on_skewed_graph():
    stream = rmat_stream(scale=8, edges_per_rank=400, seed=22)
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr")
    res = world.run(make_bfs(stream, source=0, batch_size=256))
    got = gather_global_distances(res.values, 256, 4)
    assert np.array_equal(got, reference_distances(stream, 4, 0))


def test_bfs_disconnected_vertices_unreached():
    stream = er_stream(num_vertices=200, edges_per_rank=20, seed=23)
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_remote")
    res = world.run(make_bfs(stream, source=0, batch_size=64))
    got = gather_global_distances(res.values, 200, 4)
    ref = reference_distances(stream, 4, 0)
    assert np.array_equal(got, ref)
    assert (got == UNREACHED).any()  # sparse graph: some unreachable


def test_bfs_source_validation():
    stream = er_stream(num_vertices=10, edges_per_rank=5, seed=0)
    with pytest.raises(ValueError):
        make_bfs(stream, source=10)
    with pytest.raises(ValueError):
        make_bfs(stream, source=-1)


def test_bfs_source_distance_zero():
    stream = er_stream(num_vertices=32, edges_per_rank=64, seed=24)
    world = YgmWorld(small(nodes=1, cores_per_node=2), scheme="noroute")
    res = world.run(make_bfs(stream, source=7))
    got = gather_global_distances(res.values, 32, 2)
    assert got[7] == 0


def test_bfs_path_graph_depth():
    """A long path: distances equal positions; exercises deep async
    wavefronts through many wait_empty-era forwardings."""
    from repro.graph.generators import EdgeStream

    class PathStream(EdgeStream):
        def __init__(self, n):
            object.__setattr__(self, "kind", "fixed")
            object.__setattr__(self, "num_vertices", n)
            object.__setattr__(self, "edges_per_rank", n - 1)
            object.__setattr__(self, "seed", 0)
            object.__setattr__(self, "scale", 0)
            object.__setattr__(self, "params", (0.25,) * 4)

        def all_edges(self, rank):
            if rank == 0:
                u = np.arange(self.num_vertices - 1, dtype=np.int64)
                return u, u + 1
            z = np.empty(0, dtype=np.int64)
            return z, z

        def batches(self, rank, batch_size):
            yield self.all_edges(rank)

    n = 40
    world = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr")
    res = world.run(make_bfs(PathStream(n), source=0))
    got = gather_global_distances(res.values, n, 4)
    assert np.array_equal(got, np.arange(n))
