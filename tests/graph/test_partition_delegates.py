"""Tests for partitioning, delegates and distributed CSC construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    BlockPartition,
    CyclicPartition,
    DelegateSet,
    build_delegates,
    build_local_csc,
    degrees_from_edges,
    find_delegates,
    global_matrix_from_edges,
    rmat_edges,
    rmat_expected_max_degree,
    scaled_delegate_threshold,
)


# ---------------------------------------------------------------- cyclic
def test_cyclic_owner_matches_paper_algorithm1():
    part = CyclicPartition(num_vertices=100, nranks=7)
    for v in range(100):
        assert part.owner(v) == v % 7
        assert part.local_id(v) == v // 7
        assert part.global_id(part.owner(v), part.local_id(v)) == v


def test_cyclic_vectorized_matches_scalar():
    part = CyclicPartition(1000, 13)
    v = np.arange(1000)
    assert np.array_equal(part.owner_vec(v), v % 13)
    assert np.array_equal(part.local_id_vec(v), v // 13)


def test_cyclic_local_counts_sum_to_n():
    part = CyclicPartition(101, 7)
    counts = [part.local_count(r) for r in range(7)]
    assert sum(counts) == 101
    assert max(counts) - min(counts) <= 1


def test_cyclic_local_vertices():
    part = CyclicPartition(20, 4)
    assert list(part.local_vertices(1)) == [1, 5, 9, 13, 17]
    assert all(part.owner(v) == 2 for v in part.local_vertices(2))


# ----------------------------------------------------------------- block
@given(st.integers(1, 500), st.integers(1, 17))
@settings(max_examples=50, deadline=None)
def test_block_partition_consistent(n, p):
    part = BlockPartition(n, p)
    sizes = [part.local_count(k) for k in range(p)]
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1
    for v in range(n):
        k = part.owner(v)
        lo, hi = part.bounds(k)
        assert lo <= v < hi


def test_block_owner_vec_matches_scalar():
    part = BlockPartition(103, 7)
    v = np.arange(103)
    assert np.array_equal(part.owner_vec(v), [part.owner(x) for x in v])


# -------------------------------------------------------------- delegates
def test_degrees_from_edges():
    u = np.array([0, 0, 1])
    v = np.array([1, 2, 2])
    deg = degrees_from_edges(u, v, 4)
    assert list(deg) == [2, 2, 2, 0]


def test_find_delegates_threshold_strict():
    deg = np.array([5, 10, 10, 11])
    assert list(find_delegates(deg, 10)) == [3]
    assert list(find_delegates(deg, 4)) == [0, 1, 2, 3]


def test_delegate_set_membership_and_slots():
    ds = DelegateSet(np.array([3, 17, 99]))
    assert ds.count == 3
    mask = ds.is_delegate_vec(np.array([0, 3, 17, 50, 99, 100]))
    assert list(mask) == [False, True, True, False, True, False]
    assert list(ds.slots_vec(np.array([3, 17, 99]))) == [0, 1, 2]


def test_delegate_set_empty():
    ds = DelegateSet(np.array([], dtype=np.int64))
    assert ds.count == 0
    assert not ds.is_delegate_vec(np.array([1, 2, 3])).any()


def test_build_delegates_finds_hubs():
    rng = np.random.default_rng(0)
    n = 2**10
    u, v = rmat_edges(10, 16 * n, rng)
    deg = degrees_from_edges(u, v, n)
    thresh = float(np.percentile(deg, 99.5))
    ds = build_delegates(u, v, n, thresh)
    assert ds.count > 0
    assert 0 in ds.slot_of  # vertex 0 is the biggest hub
    assert (deg[ds.vertices] > thresh).all()


def test_expected_max_degree_scaling():
    """Doubling the graph (scale+1, 2x edges) grows the expected max
    degree by 2(a+b) -- the quantity the paper scales thresholds with."""
    a, b = 0.57, 0.19
    d1 = rmat_expected_max_degree(20, 16 * 2**20, a, b)
    d2 = rmat_expected_max_degree(21, 16 * 2**21, a, b)
    assert d2 / d1 == pytest.approx(2 * (a + b))
    assert scaled_delegate_threshold(20, 16 * 2**20, a, b) >= 4.0


def test_split_edges_masks():
    ds = DelegateSet(np.array([1]))
    u = np.array([0, 1, 2])
    v = np.array([1, 2, 0])
    du, dv, either = ds.split_edges(u, v)
    assert list(du) == [False, True, False]
    assert list(dv) == [True, False, False]
    assert list(either) == [True, True, False]


# -------------------------------------------------------------------- csc
def test_local_csc_partitions_columns():
    n, nranks = 10, 3
    rows = np.array([0, 1, 2, 3, 4, 5])
    cols = np.array([0, 1, 2, 3, 4, 5])
    vals = np.arange(6, dtype=float)
    slices = [build_local_csc(r, nranks, n, rows, cols, vals) for r in range(nranks)]
    assert sum(s.nnz for s in slices) == 6
    # Column 4 belongs to rank 1 (4 % 3), local column index 1 (4 // 3).
    ridx, rvals = slices[1].column(1)
    assert list(ridx) == [4]
    assert list(rvals) == [4.0]


def test_local_csc_triples_roundtrip_to_global():
    rng = np.random.default_rng(1)
    n, nranks, nnz = 50, 4, 300
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.random(nnz)
    ref = global_matrix_from_edges(n, rows, cols, vals)
    acc = np.zeros((n, n))
    for r in range(nranks):
        lr, lc, lv = build_local_csc(r, nranks, n, rows, cols, vals).triples()
        np.add.at(acc, (lr, lc), lv)
    assert np.allclose(acc, ref.toarray())


def test_local_csc_duplicates_summed():
    rows = np.array([2, 2])
    cols = np.array([3, 3])
    vals = np.array([1.0, 2.0])
    local = build_local_csc(3, 4, 8, rows, cols, vals)  # 3 owns column 3
    ridx, rvals = local.column(0)
    assert list(ridx) == [2]
    assert list(rvals) == [3.0]
