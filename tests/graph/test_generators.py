"""Tests for graph generators: determinism, ranges, degree skew."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    GRAPH500_PARAMS,
    UNIFORM_PARAMS,
    er_stream,
    erdos_renyi_edges,
    permute_vertices,
    rmat_edges,
    rmat_stream,
)


def test_er_ranges_and_count():
    rng = np.random.default_rng(0)
    u, v = erdos_renyi_edges(100, 5000, rng)
    assert len(u) == len(v) == 5000
    assert u.min() >= 0 and u.max() < 100
    assert v.min() >= 0 and v.max() < 100


def test_er_roughly_uniform():
    rng = np.random.default_rng(1)
    u, v = erdos_renyi_edges(64, 64 * 2000, rng)
    deg = np.bincount(u, minlength=64)
    assert deg.min() > 0.8 * deg.mean()
    assert deg.max() < 1.2 * deg.mean()


def test_rmat_ranges():
    rng = np.random.default_rng(2)
    u, v = rmat_edges(10, 4000, rng)
    assert u.min() >= 0 and u.max() < 2**10
    assert v.min() >= 0 and v.max() < 2**10


def test_rmat_skewed_params_give_skewed_degrees():
    rng = np.random.default_rng(3)
    n = 2**12
    u, v = rmat_edges(12, 16 * n, rng, params=GRAPH500_PARAMS)
    deg = np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
    # Scale-free-ish: the max degree dwarfs the mean; many isolated vertices.
    assert deg.max() > 20 * deg.mean()
    assert (deg == 0).sum() > n // 10


def test_rmat_uniform_params_are_not_skewed():
    rng = np.random.default_rng(4)
    n = 2**12
    u, v = rmat_edges(12, 16 * n, rng, params=UNIFORM_PARAMS)
    deg = np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
    assert deg.max() < 4 * deg.mean()


def test_rmat_hub_is_vertex_zero_in_expectation():
    rng = np.random.default_rng(5)
    n = 2**10
    u, v = rmat_edges(10, 64 * n, rng, params=GRAPH500_PARAMS)
    deg = np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
    assert np.argmax(deg) == 0  # a=0.57 concentrates mass at id 0


def test_rmat_invalid_params_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        rmat_edges(4, 10, rng, params=(0.5, 0.5, 0.5, 0.5))
    with pytest.raises(ValueError):
        rmat_edges(0, 10, rng)


def test_permute_preserves_multiset_of_degrees():
    rng = np.random.default_rng(6)
    n = 256
    u, v = rmat_edges(8, 2048, rng)
    pu, pv = permute_vertices((u, v), n, np.random.default_rng(7))
    deg = np.sort(np.bincount(u, minlength=n) + np.bincount(v, minlength=n))
    pdeg = np.sort(np.bincount(pu, minlength=n) + np.bincount(pv, minlength=n))
    assert np.array_equal(deg, pdeg)


# ----------------------------------------------------------- edge streams
def test_stream_batches_cover_exact_edge_count():
    stream = er_stream(num_vertices=50, edges_per_rank=1000, seed=0)
    total = sum(len(u) for u, v in stream.batches(rank=0, batch_size=128))
    assert total == 1000


def test_stream_deterministic_per_rank():
    stream = rmat_stream(scale=8, edges_per_rank=500, seed=42)
    a = stream.all_edges(rank=3)
    b = stream.all_edges(rank=3)
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


def test_stream_differs_across_ranks():
    stream = er_stream(num_vertices=1000, edges_per_rank=500, seed=42)
    a = stream.all_edges(rank=0)
    b = stream.all_edges(rank=1)
    assert not np.array_equal(a[0], b[0])


def test_stream_batch_content_independent_of_batch_size():
    """Same total edge multiset regardless of batching granularity."""
    stream = er_stream(num_vertices=100, edges_per_rank=777, seed=5)
    one = np.sort(np.concatenate([u * 1000 + v for u, v in stream.batches(0, 777)]))
    many = np.sort(np.concatenate([u * 1000 + v for u, v in stream.batches(0, 64)]))
    assert np.array_equal(one, many)


@given(st.integers(1, 12), st.integers(1, 2000))
@settings(max_examples=20, deadline=None)
def test_rmat_property_bounds(scale, m):
    rng = np.random.default_rng(scale * 1000 + m)
    u, v = rmat_edges(scale, m, rng)
    assert len(u) == m
    assert ((u >= 0) & (u < 2**scale)).all()
    assert ((v >= 0) & (v < 2**scale)).all()
