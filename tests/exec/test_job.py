"""Job spec: dotted-path resolution, JSON validation, cache keys."""

import pytest

import repro.exec.job as job_mod
from repro.exec import Job, JobError, canonical_json, resolve

CELLS = "tests.exec.cells"


# ------------------------------------------------------------- resolution
def test_resolve_and_run_inline():
    assert resolve(f"{CELLS}:adder")(2, 3) == 5
    assert Job(fn=f"{CELLS}:adder", kwargs={"a": 2, "b": 3}).run_inline() == 5


@pytest.mark.parametrize("bad", ["tests.exec.cells", "tests.exec.cells:", ":adder"])
def test_resolve_rejects_malformed_paths(bad):
    with pytest.raises(ValueError, match="module:function"):
        resolve(bad)


def test_resolve_rejects_missing_or_uncallable_attr():
    with pytest.raises(ValueError, match="does not resolve"):
        resolve(f"{CELLS}:no_such_cell")
    with pytest.raises(ValueError, match="does not resolve"):
        resolve("os:sep")  # exists but is not callable


# ------------------------------------------------------------- validation
def test_kwargs_must_be_json_serializable():
    with pytest.raises(TypeError, match="JSON-serializable"):
        Job(fn=f"{CELLS}:adder", kwargs={"a": object()}, label="bad")


def test_canonical_json_is_order_independent():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


# ------------------------------------------------------------- cache keys
def test_cache_key_stable_and_content_sensitive():
    j = Job(fn=f"{CELLS}:adder", kwargs={"a": 1, "b": 2})
    assert j.cache_key() == j.cache_key()
    # Same content, different kwarg insertion order: same key.
    assert j.cache_key() == Job(fn=j.fn, kwargs={"b": 2, "a": 1}).cache_key()
    # Different kwargs or different fn: different key.
    assert j.cache_key() != Job(fn=j.fn, kwargs={"a": 1, "b": 3}).cache_key()
    assert j.cache_key() != Job(fn=f"{CELLS}:pair", kwargs=j.kwargs).cache_key()


def test_cache_key_ignores_display_label():
    a = Job(fn=f"{CELLS}:adder", kwargs={"a": 1, "b": 2}, label="x")
    b = Job(fn=f"{CELLS}:adder", kwargs={"a": 1, "b": 2}, label="y")
    assert a.cache_key() == b.cache_key()


def test_cache_key_folds_in_code_fingerprint(monkeypatch):
    j = Job(fn=f"{CELLS}:adder", kwargs={"a": 1, "b": 2})
    before = j.cache_key()
    monkeypatch.setattr(job_mod, "code_fingerprint", lambda: "0" * 64)
    assert j.cache_key() != before


# ------------------------------------------------------------- JobError
def test_job_error_lists_every_failure():
    err = JobError([("cell-a", "ValueError: x"), ("cell-b", "timed out")])
    assert err.failures == [("cell-a", "ValueError: x"), ("cell-b", "timed out")]
    text = str(err)
    assert "2 job(s) failed" in text
    assert "cell-a" in text and "cell-b" in text
