"""Module-level cell functions for the exec tests.

Pool workers resolve jobs by dotted path (``tests.exec.cells:adder``),
so everything a test submits must live at module level in an importable
module -- lambdas and closures cannot cross the process boundary.
"""

import os
import time


def adder(a, b):
    return a + b


def pair(a, b):
    # Returns a tuple on purpose: the pool's JSON normalization must
    # turn it into a list on both the fresh and the cached path.
    return {"pair": (a, b)}


def sleeper(seconds, value=None):
    time.sleep(seconds)
    return value


def boom(msg):
    raise ValueError(msg)


def crasher():
    # Simulates a worker segfault: the interpreter dies without raising,
    # which surfaces to the parent as BrokenProcessPool.
    os._exit(13)


def crash_once(sentinel, a, b):
    # Crashes the worker on the first attempt, succeeds on the retry.
    # Worker processes share no state, so the first-attempt marker must
    # live on disk (``sentinel`` is a path inside the test's tmp dir).
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as f:
            f.write("attempt")
        os._exit(13)
    return a + b


def unserializable():
    return object()
