"""Pool semantics: ordering, caching, failures, timeouts, retries.

The worker-process tests use tiny sleeps/crashes from
``tests.exec.cells``; everything is bounded to keep the suite fast.
"""

import pytest

from repro.exec import Job, JobError, Pool, ResultCache, run_jobs

CELLS = "tests.exec.cells"


def _adders(n):
    return [
        Job(fn=f"{CELLS}:adder", kwargs={"a": i, "b": i}, label=f"add-{i}")
        for i in range(n)
    ]


# ------------------------------------------------------------- ordering
def test_serial_and_parallel_agree_in_submission_order():
    jobs = _adders(6)
    assert Pool(jobs=1, cache=None).run(jobs) == [0, 2, 4, 6, 8, 10]
    assert Pool(jobs=2, cache=None).run(jobs) == [0, 2, 4, 6, 8, 10]


def test_results_ordered_by_submission_not_completion():
    # The slow job is submitted first; the fast one finishes first.
    jobs = [
        Job(fn=f"{CELLS}:sleeper", kwargs={"seconds": 0.4, "value": "slow"}),
        Job(fn=f"{CELLS}:sleeper", kwargs={"seconds": 0.0, "value": "fast"}),
    ]
    assert Pool(jobs=2, cache=None).run(jobs) == ["slow", "fast"]


def test_run_jobs_without_pool_is_plain_inline_execution(tmp_path):
    assert run_jobs(_adders(3), None) == [0, 2, 4]


# ------------------------------------------------------------- caching
@pytest.mark.parametrize("workers", [1, 2])
def test_second_run_is_all_cache_hits(tmp_path, workers):
    cache = ResultCache(str(tmp_path / "c"))
    jobs = _adders(4)
    pool = Pool(jobs=workers, cache=cache)
    cold = pool.run(jobs)
    assert not any(r.cache_hit for r in pool.records)
    warm = pool.run(jobs)
    assert warm == cold
    assert all(r.cache_hit for r in pool.records)
    assert cache.hits == 4


def test_fresh_and_cached_results_are_identical_values(tmp_path):
    # The cell returns a tuple; JSON normalization must make the fresh
    # run hand the aggregator the same list a later cache hit would.
    cache = ResultCache(str(tmp_path / "c"))
    job = Job(fn=f"{CELLS}:pair", kwargs={"a": 1, "b": 2})
    pool = Pool(jobs=1, cache=cache)
    (fresh,) = pool.run([job])
    (cached,) = pool.run([job])
    assert fresh == cached == {"pair": [1, 2]}


def test_uncacheable_jobs_rerun_every_time(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    job = Job(fn=f"{CELLS}:adder", kwargs={"a": 1, "b": 1}, cacheable=False)
    pool = Pool(jobs=1, cache=cache)
    pool.run([job])
    pool.run([job])
    assert cache.hits == 0 and cache.size() == 0


# ------------------------------------------------------------- failures
@pytest.mark.parametrize("workers", [1, 2])
def test_all_failures_reported_after_settling(workers):
    jobs = [
        Job(fn=f"{CELLS}:boom", kwargs={"msg": "first"}, label="boom-1"),
        Job(fn=f"{CELLS}:adder", kwargs={"a": 1, "b": 1}, label="ok"),
        Job(fn=f"{CELLS}:boom", kwargs={"msg": "second"}, label="boom-2"),
    ]
    pool = Pool(jobs=workers, cache=None)
    with pytest.raises(JobError) as excinfo:
        pool.run(jobs)
    labels = sorted(label for label, _ in excinfo.value.failures)
    assert labels == ["boom-1", "boom-2"]
    assert all("ValueError" in msg for _, msg in excinfo.value.failures)
    # The healthy sibling still ran to completion.
    ok = next(r for r in pool.records if r.label == "ok")
    assert ok.error == "" and ok.finished > 0


def test_cell_exceptions_are_not_retried():
    pool = Pool(jobs=2, cache=None, default_retries=3)
    with pytest.raises(JobError):
        pool.run([Job(fn=f"{CELLS}:boom", kwargs={"msg": "x"}, label="b")])
    assert pool.records[0].retries == 0


# ------------------------------------------------------------- timeouts
def test_hanging_job_times_out_and_sibling_survives():
    jobs = [
        Job(
            fn=f"{CELLS}:sleeper",
            kwargs={"seconds": 30.0},
            label="hang",
            timeout=0.5,
            retries=0,
        ),
        Job(fn=f"{CELLS}:adder", kwargs={"a": 2, "b": 2}, label="ok"),
    ]
    pool = Pool(jobs=2, cache=None)
    with pytest.raises(JobError) as excinfo:
        pool.run(jobs)
    (failure,) = excinfo.value.failures
    assert failure[0] == "hang"
    assert "timed out after 0.5s" in failure[1]
    ok = next(r for r in pool.records if r.label == "ok")
    assert ok.error == ""


def test_timeout_retry_budget_is_charged_per_attempt():
    job = Job(
        fn=f"{CELLS}:sleeper",
        kwargs={"seconds": 30.0},
        label="hang",
        timeout=0.3,
        retries=1,
    )
    pool = Pool(jobs=2, cache=None)
    with pytest.raises(JobError, match="retries exhausted"):
        pool.run([job])
    assert pool.records[0].retries == 2  # initial attempt + one retry


def test_worker_crash_is_contained_and_reported():
    jobs = [
        Job(fn=f"{CELLS}:crasher", kwargs={}, label="crash", retries=0),
        Job(fn=f"{CELLS}:adder", kwargs={"a": 3, "b": 3}, label="ok"),
    ]
    pool = Pool(jobs=2, cache=None)
    with pytest.raises(JobError) as excinfo:
        pool.run(jobs)
    (failure,) = excinfo.value.failures
    assert failure[0] == "crash"
    assert "worker process crashed" in failure[1]
    ok = next(r for r in pool.records if r.label == "ok")
    assert ok.error == ""


def test_crash_retry_stats_reflect_the_successful_attempt(tmp_path):
    """A retried crash must not double-count in the job's record.

    The record describes the attempt that produced the result: one
    charged retry, ``queued <= started <= finished`` from the second
    attempt, a wall time far below the whole run (the first attempt's
    lifetime is not folded in), and exactly one trace mirror carrying
    the final stats.
    """
    from repro.trace import Tracer

    tracer = Tracer(categories=("exec",))
    jobs = [
        Job(
            fn=f"{CELLS}:crash_once",
            kwargs={"sentinel": str(tmp_path / "marker"), "a": 20, "b": 22},
            label="flaky",
            retries=1,
        ),
        Job(fn=f"{CELLS}:adder", kwargs={"a": 1, "b": 1}, label="ok"),
    ]
    pool = Pool(jobs=2, cache=None, tracer=tracer)
    assert pool.run(jobs) == [42, 2]

    rec = next(r for r in pool.records if r.label == "flaky")
    assert rec.retries == 1  # the crash charged exactly one retry
    assert rec.error == "" and not rec.cache_hit
    assert 0.0 <= rec.queued <= rec.started <= rec.finished
    assert rec.wall_ms >= 0.0
    # The record is mirrored to the tracer exactly once, with the final
    # (retried) stats -- not once per attempt.
    mirrored = [e for e in tracer.events if e.name == "flaky"]
    assert len(mirrored) == 1
    assert mirrored[0].args["retries"] == 1
    assert mirrored[0].args["error"] is None


def test_cache_hit_records_do_not_stretch_back_to_run_start(tmp_path):
    """A cache hit's trace span must have (near-)zero duration.

    Before the fix, hits left ``queued``/``started`` at 0.0, so the
    mirrored span covered the whole interval from run start to lookup.
    """
    from repro.trace import Tracer

    cache = ResultCache(str(tmp_path / "c"))
    pool = Pool(jobs=1, cache=cache)
    pool.run(_adders(3))  # cold: populate the cache

    tracer = Tracer(categories=("exec",))
    warm = Pool(jobs=1, cache=cache, tracer=tracer)
    warm.run(_adders(3))
    assert all(r.cache_hit for r in warm.records)
    for rec in warm.records:
        assert rec.queued == rec.started == rec.finished > 0.0
    for ev in tracer.events:
        assert ev.args["cache_hit"] is True
        assert ev.dur == 0.0


# ------------------------------------------------------------- observability
def test_records_and_progress_callback(tmp_path):
    calls = []
    cache = ResultCache(str(tmp_path / "c"))
    pool = Pool(
        jobs=1,
        cache=cache,
        progress=lambda done, total, hits, running: calls.append(
            (done, total, hits, running)
        ),
    )
    pool.run(_adders(3))
    assert calls[-1] == (3, 3, 0, 0)
    for rec in pool.records:
        assert rec.finished >= rec.started >= rec.queued >= 0.0
        assert rec.wall_ms >= 0.0 and not rec.cache_hit

    calls.clear()
    pool.run(_adders(3))
    assert calls[-1] == (3, 3, 3, 0)
    assert all(r.cache_hit and r.wall_ms == 0.0 for r in pool.records)
