"""Result cache: hit/miss, invalidation, atomicity, maintenance."""

import json
import os

import repro.exec.fingerprint as fingerprint
import repro.exec.job as job_mod
from repro.exec import Job, ResultCache, code_fingerprint

CELLS = "tests.exec.cells"


def _job(**kwargs):
    return Job(fn=f"{CELLS}:adder", kwargs=kwargs or {"a": 1, "b": 2})


# ------------------------------------------------------------- basics
def test_roundtrip_and_counters(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    job = _job()
    hit, _ = cache.get(job)
    assert not hit and cache.misses == 1
    assert cache.put(job, {"sum": 3}, wall_ms=1.5)
    hit, value = cache.get(job)
    assert hit and value == {"sum": 3}
    assert cache.hits == 1 and cache.size() == 1


def test_uncacheable_jobs_bypass_the_store(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    job = Job(fn=f"{CELLS}:adder", kwargs={"a": 1, "b": 2}, cacheable=False)
    assert not cache.put(job, {"sum": 3})
    hit, _ = cache.get(job)
    assert not hit and cache.size() == 0


def test_unserializable_result_is_not_stored(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    assert not cache.put(_job(), object())
    assert cache.size() == 0


def test_corrupt_or_mismatched_entries_read_as_misses(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    job = _job()
    cache.put(job, {"sum": 3})
    path = cache._entry_path(job.cache_key())

    with open(path, "w") as f:
        f.write("{ not json")
    assert cache.get(job) == (False, None)

    with open(path, "w") as f:
        json.dump({"schema": -1, "result": {"sum": 3}}, f)
    assert cache.get(job) == (False, None)


def test_clear_removes_entries_and_subdirs(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    for a in range(4):
        cache.put(_job(a=a, b=0), {"sum": a})
    assert cache.size() == 4
    assert cache.clear() == 4
    assert cache.size() == 0
    hit, _ = cache.get(_job(a=0, b=0))
    assert not hit


# ------------------------------------------------------------- invalidation
def test_code_fingerprint_change_busts_the_cache(tmp_path, monkeypatch):
    cache = ResultCache(str(tmp_path / "c"))
    job = _job()
    cache.put(job, {"sum": 3})
    assert cache.get(job) == (True, {"sum": 3})

    # Simulate an edit to the simulator source: every key changes, the
    # old entry silently stops matching.
    monkeypatch.setattr(job_mod, "code_fingerprint", lambda: "f" * 64)
    assert cache.get(job) == (False, None)


def test_code_fingerprint_tracks_source_edits(tmp_path, monkeypatch):
    # Point the fingerprint at a throwaway tree so the test never
    # touches the real src/repro files.
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "a.py").write_text("x = 1\n")
    monkeypatch.setattr(fingerprint, "_package_root", lambda: str(pkg))
    monkeypatch.setattr(fingerprint, "_CACHED", None)

    first = code_fingerprint(refresh=True)
    assert code_fingerprint() == first  # memoised

    (pkg / "a.py").write_text("x = 2\n")
    assert code_fingerprint() == first  # memo hides the edit...
    assert code_fingerprint(refresh=True) != first  # ...refresh sees it

    # Non-.py files and __pycache__ are outside the fingerprint.
    edited = code_fingerprint(refresh=True)
    (pkg / "notes.txt").write_text("ignored\n")
    (pkg / "__pycache__").mkdir()
    (pkg / "__pycache__" / "a.cpython-311.pyc").write_text("ignored")
    assert code_fingerprint(refresh=True) == edited


# ------------------------------------------------------------- atomicity
def test_writes_leave_no_temp_files_behind(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    job = _job()
    cache.put(job, {"sum": 3})
    leftovers = [
        name
        for _, _, names in os.walk(cache.path)
        for name in names
        if name.startswith(".tmp-")
    ]
    assert leftovers == []
