"""Serial-vs-parallel equivalence on the real sweep drivers.

The pool's central promise: ``--jobs N`` produces byte-identical tables
and check reports to ``--jobs 1`` (and to the pool-less inline path),
and a warm cache changes nothing but the wall clock.
"""

import pytest

from repro.bench import fig6
from repro.bench.harness import SweepConfig
from repro.check import fuzz_schedules, fuzz_schedules_sharded
from repro.check.fuzz import mailbox_quiescence_scenario
from repro.exec import Pool, ResultCache

TINY = dict(edges_per_rank=2**8, verts_per_rank=2**6, batch_size=2**8)


def _sweep():
    return SweepConfig(cores_per_node=2, node_counts=(1, 2), mailbox_capacity=256)


@pytest.fixture(scope="module")
def serial_table():
    return fig6.run_weak(_sweep(), pool=None, **TINY).render()


def test_jobs1_with_cache_matches_inline(tmp_path, serial_table):
    pool = Pool(jobs=1, cache=ResultCache(str(tmp_path / "c")))
    assert fig6.run_weak(_sweep(), pool=pool, **TINY).render() == serial_table


def test_parallel_matches_serial_byte_for_byte(tmp_path, serial_table):
    pool = Pool(jobs=2, cache=ResultCache(str(tmp_path / "c")))
    assert fig6.run_weak(_sweep(), pool=pool, **TINY).render() == serial_table


def test_warm_cache_rerun_is_identical_and_all_hits(tmp_path, serial_table):
    pool = Pool(jobs=1, cache=ResultCache(str(tmp_path / "c")))
    fig6.run_weak(_sweep(), pool=pool, **TINY)
    assert fig6.run_weak(_sweep(), pool=pool, **TINY).render() == serial_table
    assert all(rec.cache_hit for rec in pool.records)


def test_sharded_fuzz_matches_serial_campaign():
    runs, seed = 6, 7
    serial = fuzz_schedules(
        mailbox_quiescence_scenario(seed=seed), runs=runs, seed=seed
    )
    sharded = fuzz_schedules_sharded(
        runs=runs,
        seed=seed,
        scenario={"seed": seed},
        pool=Pool(jobs=2, cache=None),
    )
    assert sharded.seeds == serial.seeds
    assert sharded.render() == serial.render()
