"""Imbalance injection: the paper's central motivation, as tests.

These check the *behavioural* claims of the abstract on the simulated
clock: mailboxes decouple ranks from stragglers and hot receivers,
whereas the synchronous baseline couples everyone.
"""

import numpy as np
import pytest

from repro import YgmWorld
from repro.machine import small


def test_compute_skew_does_not_serialize_ygm_senders():
    """Ranks with different compute loads overlap their communication:
    the makespan is far below the sum of loads."""
    loads = [0.01, 0.02, 0.03, 0.04]

    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None, capacity=8)
        yield ctx.compute(loads[ctx.rank])
        for dest in range(ctx.nranks):
            yield from mb.send(dest, ctx.rank)
        yield from mb.wait_empty()
        return None

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_remote").run(rank_main)
    assert res.elapsed < sum(loads) * 0.6  # overlapped, not serialized
    assert res.elapsed >= max(loads)  # but bounded by the slowest


def test_hot_receiver_does_not_block_unrelated_pairs():
    """Traffic to a hot node queues at its NIC, but a pair that does not
    involve the hot node finishes at its own pace."""
    nbytes = 1 << 15

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append, capacity=4)
        if ctx.node >= 2 and ctx.core == 0:
            # Remote ranks hammer rank 0 (the hot receiver).
            for _ in range(16):
                yield from mb.send(0, bytes(nbytes))
        if ctx.rank == ctx.nranks - 1:
            # Unrelated pair: last rank pings its node-mate.
            yield from mb.send(ctx.rank - 1, "quick")
        done_own_work = ctx.sim.now
        yield from mb.wait_empty()
        return (done_own_work, len(got))

    res = YgmWorld(small(nodes=4, cores_per_node=2), scheme="noroute").run(rank_main)
    hot_time, hot_count = res.values[0]
    quick_time, _ = res.values[-1]
    assert hot_count == 32
    # The unrelated sender finished its own work long before the hot
    # receiver's traffic drained.
    assert quick_time < res.elapsed / 2


def test_wait_empty_makespan_tracks_slowest_under_all_schemes():
    """Safety check: no scheme terminates before the straggler's traffic
    is delivered, whatever the imbalance."""
    for scheme in ("noroute", "node_local", "node_remote", "nlnr"):

        def rank_main(ctx):
            got = []
            mb = ctx.mailbox(recv=got.append)
            if ctx.rank == 2:
                yield ctx.compute(0.2)
                for dest in range(ctx.nranks):
                    yield from mb.send(dest, "straggler-data")
            yield from mb.wait_empty()
            return len(got)

        res = YgmWorld(small(nodes=4, cores_per_node=2), scheme=scheme).run(rank_main)
        assert res.elapsed >= 0.2
        assert sum(res.values) == 8


def test_idle_concentrates_on_underloaded_ranks():
    """With a 10:1 load skew, idle time lands on the light ranks."""

    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None, capacity=16)
        work = 0.05 if ctx.rank == 0 else 0.005
        yield ctx.compute(work)
        for dest in range(ctx.nranks):
            yield from mb.send(dest, "x")
        yield from mb.wait_empty()
        return mb.stats.idle_time

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr").run(rank_main)
    heavy_idle = res.values[0]
    light_idle = min(res.values[1:])
    assert light_idle > heavy_idle
    assert light_idle > 0.04  # waited out most of the straggler's 45ms lead
