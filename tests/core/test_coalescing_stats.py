"""Unit tests for coalescing buffers and mailbox statistics."""

import numpy as np
import pytest

from repro.core import ENTRY_HEADER_BYTES, MailboxStats, aggregate
from repro.core.coalescing import BatchEntry, BcastEntry, CoalescingBuffer, P2PEntry
from repro.core.config import MailboxConfig


# ---------------------------------------------------------------- entries
def test_p2p_entry_accounting():
    e = P2PEntry(dest=3, payload="x", nbytes=10)
    assert e.count == 1
    assert e.wire_bytes == 10 + ENTRY_HEADER_BYTES
    assert e.kind == "p2p"


def test_bcast_entry_accounting():
    e = BcastEntry(origin=1, payload=b"abc", nbytes=3)
    assert e.count == 1
    assert e.wire_bytes == 3 + ENTRY_HEADER_BYTES
    assert e.kind == "bcast"


def test_batch_entry_accounting():
    batch = np.zeros(5, dtype=[("v", "u8")])
    dests = np.arange(5, dtype=np.int64)
    e = BatchEntry(dests, batch)
    assert e.count == 5
    assert e.wire_bytes == 5 * (8 + ENTRY_HEADER_BYTES)
    assert e.kind == "batch"


def test_batch_entry_length_mismatch():
    with pytest.raises(ValueError):
        BatchEntry(np.arange(3), np.zeros(4, dtype=[("v", "u8")]))


# ---------------------------------------------------------------- buffer
def test_buffer_accumulates_and_takes():
    buf = CoalescingBuffer(hop=7)
    buf.add(P2PEntry(1, "a", 4))
    buf.add(P2PEntry(2, "b", 6))
    assert len(buf) == 2
    assert bool(buf)
    entries, nbytes, count = buf.take()
    assert count == 2
    assert nbytes == 4 + 6 + 2 * ENTRY_HEADER_BYTES
    assert len(entries) == 2
    assert len(buf) == 0
    assert not buf


def test_buffer_mixed_entry_kinds():
    buf = CoalescingBuffer(hop=0)
    buf.add(P2PEntry(1, "a", 4))
    batch = np.zeros(3, dtype=[("v", "u4")])
    buf.add(BatchEntry(np.arange(3, dtype=np.int64), batch))
    buf.add(BcastEntry(0, "b", 2))
    assert len(buf) == 5  # 1 + 3 + 1 messages
    _, nbytes, count = buf.take()
    assert count == 5
    assert nbytes == (4 + 8) + 3 * (4 + 8) + (2 + 8)


# ----------------------------------------------------------------- stats
def test_stats_merge_and_aggregate():
    a = MailboxStats(app_messages_sent=3, remote_bytes_sent=100, remote_packets_sent=2)
    b = MailboxStats(app_messages_sent=4, remote_bytes_sent=50, remote_packets_sent=1)
    merged = a.merge(b)
    assert merged.app_messages_sent == 7
    assert merged.remote_bytes_sent == 150
    total = aggregate([a, b, MailboxStats()])
    assert total.app_messages_sent == 7
    assert total.remote_packets_sent == 3


def test_stats_avg_remote_packet():
    s = MailboxStats(remote_packets_sent=4, remote_bytes_sent=1000)
    assert s.avg_remote_packet_bytes == 250.0
    assert MailboxStats().avg_remote_packet_bytes == 0.0


def test_stats_as_dict_roundtrip():
    s = MailboxStats(flushes=9)
    d = s.as_dict()
    assert d["flushes"] == 9
    assert "avg_remote_packet_bytes" in d


# ----------------------------------------------------------------- config
def test_mailbox_config_validation():
    with pytest.raises(ValueError):
        MailboxConfig(capacity=0)
    cfg = MailboxConfig(capacity=8)
    assert cfg.with_overrides(capacity=16).capacity == 16
    assert cfg.capacity == 8  # original untouched
