"""Tests for the coalescing-buffer list pool (flush-path allocation reuse)."""

from repro.core.coalescing import CoalescingBuffer, ListPool, P2PEntry


def _entry(dest=0, nbytes=4):
    return P2PEntry(dest, payload=None, nbytes=nbytes)


def test_pool_recycles_lists():
    pool = ListPool()
    lst = pool.get()
    lst.extend([1, 2, 3])
    pool.put(lst)
    again = pool.get()
    assert again is lst
    assert again == []  # cleared on return


def test_pool_rejects_non_lists_and_respects_capacity():
    pool = ListPool(capacity=2)
    pool.put((1, 2))  # tuples are packet payloads too; never pooled
    pool.put("nope")
    assert len(pool) == 0
    for _ in range(5):
        pool.put([])
    assert len(pool) == 2


def test_buffer_take_draws_replacement_from_pool():
    pool = ListPool()
    recycled = [1, 2]
    pool.put(recycled)
    buf = CoalescingBuffer(hop=3, pool=pool)
    first = buf.entries
    assert first is recycled  # construction drew from the pool
    buf.add(_entry())
    entries, nbytes, count = buf.take()
    assert entries is first and count == 1 and nbytes == entries[0].wire_bytes
    assert buf.entries is not first and buf.entries == []
    assert buf.nbytes == 0 and buf.count == 0


def test_buffer_without_pool_allocates_fresh_lists():
    buf = CoalescingBuffer(hop=0)
    buf.add(_entry())
    entries, _, _ = buf.take()
    assert entries and buf.entries == [] and buf.entries is not entries


def test_pooled_round_trip_preserves_contents():
    # A flush/handle cycle through the pool never leaks entries between
    # packets: each get() starts empty even after heavy churn.
    pool = ListPool(capacity=4)
    buf = CoalescingBuffer(hop=1, pool=pool)
    seen = []
    for round_no in range(10):
        for i in range(round_no + 1):
            buf.add(_entry(dest=i))
        entries, _, count = buf.take()
        assert count == round_no + 1
        assert [e.dest for e in entries] == list(range(round_no + 1))
        seen.append(len(entries))
        pool.put(entries)  # what Mailbox._handle_packet does
    assert seen == [n + 1 for n in range(10)]


# ------------------------------------------------------------- debug poison
def test_debug_pool_poisons_recycled_lists():
    """A stale reference that touches a recycled entry must fail loudly.

    This is the aliasing hazard of the pooled flush path: a handler (or
    a profiler hook) keeping the entries list beyond ``pool.put`` would
    silently observe cleared -- or worse, refilled -- entries.  In debug
    mode every recycled slot raises on attribute access instead.
    """
    import pytest

    pool = ListPool(debug=True)
    entries = pool.get()
    entries.append(_entry(dest=1))
    leaked = entries  # a reference that outlives the recycle
    pool.put(entries)
    assert len(leaked) == 1  # length survives; contents are poisoned
    with pytest.raises(RuntimeError, match="use-after-recycle"):
        leaked[0].kind  # the first touch a packet handler would make
    with pytest.raises(RuntimeError, match="use-after-recycle"):
        leaked[0].payload


def test_debug_pool_detects_double_recycle():
    import pytest

    pool = ListPool(debug=True)
    lst = [_entry()]
    pool.put(lst)
    with pytest.raises(RuntimeError, match="double recycle"):
        pool.put(lst)


def test_debug_pool_reissues_clean_lists():
    """Poison never leaks back into circulation through get()."""
    pool = ListPool(debug=True)
    lst = [_entry(), _entry()]
    pool.put(lst)
    again = pool.get()
    assert again is lst and again == []


def test_debug_pool_env_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_DEBUG_POOL", "1")
    assert ListPool().debug
    monkeypatch.delenv("REPRO_DEBUG_POOL")
    assert not ListPool().debug


def test_default_pool_still_clears_on_return():
    # Production mode is unchanged: cleared lists, silent aliasing kept
    # impossible by the mailbox's discipline (audited in PR 6), checked
    # cheaply here.
    pool = ListPool()
    lst = [_entry()]
    pool.put(lst)
    assert lst == [] and pool.get() is lst
