"""Integration tests for the YGM mailbox across all routing schemes."""

import numpy as np
import pytest

from repro import RecordSpec, YgmWorld
from repro.core.coalescing import P2PEntry
from repro.core.routing import SCHEMES
from repro.machine import small
from repro.mpi.envelope import Packet

ALL_SCHEMES = list(SCHEMES)


def make_world(nodes=2, cores=2, scheme="nlnr", capacity=2**14, seed=0):
    return YgmWorld(
        small(nodes=nodes, cores_per_node=cores),
        scheme=scheme,
        seed=seed,
        mailbox_capacity=capacity,
    )


# --------------------------------------------------------------- delivery
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
@pytest.mark.parametrize("nodes,cores", [(2, 2), (3, 2), (4, 4), (5, 3)])
def test_all_to_all_delivery(scheme, nodes, cores):
    """Every rank sends one tagged message to every rank (self included);
    every message arrives exactly once."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        for dest in range(ctx.nranks):
            yield from mb.send(dest, (ctx.rank, dest))
        yield from mb.wait_empty()
        return sorted(got)

    res = make_world(nodes, cores, scheme).run(rank_main)
    nranks = nodes * cores
    for rank, got in enumerate(res.values):
        assert got == [(src, rank) for src in range(nranks)]


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_capacity_triggers_flush(scheme):
    """With a tiny capacity, messages flow before wait_empty."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append, capacity=4)
        if ctx.rank == 0:
            for i in range(32):
                yield from mb.send(ctx.nranks - 1, i)
            assert mb.stats.flushes >= 32 // 4 - 1
        yield from mb.wait_empty()
        return got

    res = make_world(2, 2, scheme).run(rank_main)
    assert sorted(res.values[-1]) == list(range(32))


@pytest.mark.parametrize("scheme", ["node_local", "node_remote", "nlnr"])
def test_intermediaries_forward(scheme):
    """Cross-node traffic between non-intermediary cores must be routed
    through intermediaries (entries_forwarded > 0 somewhere)."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        if ctx.rank == 1:  # (node 0, core 1)
            # Destination (node 2, core 2): requires forwarding under all
            # three routing schemes.
            yield from mb.send(2 * 4 + 2, "x")
        yield from mb.wait_empty()
        return got

    res = make_world(3, 4, scheme).run(rank_main)
    assert res.values[10] == ["x"]
    assert res.mailbox_stats.entries_forwarded > 0


def test_noroute_never_forwards():
    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        for dest in range(ctx.nranks):
            yield from mb.send(dest, ctx.rank)
        yield from mb.wait_empty()
        return got

    res = make_world(3, 2, "noroute").run(rank_main)
    assert res.mailbox_stats.entries_forwarded == 0


def test_self_send_immediate_and_not_transported():
    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        yield from mb.send(ctx.rank, "self")
        assert got == ["self"]  # delivered synchronously
        yield from mb.wait_empty()
        return got

    res = make_world(2, 2, "nlnr").run(rank_main)
    assert res.mailbox_stats.entries_sent == 0
    assert all(v == ["self"] for v in res.values)


def test_callbacks_can_post_replies():
    """A receive callback spawning messages (data-dependent traffic)."""

    def rank_main(ctx):
        log = []

        def on_recv(msg):  # closes over mb, bound below before any arrival
            kind, src = msg
            log.append(msg)
            if kind == "ping":
                mb.post(src, ("pong", ctx.rank))

        mb = ctx.mailbox(recv=on_recv)
        if ctx.rank == 0:
            for dest in range(1, ctx.nranks):
                yield from mb.send(dest, ("ping", 0))
        yield from mb.wait_empty()
        return sorted(log)

    world = make_world(2, 2, "nlnr")
    res = world.run(rank_main)
    assert res.values[0] == [("pong", r) for r in range(1, 4)]
    for r in range(1, 4):
        assert res.values[r] == [("ping", 0)]


def test_mailbox_requires_callback():
    def rank_main(ctx):
        with pytest.raises(ValueError):
            ctx.mailbox()
        yield ctx.compute(0)
        return True

    res = make_world(1, 1).run(rank_main)
    assert res.values == [True]


def test_bad_destination_rejected():
    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        with pytest.raises(ValueError):
            mb.post(ctx.nranks, "x")
        with pytest.raises(ValueError):
            mb.post(-1, "x")
        yield from mb.wait_empty()
        return True

    res = make_world(1, 2).run(rank_main)
    assert all(res.values)


# -------------------------------------------------------------- broadcasts
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
@pytest.mark.parametrize("nodes,cores", [(2, 2), (4, 4), (3, 2)])
def test_bcast_reaches_all_other_ranks(scheme, nodes, cores):
    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        if ctx.rank == 1:
            yield from mb.send_bcast(("hello", ctx.rank))
        yield from mb.wait_empty()
        return got

    res = make_world(nodes, cores, scheme).run(rank_main)
    for rank, got in enumerate(res.values):
        if rank == 1:
            assert got == []
        else:
            assert got == [("hello", 1)]


@pytest.mark.parametrize(
    "scheme,expected_remote",
    [("node_local", "C*(N-1)"), ("node_remote", "N-1"), ("nlnr", "N-1")],
)
def test_bcast_remote_entry_counts(scheme, expected_remote):
    """Section III-C: a broadcast costs C(N-1) remote messages under
    NodeLocal but only N-1 under NodeRemote/NLNR."""
    nodes, cores = 4, 4

    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        if ctx.rank == 0:
            yield from mb.send_bcast("b")
        yield from mb.wait_empty()
        return None

    res = make_world(nodes, cores, scheme).run(rank_main)
    # Count remote transport entries: every entry sent in a remote packet.
    # We can't see per-entry locality directly, so use packet stats: each
    # bcast entry is alone in its buffer here (single broadcast).
    remote = res.mailbox_stats.remote_packets_sent
    if expected_remote == "C*(N-1)":
        assert remote == cores * (nodes - 1)
    else:
        assert remote == nodes - 1


def test_separate_bcast_callback():
    def rank_main(ctx):
        p2p, bc = [], []
        mb = ctx.mailbox(recv=p2p.append, recv_bcast=bc.append)
        if ctx.rank == 0:
            yield from mb.send_bcast("broadcast")
            yield from mb.send(1, "direct")
        yield from mb.wait_empty()
        return (p2p, bc)

    res = make_world(2, 2, "nlnr").run(rank_main)
    assert res.values[1] == (["direct"], ["broadcast"])
    assert res.values[2] == ([], ["broadcast"])


def test_bcast_counted_in_stats():
    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        if ctx.rank < 2:
            yield from mb.send_bcast(ctx.rank)
        yield from mb.wait_empty()
        return None

    res = make_world(2, 2, "node_remote").run(rank_main)
    assert res.mailbox_stats.bcasts_initiated == 2
    assert res.mailbox_stats.bcast_deliveries == 2 * 3


# -------------------------------------------------------------- batch path
SPEC = RecordSpec("test", [("dest", "u8"), ("val", "u8")])


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
@pytest.mark.parametrize("nodes,cores", [(2, 2), (4, 4), (3, 2)])
def test_send_batch_all_to_all(scheme, nodes, cores):
    """Vectorized batches: each rank sends k records to every rank."""
    k = 5

    def rank_main(ctx):
        received = []
        mb = ctx.mailbox(recv_batch=lambda batch: received.append(batch.copy()))
        dests = np.repeat(np.arange(ctx.nranks, dtype=np.int64), k)
        batch = SPEC.build(
            dest=dests.astype("u8"),
            val=np.full(len(dests), ctx.rank, dtype="u8"),
        )
        yield from mb.send_batch(dests, batch, spec=SPEC)
        yield from mb.wait_empty()
        if received:
            allrec = np.concatenate(received)
        else:
            allrec = SPEC.empty(0)
        return allrec

    res = make_world(nodes, cores, scheme).run(rank_main)
    nranks = nodes * cores
    for rank, allrec in enumerate(res.values):
        assert len(allrec) == k * nranks
        assert np.all(allrec["dest"] == rank)
        assert sorted(np.bincount(allrec["val"].astype(int), minlength=nranks)) == [k] * nranks


def test_send_batch_validates():
    def rank_main(ctx):
        mb = ctx.mailbox(recv_batch=lambda b: None)
        with pytest.raises(ValueError):
            mb.post_batch(np.array([0, 1]), SPEC.zeros(3))
        with pytest.raises(ValueError):
            mb.post_batch(np.array([99]), SPEC.zeros(1))
        with pytest.raises(TypeError):
            mb.post_batch(np.array([0]), np.zeros(1), spec=SPEC)
        mb.post_batch(np.array([], dtype=np.int64), SPEC.empty(0))  # no-op
        yield from mb.wait_empty()
        return True

    res = make_world(2, 2).run(rank_main)
    assert all(res.values)


def test_batch_without_recv_batch_falls_back_to_scalar():
    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=lambda rec: got.append(int(rec["val"])))
        if ctx.rank == 0:
            dests = np.array([1, 1, 1], dtype=np.int64)
            batch = SPEC.build(dest=dests.astype("u8"), val=np.arange(3, dtype="u8"))
            yield from mb.send_batch(dests, batch)
        yield from mb.wait_empty()
        return sorted(got)

    res = make_world(2, 2, "nlnr").run(rank_main)
    assert res.values[1] == [0, 1, 2]


# ----------------------------------------------------------- wait/test empty
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_wait_empty_with_no_traffic(scheme):
    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        yield from mb.wait_empty()
        return True

    res = make_world(2, 2, scheme).run(rank_main)
    assert all(res.values)


def test_wait_empty_straggler():
    """One rank keeps computing long after the others reach wait_empty;
    nobody terminates early and the straggler's messages still arrive."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        if ctx.rank == 0:
            yield ctx.compute(0.5)  # huge in simulated terms
            for dest in range(1, ctx.nranks):
                yield from mb.send(dest, "late")
        yield from mb.wait_empty()
        return (got, ctx.sim.now)

    res = make_world(2, 2, "nlnr").run(rank_main)
    for rank in range(1, 4):
        got, t = res.values[rank]
        assert got == ["late"]
        assert t >= 0.5  # could not exit before the straggler sent


def test_test_empty_polling():
    """TEST_EMPTY-style completion loop (external work queue pattern)."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        if ctx.rank == 0:
            for dest in range(ctx.nranks):
                yield from mb.send(dest, "m")
        polls = 0
        while True:
            done = yield from mb.test_empty()
            if done:
                break
            polls += 1
            yield ctx.compute(1e-6)
        return (got, polls)

    res = make_world(2, 2, "node_remote").run(rank_main)
    for rank in range(4):
        got, _ = res.values[rank]
        assert got == ["m"]


def test_two_wait_empty_epochs():
    """wait_empty must be reusable: two communication phases in one run."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        yield from mb.send((ctx.rank + 1) % ctx.nranks, "first")
        yield from mb.wait_empty()
        first = list(got)
        yield from mb.send((ctx.rank + 2) % ctx.nranks, "second")
        yield from mb.wait_empty()
        return (first, got)

    res = make_world(2, 2, "nlnr").run(rank_main)
    for first, final in res.values:
        assert first == ["first"]
        assert final == ["first", "second"]


def test_test_empty_rearms_for_second_epoch():
    """Regression: test_empty left the detector 'done' forever, so a
    second quiescence epoch returned True immediately and the epoch's
    messages were silently lost."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        for payload in ("first", "second"):
            yield from mb.send((ctx.rank + 1) % ctx.nranks, payload)
            while not (yield from mb.test_empty()):
                yield ctx.compute(1e-6)
        return got

    res = make_world(2, 2, "nlnr").run(rank_main)
    for got in res.values:
        assert got == ["first", "second"]


def test_test_empty_sees_new_traffic_after_quiescence():
    """After a completed epoch, the next test_empty must re-arm and
    report False while fresh traffic is still in flight."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        while not (yield from mb.test_empty()):
            yield ctx.compute(1e-6)
        # Fresh traffic: the very next poll must NOT claim quiescence.
        yield from mb.send((ctx.rank + 1) % ctx.nranks, "late")
        first_poll = yield from mb.test_empty()
        while not (yield from mb.test_empty()):
            yield ctx.compute(1e-6)
        return (first_poll, got)

    res = make_world(2, 2, "node_remote").run(rank_main)
    for first_poll, got in res.values:
        assert first_poll is False
        assert got == ["late"]


# ------------------------------------------------------- forward accounting
def _batch_all_to_all(reentrant):
    """Each rank batch-sends 4 records to every rank; optionally every
    batch delivery posts reentrant self-addressed scalar messages."""

    def rank_main(ctx):
        noise = []

        def on_batch(batch):  # closes over mb, bound below
            if reentrant:
                for _ in range(len(batch)):
                    mb.post(ctx.rank, "echo")

        mb = ctx.mailbox(recv=noise.append, recv_batch=on_batch)
        dests = np.repeat(np.arange(ctx.nranks, dtype=np.int64), 4)
        batch = SPEC.build(dest=dests.astype("u8"), val=dests.astype("u8"))
        yield from mb.send_batch(dests, batch)
        yield from mb.wait_empty()
        return None

    return rank_main


def test_batch_forward_accounting_immune_to_reentrant_posts():
    """Regression: batch-path entries_forwarded was inferred from the
    app_messages_delivered delta, so a receive callback posting
    self-addressed messages made intermediaries under-count forwards."""
    plain = make_world(3, 2, "nlnr").run(_batch_all_to_all(False))
    reent = make_world(3, 2, "nlnr").run(_batch_all_to_all(True))
    forwarded = plain.mailbox_stats.entries_forwarded
    assert forwarded > 0
    assert reent.mailbox_stats.entries_forwarded == forwarded


def test_batch_forwarding_matches_scalar_accounting():
    """Forwarding is a property of the routes, not the send path: the
    same destinations must yield the same entries_forwarded whether sent
    record-at-a-time or as one batch."""

    def scalar_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        for dest in range(ctx.nranks):
            for _ in range(4):
                yield from mb.send(dest, dest)
        yield from mb.wait_empty()
        return None

    for scheme in ("node_local", "node_remote", "nlnr"):
        batch = make_world(3, 2, scheme).run(_batch_all_to_all(False))
        scalar = make_world(3, 2, scheme).run(scalar_main)
        assert (
            batch.mailbox_stats.entries_forwarded
            == scalar.mailbox_stats.entries_forwarded
            > 0
        )


def test_conservation_of_entries():
    """Global transport invariant: entries sent == entries received."""

    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        rng = ctx.rng
        for _ in range(50):
            dest = int(rng.integers(ctx.nranks))
            yield from mb.send(dest, "x")
        yield from mb.wait_empty()
        return None

    for scheme in ALL_SCHEMES:
        res = make_world(3, 2, scheme).run(rank_main)
        s = res.mailbox_stats
        assert s.entries_sent == s.entries_received
        # Every app message reaches exactly one callback.
        assert s.app_messages_delivered == s.app_messages_sent == 300


def test_stats_avg_remote_packet_size_orders_by_scheme():
    """Coalescing quality: NLNR produces larger remote packets than
    NodeLocal, which beats NoRoute (Section III-E), under uniform traffic."""

    def rank_main(ctx):
        mb = ctx.mailbox(recv_batch=lambda b: None, capacity=512)
        rng = ctx.rng
        dests = rng.integers(0, ctx.nranks, size=2048).astype(np.int64)
        batch = SPEC.build(dest=dests.astype("u8"), val=dests.astype("u8"))
        yield from mb.send_batch(dests, batch)
        yield from mb.wait_empty()
        return None

    sizes = {}
    for scheme in ("noroute", "node_local", "nlnr"):
        res = YgmWorld(
            small(nodes=8, cores_per_node=4), scheme=scheme, mailbox_capacity=512
        ).run(rank_main)
        sizes[scheme] = res.mailbox_stats.avg_remote_packet_bytes
    assert sizes["noroute"] < sizes["node_local"] < sizes["nlnr"]


def test_hybrid_nlnr_faster_than_nlnr():
    """Free local hops (Section VII hybrid) must not change delivery and
    should reduce elapsed time."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append, capacity=64)
        rng = ctx.rng
        for _ in range(256):
            yield from mb.send(int(rng.integers(ctx.nranks)), ctx.rank)
        yield from mb.wait_empty()
        return len(got)

    res_nlnr = make_world(4, 4, "nlnr", capacity=64).run(rank_main)
    res_hybrid = make_world(4, 4, "nlnr_hybrid", capacity=64).run(rank_main)
    assert sum(res_nlnr.values) == sum(res_hybrid.values) == 16 * 256
    assert res_hybrid.elapsed < res_nlnr.elapsed


# ------------------------------------------------------ wait_any_traffic races
def _app_packet(mb, payload):
    return Packet(
        src=0, dst=0, ctx=mb.comm.ctx, kind=mb._app_kind, tag=0,
        payload=[P2PEntry(0, payload, 8)], nbytes=8,
    )


def _term_packet(mb, tag, payload):
    return Packet(
        src=0, dst=0, ctx=mb.comm.ctx, kind=mb._term_kind, tag=tag,
        payload=payload, nbytes=8,
    )


@pytest.mark.parametrize("order", ["app_first", "term_first"])
def test_wait_any_traffic_same_timestamp_race(order):
    """An app packet and a term packet arriving at the same simulated
    instant: _wait_any_traffic must consume both -- neither the losing
    getter's cancellation nor wake-up ordering may drop a packet."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        tag = ("r", 0, 0)

        def injector():
            yield ctx.sim.timeout(1.0)
            puts = [
                lambda: mb._app_store.put(_app_packet(mb, "hello")),
                lambda: mb._term_store.put(_term_packet(mb, tag, (1, 2))),
            ]
            if order == "term_first":
                puts.reverse()
            for put in puts:
                put()

        ctx.sim.process(injector())
        yield from mb._wait_any_traffic()
        mb._drain_term()  # pick up the term packet if it lost the race
        assert got == ["hello"]
        assert mb._term._cache.get(tag) == (1, 2)
        assert len(mb._app_store) == 0 and len(mb._term_store) == 0
        return True

    res = make_world(1, 1).run(rank_main)
    assert all(res.values)


def test_wait_any_traffic_cancelled_app_get_keeps_later_packet():
    """A term-only wake-up cancels the app getter; an app packet arriving
    later must still reach the next wait (not be stolen by the cancelled
    getter)."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        tag = ("r", 0, 0)

        def injector():
            yield ctx.sim.timeout(1.0)
            mb._term_store.put(_term_packet(mb, tag, (3, 4)))
            yield ctx.sim.timeout(1.0)
            mb._app_store.put(_app_packet(mb, "later"))

        ctx.sim.process(injector())
        yield from mb._wait_any_traffic()  # term-only: app get cancelled
        assert got == []
        assert mb._term._cache.get(tag) == (3, 4)
        yield from mb._wait_any_traffic()  # must receive the app packet
        assert got == ["later"]
        assert len(mb._app_store) == 0
        return True

    res = make_world(1, 1).run(rank_main)
    assert all(res.values)


def test_determinism_same_seed_same_elapsed():
    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None, capacity=32)
        rng = ctx.rng
        for _ in range(100):
            yield from mb.send(int(rng.integers(ctx.nranks)), "d")
        yield from mb.wait_empty()
        return None

    r1 = make_world(2, 4, "nlnr", capacity=32, seed=7).run(rank_main)
    r2 = make_world(2, 4, "nlnr", capacity=32, seed=7).run(rank_main)
    assert r1.elapsed == r2.elapsed
    assert r1.mailbox_stats.as_dict() == r2.mailbox_stats.as_dict()
