"""Unit tests for the termination-detection protocol."""

import pytest

from repro import YgmWorld
from repro.core.termination import (
    TerminationDetector,
    binomial_children,
    binomial_parent,
)
from repro.machine import small


# ----------------------------------------------------------- tree helpers
@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 13, 16, 33])
def test_binomial_tree_is_spanning(size):
    """Every rank except 0 has exactly one parent; edges form a tree."""
    seen = set()
    for rank in range(size):
        for child in binomial_children(rank, size):
            assert child not in seen
            seen.add(child)
            assert binomial_parent(child) == rank
    assert seen == set(range(1, size))
    assert binomial_parent(0) is None


def test_binomial_children_root():
    assert binomial_children(0, 8) == [1, 2, 4]
    assert binomial_children(0, 6) == [1, 2, 4]
    assert binomial_children(4, 8) == [5, 6]
    assert binomial_children(3, 8) == []


def test_binomial_parent_examples():
    assert binomial_parent(1) == 0
    assert binomial_parent(6) == 4
    assert binomial_parent(7) == 6
    assert binomial_parent(12) == 8


# ----------------------------------------------------------- protocol
def test_detector_requires_two_equal_rounds():
    """A single all-equal round must NOT declare termination (counter
    reports are not causally synchronized)."""

    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        yield from mb.wait_empty()
        return mb._term.rounds_completed

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr").run(rank_main)
    assert all(r >= 2 for r in res.values)


def test_detector_reset_mid_protocol_rejected():
    det = TerminationDetector(rank=0, size=2, get_counts=lambda: (0, 0), send=None)
    with pytest.raises(RuntimeError):
        det.reset()


def test_detector_no_early_termination_with_inflight():
    """Messages in flight at round time must defer termination: the
    receiving rank's counter catches up in a later round."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append, capacity=4)
        if ctx.rank == 0:
            # Enough traffic that some is in flight when rank 3 first
            # enters wait_empty (rank 3 enters immediately).
            for i in range(64):
                yield from mb.send(3, i)
        yield from mb.wait_empty()
        return got

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_remote").run(rank_main)
    assert sorted(res.values[3]) == list(range(64))


def test_detector_counts_balance_after_termination():
    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None, capacity=8)
        for dest in range(ctx.nranks):
            yield from mb.send(dest, "x")
        yield from mb.wait_empty()
        return (mb.stats.entries_sent, mb.stats.entries_received)

    res = YgmWorld(small(nodes=3, cores_per_node=2), scheme="nlnr").run(rank_main)
    total_sent = sum(s for s, _ in res.values)
    total_recv = sum(r for _, r in res.values)
    assert total_sent == total_recv > 0


def test_detector_many_epochs():
    """Ten wait_empty epochs in a row stay consistent (tag uniqueness)."""

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        for epoch in range(10):
            yield from mb.send((ctx.rank + 1 + epoch) % ctx.nranks, epoch)
            yield from mb.wait_empty()
        return len(got)

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_local").run(rank_main)
    assert sum(res.values) == 40


def test_term_rounds_accumulate_per_epoch():
    """Regression: stats.term_rounds was *assigned* the detector's
    cumulative rounds_completed (and reset() never cleared it), so
    multi-epoch totals were wrong.  rounds_completed must read as this
    epoch's count and MailboxStats.term_rounds as the running total."""

    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        yield from mb.send((ctx.rank + 1) % ctx.nranks, 1)
        yield from mb.wait_empty()
        r1, total1 = mb._term.rounds_completed, mb.stats.term_rounds
        yield from mb.send((ctx.rank + 2) % ctx.nranks, 2)
        yield from mb.wait_empty()
        r2, total2 = mb._term.rounds_completed, mb.stats.term_rounds
        return (r1, total1, r2, total2)

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr").run(rank_main)
    for r1, total1, r2, total2 in res.values:
        assert r1 >= 2 and r2 >= 2  # each epoch needs >= 2 rounds
        assert total1 == r1
        assert total2 == total1 + r2


def test_reset_clears_rounds_completed():
    det = TerminationDetector(rank=0, size=1, get_counts=lambda: (0, 0), send=None)

    def drive():
        done = yield from det.advance()
        return done

    # Size-1 tree: the root collects itself and finishes without sends.
    gen = drive()
    try:
        while True:
            next(gen)
    except StopIteration:
        pass
    assert det.done and det.rounds_completed >= 2
    det.reset()
    assert det.rounds_completed == 0
    assert not det.done


def test_callback_chains_do_not_terminate_early():
    """A chain of data-dependent messages (each receive spawns the next
    hop) must be fully drained before wait_empty returns."""
    chain_length = 30

    def rank_main(ctx):
        log = []

        def on_recv(k):
            log.append(k)
            if k < chain_length:
                mb.post((ctx.rank + k) % ctx.nranks, k + 1)

        mb = ctx.mailbox(recv=on_recv)
        if ctx.rank == 0:
            yield from mb.send(1, 1)
        yield from mb.wait_empty()
        return log

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr").run(rank_main)
    all_received = sorted(sum((v for v in res.values), []))
    assert all_received == list(range(1, chain_length + 1))
