"""Exhaustive + property tests for the four routing schemes.

These check the paper's Section III invariants directly on the pure
routing functions: path validity, hop bounds, exchange-phase structure,
broadcast coverage and remote-message counts, and channel cardinality.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import PAPER_SCHEMES, SCHEMES, get_scheme
from repro.machine import address

SHAPES = [(2, 2), (3, 2), (2, 4), (4, 4), (8, 4), (5, 3), (12, 4), (16, 4)]


def trace_path(scheme, src, dest):
    """Follow next_hop from src to dest; returns the hop sequence."""
    path = [src]
    cur = src
    for _ in range(scheme.max_hops() + 1):
        if cur == dest:
            return path
        cur = scheme.next_hop(cur, dest)
        assert 0 <= cur < scheme.nranks
        path.append(cur)
    raise AssertionError(f"{scheme.name}: no delivery {src}->{dest}: {path}")


@pytest.mark.parametrize("name", list(SCHEMES))
@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_all_pairs_delivered_within_hop_bound(name, nodes, cores):
    scheme = get_scheme(name, nodes, cores)
    for src in range(scheme.nranks):
        for dest in range(scheme.nranks):
            if src == dest:
                continue
            path = trace_path(scheme, src, dest)
            assert path[-1] == dest
            assert len(path) - 1 <= scheme.max_hops()


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_node_local_phase_structure(nodes, cores):
    """Node Local: first hop local (to matching core offset), second remote."""
    scheme = get_scheme("node_local", nodes, cores)
    for src in range(scheme.nranks):
        for dest in range(scheme.nranks):
            if src == dest:
                continue
            path = trace_path(scheme, src, dest)
            hops = list(zip(path, path[1:]))
            if len(hops) == 2:
                a, b = hops
                assert address.same_node(a[0], a[1], cores), "hop 1 must be local"
                assert not address.same_node(b[0], b[1], cores), "hop 2 must be remote"
                # After the local hop the holder matches dest's core offset.
                assert address.core_of(a[1], cores) == address.core_of(dest, cores)


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_node_remote_phase_structure(nodes, cores):
    """Node Remote: first hop remote (keeping core offset), second local."""
    scheme = get_scheme("node_remote", nodes, cores)
    for src in range(scheme.nranks):
        for dest in range(scheme.nranks):
            if src == dest:
                continue
            path = trace_path(scheme, src, dest)
            hops = list(zip(path, path[1:]))
            if len(hops) == 2:
                a, b = hops
                assert not address.same_node(a[0], a[1], cores)
                assert address.same_node(b[0], b[1], cores)
                assert address.core_of(a[1], cores) == address.core_of(src, cores)
                assert address.node_of(a[1], cores) == address.node_of(dest, cores)


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_nlnr_phase_structure(nodes, cores):
    """NLNR: local -> remote -> local, with the paper's intermediary rule."""
    scheme = get_scheme("nlnr", nodes, cores)
    for src in range(scheme.nranks):
        for dest in range(scheme.nranks):
            if src == dest:
                continue
            path = trace_path(scheme, src, dest)
            # Exactly one remote hop on any cross-node path.
            remote_hops = [
                (a, b) for a, b in zip(path, path[1:])
                if not address.same_node(a, b, cores)
            ]
            if address.same_node(src, dest, cores):
                assert remote_hops == []
            else:
                assert len(remote_hops) == 1
                a, b = remote_hops[0]
                # Sender-side intermediary has core offset == dest node % C;
                # receiver-side has core offset == source node % C.
                assert address.core_of(a, cores) == address.node_of(dest, cores) % cores
                assert address.core_of(b, cores) == address.node_of(src, cores) % cores


@pytest.mark.parametrize("name", list(SCHEMES))
@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_remote_hops_only_between_partners(name, nodes, cores):
    """Every remote hop travels along a declared remote-partner edge."""
    scheme = get_scheme(name, nodes, cores)
    for src in range(scheme.nranks):
        partners = set(scheme.remote_partners(src))
        for dest in range(scheme.nranks):
            if src == dest:
                continue
            path = trace_path(scheme, src, dest)
            for a, b in zip(path, path[1:]):
                if not address.same_node(a, b, cores):
                    assert b in set(scheme.remote_partners(a)), (
                        f"{name}: remote hop {a}->{b} not in partner set"
                    )


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_nlnr_partner_count_is_n_over_c(nodes, cores):
    scheme = get_scheme("nlnr", nodes, cores)
    counts = [scheme.remote_partner_count(r) for r in range(scheme.nranks)]
    # ~N/C nodes per column (exact split of N-? depends on divisibility).
    assert max(counts) <= -(-nodes // cores)  # ceil
    assert min(counts) >= nodes // cores - 1


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_nl_nr_partner_count_is_n_minus_1(nodes, cores):
    for name in ("node_local", "node_remote"):
        scheme = get_scheme(name, nodes, cores)
        assert all(
            scheme.remote_partner_count(r) == nodes - 1 for r in range(scheme.nranks)
        )


# ----------------------------------------------------------- broadcasts
def simulate_bcast(scheme, origin):
    """Expand the broadcast forwarding tree; returns (copies received
    per rank, number of remote transmissions, number of local ones)."""
    received = np.zeros(scheme.nranks, dtype=int)
    remote = local = 0
    frontier = [(origin, True)]  # (holder, is_origin_injection)
    while frontier:
        nxt = []
        for holder, _ in frontier:
            for target in scheme.bcast_targets(holder, origin):
                assert target != origin, "broadcast must not return to origin"
                if address.same_node(holder, target, scheme.cores):
                    local += 1
                else:
                    remote += 1
                received[target] += 1
                nxt.append((target, False))
        frontier = nxt
    return received, remote, local


@pytest.mark.parametrize("name", list(SCHEMES))
@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_bcast_reaches_everyone_exactly_once(name, nodes, cores):
    scheme = get_scheme(name, nodes, cores)
    for origin in range(scheme.nranks):
        received, _, _ = simulate_bcast(scheme, origin)
        expected = np.ones(scheme.nranks, dtype=int)
        expected[origin] = 0
        assert np.array_equal(received, expected), (
            f"{name} bcast from {origin}: {received}"
        )


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_bcast_remote_message_counts_match_paper(nodes, cores):
    """Section III-C/III-D closed forms: NodeLocal uses C(N-1) remote
    messages per broadcast; NodeRemote and NLNR use N-1."""
    for origin in (0, nodes * cores - 1):
        _, remote_nl, _ = simulate_bcast(get_scheme("node_local", nodes, cores), origin)
        assert remote_nl == cores * (nodes - 1)
        _, remote_nr, _ = simulate_bcast(get_scheme("node_remote", nodes, cores), origin)
        assert remote_nr == nodes - 1
        _, remote_nlnr, _ = simulate_bcast(get_scheme("nlnr", nodes, cores), origin)
        assert remote_nlnr == nodes - 1
        _, remote_none, _ = simulate_bcast(get_scheme("noroute", nodes, cores), origin)
        assert remote_none == (nodes - 1) * cores


# ---------------------------------------------------------- vectorized path
@pytest.mark.parametrize("name", list(SCHEMES))
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_next_hop_vec_matches_scalar(name, data):
    nodes = data.draw(st.integers(2, 12))
    cores = data.draw(st.integers(1, 6))
    scheme = get_scheme(name, nodes, cores)
    cur = data.draw(st.integers(0, scheme.nranks - 1))
    dests = data.draw(
        st.lists(st.integers(0, scheme.nranks - 1), min_size=1, max_size=64)
    )
    dests = np.array([d for d in dests if d != cur], dtype=np.int64)
    if len(dests) == 0:
        return
    vec = scheme.next_hop_vec(cur, dests)
    scalar = np.array([scheme.next_hop(cur, int(d)) for d in dests])
    assert np.array_equal(vec, scalar)


# ---------------------------------------------------------- channels & misc
@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_channel_counts(nodes, cores):
    assert get_scheme("noroute", nodes, cores).channel_count() == 1
    assert get_scheme("node_local", nodes, cores).channel_count() == cores
    assert get_scheme("node_remote", nodes, cores).channel_count() == cores
    assert (
        get_scheme("nlnr", nodes, cores).channel_count()
        == cores * (cores - 1) // 2 + cores
    )


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        get_scheme("teleport", 2, 2)


def test_hybrid_nlnr_routing_identical_to_nlnr():
    nlnr = get_scheme("nlnr", 8, 4)
    hybrid = get_scheme("nlnr_hybrid", 8, 4)
    assert hybrid.free_local_hops and not nlnr.free_local_hops
    for src in range(nlnr.nranks):
        for dest in range(nlnr.nranks):
            if src != dest:
                assert nlnr.next_hop(src, dest) == hybrid.next_hop(src, dest)


def test_paper_schemes_list():
    assert PAPER_SCHEMES == ["noroute", "node_local", "node_remote", "nlnr"]


@pytest.mark.parametrize("name", list(SCHEMES))
def test_average_message_fraction_ordering(name):
    """Section III-E: per-partner share O(V/NC) < O(V/N) < O(VC/N)."""
    nodes, cores = 16, 4
    none = get_scheme("noroute", nodes, cores)
    nl = get_scheme("node_local", nodes, cores)
    nlnr = get_scheme("nlnr", nodes, cores)
    assert (
        none.expected_avg_message_fraction()
        < nl.expected_avg_message_fraction()
        < nlnr.expected_avg_message_fraction()
    )
