"""Tests for YgmWorld/YgmContext construction and results plumbing."""

import pytest

from repro import YgmWorld, get_scheme
from repro.machine import bench_machine, small


def test_world_from_int_shorthand():
    world = YgmWorld(2, scheme="node_local", cores_per_node=3)
    assert world.nranks == 6
    assert world.scheme.name == "node_local"


def test_world_with_scheme_instance():
    cfg = small(nodes=2, cores_per_node=2)
    scheme = get_scheme("nlnr", 2, 2)
    world = YgmWorld(cfg, scheme=scheme)
    assert world.scheme is scheme


def test_world_scheme_shape_mismatch_rejected():
    cfg = small(nodes=2, cores_per_node=2)
    wrong = get_scheme("nlnr", 4, 4)
    with pytest.raises(ValueError):
        YgmWorld(cfg, scheme=wrong)


def test_world_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        YgmWorld(small(), scheme="warp")


def test_context_identity_fields():
    def rank_main(ctx):
        yield ctx.compute(0)
        return (ctx.rank, ctx.world_rank, ctx.node, ctx.core, ctx.nranks)

    res = YgmWorld(small(nodes=2, cores_per_node=3)).run(rank_main)
    for rank, (r, wr, node, core, nranks) in enumerate(res.values):
        assert r == wr == rank
        assert node == rank // 3
        assert core == rank % 3
        assert nranks == 6


def test_context_rng_deterministic_and_distinct():
    def rank_main(ctx):
        yield ctx.compute(0)
        return int(ctx.rng.integers(1 << 30))

    res1 = YgmWorld(small(), seed=5).run(rank_main)
    res2 = YgmWorld(small(), seed=5).run(rank_main)
    res3 = YgmWorld(small(), seed=6).run(rank_main)
    assert res1.values == res2.values
    assert res1.values != res3.values
    assert len(set(res1.values)) == len(res1.values)  # per-rank streams differ


def test_result_finish_times_and_transport():
    def rank_main(ctx):
        yield ctx.compute(float(ctx.rank) * 1e-3)
        mb = ctx.mailbox(recv=lambda m: None)
        yield from mb.send((ctx.rank + 1) % ctx.nranks, "x")
        yield from mb.wait_empty()
        return None

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_remote").run(rank_main)
    assert len(res.finish_times) == 4
    assert max(res.finish_times) == pytest.approx(res.elapsed)
    assert res.transport["remote_packets"] > 0
    assert len(res.per_rank_stats) == 4
    assert res.mailbox_stats.app_messages_sent == 4


def test_multiple_mailboxes_per_rank_stats_aggregate():
    def rank_main(ctx):
        a = ctx.mailbox(recv=lambda m: None)
        b = ctx.mailbox(recv=lambda m: None)
        yield from a.send((ctx.rank + 1) % ctx.nranks, "a")
        yield from b.send((ctx.rank + 1) % ctx.nranks, "b")
        yield from a.wait_empty()
        yield from b.wait_empty()
        return None

    res = YgmWorld(small(nodes=2, cores_per_node=2)).run(rank_main)
    assert res.mailbox_stats.app_messages_sent == 8
    assert res.mailbox_stats.app_messages_delivered == 8


def test_mailbox_capacity_override():
    def rank_main(ctx):
        mb_default = ctx.mailbox(recv=lambda m: None)
        mb_small = ctx.mailbox(recv=lambda m: None, capacity=2)
        assert mb_small.config.capacity == 2
        assert mb_default.config.capacity != 2
        yield from mb_default.wait_empty()
        yield from mb_small.wait_empty()
        return True

    res = YgmWorld(small(), mailbox_capacity=512).run(rank_main)
    assert all(res.values)


# ------------------------------------------- occupancy counters (ISSUE 9)
def test_occupancy_snapshot_reflects_buffered_messages():
    """ctx.occupancy() exposes the live signals adaptive policies read:
    coalescing-buffer fill tracks queued sends and drops after a flush."""
    from repro.core.context import Occupancy

    def rank_main(ctx):
        empty = ctx.occupancy()
        assert isinstance(empty, Occupancy)
        assert empty.buffered_messages == 0
        assert empty.buffer_fill == 0.0

        mb = ctx.mailbox(recv=lambda m: None, capacity=8)
        for i in range(3):
            yield from mb.send((ctx.rank + 1) % ctx.nranks, i)
        mid = ctx.occupancy()
        assert mid.buffered_messages == 3
        assert mid.buffer_fill == pytest.approx(3 / 8)
        for field in ("nic_tx_in_use", "nic_tx_queued",
                      "nic_rx_in_use", "nic_rx_queued"):
            assert getattr(mid, field) >= 0

        yield from mb.wait_empty()
        drained = ctx.occupancy()
        assert drained.buffered_messages == 0
        assert drained.buffer_fill == 0.0
        return True

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr").run(rank_main)
    assert all(res.values)


def test_occupancy_fill_spans_all_mailboxes():
    def rank_main(ctx):
        a = ctx.mailbox(recv=lambda m: None, capacity=4)
        b = ctx.mailbox(recv=lambda m: None, capacity=12)
        yield from a.send((ctx.rank + 1) % ctx.nranks, "a")
        yield from b.send((ctx.rank + 1) % ctx.nranks, "b")
        snap = ctx.occupancy()
        assert snap.buffered_messages == 2
        assert snap.buffer_fill == pytest.approx(2 / 16)
        yield from a.wait_empty()
        yield from b.wait_empty()
        return True

    res = YgmWorld(small(nodes=2, cores_per_node=2)).run(rank_main)
    assert all(res.values)


def test_occupancy_reads_do_not_perturb_the_run():
    """Polling occupancy every step must not change the simulation."""

    def make(poll):
        def rank_main(ctx):
            mb = ctx.mailbox(recv=lambda m: None, capacity=4)
            for i in range(16):
                yield from mb.send((ctx.rank + i) % ctx.nranks, i)
                if poll:
                    ctx.occupancy()
            yield from mb.wait_empty()
            return None
        return rank_main

    quiet = YgmWorld(small(), scheme="nlnr", seed=2).run(make(False))
    polled = YgmWorld(small(), scheme="nlnr", seed=2).run(make(True))
    assert quiet.elapsed == polled.elapsed
    assert quiet.mailbox_stats.as_dict() == polled.mailbox_stats.as_dict()
