"""Adversarial integration: every mailbox feature in one run.

Scalar sends, vectorized batches, asynchronous broadcasts, and
callback-spawned replies are interleaved under tight capacities across
all schemes; the accounting must balance exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import RecordSpec, YgmWorld
from repro.core.routing import SCHEMES
from repro.machine import small

SPEC = RecordSpec("mix", [("src", "u8"), ("seq", "u8")])


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_mixed_traffic_accounting(scheme):
    nodes, cores = 3, 2
    nranks = nodes * cores
    n_scalar, n_batch, n_bcast = 10, 25, 2

    def rank_main(ctx):
        scalar_got, batch_got, bcast_got, echo_got = [], [], [], []

        def on_recv(msg):
            kind = msg[0]
            if kind == "s":
                scalar_got.append(msg)
                mb.post(msg[1], ("echo", ctx.rank))  # reply from callback
            else:
                echo_got.append(msg)

        def on_batch(batch):
            batch_got.extend(map(tuple, batch.tolist()))

        def on_bcast(msg):
            bcast_got.append(msg)

        mb = ctx.mailbox(
            recv=on_recv, recv_batch=on_batch, recv_bcast=on_bcast, capacity=7
        )
        rng = ctx.rng
        for i in range(n_scalar):
            yield from mb.send(int(rng.integers(ctx.nranks)), ("s", ctx.rank, i))
        dests = rng.integers(0, ctx.nranks, size=n_batch).astype(np.int64)
        yield from mb.send_batch(
            dests,
            SPEC.build(
                src=np.full(n_batch, ctx.rank, dtype="u8"),
                seq=np.arange(n_batch, dtype="u8"),
            ),
            spec=SPEC,
        )
        for _ in range(n_bcast):
            yield from mb.send_bcast(("b", ctx.rank))
        yield from mb.wait_empty()
        return (len(scalar_got), len(batch_got), len(bcast_got), len(echo_got))

    res = YgmWorld(small(nodes=nodes, cores_per_node=cores), scheme=scheme, seed=3).run(
        rank_main
    )
    scalars = sum(v[0] for v in res.values)
    batches = sum(v[1] for v in res.values)
    bcasts = sum(v[2] for v in res.values)
    echoes = sum(v[3] for v in res.values)
    assert scalars == n_scalar * nranks
    assert batches == n_batch * nranks
    assert bcasts == n_bcast * nranks * (nranks - 1)
    assert echoes == scalars  # every scalar delivery produced one echo
    s = res.mailbox_stats
    assert s.entries_sent == s.entries_received


@given(
    seed=st.integers(0, 1000),
    capacity=st.sampled_from([1, 2, 5, 17]),
    scheme=st.sampled_from(sorted(SCHEMES)),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_tiny_capacity_never_loses_replies(seed, capacity, scheme):
    """Capacity 1 forces a flush on every message -- the most hostile
    interleaving for the termination protocol with callback replies."""

    def rank_main(ctx):
        got = []

        def on_recv(msg):
            got.append(msg)
            if msg[0] == "ping":
                mb.post(msg[1], ("pong", ctx.rank))

        mb = ctx.mailbox(recv=on_recv, capacity=capacity)
        rng = ctx.rng
        targets = [int(rng.integers(ctx.nranks)) for _ in range(4)]
        for t in targets:
            yield from mb.send(t, ("ping", ctx.rank))
        yield from mb.wait_empty()
        pings = sum(1 for m in got if m[0] == "ping")
        pongs = sum(1 for m in got if m[0] == "pong")
        return (pings, pongs, len(targets))

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme=scheme, seed=seed).run(
        rank_main
    )
    total_pings = sum(v[0] for v in res.values)
    total_pongs = sum(v[1] for v in res.values)
    total_sent = sum(v[2] for v in res.values)
    assert total_pings == total_sent
    assert total_pongs == total_pings
