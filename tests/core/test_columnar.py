"""Columnar <-> object boundary equivalence (the PR 6 tentpole pin).

The struct-of-arrays hot path (``MailboxConfig.columnar``) must be
invisible to everything above the coalescing layer: identical delivered
values *and delivery order*, identical stats and simulated time, and
per-message wire sizes byte-identical to the frozen reference packer.
These tests run the same workloads through both paths across every
registered routing scheme and diff the results exactly.
"""

import pickle

import numpy as np
import pytest

from repro import YgmWorld
from repro.core.coalescing import (
    ENTRY_HEADER_BYTES,
    BcastEntry,
    CoalescingBuffer,
    P2PColumns,
)
from repro.core.routing import SCHEMES
from repro.machine import small
from repro.mpi.sizes import payload_nbytes_many
from repro.serde import packed_size_many
from tests.serde import reference_packer

ALL_SCHEMES = list(SCHEMES)

#: A deterministic mixed-payload stream: ints (the vectorized-size fast
#: path), plus strings/tuples/floats/None (the per-element fallback).
def _payloads(n, salt=0):
    out = []
    for i in range(n):
        k = (i + salt) % 6
        if k in (0, 1, 2):
            out.append((i * 2654435761 + salt) % (1 << 40) - (i % 3) * 7)
        elif k == 3:
            out.append(f"m{i}")
        elif k == 4:
            out.append((i, float(i) / 3.0))
        else:
            out.append(None)
    return out


# ------------------------------------------------------------ unit: columns
def test_p2p_columns_accounting():
    dests = np.array([3, 1, 2], dtype=np.int64)
    payloads = np.empty(3, dtype=object)
    payloads[:] = [10, "x", None]
    sizes = np.array([2, 3, 1], dtype=np.int64)
    cols = P2PColumns(dests, payloads, sizes)
    assert cols.kind == "p2p_cols"
    assert cols.count == 3
    assert cols.wire_bytes == 6 + 3 * ENTRY_HEADER_BYTES
    assert cols.lins is None
    with pytest.raises(ValueError, match="lengths differ"):
        P2PColumns(dests, payloads[:2], sizes)


def test_columns_pickle_as_contiguous_buffers():
    """The column layout is what a PDES engine would ship cross-process."""
    buf = CoalescingBuffer(hop=0)
    for i in range(5):
        buf.add_p2p(dest=i % 3, payload=i * 7, nbytes=2)
    entries, nbytes, count = buf.take()
    (cols,) = entries
    assert cols.dests.flags["C_CONTIGUOUS"]
    assert cols.nbytes.flags["C_CONTIGUOUS"]
    clone = pickle.loads(pickle.dumps(cols))
    assert clone.dests.tolist() == cols.dests.tolist()
    assert clone.payloads.tolist() == cols.payloads.tolist()
    assert clone.nbytes.tolist() == cols.nbytes.tolist()


def test_buffer_closes_runs_in_call_order():
    """Scalar runs and whole entries interleave in exact add order."""
    buf = CoalescingBuffer(hop=1)
    buf.add_p2p(0, "a", 2)
    buf.add_p2p(2, "b", 3)
    bc = BcastEntry(origin=0, payload="B", nbytes=4)
    buf.add(bc)
    buf.add_p2p(1, "c", 5)
    entries, nbytes, count = buf.take()
    assert [e.kind for e in entries] == ["p2p_cols", "bcast", "p2p_cols"]
    assert entries[0].payloads.tolist() == ["a", "b"]
    assert entries[2].payloads.tolist() == ["c"]
    assert count == 4
    assert nbytes == (2 + 3 + 4 + 5) + 4 * ENTRY_HEADER_BYTES
    # The drained buffer starts a fresh run.
    buf.add_p2p(0, "d", 1)
    entries2, _, count2 = buf.take()
    assert count2 == 1 and entries2[0].payloads.tolist() == ["d"]


# ------------------------------------------------- wire-byte equivalence
def test_message_sizes_match_frozen_reference_packer():
    payloads = _payloads(64) + [
        0, -1, 2**63 - 1, -(2**63), 2**200, -(2**200), True, False, 127, 128,
    ]
    sizes = payload_nbytes_many(payloads)
    expected = [len(reference_packer.pack(p)) for p in payloads]
    assert sizes.tolist() == expected
    ints = [p for p in payloads if type(p) is int]
    assert packed_size_many(ints).tolist() == [
        len(reference_packer.pack(p)) for p in ints
    ]


# ----------------------------------------------- end-to-end equivalence
def _scalar_workload(msgs, capacity, with_self, with_chain, with_bcast):
    """Scalar sends with optional callback-posted children and bcasts."""

    def rank_main(ctx):
        got = []
        mb_box = []

        def on_recv(v):
            got.append(v)
            if with_chain and isinstance(v, tuple) and v[0] == "ping":
                # Children posted from inside a delivery callback.
                mb_box[0].post((v[1] + 1) % ctx.nranks, ("pong", v[1]))

        mb = ctx.mailbox(recv=on_recv, capacity=capacity)
        mb_box.append(mb)
        n = ctx.nranks
        rank = ctx.rank
        payloads = _payloads(msgs, salt=rank)
        for i, p in enumerate(payloads):
            lo = 0 if with_self else 1
            dest = (rank + lo + i % (n - lo)) % n
            yield from mb.send(dest, p)
        if with_chain and rank == 0:
            yield from mb.send((rank + 1) % n, ("ping", rank))
        if with_bcast:
            yield from mb.send_bcast(("news", rank))
        yield from mb.wait_empty()
        return got

    return rank_main


def _run(scheme, columnar, rank_main, nodes=3, cores=2, seed=0):
    world = YgmWorld(
        small(nodes=nodes, cores_per_node=cores),
        scheme=scheme,
        seed=seed,
        mailbox_capacity=2**14,
        columnar=columnar,
    )
    return world.run(rank_main)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_columnar_and_object_paths_bit_identical(scheme):
    """Same values, same delivery order, same stats, same simulated time."""
    rank_main = _scalar_workload(
        msgs=40, capacity=8, with_self=True, with_chain=True, with_bcast=True
    )
    a = _run(scheme, True, rank_main)
    b = _run(scheme, False, rank_main)
    assert a.values == b.values  # exact per-rank order, not just multisets
    assert a.elapsed == b.elapsed
    assert a.finish_times == b.finish_times
    assert a.mailbox_stats == b.mailbox_stats
    assert a.per_rank_stats == b.per_rank_stats
    assert a.transport == b.transport


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
@pytest.mark.parametrize("size", ["empty", "singleton", "max_capacity"])
def test_post_many_boundary_batches(scheme, size):
    """post_many at the boundary shapes, vs the object reference path."""
    capacity = 16

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append, capacity=capacity)
        n = {"empty": 0, "singleton": 1, "max_capacity": capacity}[size]
        payloads = _payloads(n, salt=ctx.rank)
        dests = [(ctx.rank + 1 + i) % ctx.nranks for i in range(n)]
        yield from mb.send_many(dests, payloads)
        yield from mb.wait_empty()
        return got

    a = _run(scheme, True, rank_main)
    b = _run(scheme, False, rank_main)
    assert a.values == b.values
    assert a.elapsed == b.elapsed
    assert a.mailbox_stats == b.mailbox_stats
    total = sum(len(v) for v in a.values)
    expected = {"empty": 0, "singleton": 1, "max_capacity": capacity}[size] * 6
    assert total == expected


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_post_many_agrees_with_scalar_post_loop(scheme):
    """send_many and a loop of send produce the same deliveries.

    Without self-addressed destinations the order is exact; the columnar
    injection bins stably, so each hop's column holds the same message
    sequence the scalar loop would have appended.
    """
    msgs = 30

    def many_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append, capacity=2**14)
        payloads = _payloads(msgs, salt=ctx.rank)
        dests = [(ctx.rank + 1 + i % (ctx.nranks - 1)) % ctx.nranks for i in range(msgs)]
        yield from mb.send_many(dests, payloads)
        yield from mb.wait_empty()
        return got

    def loop_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append, capacity=2**14)
        payloads = _payloads(msgs, salt=ctx.rank)
        for i, p in enumerate(payloads):
            dest = (ctx.rank + 1 + i % (ctx.nranks - 1)) % ctx.nranks
            yield from mb.send(dest, p)
        yield from mb.wait_empty()
        return got

    a = _run(scheme, True, many_main)
    b = _run(scheme, True, loop_main)
    assert a.values == b.values


def test_post_many_delivers_self_messages_in_index_order():
    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append, capacity=2**14)
        if ctx.rank == 0:
            yield from mb.send_many([0, 1, 0, 0], ["s0", "r", "s1", "s2"])
        yield from mb.wait_empty()
        return got

    res = _run("noroute", True, rank_main, nodes=2, cores=1)
    assert res.values[0] == ["s0", "s1", "s2"]
    assert res.values[1] == ["r"]


def test_post_many_validates_input():
    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda v: None)
        with pytest.raises(ValueError, match="out of range"):
            mb.post_many([ctx.nranks + 1], ["x"])
        with pytest.raises(ValueError, match="lengths differ"):
            mb.post_many([0, 1], ["x"])
        yield from mb.wait_empty()
        return True

    assert all(_run("nlnr", True, rank_main).values)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_columnar_runs_under_debug_pool(scheme, monkeypatch):
    """End-to-end aliasing audit: the whole pipeline under a poisoning
    ListPool (REPRO_DEBUG_POOL) -- any entry list recycled while still
    referenced would raise at the first touch."""
    monkeypatch.setenv("REPRO_DEBUG_POOL", "1")
    rank_main = _scalar_workload(
        msgs=24, capacity=6, with_self=True, with_chain=True, with_bcast=True
    )
    res = _run(scheme, True, rank_main, nodes=2, cores=2)
    assert sum(len(v) for v in res.values) > 0


def test_columnar_lineage_stays_aligned():
    """With the causal profiler on, every injected message's lineage id
    is delivered exactly once and packet membership covers the columns."""
    from repro.trace import Tracer

    tracer = Tracer(categories=(), profile=True)
    rank_main = _scalar_workload(
        msgs=20, capacity=8, with_self=True, with_chain=True, with_bcast=False
    )
    world = YgmWorld(
        small(nodes=2, cores_per_node=2),
        scheme="nlnr",
        seed=0,
        mailbox_capacity=2**14,
        tracer=tracer,
        columnar=True,
    )
    world.run(rank_main)
    prof = tracer.lineage
    injected = {lid for lid, *_ in prof.msgs}
    injected.update(
        lid0 + i
        for lid0, _src, dests, _t, _parent in prof.batch_msgs
        for i in range(len(dests))
    )
    delivered = [lid for lid, _rank, _t in prof.deliveries]
    for lids, _rank, _t in prof.batch_deliveries:
        delivered.extend(np.asarray(lids).tolist())
    assert sorted(delivered) == sorted(injected)  # each exactly once
    # Every non-self message appears in at least one packet's membership.
    member_lids = set()
    for members in prof.pkt_members:
        for m in members:
            if isinstance(m, (int, np.integer)):
                member_lids.add(int(m))
            else:
                member_lids.update(np.asarray(m).tolist())
    assert member_lids <= injected


def test_profiled_columnar_run_is_unperturbed():
    """Profiling must not change results or timing of the columnar path."""
    rank_main = _scalar_workload(
        msgs=24, capacity=8, with_self=True, with_chain=True, with_bcast=True
    )

    def run(tracer):
        world = YgmWorld(
            small(nodes=2, cores_per_node=2),
            scheme="node_remote",
            seed=0,
            mailbox_capacity=2**14,
            tracer=tracer,
            columnar=True,
        )
        return world.run(rank_main)

    from repro.trace import Tracer

    plain = run(None)
    profiled = run(Tracer(categories=(), profile=True))
    assert plain.values == profiled.values
    assert plain.elapsed == profiled.elapsed
