"""Idle-time accounting: the paper's core-utilization claim, measurable."""

import numpy as np
import pytest

from repro import YgmWorld
from repro.machine import small


def test_idle_time_accrues_while_waiting_for_straggler():
    """Ranks blocked in wait_empty on a slow peer accrue idle time;
    the straggler itself (busy computing) accrues almost none."""

    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        if ctx.rank == 0:
            yield ctx.compute(0.1)
            for dest in range(1, ctx.nranks):
                yield from mb.send(dest, "late")
        yield from mb.wait_empty()
        return mb.stats.idle_time

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_remote").run(rank_main)
    straggler_idle = res.values[0]
    others_idle = res.values[1:]
    assert all(idle > 0.09 for idle in others_idle)
    assert straggler_idle < 0.01


def test_utilization_reflects_idle():
    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        if ctx.rank == 0:
            yield ctx.compute(0.05)
        yield from mb.wait_empty()
        return None

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="nlnr").run(rank_main)
    util = res.utilization()
    assert len(util) == 4
    assert util[0] > 0.95  # the busy rank
    assert all(u < 0.30 for u in util[1:])  # the waiting ranks


def test_no_idle_when_everyone_balanced():
    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        yield from mb.send((ctx.rank + 1) % ctx.nranks, "x")
        yield from mb.wait_empty()
        return None

    res = YgmWorld(small(nodes=2, cores_per_node=2), scheme="node_local").run(rank_main)
    # Balanced tiny job: idle is bounded by protocol latency, far below
    # the straggler scenario above.
    assert res.mailbox_stats.idle_time < res.elapsed * 4
