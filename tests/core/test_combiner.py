"""Property tests for the in-network combining algebras (ISSUE 9 sat-4).

Every app-level combiner must behave as a merge algebra: the combined
result is independent of the order records meet in (commutativity), and
of how the stream is windowed into partial combines (associativity --
this is exactly what intermediate hops do).  The ``min`` algebras must
additionally be idempotent, which is what makes their combining
bit-exact end to end.  Float ``sum`` (SpMV) holds the same structure up
to rounding only, so its re-grouping equivalences are checked with a
tolerance.
"""

import numpy as np
import pytest

from repro.apps.bfs import BFS_COMBINER, BFS_SPEC
from repro.apps.connected_components import CC_COMBINER, CC_SPEC
from repro.apps.degree_count import DEGREE_COMBINER, DEGREE_COUNT_SPEC
from repro.apps.kmer_count import KMER_COMBINER, KMER_COUNT_SPEC
from repro.apps.sssp import SSSP_COMBINER, SSSP_SPEC
from repro.core.routing.combiner import REDUCE_OPS, Combiner
from repro.linalg.spmv import SPMV_COMBINER, SPMV_SPEC


def _random_case(app, rng, n):
    """(combiner, dests, batch) with a deliberately collision-rich key
    space so groups of size > 1 are common."""
    dests = rng.integers(0, 6, n)
    if app == "degree_count":
        batch = DEGREE_COUNT_SPEC.build(
            vertex=rng.integers(0, 12, n).astype("u8"),
            count=rng.integers(1, 5, n).astype("u8"),
        )
        return DEGREE_COMBINER, dests, batch
    if app == "kmer_count":
        batch = KMER_COUNT_SPEC.build(
            kmer=rng.integers(0, 9, n).astype("u8"),
            count=rng.integers(1, 4, n).astype("u8"),
        )
        return KMER_COMBINER, dests, batch
    if app == "cc":
        batch = CC_SPEC.build(
            vertex=rng.integers(0, 12, n).astype("u8"),
            label=rng.integers(0, 64, n).astype("u8"),
        )
        return CC_COMBINER, dests, batch
    if app == "bfs":
        batch = BFS_SPEC.build(
            vertex=rng.integers(0, 12, n).astype("u8"),
            dist=rng.integers(0, 20, n).astype("u8"),
        )
        return BFS_COMBINER, dests, batch
    if app == "sssp":
        batch = SSSP_SPEC.build(
            vertex=rng.integers(0, 12, n).astype("u8"),
            dist=rng.random(n),
        )
        return SSSP_COMBINER, dests, batch
    if app == "spmv":
        batch = SPMV_SPEC.build(
            row=rng.integers(0, 12, n).astype("u8"),
            val=rng.standard_normal(n),
        )
        return SPMV_COMBINER, dests, batch
    raise AssertionError(app)


APPS = ["degree_count", "kmer_count", "cc", "bfs", "sssp", "spmv"]
MIN_APPS = ["cc", "bfs", "sssp"]  # idempotent min algebras


def _canon(comb, result):
    """Sort a combine() result by (dest, *key_fields).

    When nothing merges, ``combine`` passes the original arrays through
    untouched (no copy), so equal *multisets* may come back in different
    orders; the algebraic properties hold up to this canonical order.
    """
    dests, batch, lins, eliminated = result
    order = np.lexsort(
        [batch[f] for f in reversed(comb.key_fields)] + [dests]
    )
    return dests[order], batch[order], lins, eliminated


def _assert_combined_equal(comb, a, b, exact):
    da, ba, _, _ = _canon(comb, a)
    db, bb, _, _ = _canon(comb, b)
    assert np.array_equal(da, db)
    for f in comb.key_fields:
        assert np.array_equal(ba[f], bb[f])
    for f, op in comb.reduce_fields.items():
        if exact:
            assert np.array_equal(ba[f], bb[f])
        else:
            assert np.allclose(ba[f], bb[f], rtol=1e-12, atol=1e-14)


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("seed", range(8))
def test_merge_order_equivalence(app, seed):
    """Commutativity: any permutation of the input records combines to
    the identical (canonically ordered) output."""
    rng = np.random.default_rng(seed)
    comb, dests, batch = _random_case(app, rng, n=int(rng.integers(2, 80)))
    base = comb.combine(dests, batch)
    perm = rng.permutation(len(dests))
    shuffled = comb.combine(dests[perm], batch[perm])
    assert base[3] == shuffled[3]  # same number eliminated
    _assert_combined_equal(comb, base, shuffled, comb.exact)


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("seed", range(8))
def test_windowed_combining_equals_one_shot(app, seed):
    """Associativity: combining two windows separately and then
    combining the concatenation (what an intermediate hop does) matches
    combining everything at once."""
    rng = np.random.default_rng(100 + seed)
    comb, dests, batch = _random_case(app, rng, n=int(rng.integers(4, 80)))
    cut = int(rng.integers(1, len(dests)))
    d1, b1, _, e1 = comb.combine(dests[:cut], batch[:cut])
    d2, b2, _, e2 = comb.combine(dests[cut:], batch[cut:])
    rewindowed = comb.combine(
        np.concatenate([d1, d2]), np.concatenate([b1, b2])
    )
    one_shot = comb.combine(dests, batch)
    assert e1 + e2 + rewindowed[3] == one_shot[3]
    _assert_combined_equal(comb, rewindowed, one_shot, comb.exact)


@pytest.mark.parametrize("app", MIN_APPS)
@pytest.mark.parametrize("seed", range(4))
def test_min_algebras_are_idempotent(app, seed):
    """Doubling the stream changes nothing for the ``min`` algebras:
    re-delivering a dominated update can never move the result."""
    rng = np.random.default_rng(200 + seed)
    comb, dests, batch = _random_case(app, rng, n=int(rng.integers(2, 60)))
    once = comb.combine(dests, batch)
    doubled = comb.combine(
        np.concatenate([dests, dests]), np.concatenate([batch, batch])
    )
    _assert_combined_equal(comb, once, doubled, exact=True)
    # And combining is a fixpoint: re-combining its own output is a no-op.
    again = comb.combine(once[0], once[1])
    assert again[3] == 0
    _assert_combined_equal(comb, once, again, exact=True)


@pytest.mark.parametrize("seed", range(4))
def test_sum_algebras_conserve_totals(seed):
    """Integer count-sum combining must conserve the global total."""
    rng = np.random.default_rng(300 + seed)
    for app in ("degree_count", "kmer_count"):
        comb, dests, batch = _random_case(app, rng, n=50)
        (field,) = comb.reduce_fields
        _, out, _, eliminated = comb.combine(dests, batch)
        assert int(out[field].sum()) == int(batch[field].sum())
        assert eliminated == len(batch) - len(out)


def test_lineage_representative_is_first_posted():
    """Merged groups keep the earliest-posted record's lineage id (the
    others end at the combining rank)."""
    dests = np.array([2, 2, 2, 3], dtype=np.int64)
    batch = DEGREE_COUNT_SPEC.build(
        vertex=np.array([7, 7, 5, 7], dtype="u8"),
        count=np.array([1, 1, 1, 1], dtype="u8"),
    )
    lins = np.array([10, 11, 12, 13], dtype=np.int64)
    out_dests, out, out_lins, eliminated = DEGREE_COMBINER.combine(
        dests, batch, lins
    )
    assert eliminated == 1
    assert len(out_lins) == len(out_dests) == len(out)
    # The (dest=2, vertex=7) pair merged; 10 posted first and survives.
    by_key = dict(zip(zip(out_dests.tolist(), out["vertex"].tolist()),
                      out_lins.tolist()))
    assert by_key[(2, 7)] == 10
    assert by_key[(2, 5)] == 12
    assert by_key[(3, 7)] == 13


def test_singleton_and_empty_batches_pass_through():
    for n in (0, 1):
        dests = np.arange(n, dtype=np.int64)
        batch = DEGREE_COUNT_SPEC.zeros(n)
        out_dests, out, out_lins, eliminated = DEGREE_COMBINER.combine(
            dests, batch
        )
        assert eliminated == 0
        assert out_dests is dests and out is batch


def test_combiner_validation():
    with pytest.raises(ValueError, match="key field"):
        Combiner("bad", key_fields=(), reduce_fields={"x": "sum"})
    with pytest.raises(ValueError, match="reduce op"):
        Combiner("bad", key_fields=("k",), reduce_fields={"x": "mean"})
    with pytest.raises(ValueError, match="both key and reduce"):
        Combiner("bad", key_fields=("x",), reduce_fields={"x": "sum"})


def test_reduce_ops_registry_is_algebraically_sound():
    """Every registered op must be associative and commutative on the
    dtypes the apps use (spot-checked numerically)."""
    rng = np.random.default_rng(0)
    xs = rng.integers(0, 100, 30)
    for name, op in REDUCE_OPS.items():
        a, b, c = xs[:10], xs[10:20], xs[20:]
        assert np.array_equal(op(op(a, b), c), op(a, op(b, c)))
        assert np.array_equal(op(a, b), op(b, a))
