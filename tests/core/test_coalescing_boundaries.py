"""Coalescing boundary behaviour and exact entries_forwarded accounting.

Regression guard for the PR 1 stats fixes: flush triggering exactly at
the capacity boundary, reentrant posts from delivery callbacks during a
flush, and the transport-entry accounting identity

    entries_sent = injected_remote_messages + entries_forwarded
    entries_received = entries_sent

where the expected values are derived independently by walking each
message's routing path hop by hop.
"""

import numpy as np
import pytest

from repro import RecordSpec, YgmWorld
from repro.machine import small

SPEC = RecordSpec("cb", [("src", "u8"), ("val", "i8")])
CAP = 8


def _observe_batch_flush(n_records):
    """Send one batch of ``n_records`` and report (queued, flushes) right
    after the send returns (before wait_empty flushes the remainder)."""

    def rank_main(ctx):
        mb = ctx.mailbox(recv_batch=lambda b: None, capacity=CAP)
        observed = {}
        if ctx.rank == 0:
            vals = np.arange(n_records, dtype=np.int64)
            batch = SPEC.build(
                src=np.zeros(n_records, dtype=np.uint64), val=vals
            )
            # Spread over every other rank; capacity counts the *total*
            # queued across per-hop buffers, not any single buffer.
            dests = 1 + vals % (ctx.nranks - 1)
            yield from mb.send_batch(dests, batch, spec=SPEC)
            observed = {"queued": mb.queued, "flushes": mb.stats.flushes}
        yield from mb.wait_empty()
        return observed

    res = YgmWorld(small(), scheme="noroute", mailbox_capacity=CAP).run(
        rank_main
    )
    return res.values[0], res


def test_batch_one_under_capacity_does_not_flush():
    obs, res = _observe_batch_flush(CAP - 1)
    assert obs == {"queued": CAP - 1, "flushes": 0}
    assert res.mailbox_stats.app_messages_delivered == CAP - 1


def test_batch_exactly_at_capacity_flushes():
    obs, res = _observe_batch_flush(CAP)
    assert obs == {"queued": 0, "flushes": 1}
    assert res.mailbox_stats.app_messages_delivered == CAP


def test_batch_one_over_capacity_flushes_everything():
    obs, res = _observe_batch_flush(CAP + 1)
    assert obs == {"queued": 0, "flushes": 1}
    assert res.mailbox_stats.app_messages_delivered == CAP + 1


def _path_len(scheme, src: int, dest: int) -> int:
    hops, cur = 0, src
    while cur != dest:
        cur = scheme.next_hop(cur, dest)
        hops += 1
        assert hops <= 8, "routing loop"
    return hops


@pytest.mark.parametrize(
    "scheme", ["noroute", "node_local", "node_remote", "nlnr"]
)
def test_reentrant_echo_keeps_entry_accounting_exact(scheme):
    """Pings answered by echoes posted from the delivery callback (i.e.
    while the receiving rank may be mid-flush/progress); the hop-exact
    accounting identity must survive the reentrancy."""
    n_pings = 6

    def rank_main(ctx):
        got = []

        def on_recv(msg):
            kind, src, i = msg
            got.append((kind, src, i))
            if kind == "ping":
                mb.post(src, ("echo", ctx.rank, i))  # reentrant post

        mb = ctx.mailbox(recv=on_recv, capacity=3)
        for i in range(n_pings):
            dest = (ctx.rank + 1 + i) % ctx.nranks
            yield from mb.send(dest, ("ping", ctx.rank, i))
        yield from mb.wait_empty()
        return sorted(got)

    world = YgmWorld(small(), scheme=scheme, mailbox_capacity=3)
    res = world.run(rank_main)
    nranks = world.nranks

    # Independently derive every posted message and walk its route.
    messages = []  # (src, dest)
    for rank in range(nranks):
        for i in range(n_pings):
            dest = (rank + 1 + i) % nranks
            messages.append((rank, dest))
            messages.append((dest, rank))  # the echo
    remote = [(s, d) for s, d in messages if s != d]
    expected_sent = sum(_path_len(world.scheme, s, d) for s, d in remote)
    expected_forwarded = expected_sent - len(remote)

    stats = res.mailbox_stats
    assert stats.app_messages_sent == len(messages)
    assert stats.app_messages_delivered == len(messages)
    assert stats.entries_received == stats.entries_sent
    assert stats.entries_sent == expected_sent
    assert stats.entries_forwarded == expected_forwarded

    # And every rank saw exactly its pings + echoes.
    for rank, got in enumerate(res.values):
        expected = sorted(
            [("ping", s, i)
             for s in range(nranks)
             for i in range(n_pings) if (s + 1 + i) % nranks == rank]
            + [("echo", (rank + 1 + i) % nranks, i) for i in range(n_pings)]
        )
        assert got == expected


def test_reentrant_batch_post_from_batch_callback():
    """recv_batch callbacks that immediately post_batch replies, sized to
    land exactly on the capacity boundary at the replier."""
    def rank_main(ctx):
        received = []

        def on_batch(batch):
            srcs = batch["src"].astype(np.int64)
            vals = batch["val"]
            replies = vals < 0  # only first-generation records get replies
            received.extend(np.abs(vals).tolist())
            if replies.any():
                out = SPEC.build(
                    src=np.full(int(replies.sum()), ctx.rank, dtype=np.uint64),
                    val=np.abs(vals[replies]),
                )
                mb.post_batch(srcs[replies], out, spec=SPEC)

        mb = ctx.mailbox(recv_batch=on_batch, capacity=CAP)
        vals = -np.arange(1, CAP + 1, dtype=np.int64)  # exactly capacity
        dests = np.full(CAP, (ctx.rank + 1) % ctx.nranks, dtype=np.int64)
        batch = SPEC.build(src=np.full(CAP, ctx.rank, dtype=np.uint64), val=vals)
        yield from mb.send_batch(dests, batch, spec=SPEC)
        yield from mb.wait_empty()
        return sorted(received)

    world = YgmWorld(small(), scheme="nlnr", mailbox_capacity=CAP)
    res = world.run(rank_main)
    expected = sorted(list(range(1, CAP + 1)) * 2)  # originals + replies
    assert res.values == [expected] * world.nranks
    stats = res.mailbox_stats
    assert stats.app_messages_sent == stats.app_messages_delivered
    assert stats.entries_sent == stats.entries_received
