"""The PR 9 routing schemes: node-aware aggregation and adaptive routing.

Structural invariants beyond the shared ``SCHEMES``-parametrized battery
in test_routing.py (which already covers delivery, hop bounds, partner
edges, broadcast coverage and vec/scalar agreement for every registered
scheme): the node-aware funnel property, the adaptive scheme's two
branches under controlled congestion, and the satellite-2 regression
that no built-in scheme falls back to the per-message ``next_hop_vec``
loop.
"""

import numpy as np
import pytest

from repro.core.routing import (
    EXTENDED_SCHEMES,
    PAPER_SCHEMES,
    SCHEMES,
    get_scheme,
)
from repro.core.routing.base import RoutingScheme
from repro.machine import address

SHAPES = [(2, 2), (3, 2), (2, 4), (4, 4), (8, 4), (5, 3), (12, 4)]


def test_extended_schemes_list():
    assert EXTENDED_SCHEMES == PAPER_SCHEMES + ["node_aware", "adaptive"]
    assert set(EXTENDED_SCHEMES) <= set(SCHEMES)


# ------------------------------------------------------------- node_aware
@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_node_aware_remote_hops_only_between_aggregators(nodes, cores):
    """The funnel property: every off-node transmission runs between the
    two nodes' designated aggregator ranks."""
    scheme = get_scheme("node_aware", nodes, cores)

    def aggregator(node):
        return node * cores + node % cores

    for src in range(scheme.nranks):
        for dest in range(scheme.nranks):
            if src == dest:
                continue
            cur = src
            for _ in range(scheme.max_hops()):
                if cur == dest:
                    break
                nxt = scheme.next_hop(cur, dest)
                if not address.same_node(cur, nxt, cores):
                    assert cur == aggregator(address.node_of(cur, cores))
                    assert nxt == aggregator(address.node_of(nxt, cores))
                cur = nxt
            assert cur == dest


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_node_aware_partners_and_channels(nodes, cores):
    scheme = get_scheme("node_aware", nodes, cores)
    assert scheme.channel_count() == 1
    for rank in range(scheme.nranks):
        node = address.node_of(rank, cores)
        partners = scheme.remote_partners(rank)
        if rank == node * cores + node % cores:
            # Aggregators talk to every *other* aggregator, nobody else.
            assert len(partners) == nodes - 1
            assert all(
                p == address.node_of(p, cores) * cores
                + address.node_of(p, cores) % cores
                for p in partners
            )
        else:
            assert partners == []


# --------------------------------------------------------------- adaptive
class _FakeResource:
    def __init__(self, in_use=0, queue_length=0):
        self.in_use = in_use
        self.queue_length = queue_length


class _FakeMachine:
    def __init__(self, nodes):
        self.nic_tx = [_FakeResource() for _ in range(nodes)]


@pytest.mark.parametrize("nodes,cores", [(4, 4), (8, 4)])
def test_adaptive_unbound_routes_direct(nodes, cores):
    """Without a machine there is no occupancy signal: ship direct."""
    adaptive = get_scheme("adaptive", nodes, cores)
    direct = get_scheme("noroute", nodes, cores)
    dests = np.arange(adaptive.nranks, dtype=np.int64)
    for src in (0, adaptive.nranks - 1):
        mine = dests[dests != src]
        assert np.array_equal(
            adaptive.next_hop_vec(src, mine), direct.next_hop_vec(src, mine)
        )


@pytest.mark.parametrize("nodes,cores", [(4, 4), (8, 4)])
def test_adaptive_switches_on_live_congestion(nodes, cores):
    """Idle NIC -> direct; occupied NIC -> the NLNR funnel, per call."""
    adaptive = get_scheme("adaptive", nodes, cores)
    nlnr = get_scheme("nlnr", nodes, cores)
    machine = _FakeMachine(nodes)
    adaptive.bind_machine(machine)
    src = 1
    dests = np.array(
        [d for d in range(adaptive.nranks) if d != src], dtype=np.int64
    )

    # Idle: every hop is the destination itself.
    assert np.array_equal(adaptive.next_hop_vec(src, dests), dests)
    assert adaptive.next_hop(src, int(dests[-1])) == int(dests[-1])

    # Congest this rank's node: the same call now routes like NLNR.
    machine.nic_tx[src // cores].in_use = 1
    assert np.array_equal(
        adaptive.next_hop_vec(src, dests), nlnr.next_hop_vec(src, dests)
    )
    assert adaptive.next_hop(src, int(dests[-1])) == nlnr.next_hop(
        src, int(dests[-1])
    )

    # Back to idle: direct again (the signal is read per decision).
    machine.nic_tx[src // cores].in_use = 0
    assert np.array_equal(adaptive.next_hop_vec(src, dests), dests)

    # A queue backlog counts as congestion too.
    machine.nic_tx[src // cores].queue_length = 2
    assert np.array_equal(
        adaptive.next_hop_vec(src, dests), nlnr.next_hop_vec(src, dests)
    )


@pytest.mark.parametrize("nodes,cores", [(4, 4), (8, 2)])
def test_adaptive_bcast_tree_is_static(nodes, cores):
    """Broadcast trees must not depend on load: a tree rewired mid-flight
    would duplicate or drop copies.  Adaptive always uses NLNR's tree."""
    adaptive = get_scheme("adaptive", nodes, cores)
    nlnr = get_scheme("nlnr", nodes, cores)
    machine = _FakeMachine(nodes)
    adaptive.bind_machine(machine)
    for origin in (0, adaptive.nranks - 1):
        for holder in range(adaptive.nranks):
            idle = adaptive.bcast_targets(holder, origin)
            machine.nic_tx[holder // cores].in_use = 3
            congested = adaptive.bcast_targets(holder, origin)
            machine.nic_tx[holder // cores].in_use = 0
            assert idle == congested == nlnr.bcast_targets(holder, origin)


def test_static_schemes_ignore_bind_machine():
    for name in ("noroute", "node_local", "node_remote", "nlnr", "node_aware"):
        scheme = get_scheme(name, 4, 2)
        scheme.bind_machine(object())  # must be a harmless no-op
        assert scheme.next_hop(0, 5) in range(scheme.nranks)


# ------------------------------------------------- satellite 2: no fallback
@pytest.mark.parametrize("name", list(SCHEMES))
def test_no_builtin_scheme_uses_the_scalar_fallback(name, monkeypatch):
    """Every registered scheme must override ``next_hop_vec``: the base
    class's per-message fallback loop is for out-of-tree schemes only."""

    def boom(self, cur, dests):
        raise AssertionError(
            f"{type(self).__name__} fell back to the scalar next_hop_vec"
        )

    monkeypatch.setattr(RoutingScheme, "next_hop_vec", boom)
    scheme = get_scheme(name, 4, 4)
    if name == "adaptive":
        scheme.bind_machine(_FakeMachine(4))
    dests = np.array([3, 7, 9, 12, 3], dtype=np.int64)
    hops = scheme.next_hop_vec(0, dests)
    assert hops.shape == dests.shape
    if name == "adaptive":
        # Exercise the congested branch as well: it delegates to the
        # *embedded* NLNR's override, which the monkeypatch also guards.
        scheme._nic_tx[0].in_use = 1
        assert scheme.next_hop_vec(0, dests).shape == dests.shape
