"""Property-based tests: the mailbox delivers any traffic pattern
exactly once, on any machine shape, under any routing scheme."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import RecordSpec, YgmWorld
from repro.core.routing import SCHEMES
from repro.machine import small

SPEC = RecordSpec("prop", [("src", "u8"), ("seq", "u8")])


@st.composite
def world_and_traffic(draw):
    nodes = draw(st.integers(1, 5))
    cores = draw(st.integers(1, 4))
    scheme = draw(st.sampled_from(sorted(SCHEMES)))
    capacity = draw(st.sampled_from([1, 3, 8, 64, 4096]))
    nranks = nodes * cores
    # Per-rank destination lists (arbitrary multisets, self-sends included).
    traffic = [
        draw(st.lists(st.integers(0, nranks - 1), max_size=20)) for _ in range(nranks)
    ]
    return nodes, cores, scheme, capacity, traffic


@given(world_and_traffic())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_scalar_traffic_delivered_exactly_once(params):
    nodes, cores, scheme, capacity, traffic = params
    nranks = nodes * cores

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append, capacity=capacity)
        for seq, dest in enumerate(traffic[ctx.rank]):
            yield from mb.send(dest, (ctx.rank, seq))
        yield from mb.wait_empty()
        return sorted(got)

    res = YgmWorld(
        small(nodes=nodes, cores_per_node=cores), scheme=scheme,
        mailbox_capacity=capacity,
    ).run(rank_main)

    expected = [[] for _ in range(nranks)]
    for src, dests in enumerate(traffic):
        for seq, dest in enumerate(dests):
            expected[dest].append((src, seq))
    for rank in range(nranks):
        assert res.values[rank] == sorted(expected[rank])


@given(world_and_traffic())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_batch_traffic_matches_scalar_semantics(params):
    nodes, cores, scheme, capacity, traffic = params
    nranks = nodes * cores

    def rank_main(ctx):
        got = []

        def on_batch(batch):
            got.extend((int(r["src"]), int(r["seq"])) for r in batch)

        mb = ctx.mailbox(recv_batch=on_batch, capacity=capacity)
        dests = np.array(traffic[ctx.rank], dtype=np.int64)
        if len(dests):
            batch = SPEC.build(
                src=np.full(len(dests), ctx.rank, dtype="u8"),
                seq=np.arange(len(dests), dtype="u8"),
            )
            yield from mb.send_batch(dests, batch, spec=SPEC)
        yield from mb.wait_empty()
        return sorted(got)

    res = YgmWorld(
        small(nodes=nodes, cores_per_node=cores), scheme=scheme,
        mailbox_capacity=capacity,
    ).run(rank_main)

    expected = [[] for _ in range(nranks)]
    for src, dests in enumerate(traffic):
        for seq, dest in enumerate(dests):
            expected[dest].append((src, seq))
    for rank in range(nranks):
        assert res.values[rank] == sorted(expected[rank])


@given(
    nodes=st.integers(1, 4),
    cores=st.integers(1, 4),
    scheme=st.sampled_from(sorted(SCHEMES)),
    origins=st.lists(st.integers(0, 100), max_size=6),
)
@settings(max_examples=30, deadline=None)
def test_broadcasts_from_arbitrary_origins(nodes, cores, scheme, origins):
    nranks = nodes * cores
    origins = [o % nranks for o in origins]

    def rank_main(ctx):
        got = []
        mb = ctx.mailbox(recv=got.append)
        for i, origin in enumerate(origins):
            if ctx.rank == origin:
                yield from mb.send_bcast((i, origin))
        yield from mb.wait_empty()
        return sorted(got)

    res = YgmWorld(small(nodes=nodes, cores_per_node=cores), scheme=scheme).run(rank_main)
    for rank in range(nranks):
        expected = sorted(
            (i, origin) for i, origin in enumerate(origins) if origin != rank
        )
        assert res.values[rank] == expected


@given(
    seed=st.integers(0, 2**16),
    scheme=st.sampled_from(sorted(SCHEMES)),
)
@settings(max_examples=10, deadline=None)
def test_simulated_time_reproducible(seed, scheme):
    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None, capacity=16)
        for _ in range(40):
            yield from mb.send(int(ctx.rng.integers(ctx.nranks)), "p")
        yield from mb.wait_empty()
        return None

    times = {
        YgmWorld(small(nodes=2, cores_per_node=2), scheme=scheme, seed=seed)
        .run(rank_main)
        .elapsed
        for _ in range(2)
    }
    assert len(times) == 1
