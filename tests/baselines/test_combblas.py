"""CombBLAS-style 2D SpMV baseline: correctness vs scipy."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines import (
    choose_grid,
    gather_combblas_y,
    make_combblas_spmv,
    partition_combblas_problem,
)
from repro.machine import small
from repro.mpi import World


def reference_y(n, rows, cols, vals, x):
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr() @ x


def run_combblas(nodes, cores, n, rows, cols, vals, x, iterations=1):
    nranks = nodes * cores
    problems = partition_combblas_problem(nranks, n, rows, cols, vals, x)
    world = World(small(nodes=nodes, cores_per_node=cores))
    res = world.run(make_combblas_spmv(problems, iterations=iterations))
    pr, pc = choose_grid(nranks)
    return gather_combblas_y(res.values, n, pr, pc), res


def test_choose_grid():
    assert choose_grid(4) == (2, 2)
    assert choose_grid(16) == (4, 4)
    assert choose_grid(6) == (2, 3)
    assert choose_grid(7) == (1, 7)
    assert choose_grid(12) == (3, 4)


@pytest.mark.parametrize("nodes,cores", [(1, 4), (2, 2), (2, 3), (4, 4), (1, 7)])
def test_combblas_matches_scipy(nodes, cores):
    rng = np.random.default_rng(10 * nodes + cores)
    n, nnz = 53, 700
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    x = rng.standard_normal(n)
    y, _ = run_combblas(nodes, cores, n, rows, cols, vals, x)
    assert np.allclose(y, reference_y(n, rows, cols, vals, x))


def test_combblas_multiple_iterations():
    rng = np.random.default_rng(0)
    n, nnz = 30, 200
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    x = rng.standard_normal(n)
    y, res = run_combblas(2, 2, n, rows, cols, vals, x, iterations=3)
    # Same x each iteration: result is the single-product value.
    assert np.allclose(y, reference_y(n, rows, cols, vals, x))


def test_combblas_empty_blocks_ok():
    """A matrix confined to one block leaves other ranks' blocks empty."""
    n = 40
    rows = np.array([0, 1, 2])
    cols = np.array([0, 1, 2])
    vals = np.array([1.0, 2.0, 3.0])
    x = np.ones(n)
    y, _ = run_combblas(2, 2, n, rows, cols, vals, x)
    expected = np.zeros(n)
    expected[:3] = [1.0, 2.0, 3.0]
    assert np.allclose(y, expected)


def test_combblas_synchronous_coupling():
    """2D SpMV is collective: elapsed time is bounded below by the
    slowest rank's local work (the paper's BSP criticism)."""
    rng = np.random.default_rng(1)
    n, nnz = 64, 3000
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    x = rng.standard_normal(n)
    nranks = 4
    problems = partition_combblas_problem(nranks, n, rows, cols, vals, x)

    def skewed(ctx):
        if ctx.comm.rank == 0:
            yield ctx.compute(1.0)  # slow rank
        result = yield from make_combblas_spmv(problems)(ctx)
        return ctx.sim.now

    world = World(small(nodes=2, cores_per_node=2))
    res = world.run(skewed)
    assert min(res.values) >= 1.0  # everyone waited for the straggler
