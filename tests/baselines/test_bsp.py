"""BSP alltoallv baseline: correctness + straggler coupling."""

import numpy as np
import pytest

from repro.baselines import make_bsp_degree_counting
from repro.graph import er_stream
from repro.machine import small
from repro.mpi import World


def reference_degrees(stream, nranks):
    deg = np.zeros(stream.num_vertices, dtype=np.int64)
    for rank in range(nranks):
        u, v = stream.all_edges(rank)
        deg += np.bincount(u, minlength=len(deg))
        deg += np.bincount(v, minlength=len(deg))
    return deg


def gather(values, n, nranks):
    from repro.graph import CyclicPartition

    part = CyclicPartition(n, nranks)
    out = np.zeros(n, dtype=np.int64)
    for rank, local in enumerate(values):
        out[part.local_vertices(rank)] = local
    return out


def test_bsp_degree_counting_correct():
    stream = er_stream(num_vertices=64, edges_per_rank=500, seed=11)
    world = World(small(nodes=2, cores_per_node=2))
    res = world.run(make_bsp_degree_counting(stream, batch_size=128))
    got = gather(res.values, 64, 4)
    assert np.array_equal(got, reference_degrees(stream, 4))


def test_bsp_handles_uneven_batch_counts():
    """Ranks with fewer edges still participate in every superstep."""
    # A batch size that does not divide the edge count forces a short
    # final superstep that all ranks must still attend.
    stream = er_stream(num_vertices=32, edges_per_rank=100, seed=12)
    world = World(small(nodes=2, cores_per_node=2))
    res = world.run(make_bsp_degree_counting(stream, batch_size=33))
    got = gather(res.values, 32, 4)
    assert np.array_equal(got, reference_degrees(stream, 4))


def test_bsp_straggler_stalls_everyone():
    """With one slow rank, *every* BSP rank's finish time includes the
    straggler's delay -- the paper's core motivation for YGM."""
    stream = er_stream(num_vertices=64, edges_per_rank=256, seed=13)
    delay_per_step = 0.01

    def skew(rank, step):
        return delay_per_step if rank == 0 else 0.0

    def timed_main(ctx):
        yield from make_bsp_degree_counting(
            stream, batch_size=64, compute_skew=skew
        )(ctx)
        return ctx.sim.now

    world = World(small(nodes=2, cores_per_node=2))
    res = world.run(timed_main)
    steps = -(-256 // 64)
    for finish in res.values:
        assert finish >= steps * delay_per_step
