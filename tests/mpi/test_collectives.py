"""Collective correctness on assorted (including non-power-of-two) sizes."""

import operator

import numpy as np
import pytest

from repro.machine import small
from repro.mpi import World


SHAPES = [(1, 1), (1, 3), (2, 2), (3, 2), (2, 5), (5, 3)]


def run_world(rank_main, nodes, cores, seed=0):
    world = World(small(nodes=nodes, cores_per_node=cores), seed=seed)
    return world.run(rank_main)


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_bcast_all_roots(nodes, cores):
    size = nodes * cores

    for root in {0, size // 2, size - 1}:

        def main(ctx, root=root):
            value = f"payload-{root}" if ctx.rank == root else None
            out = yield from ctx.comm.bcast(value, root=root)
            return out

        res = run_world(main, nodes, cores)
        assert res.values == [f"payload-{root}"] * size


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_reduce_sum(nodes, cores):
    size = nodes * cores

    def main(ctx):
        out = yield from ctx.comm.reduce(ctx.rank, operator.add, root=0)
        return out

    res = run_world(main, nodes, cores)
    assert res.values[0] == sum(range(size))
    assert all(v is None for v in res.values[1:])


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_allreduce_min(nodes, cores):
    def main(ctx):
        out = yield from ctx.comm.allreduce(100 - ctx.rank, min)
        return out

    size = nodes * cores
    res = run_world(main, nodes, cores)
    assert res.values == [100 - (size - 1)] * size


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_gather_and_allgather(nodes, cores):
    size = nodes * cores

    def main(ctx):
        g = yield from ctx.comm.gather(ctx.rank * 2, root=0)
        ag = yield from ctx.comm.allgather(ctx.rank)
        return (g, ag)

    res = run_world(main, nodes, cores)
    g0, ag0 = res.values[0]
    assert g0 == [2 * r for r in range(size)]
    for g, ag in res.values:
        assert ag == list(range(size))
    assert all(g is None for g, _ in res.values[1:])


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_scatter(nodes, cores):
    size = nodes * cores

    def main(ctx):
        values = [f"v{i}" for i in range(size)] if ctx.rank == 0 else None
        out = yield from ctx.comm.scatter(values, root=0)
        return out

    res = run_world(main, nodes, cores)
    assert res.values == [f"v{i}" for i in range(size)]


@pytest.mark.parametrize("nodes,cores", SHAPES)
def test_alltoallv(nodes, cores):
    size = nodes * cores

    def main(ctx):
        outgoing = [(ctx.rank, dst) for dst in range(size)]
        incoming = yield from ctx.comm.alltoallv(outgoing)
        return incoming

    res = run_world(main, nodes, cores)
    for rank, incoming in enumerate(res.values):
        assert incoming == [(src, rank) for src in range(size)]


@pytest.mark.parametrize("nodes,cores", [(2, 2), (3, 2)])
def test_reduce_scatter(nodes, cores):
    size = nodes * cores

    def main(ctx):
        values = [ctx.rank * 10 + i for i in range(size)]
        mine = yield from ctx.comm.reduce_scatter(values, operator.add)
        return mine

    res = run_world(main, nodes, cores)
    for i, got in enumerate(res.values):
        expected = sum(r * 10 + i for r in range(size))
        assert got == expected


def test_barrier_synchronises():
    def main(ctx):
        # Stagger arrival; everyone leaves the barrier no earlier than the
        # slowest entrant.
        yield ctx.compute(float(ctx.rank))
        yield from ctx.comm.barrier()
        return ctx.sim.now

    res = run_world(main, 2, 2)
    slowest_entry = 3.0
    assert all(t >= slowest_entry for t in res.values)


def test_successive_collectives_do_not_cross_match():
    def main(ctx):
        a = yield from ctx.comm.allreduce(1, operator.add)
        b = yield from ctx.comm.allreduce(10, operator.add)
        c = yield from ctx.comm.allgather(ctx.rank)
        return (a, b, c)

    res = run_world(main, 2, 3)
    for a, b, c in res.values:
        assert a == 6
        assert b == 60
        assert c == list(range(6))


def test_comm_split_by_node():
    def main(ctx):
        sub = yield from ctx.comm.split(color=ctx.node)
        total = yield from sub.allreduce(ctx.rank, operator.add)
        members = yield from sub.allgather(ctx.rank)
        return (sub.rank, sub.size, total, members)

    res = run_world(main, 2, 3)
    for rank, (sub_rank, sub_size, total, members) in enumerate(res.values):
        node = rank // 3
        assert sub_size == 3
        assert sub_rank == rank % 3
        assert total == sum(range(node * 3, node * 3 + 3))
        assert members == [node * 3 + i for i in range(3)]


def test_comm_split_undefined_color():
    def main(ctx):
        color = None if ctx.rank == 0 else 1
        sub = yield from ctx.comm.split(color=color)
        if sub is None:
            return None
        out = yield from sub.allgather(ctx.rank)
        return out

    res = run_world(main, 2, 2)
    assert res.values[0] is None
    for v in res.values[1:]:
        assert v == [1, 2, 3]


def test_split_subcomm_isolated_from_parent():
    """Concurrent traffic on parent and child comms must not cross-match."""

    def main(ctx):
        sub = yield from ctx.comm.split(color=ctx.node)
        # Parent-comm p2p and sub-comm collective interleaved.
        if ctx.rank == 0:
            yield from ctx.comm.send(3, "cross-node", tag=1)
        total = yield from sub.allreduce(1, operator.add)
        if ctx.rank == 3:
            msg = yield from ctx.comm.recv(source=0, tag=1)
            return (total, msg.payload)
        return (total, None)

    res = run_world(main, 2, 2)
    assert res.values[3] == (2, "cross-node")
    assert [v[0] for v in res.values] == [2, 2, 2, 2]


def test_dup_gives_fresh_context():
    def main(ctx):
        dup = yield from ctx.comm.dup()
        assert dup.ctx != ctx.comm.ctx
        out = yield from dup.allreduce(ctx.rank, operator.add)
        return out

    res = run_world(main, 2, 2)
    assert res.values == [6, 6, 6, 6]


def test_numpy_allreduce():
    def main(ctx):
        arr = np.full(4, ctx.rank, dtype="f8")
        out = yield from ctx.comm.allreduce(arr, lambda a, b: a + b)
        return out

    res = run_world(main, 2, 2)
    for out in res.values:
        assert np.array_equal(out, np.full(4, 6.0))
