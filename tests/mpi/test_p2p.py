"""Point-to-point semantics of the simulated MPI layer."""

import numpy as np
import pytest

from repro.machine import small
from repro.mpi import ANY_SOURCE, ANY_TAG, World, waitall


def run_world(rank_main, nodes=2, cores=2, seed=0):
    world = World(small(nodes=nodes, cores_per_node=cores), seed=seed)
    return world.run(rank_main)


def test_send_recv_pair():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, {"a": 7}, tag=11)
            return "sent"
        elif ctx.rank == 1:
            msg = yield from ctx.comm.recv(source=0, tag=11)
            return msg.payload
        return None

    res = run_world(main)
    assert res.values[0] == "sent"
    assert res.values[1] == {"a": 7}
    assert res.elapsed > 0


def test_recv_reports_source_and_tag():
    def main(ctx):
        if ctx.rank == 2:
            yield from ctx.comm.send(0, "hello", tag="greets")
        elif ctx.rank == 0:
            msg = yield from ctx.comm.recv()
            return (msg.source, msg.tag, msg.payload)
        return None
        yield  # pragma: no cover

    res = run_world(main)
    assert res.values[0] == (2, "greets", "hello")


def test_tag_matching_out_of_order():
    """A receive for tag B must not consume an earlier tag-A message."""

    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, "first", tag="A")
            yield from ctx.comm.send(1, "second", tag="B")
        elif ctx.rank == 1:
            b = yield from ctx.comm.recv(source=0, tag="B")
            a = yield from ctx.comm.recv(source=0, tag="A")
            return (a.payload, b.payload)
        return None

    res = run_world(main)
    assert res.values[1] == ("first", "second")


def test_source_matching():
    def main(ctx):
        if ctx.rank in (1, 2):
            yield from ctx.comm.send(0, f"from{ctx.rank}", tag=0)
        elif ctx.rank == 0:
            m2 = yield from ctx.comm.recv(source=2)
            m1 = yield from ctx.comm.recv(source=1)
            return (m1.payload, m2.payload)
        return None

    res = run_world(main)
    assert res.values[0] == ("from1", "from2")


def test_wildcard_receive_gets_both():
    def main(ctx):
        if ctx.rank in (1, 2, 3):
            yield from ctx.comm.send(0, ctx.rank)
        elif ctx.rank == 0:
            got = []
            for _ in range(3):
                msg = yield from ctx.comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                got.append(msg.payload)
            return sorted(got)
        return None

    res = run_world(main)
    assert res.values[0] == [1, 2, 3]


def test_pairwise_fifo_ordering():
    """Messages between one pair with one tag arrive in send order."""

    def main(ctx):
        if ctx.rank == 0:
            for i in range(20):
                yield from ctx.comm.send(3, i, tag=0)
        elif ctx.rank == 3:
            got = []
            for _ in range(20):
                msg = yield from ctx.comm.recv(source=0, tag=0)
                got.append(msg.payload)
            return got
        return None

    res = run_world(main)
    assert res.values[3] == list(range(20))


def test_isend_irecv():
    def main(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.isend(1, i, tag=i) for i in range(4)]
            yield from waitall(reqs)
        elif ctx.rank == 1:
            reqs = [ctx.comm.irecv(source=0, tag=i) for i in range(4)]
            msgs = yield from waitall(reqs)
            return [m.payload for m in msgs]
        return None

    res = run_world(main)
    assert res.values[1] == [0, 1, 2, 3]


def test_numpy_payload_copied_not_aliased():
    def main(ctx):
        if ctx.rank == 0:
            arr = np.arange(4)
            yield from ctx.comm.send(1, arr)
            arr[:] = -1  # mutate after send: receiver must not see this
        elif ctx.rank == 1:
            msg = yield from ctx.comm.recv(source=0)
            return list(msg.payload)
        return None

    res = run_world(main)
    assert res.values[1] == [0, 1, 2, 3]


def test_self_send():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(0, "me")
            msg = yield from ctx.comm.recv(source=0)
            return msg.payload
        return None
        yield  # pragma: no cover

    res = run_world(main)
    assert res.values[0] == "me"


def test_local_faster_than_remote():
    """Same payload: on-node delivery completes sooner than off-node."""

    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, b"x" * 4096)  # local (same node)
            yield from ctx.comm.send(2, b"x" * 4096)  # remote
        elif ctx.rank in (1, 2):
            msg = yield from ctx.comm.recv(source=0)
            return ctx.sim.now
        return None

    res = run_world(main)
    # Rank 1 (local) got it before rank 2 (remote) despite being sent first.
    assert res.values[1] < res.values[2]


def test_probe():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, "probe-me", tag=9)
        elif ctx.rank == 1:
            yield ctx.compute(1.0)  # let the message arrive
            assert ctx.comm.probe(tag=9) is not None
            assert ctx.comm.probe(tag=10) is None
            msg = yield from ctx.comm.recv(tag=9)
            return msg.payload
        return None

    res = run_world(main)
    assert res.values[1] == "probe-me"


def test_message_nbytes_includes_header():
    from repro.mpi import HEADER_BYTES

    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, np.zeros(10, dtype="u8"))
        elif ctx.rank == 1:
            msg = yield from ctx.comm.recv()
            return msg.nbytes
        return None

    res = run_world(main)
    assert res.values[1] == 80 + HEADER_BYTES
