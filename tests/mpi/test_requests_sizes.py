"""Tests for request handles, payload sizing, and matching-engine details."""

import numpy as np
import pytest

from repro.machine import small
from repro.mpi import ANY_SOURCE, ANY_TAG, HEADER_BYTES, World, payload_nbytes
from repro.serde import packed_size


# --------------------------------------------------------------- sizing
def test_payload_nbytes_explicit_wins():
    assert payload_nbytes("whatever", 123) == 123


def test_payload_nbytes_negative_rejected():
    with pytest.raises(ValueError):
        payload_nbytes("x", -1)


def test_payload_nbytes_ndarray_exact():
    arr = np.zeros((3, 4), dtype="f8")
    assert payload_nbytes(arr) == 96


def test_payload_nbytes_bytes_like():
    assert payload_nbytes(b"12345") == 5
    assert payload_nbytes(bytearray(7)) == 7
    assert payload_nbytes(memoryview(b"123")) == 3


def test_payload_nbytes_objects_use_serde():
    obj = {"k": [1, 2, 3]}
    assert payload_nbytes(obj) == packed_size(obj)


# -------------------------------------------------------------- requests
def test_irecv_cancel_releases_matching_slot():
    def main(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag="never")
            req.cancel()
            # A message with a different tag must go to the later recv,
            # not be stolen by the cancelled posting.
            msg = yield from ctx.comm.recv(source=1, tag="real")
            return msg.payload
        elif ctx.rank == 1:
            yield from ctx.comm.send(0, "hello", tag="real")
        return None

    res = World(small(nodes=2, cores_per_node=1)).run(main)
    assert res.values[0] == "hello"


def test_request_test_and_result():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 42, tag=0)
        elif ctx.rank == 1:
            req = ctx.comm.irecv(source=0, tag=0)
            assert not req.test()
            msg = yield from req.wait()
            assert req.test()
            assert req.result().payload == 42
            return msg.payload
        return None

    res = World(small(nodes=1, cores_per_node=2)).run(main)
    assert res.values[1] == 42


def test_send_request_completes_before_delivery():
    def main(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(1, b"x" * 65536)
            yield from req.wait()
            return ctx.sim.now
        elif ctx.rank == 1:
            msg = yield from ctx.comm.recv(source=0)
            return ctx.sim.now
        return None

    res = World(small(nodes=2, cores_per_node=1)).run(main)
    assert res.values[0] < res.values[1]


# -------------------------------------------------------- matching engine
def test_unexpected_queue_preserved_across_subscribe():
    """Packets arriving before an inbox subscription are re-steered."""
    from repro.mpi.envelope import Packet
    from repro.mpi.matching import Inbox
    from repro.sim import Simulator

    sim = Simulator()
    inbox = Inbox(sim, rank=0)
    pkt = Packet(src=1, dst=0, ctx=0, kind="ygm_app", tag=0, payload="p", nbytes=8)
    other = Packet(src=1, dst=0, ctx=0, kind="p2p", tag=0, payload="q", nbytes=8)
    inbox.deliver(pkt)
    inbox.deliver(other)
    store = inbox.subscribe(0, "ygm_app")
    assert len(store) == 1
    assert store.try_get().payload == "p"
    assert inbox.pending_unexpected == 1  # the p2p packet stays


def test_posted_receive_fifo_when_both_match():
    from repro.mpi.envelope import ANY_SOURCE as ANY_S, ANY_TAG as ANY_T, Packet
    from repro.mpi.matching import Inbox
    from repro.sim import Simulator

    sim = Simulator()
    inbox = Inbox(sim, rank=0)
    first = inbox.post(0, "p2p", ANY_S, ANY_T)
    second = inbox.post(0, "p2p", ANY_S, ANY_T)
    inbox.deliver(Packet(src=1, dst=0, ctx=0, kind="p2p", tag=0, payload="a", nbytes=1))
    assert first.triggered and not second.triggered


def test_probe_does_not_consume():
    from repro.mpi.envelope import Packet
    from repro.mpi.matching import Inbox
    from repro.sim import Simulator

    sim = Simulator()
    inbox = Inbox(sim, rank=0)
    inbox.deliver(Packet(src=1, dst=0, ctx=0, kind="p2p", tag=9, payload="a", nbytes=1))
    assert inbox.probe(0, "p2p", tag=9) is not None
    assert inbox.probe(0, "p2p", tag=9) is not None  # still there
    got = inbox.post(0, "p2p", 1, 9)
    assert got.triggered
    assert inbox.probe(0, "p2p", tag=9) is None
