"""The hot-path lint guards the columnar refactor against regressions."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "tools"))

import hotpath_lint  # noqa: E402


def test_current_tree_is_clean():
    assert hotpath_lint.lint(REPO) == []


def test_cli_exits_zero_on_clean_tree():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "hotpath_lint.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert "OK" in proc.stdout


def _write_tree(tmp_path, mailbox_src):
    root = tmp_path / "repo"
    pkg = root / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "mailbox.py").write_text(mailbox_src)
    return root


def test_flags_entry_construction_outside_allowlist(tmp_path):
    root = _write_tree(
        tmp_path,
        "class Mailbox:\n"
        "    def post(self, dest):\n"
        "        e = P2PEntry(dest, None, 0)\n"  # allowed boundary
        "    def _bin_columns(self, dests):\n"
        "        return [P2PEntry(d, None, 0) for d in dests]\n"  # violation
        "    def _handle_packet(self, pkt):\n"
        "        b = BcastEntry(0, None, 0)\n"  # allowed boundary
        "        def helper():\n"
        "            return BcastEntry(1, None, 0)\n",  # nested scope: violation
    )
    violations = hotpath_lint.lint(root)
    sites = [(qual, name) for _f, _line, qual, name in violations]
    assert ("Mailbox._bin_columns", "P2PEntry") in sites
    assert ("Mailbox._handle_packet.helper", "BcastEntry") in sites
    assert len(violations) == 2


def test_attribute_qualified_construction_is_caught(tmp_path):
    root = _write_tree(
        tmp_path,
        "from repro.core import coalescing\n"
        "def flush():\n"
        "    return coalescing.P2PEntry(0, None, 0)\n",
    )
    ((_f, _line, qual, name),) = hotpath_lint.lint(root)
    assert (qual, name) == ("flush", "P2PEntry")


def _write_pdes_tree(tmp_path, wire_src):
    root = tmp_path / "repo"
    pkg = root / "src" / "repro" / "pdes"
    pkg.mkdir(parents=True)
    (pkg / "wire.py").write_text(wire_src)
    return root


def test_flags_pickle_import_in_pdes_export_path(tmp_path):
    root = _write_pdes_tree(tmp_path, "import pickle\n")
    ((_f, _line, qual, what),) = hotpath_lint.lint(root)
    assert (qual, what) == ("<module>", "import pickle")


def test_flags_pickle_dumps_call_in_pdes_export_path(tmp_path):
    root = _write_pdes_tree(
        tmp_path,
        "def encode_batch(exports, out):\n"
        "    out += pickle.dumps(exports)\n",
    )
    ((_f, _line, qual, what),) = hotpath_lint.lint(root)
    assert (qual, what) == ("encode_batch", "pickle.dumps")


def test_flags_from_pickle_import_and_cpickle_alias(tmp_path):
    root = _write_pdes_tree(
        tmp_path,
        "from pickle import dumps\nimport _pickle as fast\n",
    )
    whats = sorted(what for _f, _line, _q, what in hotpath_lint.lint(root))
    assert whats == ["from pickle import ...", "import _pickle"]


def test_pickle_rule_ignores_files_outside_export_path(tmp_path):
    # engine of another package: pickle is fine elsewhere in the tree
    root = tmp_path / "repo"
    pkg = root / "src" / "repro" / "exec"
    pkg.mkdir(parents=True)
    (pkg / "pool.py").write_text("import pickle\n")
    assert hotpath_lint.lint(root) == []


def test_cli_reports_pickle_violation(tmp_path):
    root = _write_pdes_tree(tmp_path, "import pickle\n")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "tools" / "hotpath_lint.py"),
            "--root",
            str(root),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "pickle-free" in proc.stderr


def test_cli_reports_violations_and_exits_nonzero(tmp_path):
    root = _write_tree(
        tmp_path,
        "def rebin():\n    return P2PEntry(0, None, 0)\n",
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "tools" / "hotpath_lint.py"),
            "--root",
            str(root),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "P2PEntry() constructed in rebin" in proc.stderr


def _write_combiner_tree(tmp_path, combiner_src):
    root = tmp_path / "repo"
    pkg = root / "src" / "repro" / "core" / "routing"
    pkg.mkdir(parents=True)
    (pkg / "combiner.py").write_text(combiner_src)
    return root


def test_field_iteration_in_combiner_is_allowed(tmp_path):
    root = _write_combiner_tree(
        tmp_path,
        "class Combiner:\n"
        "    def combine(self, dests, batch):\n"
        "        cols = [batch[f] for f in reversed(self.key_fields)]\n"
        "        for f in self.key_fields:\n"
        "            pass\n"
        "        for f, op in self.reduce_fields.items():\n"
        "            pass\n",
    )
    assert hotpath_lint.lint(root) == []


def test_flags_per_record_loop_in_combiner(tmp_path):
    root = _write_combiner_tree(
        tmp_path,
        "class Combiner:\n"
        "    def combine(self, dests, batch):\n"
        "        out = []\n"
        "        for d, rec in zip(dests, batch):\n"  # violation: per-record
        "            out.append((d, rec))\n"
        "        return out\n",
    )
    ((_f, _line, qual, what),) = hotpath_lint.lint(root)
    assert qual == "Combiner.combine"
    assert what == "per-record for loop"


def test_flags_per_record_comprehension_and_while(tmp_path):
    root = _write_combiner_tree(
        tmp_path,
        "def merge(dests, batch):\n"
        "    keys = [tuple(r) for r in batch]\n"  # violation
        "    i = 0\n"
        "    while i < len(dests):\n"  # violation
        "        i += 1\n",
    )
    whats = sorted(what for _f, _line, _q, what in hotpath_lint.lint(root))
    assert whats == ["per-record comprehension", "per-record while loop"]


def _write_rings_tree(tmp_path, rings_src):
    root = tmp_path / "repo"
    pkg = root / "src" / "repro" / "pdes"
    pkg.mkdir(parents=True)
    (pkg / "rings.py").write_text(rings_src)
    return root


def test_flags_clock_read_in_ring_fast_path(tmp_path):
    root = _write_rings_tree(
        tmp_path,
        "from time import perf_counter\n"
        "class SpscRing:\n"
        "    def try_push(self, payload):\n"
        "        t0 = perf_counter()\n"  # violation: clock on the fast path
        "        return 0\n"
        "    def begin_pop(self):\n"
        "        self.tracer.record(1)\n"  # violation: recorder call
        "    def commit_pop(self):\n"
        "        self.stats.pops += 1\n",  # counter bump: allowed
    )
    sites = sorted(
        (qual, what) for _f, _line, qual, what in hotpath_lint.lint(root)
    )
    assert sites == [
        ("SpscRing.begin_pop", "ring-hot record"),
        ("SpscRing.try_push", "ring-hot perf_counter"),
    ]


def test_ring_rule_ignores_slow_paths_and_other_classes(tmp_path):
    root = _write_rings_tree(
        tmp_path,
        "from time import perf_counter\n"
        "class SpscRing:\n"
        "    def release(self):\n"
        "        return perf_counter()\n"  # not a fast-path method
        "def send_batch(ring, exports, scratch):\n"
        "    return perf_counter()\n",  # module-level helper: fine
    )
    assert hotpath_lint.lint(root) == []


def test_cli_reports_ring_violation(tmp_path):
    root = _write_rings_tree(
        tmp_path,
        "import time\n"
        "class SpscRing:\n"
        "    def commit_pop(self):\n"
        "        self.t = time.monotonic()\n",
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "tools" / "hotpath_lint.py"),
            "--root",
            str(root),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "ring push/pop fast path" in proc.stderr


def test_cli_reports_combining_violation(tmp_path):
    root = _write_combiner_tree(
        tmp_path,
        "def merge(dests):\n"
        "    for d in dests:\n"
        "        pass\n",
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "tools" / "hotpath_lint.py"),
            "--root",
            str(root),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "must stay vectorized" in proc.stderr
