"""Smoke tests: the example scripts run and self-verify.

The heavier examples accept CLI size arguments, so they are exercised at
reduced scale here; each example asserts its own correctness internally
(vs bincount / networkx / scipy), so exit code 0 is a real check.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "OK: ring pings, pongs and broadcast all delivered." in out


def test_quickstart_other_scheme():
    out = run_example("quickstart.py", "node_local")
    assert "routing scheme : node_local" in out


def test_degree_counting_small():
    out = run_example("degree_counting.py", "2", "2")
    assert "identical, correct degree counts" in out


def test_spmv_vs_combblas_small():
    out = run_example("spmv_vs_combblas.py", "2", "2")
    assert "match scipy" in out


@pytest.mark.slow
def test_connected_components_example():
    out = run_example("connected_components.py")
    assert "match networkx" in out


@pytest.mark.slow
def test_straggler_example():
    out = run_example("straggler_tolerance.py")
    assert "earlier" in out
