"""Reference encoder: the pre-optimisation packer, frozen verbatim.

This is the serializer as it stood before the hot-loop rewrite of
:mod:`repro.serde.packer` (dispatch tables, batched pack/unpack).  The
property tests assert the optimised packer produces *byte-identical*
output to this chain on random payloads, pinning the wire format.
Only the relative registry imports were rewritten to absolute ones so
the file works from the test tree; no other edits.

This is the reproduction's substitute for *cereal*, the C++ serialization
library YGM uses (paper Section IV-C).  Like cereal it provides:

* support for the common container types out of the box (here: ``None``,
  ``bool``, ``int``, ``float``, ``bytes``, ``str``, ``list``, ``tuple``,
  ``dict``, ``set`` and NumPy arrays), so users rarely write their own
  packing code,
* an extension point for user types (:mod:`repro.serde.registry`),
* deterministic, byte-accurate encoded sizes -- which is what the network
  model consumes to time packets.

The format is a type-tag byte followed by a payload.  Integers use
zigzag varint encoding; containers are length-prefixed.  ``pickle`` is
deliberately not used: its output size is noisy (memoisation, protocol
framing) and the whole point here is faithful message-size accounting.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

import numpy as np

# --------------------------------------------------------------------- tags
T_NONE = 0x00
T_FALSE = 0x01
T_TRUE = 0x02
T_INT = 0x03
T_FLOAT = 0x04
T_BYTES = 0x05
T_STR = 0x06
T_LIST = 0x07
T_TUPLE = 0x08
T_DICT = 0x09
T_SET = 0x0A
T_NDARRAY = 0x0B
T_CUSTOM = 0x0C
T_NPSCALAR = 0x0D

_F64 = struct.Struct("<d")


class SerdeError(ValueError):
    """Raised on unserialisable input or corrupt encoded data."""


# ------------------------------------------------------------------ varints
def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        b = value & 0x7F
        value >>= 7
        if value:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _read_uvarint(buf: memoryview, pos: int) -> Tuple[int, int]:
    shift = 0
    value = 0
    while True:
        if pos >= len(buf):
            raise SerdeError("truncated varint")
        b = buf[pos]
        pos += 1
        value |= (b & 0x7F) << shift
        if not (b & 0x80):
            return value, pos
        shift += 7


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if -(2**63) <= value < 2**63 else _big_zigzag(value)


def _big_zigzag(value: int) -> int:
    # Arbitrary-precision zigzag for ints outside int64.
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# ------------------------------------------------------------------ packing
def _pack_into(out: bytearray, obj: Any) -> None:
    from repro.serde.registry import lookup_by_type

    if obj is None:
        out.append(T_NONE)
    elif obj is False:
        out.append(T_FALSE)
    elif obj is True:
        out.append(T_TRUE)
    elif type(obj) is int:
        out.append(T_INT)
        _write_uvarint(out, _big_zigzag(obj))
    elif type(obj) is float:
        out.append(T_FLOAT)
        out += _F64.pack(obj)
    elif type(obj) is bytes:
        out.append(T_BYTES)
        _write_uvarint(out, len(obj))
        out += obj
    elif type(obj) is str:
        raw = obj.encode("utf-8")
        out.append(T_STR)
        _write_uvarint(out, len(raw))
        out += raw
    elif type(obj) is list:
        out.append(T_LIST)
        _write_uvarint(out, len(obj))
        for item in obj:
            _pack_into(out, item)
    elif type(obj) is tuple:
        out.append(T_TUPLE)
        _write_uvarint(out, len(obj))
        for item in obj:
            _pack_into(out, item)
    elif type(obj) is dict:
        out.append(T_DICT)
        _write_uvarint(out, len(obj))
        for key, val in obj.items():
            _pack_into(out, key)
            _pack_into(out, val)
    elif type(obj) in (set, frozenset):
        out.append(T_SET)
        _write_uvarint(out, len(obj))
        # Sort by encoding for deterministic output.
        encoded = sorted(pack(item) for item in obj)
        for enc in encoded:
            out += enc
    elif isinstance(obj, np.ndarray):
        _pack_ndarray(out, obj)
    elif isinstance(obj, np.generic):
        out.append(T_NPSCALAR)
        descr = obj.dtype.str.encode("ascii")
        _write_uvarint(out, len(descr))
        out += descr
        out += obj.tobytes()
    else:
        entry = lookup_by_type(type(obj))
        if entry is None:
            raise SerdeError(
                f"cannot serialize {type(obj).__name__}; register it with "
                "repro.serde.register()"
            )
        out.append(T_CUSTOM)
        _write_uvarint(out, entry.type_id)
        _pack_into(out, entry.to_state(obj))


def _pack_dtype(out: bytearray, dtype: np.dtype) -> None:
    """Encode a dtype: flag 0 + string form, or flag 1 + structured descr."""
    if dtype.names:
        out.append(1)
        # descr is a nested list/tuple/str structure; reuse the packer.
        _pack_into(out, _descr_to_plain(dtype.descr))
    else:
        out.append(0)
        descr = dtype.str.encode("ascii")
        _write_uvarint(out, len(descr))
        out += descr


def _descr_to_plain(descr):
    """Normalise np.dtype.descr into pure lists/tuples/str/int."""
    plain = []
    for entry in descr:
        plain.append(tuple(_descr_to_plain(e) if isinstance(e, list) else e for e in entry))
    return plain


def _unpack_dtype(buf: memoryview, pos: int) -> Tuple[np.dtype, int]:
    flag = buf[pos]
    pos += 1
    if flag == 1:
        descr, pos = _unpack_from(buf, pos)
        return np.dtype([tuple(e) for e in descr]), pos
    n, pos = _read_uvarint(buf, pos)
    dtype = np.dtype(bytes(buf[pos : pos + n]).decode("ascii"))
    return dtype, pos + n


def _pack_ndarray(out: bytearray, arr: np.ndarray) -> None:
    if arr.dtype.hasobject:
        raise SerdeError("object-dtype arrays are not serialisable")
    out.append(T_NDARRAY)
    _pack_dtype(out, arr.dtype)
    _write_uvarint(out, arr.ndim)
    for dim in arr.shape:
        _write_uvarint(out, dim)
    out += np.ascontiguousarray(arr).tobytes()


def pack(obj: Any) -> bytes:
    """Serialize ``obj`` to bytes."""
    out = bytearray()
    _pack_into(out, obj)
    return bytes(out)


def packed_size(obj: Any) -> int:
    """The encoded size of ``obj`` in bytes (== ``len(pack(obj))``)."""
    return len(pack(obj))


# ---------------------------------------------------------------- unpacking
def _unpack_from(buf: memoryview, pos: int) -> Tuple[Any, int]:
    from repro.serde.registry import lookup_by_id

    if pos >= len(buf):
        raise SerdeError("truncated data")
    tag = buf[pos]
    pos += 1
    if tag == T_NONE:
        return None, pos
    if tag == T_FALSE:
        return False, pos
    if tag == T_TRUE:
        return True, pos
    if tag == T_INT:
        zz, pos = _read_uvarint(buf, pos)
        return _unzigzag(zz), pos
    if tag == T_FLOAT:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == T_BYTES:
        n, pos = _read_uvarint(buf, pos)
        return bytes(buf[pos : pos + n]), pos + n
    if tag == T_STR:
        n, pos = _read_uvarint(buf, pos)
        return bytes(buf[pos : pos + n]).decode("utf-8"), pos + n
    if tag in (T_LIST, T_TUPLE):
        n, pos = _read_uvarint(buf, pos)
        items = []
        for _ in range(n):
            item, pos = _unpack_from(buf, pos)
            items.append(item)
        return (items if tag == T_LIST else tuple(items)), pos
    if tag == T_DICT:
        n, pos = _read_uvarint(buf, pos)
        d = {}
        for _ in range(n):
            key, pos = _unpack_from(buf, pos)
            val, pos = _unpack_from(buf, pos)
            d[key] = val
        return d, pos
    if tag == T_SET:
        n, pos = _read_uvarint(buf, pos)
        items = set()
        for _ in range(n):
            item, pos = _unpack_from(buf, pos)
            items.add(item)
        return items, pos
    if tag == T_NDARRAY:
        return _unpack_ndarray(buf, pos)
    if tag == T_NPSCALAR:
        n, pos = _read_uvarint(buf, pos)
        dtype = np.dtype(bytes(buf[pos : pos + n]).decode("ascii"))
        pos += n
        value = np.frombuffer(buf[pos : pos + dtype.itemsize], dtype=dtype)[0]
        return value, pos + dtype.itemsize
    if tag == T_CUSTOM:
        type_id, pos = _read_uvarint(buf, pos)
        entry = lookup_by_id(type_id)
        if entry is None:
            raise SerdeError(f"unknown custom type id {type_id}")
        state, pos = _unpack_from(buf, pos)
        return entry.from_state(state), pos
    raise SerdeError(f"unknown type tag 0x{tag:02x}")


def _unpack_ndarray(buf: memoryview, pos: int) -> Tuple[np.ndarray, int]:
    dtype, pos = _unpack_dtype(buf, pos)
    ndim, pos = _read_uvarint(buf, pos)
    shape = []
    for _ in range(ndim):
        dim, pos = _read_uvarint(buf, pos)
        shape.append(dim)
    count = int(np.prod(shape)) if shape else 1
    nbytes = count * dtype.itemsize
    arr = np.frombuffer(buf[pos : pos + nbytes], dtype=dtype).reshape(shape).copy()
    return arr, pos + nbytes


def unpack(data: bytes) -> Any:
    """Deserialize bytes produced by :func:`pack`."""
    obj, pos = _unpack_from(memoryview(data), 0)
    if pos != len(data):
        raise SerdeError(f"{len(data) - pos} trailing bytes after object")
    return obj
