"""Seeded property-based round-trip tests for the serde layer.

Random record specs and payloads through ``pack``/``unpack`` and
``RecordSpec``: arbitrary field dtypes, empty batches, varint
boundaries, and large (max-size) payloads.  ``derandomize=True`` keeps
the generated examples a pure function of the test code, so the suite
is reproducible run-to-run (failures shrink to stable seeds).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serde import RecordSpec, pack, packed_size, unpack

SEEDED = settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Field dtypes the record layer supports (fixed-width only).
FIELD_DTYPES = ["u1", "u2", "u4", "u8", "i1", "i2", "i4", "i8", "f4", "f8"]


@st.composite
def record_specs(draw):
    names = draw(
        st.lists(
            st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    fields = [(name, draw(st.sampled_from(FIELD_DTYPES))) for name in names]
    return RecordSpec(draw(st.from_regex(r"[a-z]{1,8}", fullmatch=True)), fields)


@st.composite
def spec_and_batch(draw):
    spec = draw(record_specs())
    n = draw(st.integers(0, 64))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    batch = spec.empty(n)
    for name in spec.field_names:
        dt = batch.dtype[name]
        if dt.kind == "f":
            batch[name] = rng.standard_normal(n).astype(dt)
        else:
            info = np.iinfo(dt)
            batch[name] = rng.integers(
                info.min, info.max, size=n, endpoint=True, dtype=dt
            )
    return spec, batch


@given(spec_and_batch())
@SEEDED
def test_random_record_batches_roundtrip(params):
    spec, batch = params
    out = unpack(pack(batch))
    assert out.dtype == spec.dtype
    assert out.shape == batch.shape
    assert out.tobytes() == batch.tobytes()
    assert packed_size(batch) == len(pack(batch))


@given(record_specs())
@SEEDED
def test_empty_batches_roundtrip(spec):
    for make in (spec.empty, spec.zeros):
        batch = make(0)
        out = unpack(pack(batch))
        assert out.dtype == spec.dtype
        assert out.shape == (0,)
    assert spec.nbytes(spec.zeros(0)) == 0


@given(record_specs())
@SEEDED
def test_build_matches_columns(spec):
    n = 7
    columns = {
        name: np.arange(n).astype(spec.dtype[name])
        for name in spec.field_names
    }
    batch = spec.build(**columns)
    out = unpack(pack(batch))
    for name in spec.field_names:
        assert np.array_equal(out[name], columns[name])


# Recursive payloads covering every container the packer supports.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**80), max_value=2**80),
    st.floats(allow_nan=False),
    st.binary(max_size=64),
    st.text(max_size=32),
)
_payloads = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5),
        st.tuples(inner, inner),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=20,
)


@given(_payloads)
@SEEDED
def test_arbitrary_payloads_roundtrip_with_exact_size(obj):
    data = pack(obj)
    assert unpack(data) == obj
    assert packed_size(obj) == len(data)
    assert pack(obj) == data  # deterministic encoding


@given(st.integers(min_value=0, max_value=11))
@SEEDED
def test_varint_boundaries_roundtrip(k):
    # 2**(7k) is exactly where the varint grows another byte; zigzag
    # doubles magnitudes, so probe both signs around every boundary.
    for delta in (-1, 0, 1):
        for sign in (1, -1):
            value = sign * (2 ** (7 * k) + delta)
            assert unpack(pack(value)) == value


def test_max_size_payloads_roundtrip():
    blob = bytes(range(256)) * 1024  # 256 KiB
    assert unpack(pack(blob)) == blob
    assert packed_size(blob) == len(pack(blob))

    text = "x" * (1 << 18)
    assert unpack(pack(text)) == text

    arr = np.random.default_rng(0).standard_normal(1 << 15)
    out = unpack(pack(arr))
    assert out.tobytes() == arr.tobytes()
    # Size accounting stays byte-accurate at scale: the payload body
    # dominates and the framing overhead is tiny.
    assert abs(packed_size(arr) - arr.nbytes) < 64


# ------------------------------------------------- reference encoding
# The optimised packer (dispatch tables, batched APIs) must emit the
# exact bytes of the pre-optimisation elif-chain encoder, frozen in
# ``reference_packer.py``.  Sets are excluded from the random payloads
# above, so fold them in here explicitly.

from repro.serde import pack_many, unpack_many  # noqa: E402

from . import reference_packer as reference  # noqa: E402

_payloads_with_sets = st.one_of(
    _payloads,
    st.sets(st.integers(min_value=-(2**40), max_value=2**40), max_size=8),
    st.frozensets(st.text(max_size=8), max_size=6),
)


@given(_payloads_with_sets)
@SEEDED
def test_pack_matches_reference_encoding(obj):
    assert pack(obj) == reference.pack(obj)


@given(spec_and_batch())
@SEEDED
def test_record_batches_match_reference_encoding(params):
    _, batch = params
    assert pack(batch) == reference.pack(batch)


@given(st.lists(_payloads_with_sets, max_size=8))
@SEEDED
def test_pack_many_is_concatenation_of_reference_singles(objs):
    blob = pack_many(objs)
    assert blob == b"".join(reference.pack(obj) for obj in objs)
    assert unpack_many(blob) == [reference.unpack(reference.pack(o)) for o in objs]


@given(st.lists(st.integers(min_value=-(2**80), max_value=2**80), max_size=32))
@SEEDED
def test_packed_size_many_matches_reference_per_element(values):
    from repro.serde import packed_size_many

    sizes = packed_size_many(values)
    assert sizes.dtype == np.int64 and sizes.shape == (len(values),)
    assert sizes.tolist() == [len(reference.pack(v)) for v in values]


@given(st.integers(min_value=0, max_value=9))
@SEEDED
def test_packed_size_many_varint_boundaries(k):
    # The vectorized zigzag/size kernel must agree with the scalar
    # packer at every byte-growth boundary and at the int64 extremes
    # (where the fast path's ``v >> 63`` arithmetic shift matters).
    probes = []
    for delta in (-1, 0, 1):
        for sign in (1, -1):
            probes.append(sign * (2 ** (7 * k) + delta))
    probes += [0, 2**63 - 1, -(2**63), 2**63, -(2**63) - 1]
    from repro.serde import packed_size_many

    assert packed_size_many(probes).tolist() == [
        len(reference.pack(v)) for v in probes
    ]


@given(st.lists(_payloads_with_sets, max_size=12))
@SEEDED
def test_packed_size_many_generic_fallback_matches_reference(objs):
    from repro.serde import packed_size_many

    assert packed_size_many(objs).tolist() == [
        len(reference.pack(o)) for o in objs
    ]


def test_packed_size_many_excludes_bools_from_int_fast_path():
    # bool is an int subclass but packs differently; the fast path's
    # ``type(o) is int`` check must route mixed lists to the fallback.
    from repro.serde import packed_size_many

    mixed = [True, False, 1, 0, np.int64(7)]
    assert packed_size_many(mixed).tolist() == [
        len(reference.pack(o)) for o in mixed
    ]
    assert packed_size_many([]).tolist() == []


@given(spec_and_batch(), st.integers(1, 4))
@SEEDED
def test_pack_many_record_stream_matches_reference(params, copies):
    _, batch = params
    objs = [batch] * copies + [("hdr", len(batch))]
    blob = pack_many(objs)
    assert blob == b"".join(reference.pack(o) for o in objs)
    out = unpack_many(blob)
    assert len(out) == copies + 1
    for got in out[:copies]:
        assert got.tobytes() == batch.tobytes()
        assert got.dtype == batch.dtype
    assert out[-1] == ("hdr", len(batch))
