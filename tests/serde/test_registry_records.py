"""Tests for the user-type registry and the fixed-record fast path."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.serde import RecordSpec, pack, register, registered, unpack
from repro.serde.registry import clear_registry


@pytest.fixture(autouse=True)
def fresh_registry():
    clear_registry()
    yield
    clear_registry()


def test_dataclass_roundtrip():
    @registered(1)
    @dataclass
    class Update:
        vertex: int
        label: int

    u = Update(7, 3)
    out = unpack(pack(u))
    assert isinstance(out, Update)
    assert out == u


def test_custom_converters():
    class Point:
        def __init__(self, x, y):
            self.x, self.y = x, y

        def __eq__(self, other):
            return (self.x, self.y) == (other.x, other.y)

    register(Point, 2, to_state=lambda p: (p.x, p.y), from_state=lambda s: Point(*s))
    assert unpack(pack(Point(1.5, -2.0))) == Point(1.5, -2.0)


def test_nested_registered_types():
    @registered(3)
    @dataclass
    class Inner:
        v: int

    @registered(4)
    @dataclass
    class Outer:
        items: list

    out = unpack(pack(Outer([Inner(1), Inner(2)])))
    assert out.items == [Inner(1), Inner(2)]


def test_conflicting_type_id_raises():
    @registered(5)
    @dataclass
    class A:
        x: int

    with pytest.raises(ValueError):

        @registered(5)
        @dataclass
        class B:
            y: int


def test_double_registration_same_class_is_noop():
    @dataclass
    class A:
        x: int

    register(A, 6)
    register(A, 6)  # no error


def test_non_dataclass_requires_converters():
    class Plain:
        pass

    with pytest.raises(ValueError):
        register(Plain, 7)


# ----------------------------------------------------------- record specs
def test_record_spec_basics():
    spec = RecordSpec("labels", [("vertex", "u8"), ("label", "u8")])
    assert spec.itemsize == 16
    assert spec.field_names == ("vertex", "label")
    batch = spec.zeros(4)
    assert batch.shape == (4,)
    assert spec.nbytes(batch) == 64


def test_record_spec_build():
    spec = RecordSpec("spmv", [("row", "u8"), ("val", "f8")])
    batch = spec.build(row=np.arange(3, dtype="u8"), val=np.ones(3))
    assert list(batch["row"]) == [0, 1, 2]
    assert list(batch["val"]) == [1.0, 1.0, 1.0]


def test_record_spec_build_validates_fields():
    spec = RecordSpec("x", [("a", "u4")])
    with pytest.raises(ValueError):
        spec.build(b=np.zeros(1, dtype="u4"))
    with pytest.raises(ValueError):
        spec.build()


def test_record_spec_build_validates_lengths():
    spec = RecordSpec("x", [("a", "u4"), ("b", "u4")])
    with pytest.raises(ValueError):
        spec.build(a=np.zeros(2, dtype="u4"), b=np.zeros(3, dtype="u4"))


def test_record_spec_validate_dtype():
    spec = RecordSpec("x", [("a", "u4")])
    with pytest.raises(TypeError):
        spec.validate(np.zeros(3, dtype="f8"))


def test_record_spec_rejects_object_fields():
    with pytest.raises(ValueError):
        RecordSpec("bad", [("o", "O")])


def test_record_spec_equality_hash():
    a = RecordSpec("x", [("a", "u4")])
    b = RecordSpec("x", [("a", "u4")])
    c = RecordSpec("y", [("a", "u4")])
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_record_batches_serialisable():
    spec = RecordSpec("m", [("dest", "u4"), ("val", "f4")])
    batch = spec.build(
        dest=np.array([1, 2], dtype="u4"), val=np.array([0.5, 1.5], dtype="f4")
    )
    out = unpack(pack(batch))
    assert np.array_equal(out, batch)
