"""Unit + property tests for the binary serializer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serde import SerdeError, pack, packed_size, unpack


SIMPLE_CASES = [
    None,
    True,
    False,
    0,
    1,
    -1,
    2**40,
    -(2**70),
    3.14159,
    float("inf"),
    b"",
    b"\x00\xff" * 10,
    "",
    "héllo wörld",
    [],
    [1, "two", 3.0, None],
    (1, 2),
    {"a": 1, "b": [2, 3]},
    {1: {2: {3: "deep"}}},
    set(),
    {1, 2, 3},
    [[[]]],
]


@pytest.mark.parametrize("obj", SIMPLE_CASES, ids=repr)
def test_roundtrip_simple(obj):
    assert unpack(pack(obj)) == obj


def test_roundtrip_preserves_types():
    packed = pack((1, [2], "3"))
    out = unpack(packed)
    assert isinstance(out, tuple)
    assert isinstance(out[0], int)
    assert isinstance(out[1], list)
    assert isinstance(out[2], str)


def test_bool_not_confused_with_int():
    assert unpack(pack(True)) is True
    assert unpack(pack(1)) == 1
    assert unpack(pack(1)) is not True or unpack(pack(1)) == 1


def test_ndarray_roundtrip():
    arr = np.arange(12, dtype=np.int32).reshape(3, 4)
    out = unpack(pack(arr))
    assert out.dtype == arr.dtype
    assert out.shape == arr.shape
    assert np.array_equal(out, arr)


def test_structured_array_roundtrip():
    dt = np.dtype([("v", "u8"), ("w", "f4")])
    arr = np.zeros(5, dtype=dt)
    arr["v"] = np.arange(5)
    arr["w"] = 0.5
    out = unpack(pack(arr))
    assert out.dtype == dt
    assert np.array_equal(out, arr)


def test_numpy_scalar_roundtrip():
    for val in (np.uint64(2**63), np.float32(1.5), np.int8(-4)):
        out = unpack(pack(val))
        assert out == val
        assert out.dtype == val.dtype


def test_packed_size_matches_len():
    for obj in SIMPLE_CASES:
        assert packed_size(obj) == len(pack(obj))


def test_small_ints_are_compact():
    assert packed_size(0) == 2  # tag + 1 varint byte
    assert packed_size(63) == 2
    assert packed_size(2**40) < 9


def test_object_dtype_rejected():
    arr = np.array([object()], dtype=object)
    with pytest.raises(SerdeError):
        pack(arr)


def test_unregistered_custom_type_rejected():
    class Foo:
        pass

    with pytest.raises(SerdeError):
        pack(Foo())


def test_trailing_bytes_rejected():
    with pytest.raises(SerdeError):
        unpack(pack(1) + b"\x00")


def test_truncated_data_rejected():
    data = pack([1, 2, 3])
    with pytest.raises(SerdeError):
        unpack(data[:-1])


def test_deterministic_encoding():
    obj = {"x": [1, 2, {3, 4}], "y": (None, True)}
    assert pack(obj) == pack(obj)


# ------------------------------------------------------- property tests
json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.binary(max_size=64)
    | st.text(max_size=64),
    lambda children: st.lists(children, max_size=8)
    | st.dictionaries(st.text(max_size=8), children, max_size=8),
    max_leaves=24,
)


@given(json_like)
def test_roundtrip_property(obj):
    assert unpack(pack(obj)) == obj


@given(st.integers())
def test_int_roundtrip_property(n):
    assert unpack(pack(n)) == n


@given(
    st.lists(st.integers(min_value=0, max_value=2**63 - 1), max_size=32),
    st.sampled_from(["u8", "i8", "u4", "f8"]),
)
def test_array_roundtrip_property(values, dtype):
    values = [v % 2**31 for v in values] if dtype == "u4" else values
    arr = np.array(values, dtype=dtype)
    out = unpack(pack(arr))
    assert np.array_equal(out, arr)
    assert out.dtype == arr.dtype
