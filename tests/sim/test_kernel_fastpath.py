"""Tests for the kernel fast paths: Callback events, batched enqueue,
process batches, and the countdown-based ``run_until_complete``.

These paths exist for speed; the tests pin that they are *semantically*
indistinguishable from the one-at-a-time equivalents (same order, same
timestamps, same sequence numbering) so the determinism guarantees of
the seed kernel carry over.
"""

import pytest

from repro.sim import Callback, DeadlockError, Simulator


# ------------------------------------------------------------- schedule()
def test_schedule_runs_callback_at_delay():
    sim = Simulator()
    fired = []
    ev = sim.schedule(2.5, lambda: fired.append(sim.now))
    assert isinstance(ev, Callback)
    assert not ev.triggered  # value assigned only at processing time
    sim.run()
    assert fired == [2.5]
    assert ev.processed and ev.ok and ev.value is None


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_interleaves_fifo_with_timeouts():
    sim = Simulator()
    order = []

    def proc(sim):
        yield sim.timeout(1.0)
        order.append("timeout")

    sim.process(proc(sim))
    sim.schedule(1.0, lambda: order.append("callback"))
    sim.run()
    # The callback is enqueued immediately; the process's timeout only
    # when its init event runs at t=0 -- so at t=1 FIFO order puts the
    # callback first.
    assert order == ["callback", "timeout"]


def test_schedule_callback_runs_before_attached_callbacks():
    sim = Simulator()
    order = []
    ev = sim.schedule(1.0, lambda: order.append("fn"))
    ev.attach(lambda _ev: order.append("attached"))
    sim.run()
    assert order == ["fn", "attached"]


def test_callback_event_waitable_by_process():
    sim = Simulator()
    got = []

    def proc(sim, ev):
        yield ev
        got.append(sim.now)

    ev = sim.schedule(3.0, lambda: None)
    sim.process(proc(sim, ev))
    sim.run()
    assert got == [3.0]


# ------------------------------------------------------- schedule_batch()
def test_schedule_batch_matches_sequential_schedules():
    def run(batched: bool):
        sim = Simulator()
        order = []
        fns = [lambda i=i: order.append((sim.now, i)) for i in range(5)]
        if batched:
            sim.schedule_batch(1.5, fns)
        else:
            for fn in fns:
                sim.schedule(1.5, fn)
        sim.run()
        return order, sim._seq

    assert run(batched=True) == run(batched=False)


def test_schedule_batch_respects_tiebreaker():
    # A reversing tiebreaker must reorder batch-enqueued events exactly as
    # it reorders singly-enqueued ones.
    def run(batched: bool):
        sim = Simulator(tiebreaker=lambda t, seq: -seq)
        order = []
        fns = [lambda i=i: order.append(i) for i in range(4)]
        if batched:
            sim.schedule_batch(1.0, fns)
        else:
            for fn in fns:
                sim.schedule(1.0, fn)
        sim.run()
        return order

    assert run(batched=True) == run(batched=False) == [3, 2, 1, 0]


# -------------------------------------------------------- process_batch()
def _worker(sim, log, label, delay):
    yield sim.timeout(delay)
    log.append((sim.now, label))
    return label


def test_process_batch_matches_sequential_process_calls():
    def run(batched: bool):
        sim = Simulator()
        log = []
        gens = [_worker(sim, log, i, delay=(i % 3) * 0.5) for i in range(6)]
        names = [f"w{i}" for i in range(6)]
        if batched:
            procs = sim.process_batch(gens, names=names)
        else:
            procs = [sim.process(g, name=n) for g, n in zip(gens, names)]
        sim.run()
        return log, [p.value for p in procs], sim._seq, sim.steps

    assert run(batched=True) == run(batched=False)


def test_process_batch_names_default_and_values():
    sim = Simulator()
    log = []
    procs = sim.process_batch(_worker(sim, log, i, 0.0) for i in range(3))
    sim.run()
    assert [p.value for p in procs] == [0, 1, 2]
    assert all(p.processed for p in procs)


# -------------------------------------------------- run_until_complete()
def test_run_until_complete_ignores_daemon_processes():
    sim = Simulator()
    log = []

    def daemon(sim):
        while True:
            yield sim.timeout(1.0)

    def job(sim):
        yield sim.timeout(2.5)
        log.append("done")

    sim.process(daemon(sim))
    p = sim.process(job(sim))
    sim.run_until_complete(p)
    assert log == ["done"]
    assert p.processed
    assert sim.now == pytest.approx(2.5)


def test_run_until_complete_many_processes_counts_each_once():
    sim = Simulator()
    log = []
    procs = [sim.process(_worker(sim, log, i, 0.5 * i)) for i in range(8)]
    sim.run_until_complete(*procs)
    assert len(log) == 8
    assert sim.now == pytest.approx(3.5)


def test_run_until_complete_with_already_finished_process():
    sim = Simulator()
    log = []
    p = sim.process(_worker(sim, log, "a", 1.0))
    sim.run()  # finishes p
    # Awaiting an already-processed process returns without stepping.
    steps_before = sim.steps
    sim.run_until_complete(p)
    assert sim.steps == steps_before


def test_run_until_complete_deadlocks_when_queue_drains():
    sim = Simulator()

    def stuck(sim):
        yield sim.event()  # never triggered

    p = sim.process(stuck(sim))
    with pytest.raises(DeadlockError):
        sim.run_until_complete(p)


def test_run_until_complete_stops_at_completion_not_queue_drain():
    # Events scheduled past the awaited completion stay queued.
    sim = Simulator()
    late = []
    sim.schedule(10.0, lambda: late.append(True))
    p = sim.process(_worker(sim, [], "x", 1.0))
    sim.run_until_complete(p)
    assert sim.now == pytest.approx(1.0)
    assert not late
    sim.run()  # drain the rest
    assert late == [True]


# --------------------------------------------------------------- tracing
def test_progress_samples_recorded_with_tracer():
    from repro.trace import Tracer

    sim = Simulator()
    sim.tracer = Tracer()
    sim.process_batch(_worker(sim, [], i, 0.1) for i in range(4))
    sim.run()
    samples = sim.tracer.progress_samples
    assert len(samples) >= 2  # at least loop entry + exit
    sim_times = [s[0] for s in samples]
    step_counts = [s[1] for s in samples]
    walls = [s[2] for s in samples]
    assert sim_times == sorted(sim_times)
    assert step_counts == sorted(step_counts)
    assert walls == sorted(walls)
    assert step_counts[-1] == sim.steps
