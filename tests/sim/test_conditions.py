"""Tests for AnyOf/AllOf condition events."""

import pytest

from repro.sim import Simulator


def test_any_of_first_wins():
    sim = Simulator()

    def proc(sim):
        fast = sim.timeout(1, value="fast")
        slow = sim.timeout(5, value="slow")
        yield sim.any_of([fast, slow])
        return (fast.triggered, slow.triggered, sim.now)

    p = sim.process(proc(sim))
    sim.run_until_complete(p)
    fast_done, slow_done, t = p.value
    assert fast_done and not slow_done
    assert t == pytest.approx(1)


def test_any_of_with_already_triggered_child():
    sim = Simulator()

    def proc(sim):
        ev = sim.event()
        ev.succeed("ready")
        yield sim.any_of([ev, sim.timeout(10)])
        return sim.now

    p = sim.process(proc(sim))
    sim.run_until_complete(p)
    assert p.value == 0


def test_any_of_empty_list_fires_immediately():
    sim = Simulator()

    def proc(sim):
        yield sim.any_of([])
        return "ok"

    p = sim.process(proc(sim))
    sim.run_until_complete(p)
    assert p.value == "ok"


def test_all_of_waits_for_every_child():
    sim = Simulator()

    def proc(sim):
        evs = [sim.timeout(d, value=d) for d in (3, 1, 2)]
        values = yield sim.all_of(evs)
        return (values, sim.now)

    p = sim.process(proc(sim))
    sim.run_until_complete(p)
    values, t = p.value
    assert values == [3, 1, 2]  # input order preserved
    assert t == pytest.approx(3)


def test_all_of_all_already_triggered():
    sim = Simulator()

    def proc(sim):
        a, b = sim.event(), sim.event()
        a.succeed(1)
        b.succeed(2)
        values = yield sim.all_of([a, b])
        return values

    p = sim.process(proc(sim))
    sim.run_until_complete(p)
    assert p.value == [1, 2]


def test_all_of_failure_propagates():
    sim = Simulator()

    class Boom(Exception):
        pass

    def proc(sim):
        good = sim.timeout(1)
        bad = sim.event()
        cond = sim.all_of([good, bad])
        bad.fail(Boom())
        with pytest.raises(Boom):
            yield cond
        return "caught"

    p = sim.process(proc(sim))
    sim.run_until_complete(p)
    assert p.value == "caught"


def test_any_of_failure_propagates():
    sim = Simulator()

    class Boom(Exception):
        pass

    def proc(sim):
        bad = sim.event()
        cond = sim.any_of([bad, sim.timeout(10)])
        bad.fail(Boom())
        with pytest.raises(Boom):
            yield cond
        return "caught"

    p = sim.process(proc(sim))
    sim.run_until_complete(p)
    assert p.value == "caught"


def test_nested_conditions():
    sim = Simulator()

    def proc(sim):
        inner = sim.all_of([sim.timeout(1), sim.timeout(2)])
        outer = sim.any_of([inner, sim.timeout(10)])
        yield outer
        return sim.now

    p = sim.process(proc(sim))
    sim.run_until_complete(p)
    assert p.value == pytest.approx(2)
