"""Unit tests for Store (cancellable gets) and Resource (FIFO server)."""

import pytest

from repro.sim import EventStateError, Resource, Simulator, Store


# ---------------------------------------------------------------- stores
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def proc(sim):
        item = yield store.get()
        return item

    store.put("hello")
    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "hello"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def getter(sim):
        item = yield store.get()
        return (item, sim.now)

    def putter(sim):
        yield sim.timeout(5)
        store.put("late")

    p = sim.process(getter(sim))
    sim.process(putter(sim))
    sim.run()
    assert p.value == ("late", 5)


def test_store_fifo_ordering_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    results = []

    def getter(sim, label):
        item = yield store.get()
        results.append((label, item))

    for label in "ab":
        sim.process(getter(sim, label))

    def putter(sim):
        yield sim.timeout(1)
        store.put(1)
        store.put(2)

    sim.process(putter(sim))
    sim.run()
    assert results == [("a", 1), ("b", 2)]


def test_store_try_get_and_len():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(7)
    assert len(store) == 1
    assert store.try_get() == 7
    assert len(store) == 0


def test_store_drain():
    sim = Simulator()
    store = Store(sim)
    for i in range(4):
        store.put(i)
    assert store.drain() == [0, 1, 2, 3]
    assert len(store) == 0


def test_cancelled_get_does_not_steal_items():
    sim = Simulator()
    store = Store(sim)
    got = []

    def canceller(sim):
        g = store.get()
        t = sim.timeout(1)
        yield sim.any_of([g, t])
        assert not g.triggered
        g.cancel()

    def getter(sim):
        yield sim.timeout(0.5)  # posted after canceller's get
        item = yield store.get()
        got.append(item)

    def putter(sim):
        yield sim.timeout(2)
        store.put("only")

    sim.process(canceller(sim))
    sim.process(getter(sim))
    sim.process(putter(sim))
    sim.run()
    assert got == ["only"]


def test_put_after_all_getters_cancelled_queues_item():
    """With only a cancelled getter waiting, put must queue the item
    (not hand it to the dead getter)."""
    sim = Simulator()
    store = Store(sim)

    def proc(sim):
        g = store.get()
        yield sim.any_of([g, sim.timeout(1)])
        assert not g.triggered
        g.cancel()
        assert g.cancelled
        store.put("kept")
        assert len(store) == 1
        assert store.try_get() == "kept"
        return True

    p = sim.process(proc(sim))
    sim.run()
    assert p.value is True


def test_put_skips_many_cancelled_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def canceller(sim):
        g = store.get()
        yield sim.any_of([g, sim.timeout(1)])
        g.cancel()

    def live(sim):
        yield sim.timeout(0.5)  # queued behind the cancelled getters
        item = yield store.get()
        got.append(item)

    for _ in range(3):
        sim.process(canceller(sim))
    sim.process(live(sim))

    def putter(sim):
        yield sim.timeout(2)
        store.put("x")

    sim.process(putter(sim))
    sim.run()
    assert got == ["x"]


def test_cancel_triggered_get_raises():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    g = store.get()
    assert g.triggered
    with pytest.raises(EventStateError):
        g.cancel()


def test_any_of_both_children_usable():
    sim = Simulator()
    a, b = Store(sim), Store(sim)
    seen = []

    def proc(sim):
        ga, gb = a.get(), b.get()
        yield sim.any_of([ga, gb])
        for g in (ga, gb):
            if g.triggered:
                seen.append(g.value)
            else:
                g.cancel()

    a.put("A")
    b.put("B")
    sim.process(proc(sim))
    sim.run()
    # Both were already available: both trigger.
    assert sorted(seen) == ["A", "B"]


# ------------------------------------------------------------- resources
def test_resource_serializes_holds():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def user(sim, label):
        start = sim.now
        yield from res.timed(1.0)
        spans.append((label, start, sim.now))

    for label in "abc":
        sim.process(user(sim, label))
    sim.run()
    # Total serialized time = 3 holds of 1s each.
    assert sim.now == pytest.approx(3.0)
    ends = [end for (_, _, end) in spans]
    assert ends == [1.0, 2.0, 3.0]


def test_resource_capacity_two_runs_pairs_concurrently():
    sim = Simulator()
    res = Resource(sim, capacity=2)

    def user(sim):
        yield from res.timed(1.0)

    procs = [sim.process(user(sim)) for _ in range(4)]
    sim.run_until_complete(*procs)
    assert sim.now == pytest.approx(2.0)


def test_resource_fifo_grant_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, label, delay):
        yield sim.timeout(delay)
        yield from res.timed(1.0)
        order.append(label)

    sim.process(user(sim, "first", 0.0))
    sim.process(user(sim, "second", 0.1))
    sim.process(user(sim, "third", 0.2))
    sim.run()
    assert order == ["first", "second", "third"]


def test_resource_release_when_idle_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_utilisation_counters():
    sim = Simulator()
    res = Resource(sim)

    def user(sim):
        yield from res.timed(2.0)
        yield from res.timed(3.0)

    p = sim.process(user(sim))
    sim.run_until_complete(p)
    assert res.busy_time == pytest.approx(5.0)
    assert res.holds == 2


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)
