"""Unit tests for the DES kernel: simulator, events, time semantics."""

import pytest

from repro.sim import DeadlockError, EventStateError, Simulator


def test_initial_time_is_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        yield sim.timeout(1.0)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(3.5)


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        return "result"

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "result"
    assert p.triggered


def test_process_waits_on_child_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3)
        return 42

    def parent(sim):
        got = yield sim.process(child(sim))
        return got + 1

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == 43
    assert sim.now == pytest.approx(3)


def test_events_processed_in_fifo_order_at_same_time():
    sim = Simulator()
    order = []

    def proc(sim, label):
        yield sim.timeout(1.0)
        order.append(label)

    for label in "abcde":
        sim.process(proc(sim, label))
    sim.run()
    assert order == list("abcde")


def test_run_until_limits_time():
    sim = Simulator()
    hits = []

    def proc(sim):
        for _ in range(10):
            yield sim.timeout(1)
            hits.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=4.5)
    assert sim.now == pytest.approx(4.5)
    assert hits == [1, 2, 3, 4]


def test_deadlock_detection():
    sim = Simulator()

    def proc(sim):
        # Wait on an event that nobody will ever trigger.
        yield sim.event("never")

    sim.process(proc(sim))
    with pytest.raises(DeadlockError) as ei:
        sim.run()
    assert ei.value.blocked == 1


def test_run_until_complete_ignores_daemons():
    sim = Simulator()

    def daemon(sim, wake):
        yield wake  # blocked forever after main finishes

    def main(sim):
        yield sim.timeout(1)
        return "done"

    wake = sim.event()
    sim.process(daemon(sim, wake))
    p = sim.process(main(sim))
    sim.run_until_complete(p)
    assert p.value == "done"


def test_event_double_succeed_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(EventStateError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    sim = Simulator()

    class Boom(Exception):
        pass

    def proc(sim, ev):
        with pytest.raises(Boom):
            yield ev
        return "caught"

    ev = sim.event()
    p = sim.process(proc(sim, ev))
    ev.fail(Boom("x"))
    sim.run()
    assert p.value == "caught"


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        raise ValueError("kaboom")

    sim.process(proc(sim))
    with pytest.raises(Exception) as ei:
        sim.run()
    assert "kaboom" in repr(ei.value.__cause__) or "kaboom" in repr(ei.value)


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def proc(sim):
        yield 42  # not an Event

    p = sim.process(proc(sim))
    p.attach(lambda ev: None)  # observer so failure goes to the event
    sim.run()
    assert p.ok is False
    assert isinstance(p.value, TypeError)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_schedule_callback():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_determinism_two_runs_identical():
    def world(sim, log):
        def worker(sim, i):
            yield sim.timeout(i * 0.1)
            log.append(("w", i, sim.now))
            yield sim.timeout(1)
            log.append(("d", i, sim.now))

        procs = [sim.process(worker(sim, i)) for i in range(5)]
        for p in procs:
            yield p

    logs = []
    for _ in range(2):
        sim = Simulator()
        log = []
        sim.process(world(sim, log))
        sim.run()
        logs.append(log)
    assert logs[0] == logs[1]
