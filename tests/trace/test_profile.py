"""Tests for the causal message-lineage profiler (repro.trace.profile).

The closed-form tests run hand-built scenarios whose critical paths are
computable exactly from the :class:`NetworkModel` / :class:`ComputeModel`
parameters, and assert the profiler's stage decomposition reproduces the
arithmetic -- not just that numbers exist.
"""

import numpy as np
import pytest

from repro import YgmWorld
from repro.machine import small
from repro.trace import (
    BUCKETS,
    STAGES,
    Tracer,
    analyze_profile,
    render_html,
    report_document,
)

#: Explicit payload size used by the closed-form scenarios.
PAYLOAD = 24


def _profiled_world(nodes, cores, scheme):
    tracer = Tracer(categories=(), profile=True)
    world = YgmWorld(
        small(nodes=nodes, cores_per_node=cores),
        scheme=scheme,
        seed=0,
        tracer=tracer,
    )
    return world, tracer


# ------------------------------------------------------- closed-form 2-node
def _one_message_main(ctx):
    mb = ctx.mailbox(recv=lambda m: None)
    if ctx.rank == 0:
        mb.post(1, "x", nbytes=PAYLOAD)
    yield from mb.wait_empty()


def test_single_remote_message_closed_form():
    """2 nodes x 1 core, noroute, one message: every stage is exact.

    Timeline (all quantities from the machine's cost models; nothing
    else runs, so there is no contention anywhere):

    * ``t=0``: rank 0 posts (enqueue), then ``wait_empty`` flushes.
    * serialize = 1 message x ``per_message_queue``; the packet leaves
      at ``t_out = serialize`` (queue time 0).
    * sender side: ``send_overhead`` + TX NIC occupancy, uncontended.
    * wire: ``remote_delay`` (eager packet, below the threshold).
    * receiver side: RX NIC occupancy + ``recv_overhead``, uncontended.
    * rank 1 is blocked waiting, so the delivery callback runs at the
      arrival instant: deliver-wait 0.
    """
    world, tracer = _profiled_world(2, 1, "noroute")
    res = world.run(_one_message_main)
    cfg = world.machine_config
    net, compute = cfg.net, cfg.compute

    sp = analyze_profile(tracer.lineage, res, cfg, "noroute")
    assert sp.messages == 1
    assert len(sp.critical_path) == 1
    step = sp.critical_path[0]
    assert step["kind"] == "p2p"
    assert (step["src"], step["dest"]) == (0, 1)
    assert step["inject"] == 0.0
    assert step["gap"] == 0.0
    assert len(step["hops"]) == 1
    hop = step["hops"][0]
    assert (hop["from"], hop["to"]) == (0, 1)
    assert hop["local"] is False

    # Wire size: payload + per-entry header + per-packet header.
    from repro.core.coalescing import ENTRY_HEADER_BYTES
    from repro.mpi.envelope import HEADER_BYTES

    wire_bytes = PAYLOAD + ENTRY_HEADER_BYTES + HEADER_BYTES
    assert hop["nbytes"] == wire_bytes

    serialize = compute.per_message_queue  # one queued message
    nic = net.send_overhead + 2 * net.nic_time(wire_bytes) + net.recv_overhead
    stages = hop["stages"]
    assert stages["serialize"] == pytest.approx(serialize, abs=1e-15)
    assert stages["queue"] == pytest.approx(0.0, abs=1e-15)
    assert stages["nic_wait"] == pytest.approx(0.0, abs=1e-15)
    assert stages["nic"] == pytest.approx(nic, abs=1e-15)
    assert stages["wire"] == pytest.approx(net.remote_delay(wire_bytes), abs=1e-15)
    assert stages["local"] == 0.0
    assert stages["deliver"] == pytest.approx(0.0, abs=1e-15)

    # End-to-end: inject -> handled equals the sum of the stages.
    total = serialize + nic + net.remote_delay(wire_bytes)
    assert step["handled"] - step["inject"] == pytest.approx(total, abs=1e-15)

    # The chain plus the termination tail tiles the whole run.
    assert set(sp.cp_stages) == set(STAGES)
    assert sum(sp.cp_stages.values()) == pytest.approx(sp.elapsed, rel=1e-12)
    assert sp.cp_stages["term_tail"] == pytest.approx(
        sp.elapsed - step["handled"], abs=1e-15
    )
    assert 0.0 < sp.comm_share < 1.0


def test_causal_chain_links_reply_to_request():
    """A message posted from a delivery callback is the causal child."""

    def main(ctx):
        def on_recv(msg):
            if msg == "ping":
                ctx.mailboxes[0].post(0, "pong", nbytes=PAYLOAD)

        mb = ctx.mailbox(recv=on_recv)
        if ctx.rank == 0:
            mb.post(1, "ping", nbytes=PAYLOAD)
        yield from mb.wait_empty()

    world, tracer = _profiled_world(2, 1, "noroute")
    res = world.run(main)
    sp = analyze_profile(tracer.lineage, res, world.machine_config, "noroute")

    assert sp.messages == 2
    # The last delivery is the pong; its parent chain reaches the ping.
    assert len(sp.critical_path) == 2
    ping, pong = sp.critical_path
    assert (ping["src"], ping["dest"]) == (0, 1)
    assert (pong["src"], pong["dest"]) == (1, 0)
    # The pong is injected at the instant the ping is handled (the
    # callback runs at delivery time): zero causal gap.
    assert pong["inject"] == pytest.approx(ping["handled"], abs=1e-15)
    assert pong["gap"] == pytest.approx(0.0, abs=1e-15)
    # Raw log agrees: the pong's recorded parent is the ping's lid.
    msgs = {lid: rec for lid, *rec in tracer.lineage.msgs}
    pong_parent = msgs[pong["lid"]][3]
    assert pong_parent == ping["lid"]


# ----------------------------------------------------------- routed chains
@pytest.mark.parametrize("scheme", ["node_local", "node_remote", "nlnr"])
def test_routed_message_hop_chain_is_connected(scheme):
    """Across-node messages traverse a connected multi-hop chain."""

    def main(ctx):
        mb = ctx.mailbox(recv=lambda m: None)
        if ctx.rank == 0:
            mb.post(3, "x", nbytes=PAYLOAD)  # other node, other core
        yield from mb.wait_empty()

    world, tracer = _profiled_world(2, 2, scheme)
    res = world.run(main)
    sp = analyze_profile(tracer.lineage, res, world.machine_config, scheme)

    assert sp.messages == 1
    step = sp.critical_path[0]
    hops = step["hops"]
    # Routed schemes relay 0 -> 3 through an intermediary.
    assert len(hops) >= 2
    assert hops[0]["from"] == 0
    assert hops[-1]["to"] == 3
    for a, b in zip(hops, hops[1:]):
        assert a["to"] == b["from"]
    for hop in hops:
        assert all(v >= 0 for v in hop["stages"].values())
    # The per-hop stage sum reproduces the end-to-end latency.
    total = sum(sum(h["stages"].values()) for h in hops)
    assert step["handled"] - step["inject"] == pytest.approx(total, rel=1e-9)


def test_batch_lineage_and_rank_buckets():
    """Vectorized sends are tracked per record; bucket sums stay bounded."""

    def main(ctx):
        mb = ctx.mailbox(recv_batch=lambda b: None, recv=lambda m: None)
        if ctx.rank == 0:
            dests = np.arange(ctx.nranks, dtype=np.int64).repeat(8)
            yield from mb.send_batch(dests, dests.copy())
        yield from mb.wait_empty()

    world, tracer = _profiled_world(2, 2, "nlnr")
    res = world.run(main)
    sp = analyze_profile(tracer.lineage, res, world.machine_config, "nlnr")

    assert sp.messages == 4 * 8
    assert sp.nranks == 4
    assert len(sp.rank_buckets) == 4
    for row in sp.rank_buckets:
        assert set(BUCKETS) <= set(row)
        assert row["total"] > 0
        # The named buckets plus the inject remainder tile the rank's time.
        assert sum(row[b] for b in BUCKETS) == pytest.approx(
            row["total"], rel=1e-9
        )
        assert all(row[b] >= 0 for b in BUCKETS)
    # Histograms exist for whichever hop kinds occurred.
    assert set(sp.hop_latency) == {"local", "remote"}
    assert sum(c for _l, c in sp.hop_latency["remote"]) > 0


# ------------------------------------------------------------- report layer
def test_report_document_and_html_self_contained():
    world, tracer = _profiled_world(2, 1, "noroute")
    res = world.run(_one_message_main)
    sp = analyze_profile(tracer.lineage, res, world.machine_config, "noroute")

    doc = report_document([sp], meta={"fig": "test"})
    assert doc["schema"] == 1
    assert doc["meta"] == {"fig": "test"}
    assert [s["scheme"] for s in doc["schemes"]] == ["noroute"]
    import json

    json.dumps(doc)  # must be JSON-serializable as-is

    page = render_html([sp], "unit test")
    assert page.startswith("<!DOCTYPE html>")
    assert "unit test" in page
    for marker in ("Critical path to quiescence", "Per-rank utilization"):
        assert marker in page
    # Self-contained: no external scripts, stylesheets or images.
    for needle in ("src=", "href=", "http://", "https://"):
        assert needle not in page
