"""Unit and integration tests for the repro.trace observability layer."""

import json

import numpy as np
import pytest

from repro import YgmWorld
from repro.machine import small
from repro.trace import (
    ALL_CATEGORIES,
    CallbackSink,
    JsonlSink,
    MemorySink,
    Tracer,
    compute_metrics,
    to_chrome_events,
)


# ------------------------------------------------------------------ tracer
def test_tracer_records_to_memory_sink():
    tr = Tracer()
    tr.instant(1.0, "mpi", "packet_injected", "rank 0", dst=3, nbytes=64)
    tr.complete(1.0, 0.5, "resource", "hold", "nic_tx[0]")
    tr.counter(2.0, "mpi", "unexpected_depth", "rank 1", 7)
    evs = tr.events
    assert [e.ph for e in evs] == ["i", "X", "C"]
    assert evs[0].args == {"dst": 3, "nbytes": 64}
    assert evs[1].dur == 0.5
    assert evs[2].args == {"value": 7}


def test_tracer_category_gating():
    tr = Tracer(categories={"mailbox"})
    assert tr.wants("mailbox")
    assert not tr.wants("mpi")
    assert not tr.wants("kernel")
    assert "kernel" in ALL_CATEGORIES


def test_callback_sink_streams_events():
    seen = []
    tr = Tracer(sinks=[MemorySink(), CallbackSink(seen.append)])
    tr.instant(0.0, "app", "phase", "rank 0")
    assert len(seen) == 1 and seen[0] is tr.events[0]


def test_tracer_without_memory_sink_rejects_event_access():
    tr = Tracer(sinks=[CallbackSink(lambda ev: None)])
    with pytest.raises(ValueError, match="CallbackSink"):
        _ = tr.events
    with pytest.raises(ValueError, match="no sinks"):
        _ = Tracer(sinks=[]).events


def test_jsonl_sink_streams_events(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlSink(str(path))
    tr = Tracer(sinks=[sink])
    tr.instant(1.0, "mpi", "packet_injected", "rank 0", dst=3, nbytes=64)
    tr.complete(2.0, 0.5, "resource", "hold", "nic_tx[0]")
    tr.counter(3.0, "mpi", "unexpected_depth", "rank 1", np.int64(7))
    tr.close()
    assert sink.count == 3
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    recs = [json.loads(line) for line in lines]
    assert recs[0] == {
        "ts": 1.0, "cat": "mpi", "name": "packet_injected", "ph": "i",
        "lane": "rank 0", "args": {"dst": 3, "nbytes": 64},
    }
    assert recs[1]["dur"] == 0.5
    assert recs[2]["args"] == {"value": 7}  # numpy scalar coerced
    sink.close()  # idempotent


def test_jsonl_sink_full_run_matches_memory_sink(tmp_path):
    path = tmp_path / "run.jsonl"
    sink = JsonlSink(str(path))
    tr = Tracer(sinks=[MemorySink(), sink])
    _run_traced(tr)
    tr.close()
    lines = path.read_text().splitlines()
    assert len(lines) == len(tr.events) == sink.count
    for line in lines:
        json.loads(line)


# ------------------------------------------------------- instrumented runs
def _traffic_main(ctx):
    got = []
    mb = ctx.mailbox(recv=got.append, capacity=16)
    ctx.trace("send_phase", messages=64)
    rng = ctx.rng
    for _ in range(64):
        yield from mb.send(int(rng.integers(ctx.nranks)), ctx.rank)
    yield from mb.wait_empty()
    return len(got)


def _run_traced(tracer, nodes=2, cores=2, scheme="nlnr", seed=0):
    world = YgmWorld(
        small(nodes=nodes, cores_per_node=cores),
        scheme=scheme,
        seed=seed,
        mailbox_capacity=16,
        tracer=tracer,
    )
    return world.run(_traffic_main)


def test_instrumented_run_covers_all_layers():
    tr = Tracer(categories=ALL_CATEGORIES)
    res = _run_traced(tr)
    cats = {e.cat for e in tr.events}
    assert {"app", "mailbox", "mpi", "resource", "kernel", "process"} <= cats
    names = {(e.cat, e.name) for e in tr.events}
    assert ("mpi", "packet_injected") in names
    assert ("mpi", "packet_delivered") in names
    assert ("mailbox", "flush") in names
    assert ("mailbox", "term_round") in names
    assert ("mailbox", "idle") in names
    assert ("resource", "hold") in names
    assert ("app", "send_phase") in names
    # Packet-level trace totals must agree with the end-of-run stats.
    # (Machine-level transport counts include termination-protocol
    # packets, which MailboxStats does not.)
    injected = [e for e in tr.events if e.name == "packet_injected"]
    assert len(injected) == res.transport["remote_packets"]
    flushes = [e for e in tr.events if e.name == "flush"]
    assert len(flushes) == res.mailbox_stats.flushes
    idle = sum(e.dur for e in tr.events if e.name == "idle")
    assert idle == pytest.approx(res.mailbox_stats.idle_time, rel=1e-9)


def test_default_categories_exclude_noisy_ones():
    tr = Tracer()
    _run_traced(tr)
    cats = {e.cat for e in tr.events}
    assert "kernel" not in cats and "process" not in cats
    assert "mailbox" in cats and "mpi" in cats


def test_eager_vs_rendezvous_choice_recorded():
    def rank_main(ctx):
        mb = ctx.mailbox(recv=lambda m: None, capacity=2**20)
        if ctx.rank == 0:
            # Big single payload: above the 16 KiB eager threshold.
            mb.post(ctx.nranks - 1, b"x", nbytes=1 << 20)
            yield from mb.flush()
            # Small payload, flushed separately so it is not coalesced
            # into the rendezvous packet: eager.
            mb.post(ctx.nranks - 1, b"y", nbytes=8)
            yield from mb.flush()
        yield from mb.wait_empty()
        return None

    tr = Tracer()
    YgmWorld(
        small(nodes=2, cores_per_node=1), scheme="noroute", tracer=tr
    ).run(rank_main)
    protocols = {
        e.args["protocol"] for e in tr.events if e.name == "packet_injected"
    }
    assert protocols == {"eager", "rendezvous"}


# ------------------------------------------------------------- chrome export
def test_chrome_export_structure(tmp_path):
    tr = Tracer()
    _run_traced(tr)
    path = tmp_path / "trace.json"
    tr.export_chrome(str(path))
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    evs = doc["traceEvents"]
    lanes = {
        e["args"]["name"]
        for e in evs
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    # One lane per rank plus one per NIC engine.
    assert {f"rank {r}" for r in range(4)} <= lanes
    assert {"nic_tx[0]", "nic_rx[0]", "nic_tx[1]", "nic_rx[1]"} <= lanes
    for ev in evs:
        assert {"name", "ph", "pid", "tid"} <= set(ev)
        if ev["ph"] == "X":
            assert ev["dur"] >= 0 and "ts" in ev
    # NIC holds land on NIC lanes (pid 2), mailbox events on rank lanes (pid 1).
    assert any(e["ph"] == "X" and e["pid"] == 2 for e in evs)
    assert any(e["name"] == "flush" and e["pid"] == 1 for e in evs)


def test_chrome_events_timestamps_microseconds():
    tr = Tracer()
    tr.complete(1.5, 0.25, "mailbox", "flush", "rank 0")
    evs = [e for e in to_chrome_events(tr) if e["ph"] == "X"]
    assert evs[0]["ts"] == pytest.approx(1.5e6)
    assert evs[0]["dur"] == pytest.approx(0.25e6)


def test_chrome_exec_events_get_their_own_clock_domain():
    """Host wall-clock (exec) events must not share a pid with simulated
    ones: interleaving the two clock domains on one timeline would place
    host-side job spans in the middle of microsecond-scale simulated
    activity."""
    from repro.trace.chrome import PID_HOST

    tr = Tracer(categories=ALL_CATEGORIES)
    tr.complete(1e-6, 5e-7, "mailbox", "flush", "rank 0")
    tr.complete(0.2, 1.5, "exec", "job", "worker 0", job="fig6a[0]")
    tr.complete(1.9, 0.3, "exec", "job", "worker 1", job="fig6a[1]")
    evs = to_chrome_events(tr)

    sim_pids = {e["pid"] for e in evs if e.get("cat") not in ("exec", None)}
    exec_evs = [e for e in evs if e.get("cat") == "exec"]
    assert exec_evs and all(e["pid"] == PID_HOST for e in exec_evs)
    assert PID_HOST not in sim_pids
    # Each host lane is a named thread in the host process group.
    host_threads = {
        e["args"]["name"]
        for e in evs
        if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == PID_HOST
    }
    assert host_threads == {"worker 0", "worker 1"}
    # The host process group itself is labelled as wall clock.
    host_process = [
        e for e in evs
        if e["ph"] == "M" and e["name"] == "process_name" and e["pid"] == PID_HOST
    ]
    assert host_process and "wall clock" in host_process[0]["args"]["name"]


# ------------------------------------------------------------- metrics table
def test_metrics_rows_total_matches_stats(tmp_path):
    tr = Tracer()
    res = _run_traced(tr)
    rows = compute_metrics(tr)
    assert rows, "non-empty metrics table"
    assert sum(r["remote_packets"] for r in rows) == res.transport["remote_packets"]
    assert sum(r["local_packets"] for r in rows) == res.transport["local_packets"]
    assert sum(r["flushes"] for r in rows) == res.mailbox_stats.flushes
    assert sum(r["idle_seconds"] for r in rows) == pytest.approx(
        res.mailbox_stats.idle_time, rel=1e-9
    )
    assert sum(r["term_rounds"] for r in rows) == res.mailbox_stats.term_rounds
    assert any(r["nic_utilization"] > 0 for r in rows)
    # CSV round trip.
    path = tmp_path / "metrics.csv"
    written = tr.export_metrics(str(path), interval=None)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == len(written) + 1  # header + rows


def test_metrics_explicit_interval():
    tr = Tracer()
    _run_traced(tr)
    end = max(e.ts + e.dur for e in tr.events)
    rows = compute_metrics(tr, interval=end / 10)
    assert 10 <= len(rows) <= 11
    assert rows[0]["t_start"] == 0.0
    with pytest.raises(ValueError):
        compute_metrics(tr, interval=0.0)


def test_metrics_empty_tracer():
    assert compute_metrics(Tracer()) == []


# ------------------------------------------------------------ programmatic API
def test_context_tracer_property_and_annotations():
    tr = Tracer()

    def rank_main(ctx):
        assert ctx.tracer is tr
        ctx.trace("custom_marker", value=ctx.rank)
        mb = ctx.mailbox(recv=lambda m: None)
        yield from mb.wait_empty()
        return True

    YgmWorld(small(nodes=1, cores_per_node=2), scheme="noroute", tracer=tr).run(
        rank_main
    )
    markers = [e for e in tr.events if e.name == "custom_marker"]
    assert {e.args["value"] for e in markers} == {0, 1}
    assert {e.lane for e in markers} == {"rank 0", "rank 1"}


def test_context_trace_noop_without_tracer():
    def rank_main(ctx):
        assert ctx.tracer is None
        ctx.trace("ignored")  # must not raise
        mb = ctx.mailbox(recv=lambda m: None)
        yield from mb.wait_empty()
        return True

    res = YgmWorld(small(nodes=1, cores_per_node=2), scheme="noroute").run(rank_main)
    assert all(res.values)


def test_batch_traffic_traced():
    from repro import RecordSpec

    spec = RecordSpec("t", [("v", "u8")])

    def rank_main(ctx):
        mb = ctx.mailbox(recv_batch=lambda b: None, capacity=64)
        dests = np.arange(ctx.nranks, dtype=np.int64).repeat(32)
        yield from mb.send_batch(dests, spec.build(v=dests.astype("u8")))
        yield from mb.wait_empty()
        return None

    tr = Tracer()
    res = YgmWorld(
        small(nodes=2, cores_per_node=2), scheme="nlnr", mailbox_capacity=64, tracer=tr
    ).run(rank_main)
    forwarded = sum(
        e.args["entries"] for e in tr.events if e.name == "forward"
    )
    assert forwarded == res.mailbox_stats.entries_forwarded > 0
