"""End-to-end tests of the bench CLI's traced mode and fig expansion."""

import csv
import json

import pytest

from repro.bench.cli import expand_figs, main


# ----------------------------------------------------------- fig expansion
def test_expand_figs_prefix_groups():
    assert expand_figs(["fig6"]) == ["6a", "6b"]
    assert expand_figs(["6"]) == ["6a", "6b"]
    assert expand_figs(["Fig7A"]) == ["7a"]
    assert expand_figs(["8"]) == ["8a", "8c", "8d"]


def test_expand_figs_exact_and_groups():
    assert expand_figs(["6a", "capacity"]) == ["6a", "capacity"]
    assert "5" in expand_figs(["all"])
    assert expand_figs(["ablations"]) == [
        "capacity", "combining", "cores", "eager", "hybrid", "straggler"
    ]


def test_expand_figs_unknown_raises():
    with pytest.raises(ValueError, match="unknown figure"):
        expand_figs(["fig99"])


# ------------------------------------------------------------- traced mode
def test_cli_traced_mode_outputs(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.csv"
    rc = main(["fig6", "--trace", str(trace), "--metrics", str(metrics)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "trace_events" in out and "wall-clock" in out

    doc = json.loads(trace.read_text())
    evs = doc["traceEvents"]
    assert evs
    lanes = {
        e["args"]["name"]
        for e in evs
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert any(lane.startswith("rank ") for lane in lanes)
    assert any(lane.startswith("nic_tx[") for lane in lanes)
    assert any(lane.startswith("nic_rx[") for lane in lanes)
    assert any(e["ph"] in ("i", "X", "C") for e in evs)

    with open(metrics, newline="") as f:
        rows = list(csv.DictReader(f))
    assert rows
    assert "remote_packets" in rows[0]
    assert sum(int(r["remote_packets"]) for r in rows) > 0


def test_cli_trace_only(tmp_path, capsys):
    trace = tmp_path / "t.json"
    rc = main(["7a", "--trace", str(trace)])
    assert rc == 0
    assert json.loads(trace.read_text())["traceEvents"]


def test_cli_traced_mode_rejects_untraceable_figure(tmp_path):
    with pytest.raises(SystemExit):
        main(["capacity", "--trace", str(tmp_path / "t.json")])


def test_cli_unknown_figure_exits(tmp_path):
    with pytest.raises(SystemExit):
        main(["fig99"])
