"""Tracing must not perturb the simulation.

The ISSUE's acceptance bar: a run with the tracer enabled (all
categories) must produce bit-identical simulated time and identical
aggregated MailboxStats to the same run without a tracer.  Trace hooks
only *read* simulated state and append to sinks; any hook that created
events, charged time, or consumed randomness would break these tests.
"""

import numpy as np
import pytest

from repro import RecordSpec, YgmWorld
from repro.machine import small
from repro.trace import ALL_CATEGORIES, Tracer

SPEC = RecordSpec("pair", [("v", "u8"), ("w", "u8")])


def _mixed_main(ctx):
    """Exercise every traffic path: scalar, batch, bcast, reentrant posts."""
    got = []

    def on_recv(msg):
        got.append(msg)
        if isinstance(msg, int) and msg % 7 == 0:
            # Reentrant self-post from inside a delivery callback.
            ctx.mailboxes[0].post(ctx.rank, -1)

    mb = ctx.mailbox(recv=on_recv, capacity=16)
    rng = ctx.rng
    for i in range(48):
        yield from mb.send(int(rng.integers(ctx.nranks)), i)
    yield from mb.send_bcast(("hello", ctx.rank))
    dests = rng.integers(ctx.nranks, size=64).astype(np.int64)
    yield from mb.send_batch(dests, SPEC.build(v=dests.astype("u8"), w=dests.astype("u8")))
    yield from mb.wait_empty()
    # A second quiescence epoch, polled instead of blocked.
    yield from mb.send((ctx.rank + 1) % ctx.nranks, "late")
    while not (yield from mb.test_empty()):
        yield ctx.compute(1e-6)
    return len(got)


def _run(tracer=None, scheme="nlnr"):
    world = YgmWorld(
        small(nodes=2, cores_per_node=2),
        scheme=scheme,
        seed=3,
        mailbox_capacity=16,
        tracer=tracer,
    )
    return world.run(_mixed_main)


SCHEMES = ["noroute", "node_local", "node_remote", "nlnr"]


def _assert_identical(traced, base):
    assert traced.elapsed == base.elapsed  # exact, not approx
    assert traced.finish_times == base.finish_times
    assert traced.values == base.values
    assert traced.mailbox_stats.as_dict() == base.mailbox_stats.as_dict()
    for a, b in zip(traced.per_rank_stats, base.per_rank_stats):
        assert a.as_dict() == b.as_dict()
    assert traced.transport == base.transport


@pytest.mark.parametrize("scheme", SCHEMES)
def test_traced_run_is_bit_identical(scheme):
    base = _run(tracer=None, scheme=scheme)
    traced = _run(tracer=Tracer(categories=ALL_CATEGORIES), scheme=scheme)
    _assert_identical(traced, base)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_profiled_run_is_bit_identical(scheme):
    """Lineage profiling charges zero cost and consumes no randomness."""
    base = _run(tracer=None, scheme=scheme)
    tracer = Tracer(categories=ALL_CATEGORIES, profile=True)
    profiled = _run(tracer=tracer, scheme=scheme)
    _assert_identical(profiled, base)
    # The profiler actually recorded the run it didn't perturb.
    prof = tracer.lineage
    assert prof.msgs or prof.batch_msgs
    assert prof.packets
    assert prof.spans


def test_traced_run_is_deterministic():
    tr1, tr2 = Tracer(categories=ALL_CATEGORIES), Tracer(categories=ALL_CATEGORIES)
    r1, r2 = _run(tracer=tr1), _run(tracer=tr2)
    assert r1.elapsed == r2.elapsed
    assert tr1.events == tr2.events
