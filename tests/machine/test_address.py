"""Unit tests for (node, core) addressing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import address


def test_rank_roundtrip_small():
    C = 4
    for node in range(3):
        for core in range(C):
            r = address.rank_of(node, core, C)
            assert address.addr_of(r, C) == (node, core)
            assert address.node_of(r, C) == node
            assert address.core_of(r, C) == core


@given(st.integers(0, 10_000), st.integers(1, 64))
def test_rank_roundtrip_property(rank, cores):
    node, core = address.addr_of(rank, cores)
    assert address.rank_of(node, core, cores) == rank
    assert 0 <= core < cores


def test_same_node():
    C = 4
    assert address.same_node(0, 3, C)
    assert not address.same_node(3, 4, C)
    assert address.same_node(4, 7, C)


def test_layer_of():
    assert address.layer_of(0, 4) == 0
    assert address.layer_of(5, 4) == 1
    assert address.layer_of(11, 4) == 3


def test_validate_shape_rejects_bad():
    with pytest.raises(ValueError):
        address.validate_shape(0, 4)
    with pytest.raises(ValueError):
        address.validate_shape(4, 0)
