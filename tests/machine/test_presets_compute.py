"""Preset machines and the compute-cost model."""

import pytest

from repro.machine import ComputeModel, bench_machine, quartz_like, small
from repro.machine.presets import DEFAULT_COMPUTE, QUARTZ_NET


def test_quartz_like_shape():
    cfg = quartz_like(nodes=16)
    assert cfg.cores_per_node == 36  # the paper's Quartz
    assert cfg.nranks == 16 * 36
    assert cfg.net == QUARTZ_NET


def test_bench_machine_default_width():
    cfg = bench_machine(4)
    assert cfg.cores_per_node == 8
    assert cfg.nranks == 32


def test_presets_share_network_model():
    assert bench_machine(2).net == quartz_like(2).net == small().net


def test_preset_net_overrides():
    cfg = bench_machine(2, eager_threshold=4096, latency=9e-6)
    assert cfg.net.eager_threshold == 4096
    assert cfg.net.latency == 9e-6
    # The shared default is untouched.
    assert QUARTZ_NET.eager_threshold == 16 * 1024


def test_machine_config_validates_shape():
    with pytest.raises(ValueError):
        bench_machine(0)
    with pytest.raises(ValueError):
        small(nodes=2, cores_per_node=0)


def test_compute_model_defaults_and_overrides():
    cm = ComputeModel()
    assert cm.per_message_handle > 0
    assert cm.per_flop > 0
    fast = cm.with_overrides(per_flop=0.0)
    assert fast.per_flop == 0.0
    assert cm.per_flop > 0  # frozen original
    assert DEFAULT_COMPUTE == ComputeModel()


def test_network_model_is_frozen():
    import dataclasses

    with pytest.raises(dataclasses.FrozenInstanceError):
        QUARTZ_NET.latency = 0.0
