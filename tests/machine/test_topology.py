"""Unit tests for the Machine transport paths and NIC contention."""

import pytest

from repro.machine import Machine, small
from repro.sim import Simulator


def make_machine(nodes=2, cores=2, **net_overrides):
    sim = Simulator()
    cfg = small(nodes=nodes, cores_per_node=cores, **net_overrides)
    return sim, Machine(sim, cfg)


def test_shape_helpers():
    sim, m = make_machine(nodes=3, cores=4)
    assert m.nranks == 12
    assert m.node_of(5) == 1
    assert m.core_of(5) == 1
    assert m.rank_of(2, 3) == 11
    assert m.same_node(4, 7)
    assert not m.same_node(3, 4)


def test_local_transmit_delivers_and_charges_sender():
    sim, m = make_machine()
    delivered = []

    def sender(sim):
        yield from m.transmit(0, 1, 1024, "pkt", delivered.append)

    p = sim.process(sender(sim))
    sim.run_until_complete(p)
    assert delivered == ["pkt"]
    assert sim.now == pytest.approx(m.config.net.local_time(1024))
    assert m.local_packets == 1
    assert m.remote_packets == 0


def test_remote_transmit_delivers_after_full_path():
    sim, m = make_machine()
    net = m.config.net
    delivered_at = []

    def sender(sim):
        yield from m.transmit(0, 2, 4096, "pkt", lambda p: delivered_at.append(sim.now))

    p = sim.process(sender(sim))
    sim.run()
    expected = net.remote_time_uncontended(4096)
    assert delivered_at[0] == pytest.approx(expected)
    assert m.remote_packets == 1
    assert m.remote_bytes == 4096


def test_sender_returns_before_delivery():
    """Buffered-send semantics: the sender regains its core after the
    source-side costs, while the packet is still in flight."""
    sim, m = make_machine()
    net = m.config.net
    sender_done = []

    def sender(sim):
        yield from m.transmit(0, 2, 4096, "pkt", lambda p: None)
        sender_done.append(sim.now)

    p = sim.process(sender(sim))
    sim.run()
    source_side = net.send_overhead + net.nic_time(4096)
    assert sender_done[0] == pytest.approx(source_side)
    assert sender_done[0] < net.remote_time_uncontended(4096)


def test_tx_nic_serializes_cores_of_same_node():
    """Two cores on one node sending remotely share the TX NIC."""
    sim, m = make_machine(nodes=2, cores=2)
    net = m.config.net
    done = []

    def sender(sim, src):
        yield from m.transmit(src, 2, 8192, "pkt", lambda p: None)
        done.append(sim.now)

    for src in (0, 1):
        sim.process(sender(sim, src))
    sim.run()
    t_nic = net.nic_time(8192)
    # Second sender's NIC hold starts only after the first completes.
    assert max(done) >= net.send_overhead + 2 * t_nic


def test_rx_nic_creates_hotspot_queueing():
    """Many nodes sending to one node queue at its RX NIC."""
    sim, m = make_machine(nodes=5, cores=1)
    net = m.config.net
    delivered_at = []

    def sender(sim, src):
        yield from m.transmit(src, 0, 8192, src, lambda p: delivered_at.append(sim.now))

    for src in range(1, 5):
        sim.process(sender(sim, src))
    sim.run()
    # All four packets serialize through node 0's RX NIC.
    span = max(delivered_at) - min(delivered_at)
    assert span >= 3 * net.nic_time(8192) * 0.99


def test_nic_utilisation_report():
    sim, m = make_machine()

    def sender(sim):
        yield from m.transmit(0, 2, 1000, "a", lambda p: None)
        yield from m.transmit(0, 1, 1000, "b", lambda p: None)

    p = sim.process(sender(sim))
    sim.run()
    util = m.nic_utilisation()
    assert util["remote_packets"] == 1
    assert util["local_packets"] == 1
    assert util["tx_busy"] > 0
    assert util["rx_busy"] > 0
