"""Unit tests for the network cost model (the Fig 5 substrate)."""

import pytest

from repro.machine import KiB, MiB, NetworkModel


@pytest.fixture
def net():
    return NetworkModel()


def test_protocol_switch_at_threshold(net):
    assert not net.is_rendezvous(net.eager_threshold - 1)
    assert net.is_rendezvous(net.eager_threshold)


def test_bandwidth_monotone_within_eager_regime(net):
    sizes = [2**k for k in range(0, 14)]  # 1B .. 8KiB
    bws = [net.bandwidth(s) for s in sizes]
    assert all(b2 > b1 for b1, b2 in zip(bws, bws[1:]))


def test_rendezvous_dip_at_threshold(net):
    """The paper's Fig 5 shows a downward jump at the 16 KiB switch."""
    below = net.bandwidth(net.eager_threshold - 1)
    at = net.bandwidth(net.eager_threshold)
    assert at < below


def test_bandwidth_recovers_past_dip(net):
    """Past the dip, rendezvous eventually beats the best eager bandwidth."""
    best_eager = net.bandwidth(net.eager_threshold - 1)
    big = net.bandwidth(16 * MiB)
    assert big > best_eager


def test_bandwidth_plateau(net):
    """Large-message bandwidth approaches the rendezvous wire rate / 2
    (the model charges both NICs sequentially)."""
    bw = net.bandwidth(64 * MiB)
    plateau = net.rendezvous_rate / 2
    assert bw == pytest.approx(plateau, rel=0.01)


def test_local_cheaper_than_remote(net):
    """Section III: local communication is bit-for-bit cheaper."""
    for size in (1, 64, 4 * KiB, 1 * MiB):
        assert net.local_time(size) < net.remote_time_uncontended(size)


def test_nic_time_has_per_packet_floor(net):
    assert net.nic_time(0) == pytest.approx(net.nic_gap)
    assert net.nic_time(1) > net.nic_gap


def test_overrides_are_copies(net):
    fast = net.with_overrides(latency=1e-9)
    assert fast.latency == 1e-9
    assert net.latency != 1e-9
    assert fast.eager_rate == net.eager_rate


def test_remote_delay_includes_handshake(net):
    small = net.remote_delay(net.eager_threshold - 1)
    large = net.remote_delay(net.eager_threshold)
    assert large > small
    assert small == pytest.approx(net.latency)


# ----------------------------------------------------------- cost cache
def test_packet_costs_matches_direct_methods(net):
    for nbytes in (0, 1, 100, net.eager_threshold - 1, net.eager_threshold, 1 * MiB):
        nic, delay, local = net.packet_costs(nbytes)
        assert nic == net.nic_time(nbytes)
        assert delay == net.remote_delay(nbytes)
        assert local == net.local_time(nbytes)


def test_packet_costs_is_cached(net):
    first = net.packet_costs(4096)
    assert net.packet_costs(4096) is first  # memoised tuple identity
    assert 4096 in net._cost_cache


def test_packet_costs_cache_is_per_instance(net):
    other = net.with_overrides(latency=net.latency * 10)
    assert other._cost_cache == {}  # replace() copies start fresh
    net.packet_costs(64)
    assert 64 not in other._cost_cache
    assert other.packet_costs(64)[1] != net.packet_costs(64)[1]


def test_packet_costs_cache_bound():
    net = NetworkModel()
    # Simulate a fully warmed memo (the sentinel entry marks the
    # parameters it was built under; without it the next call would
    # treat the stuffed cache as stale and clear it).
    net._cost_cache[net._PARAMS_KEY] = net._cost_params()
    net._cost_cache.update({i: (0.0, 0.0, 0.0) for i in range(net._COST_CACHE_MAX)})
    costs = net.packet_costs(net._COST_CACHE_MAX + 7)
    # Over the bound: still correct, just not retained.
    assert costs == (
        net.nic_time(net._COST_CACHE_MAX + 7),
        net.remote_delay(net._COST_CACHE_MAX + 7),
        net.local_time(net._COST_CACHE_MAX + 7),
    )
    assert net._COST_CACHE_MAX + 7 not in net._cost_cache


def test_model_equality_ignores_cache(net):
    other = NetworkModel()
    other.packet_costs(128)
    assert net == other


def test_packet_costs_memo_tracks_parameter_mutation(net):
    """The per-size memo must not serve stale costs after a mutation.

    The dataclass is frozen, so ordinary assignment raises; but ablation
    helpers and tests can still mutate through ``object.__setattr__``,
    and the memo used to keep charging the old parameters forever.
    """
    nbytes = 4 * KiB
    before = net.packet_costs(nbytes)
    assert before == (
        net.nic_time(nbytes), net.remote_delay(nbytes), net.local_time(nbytes)
    )

    with pytest.raises(Exception):
        net.latency = net.latency * 2  # frozen: ordinary mutation refused

    object.__setattr__(net, "latency", net.latency * 10)
    object.__setattr__(net, "nic_gap", net.nic_gap * 3)
    after = net.packet_costs(nbytes)
    assert after != before
    assert after == (
        net.nic_time(nbytes), net.remote_delay(nbytes), net.local_time(nbytes)
    )
    # And the memo is warm again for the *new* parameters.
    assert net.packet_costs(nbytes) == after


def test_packet_costs_with_overrides_copy_is_independent(net):
    """replace()-based copies start fresh and never share the memo."""
    nbytes = 64
    base = net.packet_costs(nbytes)
    fast = net.with_overrides(nic_gap=net.nic_gap / 2)
    assert fast.packet_costs(nbytes) != base
    assert net.packet_costs(nbytes) == base
