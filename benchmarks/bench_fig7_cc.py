"""Fig 7: connected-components weak (7a) and strong (7b) scaling."""

import pytest

from repro.apps import make_connected_components
from repro.bench import fig7
from repro.bench.harness import SweepConfig, run_ygm
from repro.graph import rmat_stream


def test_benchmark_cc_with_delegates(benchmark, tiny_sweep):
    """Wall-clock of one CC configuration with delegates (NLNR, 4 nodes)."""
    stream = rmat_stream(scale=10, edges_per_rank=2**10, seed=0)

    def run():
        return run_ygm(
            make_connected_components(stream, delegate_threshold=30.0, batch_size=2**11),
            tiny_sweep.machine(4),
            "nlnr",
            tiny_sweep.mailbox_capacity,
        )

    res = benchmark(run)
    assert res.values[0].delegate_count > 0
    assert res.mailbox_stats.bcasts_initiated > 0


def test_shape_fig7a_weak(tiny_sweep):
    """Paper shape: broadcast count grows under weak scaling despite the
    scaled threshold; routed schemes beat NoRoute at the largest N."""
    table = fig7.run_weak(tiny_sweep)
    table.print()
    n_max = max(tiny_sweep.node_counts)
    n_min = min(tiny_sweep.node_counts)

    bcasts = table.series("nodes", "broadcasts", scheme="node_remote")
    assert bcasts[n_max] > bcasts[n_min]  # Fig 7a growth curve
    delegates = table.series("nodes", "delegates", scheme="node_remote")
    assert delegates[n_max] > delegates[n_min]

    secs = table.series("scheme", "seconds", nodes=n_max)
    assert min(secs, key=secs.get) != "noroute"


def test_shape_fig7b_strong(tiny_sweep):
    """Strong scaling: same graph, more nodes -> routed schemes do not
    lose to NoRoute."""
    table = fig7.run_strong(tiny_sweep, total_verts_log2=11, total_edges_log2=14)
    table.print()
    n_max = max(tiny_sweep.node_counts)
    secs = table.series("scheme", "seconds", nodes=n_max)
    assert secs["node_remote"] <= secs["noroute"]
