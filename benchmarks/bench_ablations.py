"""Ablation benchmarks (design-choice studies from DESIGN.md section 4)."""

import pytest

from repro.bench import ablations


def test_benchmark_capacity_sweep(benchmark):
    table = benchmark(
        ablations.run_capacity_sweep,
        nodes=4,
        cores=4,
        capacities=(2**6, 2**10, 2**14),
        edges_per_rank=2**11,
    )
    assert len(table.rows) == 3


def test_shape_capacity_bigger_mailbox_bigger_packets():
    table = ablations.run_capacity_sweep(
        nodes=4, cores=4, capacities=(2**6, 2**10, 2**14), edges_per_rank=2**12
    )
    table.print()
    pkts = table.column("avg_remote_pkt_B")
    secs = table.column("seconds")
    assert pkts[0] < pkts[1] < pkts[2]
    assert secs[0] > secs[2]  # tiny mailboxes pay per-packet overhead


def test_shape_cores_sweep_gap_grows_with_c():
    """Section III-E: NLNR's advantage over NodeRemote widens with C."""
    table = ablations.run_cores_sweep(
        nodes=16, cores_options=(2, 8), edges_per_rank=2**11
    )
    table.print()
    gap = {}
    for cores in (2, 8):
        nr = table.series("scheme", "seconds", cores=cores)["node_remote"]
        nl = table.series("scheme", "seconds", cores=cores)["nlnr"]
        gap[cores] = nr / nl
    assert gap[8] > gap[2]


def test_shape_hybrid_no_slower_than_nlnr():
    table = ablations.run_hybrid_comparison(nodes=4, cores=4, edges_per_rank=2**11)
    table.print()
    secs = table.series("scheme", "seconds")
    assert secs["nlnr_hybrid"] <= secs["nlnr"]
    # Routing identical: same remote traffic.
    rb = table.series("scheme", "remote_bytes")
    assert rb["nlnr_hybrid"] == rb["nlnr"]


def test_shape_straggler_ygm_frees_other_ranks():
    """The introduction's scenario: under BSP nobody's own work finishes
    before the straggler; under YGM the others are done far earlier."""
    table = ablations.run_straggler_comparison(
        nodes=2, cores=4, edges_per_rank=2**11, straggler_delay=5e-4
    )
    table.print()
    work = table.series("impl", "avg_work_done_others")
    assert work["ygm/node_remote"] < 0.5 * work["bsp_alltoallv"]


def test_shape_eager_threshold_sweep():
    table = ablations.run_eager_threshold_sweep(
        thresholds=(2**12, 2**16), nodes=4, cores=4, edges_per_rank=2**11
    )
    table.print()
    assert len(table.rows) == 4
