"""Fig 5: bandwidth vs message size through the simulated transport."""

from repro.bench import fig5
from repro.machine import KiB, MiB, bench_machine


def test_benchmark_bandwidth_sweep(benchmark):
    """Wall-clock of the full Fig 5 measurement sweep."""
    table = benchmark(fig5.run, quick=True)
    assert len(table.rows) > 10


def test_shape_fig5():
    """The paper's curve: monotone rise, dip at 16 KiB, recovery, and the
    scheme markers ordered NoRoute < NodeRemote < NLNR."""
    table = fig5.run(quick=True)
    table.print()
    bw = {row["bytes"]: row["bandwidth_MB_s"] for row in table.rows}
    net = bench_machine(2).net
    thr = net.eager_threshold

    # Monotone within the eager regime.
    eager_sizes = sorted(s for s in bw if s < thr)
    for a, b in zip(eager_sizes, eager_sizes[1:]):
        assert bw[b] > bw[a]

    # Downward jump at the protocol switch.
    assert bw[thr] < bw[thr - 1]

    # Recovery: large rendezvous messages beat the best eager point.
    assert bw[16 * MiB] > bw[thr - 1]

    # Scheme markers (from the notes): increasing average message size.
    marker_lines = [n for n in table.notes if n.startswith("marker")]
    assert len(marker_lines) == 3
