"""Fig 8: SpMV scaling -- YGM vs the CombBLAS-style 2D baseline."""

import numpy as np
import pytest

from repro.bench import fig8
from repro.bench.harness import SweepConfig


def test_benchmark_spmv_ygm_vs_combblas(benchmark, tiny_sweep):
    """Wall-clock of one (YGM + CombBLAS) configuration at 8 nodes."""

    def run():
        return fig8.run_weak(
            SweepConfig(cores_per_node=4, node_counts=(8,), mailbox_capacity=2**12),
            skewed=True,
        )

    table = benchmark(run)
    assert len(table.rows) >= 2


def test_shape_fig8a_8b_weak_rmat(tiny_sweep):
    """Paper shape (8a): CombBLAS wins at small N; among YGM schemes the
    routed ones beat NoRoute at the largest N, with NLNR in front.  The
    YGM-over-CombBLAS crossover needs the full sweep's wider nodes
    (C=8, N>=32 -- verified in EXPERIMENTS.md), beyond this quick test.
    (8b): delegates grow under weak scaling."""
    table = fig8.run_weak(tiny_sweep, skewed=True)
    table.print()
    n_min, n_max = min(tiny_sweep.node_counts), max(tiny_sweep.node_counts)
    cb = table.series("nodes", "seconds", impl="combblas2d")
    ygm = table.series("nodes", "seconds", impl="ygm/node_remote")
    # CombBLAS ahead at the smallest configuration (paper: small N).
    assert cb[n_min] < ygm[n_min]
    # Among YGM schemes, NLNR leads at the largest N (paper ordering).
    at_max = {
        row["impl"]: row["seconds"]
        for row in table.rows
        if row["nodes"] == n_max and row["impl"].startswith("ygm/")
    }
    assert at_max["ygm/nlnr"] == min(at_max.values())
    assert at_max["ygm/noroute"] == max(at_max.values())
    # Fig 8b: delegate count grows under weak scaling.
    dels = table.series("nodes", "delegates", impl="ygm/node_remote")
    assert dels[n_max] > dels[n_min]


def test_shape_fig8c_weak_uniform(tiny_sweep):
    """Paper shape (8c): without delegates on uniform graphs the same
    scaling behaviour holds (bigger CombBLAS lead at small N)."""
    table = fig8.run_weak(tiny_sweep, skewed=False)
    table.print()
    n_min = min(tiny_sweep.node_counts)
    cb = table.series("nodes", "seconds", impl="combblas2d")
    ygm = table.series("nodes", "seconds", impl="ygm/node_remote")
    assert cb[n_min] < ygm[n_min]
    dels = table.series("nodes", "delegates", impl="ygm/node_remote")
    assert all(d == 0 for d in dels.values())


def test_shape_fig8d_strong_webgraph(tiny_sweep):
    """Paper shape (8d): with the mailbox scaled with N, YGM strong-scales
    on the webgraph-like input and stays in CombBLAS's league."""
    table = fig8.run_strong_webgraph(tiny_sweep)
    table.print()
    n_min, n_max = min(tiny_sweep.node_counts), max(tiny_sweep.node_counts)
    ygm = table.series("nodes", "seconds", impl="ygm/node_remote")
    assert ygm[n_max] < ygm[n_min]  # strong scaling achieved
    # Mailbox actually scaled with N.
    boxes = table.series("nodes", "mailbox", impl="ygm/node_remote")
    assert boxes[n_max] == boxes[n_min] * (n_max // n_min)


def test_shape_fig8d_fixed_mailbox_hurts(tiny_sweep):
    """The paper's observation behind 8d: *without* scaling the mailbox,
    message sizes shrink and scaling stalls relative to the scaled run."""
    scaled = fig8.run_strong_webgraph(tiny_sweep, scale_mailbox_with_nodes=True)
    fixed = fig8.run_strong_webgraph(tiny_sweep, scale_mailbox_with_nodes=False)
    n_max = max(tiny_sweep.node_counts)
    s = scaled.series("nodes", "seconds", impl="ygm/node_remote")[n_max]
    f = fixed.series("nodes", "seconds", impl="ygm/node_remote")[n_max]
    assert s <= f
