"""Fig 6: degree-counting weak (6a) and strong (6b) scaling."""

import pytest

from repro.apps import make_degree_counting
from repro.bench import fig6
from repro.bench.harness import SweepConfig, run_ygm
from repro.graph import er_stream


def test_benchmark_degree_counting_nlnr(benchmark, tiny_sweep):
    """Wall-clock of one representative configuration (NLNR, 8 nodes)."""
    stream = er_stream(num_vertices=2**13, edges_per_rank=2**11, seed=0)

    def run():
        return run_ygm(
            make_degree_counting(stream, batch_size=2**11),
            tiny_sweep.machine(8),
            "nlnr",
            tiny_sweep.mailbox_capacity,
        )

    res = benchmark(run)
    assert res.mailbox_stats.app_messages_sent == 2 * 2**11 * 32


def test_shape_fig6a_weak(quick_sweep):
    """Paper shape: NoRoute falls off hardest; NL ~ NR (uniform traffic);
    NLNR has the best weak-scaling efficiency at the largest N."""
    table = fig6.run_weak(quick_sweep, edges_per_rank=2**11)
    table.print()
    n_max = max(quick_sweep.node_counts)
    eff = table.series("scheme", "efficiency", nodes=n_max)
    secs = table.series("scheme", "seconds", nodes=n_max)

    # NoRoute is the worst scheme at the largest node count.
    assert secs["noroute"] == max(secs.values())
    # NodeLocal and NodeRemote track each other under uniform traffic.
    assert abs(secs["node_local"] - secs["node_remote"]) / secs["node_remote"] < 0.35
    # NLNR keeps the highest efficiency.
    assert eff["nlnr"] == max(eff.values())

    # Average remote packet sizes follow O(V/NC) < O(V/N) < O(VC/N).
    pkt = table.series("scheme", "avg_remote_pkt_B", nodes=n_max)
    assert pkt["noroute"] < pkt["node_local"] <= pkt["node_remote"] < pkt["nlnr"]


def test_shape_fig6b_strong(quick_sweep):
    """Strong scaling: adding nodes keeps helping the routed schemes but
    NoRoute saturates (its packets shrink quadratically)."""
    table = fig6.run_strong(quick_sweep, total_edges=2**16, total_verts=2**13)
    table.print()
    n_lo, n_hi = min(quick_sweep.node_counts), max(quick_sweep.node_counts)
    for scheme in ("node_remote", "nlnr"):
        series = table.series("nodes", "seconds", scheme=scheme)
        if n_hi in series and n_lo in series:
            assert series[n_hi] < series[n_lo]  # still speeding up
    no = table.series("nodes", "seconds", scheme="noroute")
    nlnr_or_nr = table.series("nodes", "seconds", scheme="nlnr")
    # At the largest N the routed scheme beats NoRoute.
    assert nlnr_or_nr[n_hi] < no[n_hi]
