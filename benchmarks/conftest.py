"""Shared fixtures for the figure benchmarks.

Each ``bench_figX`` module does two things:

* a pytest-benchmark measurement of a representative configuration
  (wall-clock of the simulation harness), and
* a ``test_shape_*`` run of the scaled sweep that prints the figure's
  table (run with ``-s`` to see it) and asserts the paper's qualitative
  result -- who wins, and where -- on the simulated metrics.
"""

import pytest

from repro.bench.harness import SweepConfig


@pytest.fixture(scope="session")
def quick_sweep() -> SweepConfig:
    """Small sweep used inside benchmark tests (keeps CI time sane)."""
    return SweepConfig(cores_per_node=4, node_counts=(1, 2, 4, 8, 16), mailbox_capacity=2**12)


@pytest.fixture(scope="session")
def tiny_sweep() -> SweepConfig:
    return SweepConfig(cores_per_node=4, node_counts=(2, 4, 8), mailbox_capacity=2**12)
