"""Asynchronous single-source shortest paths (weighted).

The second Graph500 kernel the paper's introduction cites ("The Graph500
uses breadth-first search (BFS) and single source shortest path (SSSP) to
benchmark the graph processing capabilities of computer systems").  Like
:mod:`repro.apps.bfs` this is the asynchronous label-correcting
formulation (HavoqGT-style): a relaxation that improves a vertex's
tentative distance immediately posts relaxations for its neighbours from
inside the receive callback.  Monotone decrease guarantees convergence to
Dijkstra distances; redundant relaxations are the price of asynchrony.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

import numpy as np

from ..core.context import YgmContext
from ..core.routing.combiner import Combiner
from ..graph.generators import EdgeStream
from ..graph.partition import CyclicPartition
from ..serde import RecordSpec

#: Distance update: ``dist(vertex) = min(dist(vertex), dist)``.
SSSP_SPEC = RecordSpec("sssp", [("vertex", "u8"), ("dist", "f8")])
#: Weighted-edge distribution record.
WADJ_SPEC = RecordSpec("sssp_adj", [("src", "u8"), ("dst", "u8"), ("w", "f8")])

#: Min-relax combining over float distances.  Still *bit-exact*: ``min``
#: selects one of the original values rather than computing a new one,
#: and a dominated tentative distance stays dominated through any later
#: additions (``d1 <= d2`` implies ``d1 + w <= d2 + w`` in IEEE-754 with
#: round-to-nearest monotonicity), so dropping it cannot change the
#: converged distances.
SSSP_COMBINER = Combiner(
    "sssp_min_relax", key_fields=("vertex",), reduce_fields={"dist": "min"}
)

#: "Unreached" distance.
INF = np.inf


def edge_weights(u: np.ndarray, v: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic per-edge weights in (0, 1], Graph500-style: derived
    from the endpoints so every rank computes identical weights."""
    mix = (u.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)) ^ (
        v.astype(np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)
    ) ^ np.uint64(seed)
    mix ^= mix >> np.uint64(33)
    mix *= np.uint64(0xFF51AFD7ED558CCD)
    mix ^= mix >> np.uint64(33)
    return (mix.astype(np.float64) / float(2**64)) + 2**-53


def make_sssp(
    stream: EdgeStream,
    source: int,
    batch_size: int = 8192,
    capacity: Optional[int] = None,
    weight_seed: int = 0,
    combining: bool = False,
) -> Callable[[YgmContext], Generator]:
    """Build the async-SSSP rank program; returns per-rank distances.

    ``combining=True`` merges equal-vertex relaxations to their min
    in-network (:data:`SSSP_COMBINER`); converged distances are
    bit-identical (min selects, it never rounds).
    """
    if not 0 <= source < stream.num_vertices:
        raise ValueError(f"source {source} out of range")

    def rank_main(ctx: YgmContext) -> Generator:
        nranks, rank = ctx.nranks, ctx.rank
        part = CyclicPartition(stream.num_vertices, nranks)

        # ------------------------------- phase A: weighted adjacency
        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        w_parts: List[np.ndarray] = []

        def on_adj(batch: np.ndarray) -> None:
            src_parts.append(batch["src"].astype(np.int64))
            dst_parts.append(batch["dst"].astype(np.int64))
            w_parts.append(batch["w"].astype(np.float64))

        adj_mb = ctx.mailbox(recv_batch=on_adj, capacity=capacity)
        gen_cost = ctx.machine.config.compute.per_edge_gen
        for u, v in stream.batches(ctx.rank, batch_size):
            yield ctx.compute(len(u) * gen_cost)
            w = edge_weights(u, v, weight_seed)
            src = np.concatenate((u, v))
            dst = np.concatenate((v, u))
            ww = np.concatenate((w, w))
            yield from adj_mb.send_batch(
                part.owner_vec(src),
                WADJ_SPEC.build(src=src.astype("u8"), dst=dst.astype("u8"), w=ww),
                spec=WADJ_SPEC,
            )
        yield from adj_mb.wait_empty()

        if src_parts:
            a_src = np.concatenate(src_parts)
            a_dst = np.concatenate(dst_parts)
            a_w = np.concatenate(w_parts)
        else:
            a_src = a_dst = np.empty(0, dtype=np.int64)
            a_w = np.empty(0, dtype=np.float64)
        local_src = part.local_id_vec(a_src)
        nlocal = part.local_count(rank)
        order = np.argsort(local_src, kind="stable")
        sorted_src = local_src[order]
        sorted_dst = a_dst[order]
        sorted_w = a_w[order]
        indptr = np.searchsorted(sorted_src, np.arange(nlocal + 1))

        # ------------------------------- phase B: async relaxation
        dist = np.full(nlocal, INF, dtype=np.float64)

        def relax(batch: np.ndarray) -> None:
            ids = part.local_id_vec(batch["vertex"].astype(np.int64))
            new = batch["dist"]
            improved_mask = new < dist[ids]  # strict: no re-expansion loops
            if not improved_mask.any():
                return
            ids = ids[improved_mask]
            np.minimum.at(dist, ids, new[improved_mask])
            _expand(np.unique(ids))

        def _expand(local_ids: np.ndarray) -> None:
            counts = indptr[local_ids + 1] - indptr[local_ids]
            total = int(counts.sum())
            if total == 0:
                return
            neigh = np.empty(total, dtype=np.int64)
            dvals = np.empty(total, dtype=np.float64)
            pos = 0
            for lid, cnt in zip(local_ids.tolist(), counts.tolist()):
                if cnt == 0:
                    continue
                lo = indptr[lid]
                neigh[pos : pos + cnt] = sorted_dst[lo : lo + cnt]
                dvals[pos : pos + cnt] = dist[lid] + sorted_w[lo : lo + cnt]
                pos += cnt
            mb.post_batch(
                part.owner_vec(neigh),
                SSSP_SPEC.build(vertex=neigh.astype("u8"), dist=dvals),
                spec=SSSP_SPEC,
            )

        mb = ctx.mailbox(
            recv_batch=relax,
            capacity=capacity,
            combiner=SSSP_COMBINER if combining else None,
        )
        if part.owner(source) == rank:
            lid = part.local_id(source)
            dist[lid] = 0.0
            _expand(np.array([lid], dtype=np.int64))
        yield from mb.wait_empty()
        return dist

    return rank_main


def gather_global_sssp(values, num_vertices: int, nranks: int) -> np.ndarray:
    """Reassemble the global distance vector from per-rank results."""
    part = CyclicPartition(num_vertices, nranks)
    out = np.full(num_vertices, INF, dtype=np.float64)
    for rank, local in enumerate(values):
        out[part.local_vertices(rank)] = local
    return out
