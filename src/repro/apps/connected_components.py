"""Connected components by min-label propagation (paper Section V-B).

Every vertex holds a label initialised to its own global id; each pass
over the edges sends each vertex's label to its neighbours, which keep
the minimum.  The algorithm converges (in at most ``diam(G)`` passes) to
every vertex holding the minimum vertex id of its component.  As in the
paper, this is deliberately the *simple* benchmark algorithm -- a
Shiloach-Vishkin variant would converge in O(log |V|) passes but would
not exercise broadcast-heavy delegate synchronisation.

High-degree vertices are handled with **delegates** [Pearce et al.]:

* delegate ids are found by a degree-counting pre-pass (YGM itself),
* delegate labels are replicated on every rank; delegate *edges* are
  colocated -- stored at the owner of the non-delegate endpoint, so they
  update the replicated label locally, with no message,
* after each pass, improved delegate labels are sent to the delegate's
  *home* rank, which disseminates them with YGM's **asynchronous
  broadcasts** (``post_bcast`` from inside the receive callback -- the
  lazy synchronisation pattern the paper advocates).

The returned per-rank result is the label array of the rank's owned
vertices plus per-pass diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional

import numpy as np

from ..core.context import YgmContext
from ..core.routing.combiner import Combiner
from ..graph.delegates import DelegateSet
from ..graph.generators import EdgeStream
from ..graph.partition import CyclicPartition
from ..serde import RecordSpec

#: Label-update message: set ``label(vertex) = min(label(vertex), label)``.
CC_SPEC = RecordSpec("cc_label", [("vertex", "u8"), ("label", "u8")])

#: Min-union combining: label updates for one vertex collapse to the
#: smallest.  ``min`` is associative, commutative *and* idempotent over
#: vertex ids, so combined runs converge to bit-identical labels -- a
#: vertex's label after a pass is the min over all updates it would have
#: seen, whether they merged mid-route or at the receive callback.
CC_COMBINER = Combiner(
    "cc_min_label", key_fields=("vertex",), reduce_fields={"label": "min"}
)
#: Edge-distribution message: kind 0 = plain directed edge (src owns the
#: label to ship, dst receives updates); kind 1 = colocated delegate edge
#: (src non-delegate, dst delegate).
EDGE_SPEC = RecordSpec("cc_edge", [("src", "u8"), ("dst", "u8"), ("kind", "u1")])
#: Degree-count message for the delegate-identification pre-pass.
DEG_SPEC = RecordSpec("cc_degree", [("vertex", "u8")])


@dataclass
class CCResult:
    """Per-rank output of the connected-components program."""

    labels: np.ndarray  # labels of owned vertices (by local id)
    passes: int
    delegate_count: int
    bcasts: int = 0


def make_connected_components(
    stream: EdgeStream,
    delegate_threshold: Optional[float] = None,
    batch_size: int = 8192,
    capacity: Optional[int] = None,
    max_passes: int = 200,
    combining: bool = False,
) -> Callable[[YgmContext], Generator]:
    """Build the CC rank program.

    ``delegate_threshold``: vertices with degree strictly above it become
    delegates; ``None`` disables delegates entirely (no broadcasts).

    ``combining=True`` attaches :data:`CC_COMBINER` to the label-update
    mailbox: equal-vertex updates collapse to their min in-network.  The
    per-pass ``changed`` flag is preserved exactly -- it ends ``True``
    iff some owned label decreased during the pass, which is invariant
    under merging (the min of the merged updates decreases a label iff
    some individual update would have).  Final labels are bit-identical.
    """

    def rank_main(ctx: YgmContext) -> Generator:
        nranks, rank = ctx.nranks, ctx.rank
        n = stream.num_vertices
        part = CyclicPartition(n, nranks)
        handle_cost = ctx.machine.config.compute.per_message_handle
        gen_cost = ctx.machine.config.compute.per_edge_gen

        # ------------------------------------------------ edge generation
        gen_u, gen_v = stream.all_edges(rank)
        yield ctx.compute(len(gen_u) * gen_cost)

        # ------------------------------------- phase A: find delegates
        if delegate_threshold is not None:
            degrees = np.zeros(part.local_count(rank), dtype=np.int64)

            def on_deg(batch: np.ndarray) -> None:
                ids = part.local_id_vec(batch["vertex"].astype(np.int64))
                degrees[:] += np.bincount(ids, minlength=len(degrees))

            deg_mb = ctx.mailbox(recv_batch=on_deg, capacity=capacity)
            verts = np.concatenate((gen_u, gen_v))
            yield from deg_mb.send_batch(
                part.owner_vec(verts), DEG_SPEC.build(vertex=verts.astype("u8")),
                spec=DEG_SPEC,
            )
            yield from deg_mb.wait_empty()
            mine = part.local_vertices(rank)[degrees > delegate_threshold]
            all_delegate_arrays = yield from ctx.comm.allgather(mine)
            delegates = DelegateSet(np.concatenate(all_delegate_arrays))
        else:
            deg_mb = ctx.mailbox(recv_batch=lambda b: None, capacity=capacity)
            yield from deg_mb.wait_empty()  # keep mailbox creation collective
            delegates = DelegateSet(np.empty(0, dtype=np.int64))

        # --------------------------------- phase B: distribute the edges
        nd_src_parts: List[np.ndarray] = []
        nd_dst_parts: List[np.ndarray] = []
        mx_src_parts: List[np.ndarray] = []
        mx_dst_parts: List[np.ndarray] = []

        def on_edge(batch: np.ndarray) -> None:
            plain = batch["kind"] == 0
            nd_src_parts.append(batch["src"][plain].astype(np.int64))
            nd_dst_parts.append(batch["dst"][plain].astype(np.int64))
            mixed = ~plain
            mx_src_parts.append(batch["src"][mixed].astype(np.int64))
            mx_dst_parts.append(batch["dst"][mixed].astype(np.int64))

        edge_mb = ctx.mailbox(recv_batch=on_edge, capacity=capacity)
        du, dv, _either = delegates.split_edges(gen_u, gen_v)
        dd_mask = du & dv
        # Delegate-delegate edges stay where they were generated: both
        # endpoints are replicated everywhere.
        dd_u, dd_v = gen_u[dd_mask], gen_v[dd_mask]
        for lo in range(0, len(gen_u), batch_size):
            hi = lo + batch_size
            u, v = gen_u[lo:hi], gen_v[lo:hi]
            bu, bv, bdd = du[lo:hi], dv[lo:hi], dd_mask[lo:hi]
            plain = ~(bu | bv)
            # Plain edges: both directions, owned by the source's owner.
            src = np.concatenate((u[plain], v[plain]))
            dst = np.concatenate((v[plain], u[plain]))
            # Mixed edges: colocate at the non-delegate endpoint's owner.
            only_v = bv & ~bu & ~bdd
            only_u = bu & ~bv & ~bdd
            m_src = np.concatenate((u[only_v], v[only_u]))
            m_dst = np.concatenate((v[only_v], u[only_u]))
            all_src = np.concatenate((src, m_src))
            all_dst = np.concatenate((dst, m_dst))
            kinds = np.concatenate(
                (np.zeros(len(src), dtype="u1"), np.ones(len(m_src), dtype="u1"))
            )
            if len(all_src):
                yield from edge_mb.send_batch(
                    part.owner_vec(all_src),
                    EDGE_SPEC.build(
                        src=all_src.astype("u8"), dst=all_dst.astype("u8"), kind=kinds
                    ),
                    spec=EDGE_SPEC,
                )
        yield from edge_mb.wait_empty()

        def cat(parts: List[np.ndarray]) -> np.ndarray:
            return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

        nd_src, nd_dst = cat(nd_src_parts), cat(nd_dst_parts)
        mx_src, mx_dst = cat(mx_src_parts), cat(mx_dst_parts)
        nd_src_local = part.local_id_vec(nd_src)
        mx_src_local = part.local_id_vec(mx_src)
        mx_dst_slot = delegates.slots_vec(mx_dst)
        dd_u_slot = delegates.slots_vec(dd_u)
        dd_v_slot = delegates.slots_vec(dd_v)

        # ------------------------------- phase C: min-label propagation
        labels = part.local_vertices(rank).astype(np.int64)
        del_labels = delegates.vertices.astype(np.int64).copy()
        # The home rank's view of what it last disseminated.
        is_home = (
            part.owner_vec(delegates.vertices) == rank
            if delegates.count
            else np.empty(0, dtype=bool)
        )
        home_published = del_labels.copy()
        changed = np.zeros(1, dtype=bool)

        def on_label(batch: np.ndarray) -> None:
            ids = part.local_id_vec(batch["vertex"].astype(np.int64))
            new = batch["label"].astype(np.int64)
            before = labels[ids]
            np.minimum.at(labels, ids, new)
            if (labels[ids] != before).any():
                changed[0] = True

        def on_sync(msg) -> None:
            # Point-to-point delegate update arriving at the home rank.
            slot, label = msg
            if label < del_labels[slot]:
                del_labels[slot] = label
                changed[0] = True
            if label < home_published[slot]:
                # Lazy synchronisation: disseminate immediately with an
                # asynchronous broadcast from inside the callback.
                home_published[slot] = label
                sync_mb.post_bcast((slot, label))

        def on_sync_bcast(msg) -> None:
            slot, label = msg
            if label < del_labels[slot]:
                del_labels[slot] = label
                changed[0] = True

        label_mb = ctx.mailbox(
            recv_batch=on_label,
            capacity=capacity,
            combiner=CC_COMBINER if combining else None,
        )
        sync_mb = ctx.mailbox(
            recv=on_sync, recv_bcast=on_sync_bcast, capacity=capacity
        )

        passes = 0
        while True:
            passes += 1
            if passes > max_passes:
                raise RuntimeError(f"CC did not converge in {max_passes} passes")
            changed[0] = False
            del_before = del_labels.copy()

            # 1. Plain edges: ship my labels to neighbour owners.
            for lo in range(0, len(nd_src), batch_size):
                hi = lo + batch_size
                dst = nd_dst[lo:hi]
                batch = CC_SPEC.build(
                    vertex=dst.astype("u8"),
                    label=labels[nd_src_local[lo:hi]].astype("u8"),
                )
                yield from label_mb.send_batch(part.owner_vec(dst), batch, spec=CC_SPEC)

            # 2. Colocated delegate edges: both directions, locally.
            if len(mx_src):
                yield ctx.compute(len(mx_src) * handle_cost)
                np.minimum.at(del_labels, mx_dst_slot, labels[mx_src_local])
                before = labels[mx_src_local]
                np.minimum.at(labels, mx_src_local, del_labels[mx_dst_slot])
                if (labels[mx_src_local] != before).any():
                    changed[0] = True

            # 3. Delegate-delegate edges: purely replicated state.
            if len(dd_u_slot):
                yield ctx.compute(len(dd_u_slot) * handle_cost)
                np.minimum.at(del_labels, dd_u_slot, del_labels[dd_v_slot])
                np.minimum.at(del_labels, dd_v_slot, del_labels[dd_u_slot])

            yield from label_mb.wait_empty()

            # 4. Delegate synchronisation through the homes.
            if delegates.count:
                improved = np.flatnonzero(del_labels < del_before)
                for slot in improved.tolist():
                    home = part.owner(int(delegates.vertices[slot]))
                    if home == rank:
                        # Our own improvement: publish if news.
                        if del_labels[slot] < home_published[slot]:
                            home_published[slot] = int(del_labels[slot])
                            sync_mb.post_bcast((slot, int(del_labels[slot])))
                    else:
                        yield from sync_mb.send(home, (slot, int(del_labels[slot])))
                if (del_labels != del_before).any():
                    changed[0] = True
                yield from sync_mb.wait_empty()

            # 5. Global convergence check.
            any_changed = yield from ctx.comm.allreduce(bool(changed[0]), lambda a, b: a or b)
            if not any_changed:
                break

        # Owned delegate vertices take their replicated labels.
        if delegates.count:
            owned = delegates.vertices[is_home]
            labels[part.local_id_vec(owned)] = del_labels[is_home]
        return CCResult(
            labels=labels,
            passes=passes,
            delegate_count=delegates.count,
            bcasts=sync_mb.stats.bcasts_initiated,
        )

    return rank_main


def gather_global_labels(values: List[CCResult], num_vertices: int, nranks: int) -> np.ndarray:
    """Reassemble the global label array from per-rank results."""
    part = CyclicPartition(num_vertices, nranks)
    out = np.zeros(num_vertices, dtype=np.int64)
    for rank, res in enumerate(values):
        out[part.local_vertices(rank)] = res.labels
    return out
