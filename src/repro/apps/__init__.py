"""The paper's benchmark applications (Section V) plus the workloads its
surrounding sections motivate: asynchronous BFS and SSSP (the Graph500
kernels of the introduction) and HipMer-style distributed k-mer counting
(the Section II related-work claim)."""

from .bfs import BFS_SPEC, UNREACHED, gather_global_distances, make_bfs
from .sssp import SSSP_SPEC, edge_weights, gather_global_sssp, make_sssp
from .kmer_count import (
    KMER_SPEC,
    kmer_owner,
    make_kmer_counting,
    merge_counts,
    random_reads,
    shear_kmers,
    unpack_kmer,
)
from .connected_components import (
    CCResult,
    CC_SPEC,
    gather_global_labels,
    make_connected_components,
)
from .degree_count import (
    DEGREE_SPEC,
    gather_global_degrees,
    make_degree_counting,
    make_degree_counting_scalar,
)

__all__ = [
    "BFS_SPEC",
    "SSSP_SPEC",
    "KMER_SPEC",
    "kmer_owner",
    "make_kmer_counting",
    "merge_counts",
    "random_reads",
    "shear_kmers",
    "unpack_kmer",
    "edge_weights",
    "gather_global_sssp",
    "make_sssp",
    "UNREACHED",
    "gather_global_distances",
    "make_bfs",
    "CCResult",
    "CC_SPEC",
    "DEGREE_SPEC",
    "gather_global_degrees",
    "gather_global_labels",
    "make_connected_components",
    "make_degree_counting",
    "make_degree_counting_scalar",
]
