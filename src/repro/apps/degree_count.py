"""Degree counting (paper Algorithm 1, Section V-A).

Streams the edges of a graph and counts the degree of every vertex.
Vertices are assigned to ranks round-robin; every edge spawns exactly two
messages, each of which is a single increment at the destination.  Edges
are generated and counted in batches, isolating counting time from
generation time, exactly as in the paper's experiments.

Two implementations are provided:

* :func:`make_degree_counting` -- the production version using the
  vectorized ``send_batch`` fast path (fixed-width vertex records),
* :func:`make_degree_counting_scalar` -- a line-by-line transcription of
  Algorithm 1 using scalar sends (used in the docs and as a correctness
  cross-check; much slower to simulate).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from ..core.context import YgmContext
from ..core.routing.combiner import Combiner
from ..graph.generators import EdgeStream
from ..graph.partition import CyclicPartition
from ..serde import RecordSpec

#: The single-field message of Algorithm 1: a vertex id to increment.
DEGREE_SPEC = RecordSpec("degree", [("vertex", "u8")])

#: Count-carrying variant for in-network combining: an increment of
#: ``count`` (1 at injection; intermediaries sum equal-vertex records).
DEGREE_COUNT_SPEC = RecordSpec("degree_count", [("vertex", "u8"), ("count", "u8")])

#: The degree-count combining algebra: counts for one vertex sum.
#: Integer addition is exact, so combined runs stay bit-identical.
DEGREE_COMBINER = Combiner(
    "degree_count", key_fields=("vertex",), reduce_fields={"count": "sum"}
)


def make_degree_counting(
    stream: EdgeStream,
    batch_size: int = 4096,
    capacity: Optional[int] = None,
    combining: bool = False,
) -> Callable[[YgmContext], Generator]:
    """Build the degree-counting rank program for ``stream``.

    Each rank generates its share of the edge stream, sends both endpoint
    vertices to their owners, and waits for global quiescence.  Returns
    the rank's local degree array (indexed by local id).

    With ``combining=True`` records carry an explicit increment count
    (:data:`DEGREE_COUNT_SPEC`) and the mailbox merges equal-vertex
    records in-network (:data:`DEGREE_COMBINER`): duplicate endpoints
    collapse into one weighted record per hop window.  Results are
    bit-identical either way -- integer sums commute exactly.
    """

    def rank_main(ctx: YgmContext) -> Generator:
        part = CyclicPartition(stream.num_vertices, ctx.nranks)
        degrees = np.zeros(part.local_count(ctx.rank), dtype=np.int64)
        nlocal = len(degrees)

        if combining:

            def on_batch(batch: np.ndarray) -> None:
                ids = part.local_id_vec(batch["vertex"].astype(np.int64))
                # Weighted scatter-add stays integer-exact (bincount's
                # weights= would round-trip through float64).
                np.add.at(degrees, ids, batch["count"].astype(np.int64))

            mb = ctx.mailbox(
                recv_batch=on_batch, capacity=capacity, combiner=DEGREE_COMBINER
            )
        else:

            def on_batch(batch: np.ndarray) -> None:
                ids = part.local_id_vec(batch["vertex"].astype(np.int64))
                degrees[:] += np.bincount(ids, minlength=nlocal)

            mb = ctx.mailbox(recv_batch=on_batch, capacity=capacity)
        spec = DEGREE_COUNT_SPEC if combining else DEGREE_SPEC
        gen_cost = ctx.machine.config.compute.per_edge_gen
        for u, v in stream.batches(ctx.rank, batch_size):
            # Charge edge generation (isolated from counting in the paper;
            # we charge it so computation/communication overlap is real).
            yield ctx.compute(len(u) * gen_cost)
            verts = np.concatenate((u, v))
            dests = part.owner_vec(verts)
            if combining:
                batch = spec.build(
                    vertex=verts.astype("u8"),
                    count=np.ones(len(verts), dtype="u8"),
                )
            else:
                batch = spec.build(vertex=verts.astype("u8"))
            yield from mb.send_batch(dests, batch, spec=spec)
        yield from mb.wait_empty()
        return degrees

    return rank_main


def make_degree_counting_scalar(
    stream: EdgeStream,
    batch_size: int = 1024,
    capacity: Optional[int] = None,
) -> Callable[[YgmContext], Generator]:
    """Algorithm 1 verbatim: one scalar ``Send`` per edge endpoint."""

    def rank_main(ctx: YgmContext) -> Generator:
        num_ranks = ctx.nranks
        part = CyclicPartition(stream.num_vertices, num_ranks)
        degrees = np.zeros(part.local_count(ctx.rank), dtype=np.int64)

        def recv_func(v: int) -> None:  # Algorithm 1 lines 4-6
            local_id = v // num_ranks
            degrees[local_id] += 1

        mb = ctx.mailbox(recv=recv_func, capacity=capacity)  # line 7
        gen_cost = ctx.machine.config.compute.per_edge_gen
        for u_arr, v_arr in stream.batches(ctx.rank, batch_size):
            yield ctx.compute(len(u_arr) * gen_cost)
            for u, v in zip(u_arr.tolist(), v_arr.tolist()):  # lines 8-12
                yield from mb.send(u % num_ranks, u, nbytes=8)
                yield from mb.send(v % num_ranks, v, nbytes=8)
        yield from mb.wait_empty()  # line 13
        return degrees

    return rank_main


def gather_global_degrees(values, num_vertices: int, nranks: int) -> np.ndarray:
    """Reassemble the global degree array from per-rank results."""
    part = CyclicPartition(num_vertices, nranks)
    out = np.zeros(num_vertices, dtype=np.int64)
    for rank, local in enumerate(values):
        out[part.local_vertices(rank)] = local
    return out
