"""Asynchronous breadth-first search (hop distances from a source).

The paper motivates YGM with LLNL's Graph500 submission, which runs BFS
through this communication layer (Section I).  This app reproduces the
HavoqGT-style *asynchronous* traversal: there are no level barriers --
a rank that receives a distance update relaxes the vertex and immediately
posts updates for its neighbours **from inside the receive callback**,
so the frontier expands wavefront-style through the mailboxes and the
whole traversal is a single ``wait_empty`` epoch.

An update ``(v, d)`` may arrive out of order (a longer path first); the
monotone relax ``dist[v] = min(dist[v], d)`` guarantees convergence to
true hop distances, at the cost of some re-expansion -- the classic
asynchronous-BFS trade the paper's ecosystem makes.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

import numpy as np

from ..core.context import YgmContext
from ..core.routing.combiner import Combiner
from ..graph.generators import EdgeStream
from ..graph.partition import CyclicPartition
from ..serde import RecordSpec

#: Distance update: ``dist(vertex) = min(dist(vertex), dist)``.
BFS_SPEC = RecordSpec("bfs", [("vertex", "u8"), ("dist", "u8")])
#: Edge-distribution record for building the local adjacency.
ADJ_SPEC = RecordSpec("bfs_adj", [("src", "u8"), ("dst", "u8")])

#: Min-relax combining for the traversal mailbox: distance updates for
#: one vertex collapse to the smallest (idempotent min over ints --
#: bit-exact; ``dist[v] = min(dist[v], d)`` commutes with the merge).
#: The adjacency-distribution mailbox must NOT combine: duplicate edges
#: there are real payload, not redundant updates.
BFS_COMBINER = Combiner(
    "bfs_min_relax", key_fields=("vertex",), reduce_fields={"dist": "min"}
)

#: "Unreached" sentinel (fits in u8 arithmetic with headroom).
UNREACHED = np.iinfo(np.int64).max // 4


def make_bfs(
    stream: EdgeStream,
    source: int,
    batch_size: int = 8192,
    capacity: Optional[int] = None,
    combining: bool = False,
) -> Callable[[YgmContext], Generator]:
    """Build the async-BFS rank program for ``stream`` from ``source``.

    Returns each rank's hop-distance array for its owned vertices
    (``UNREACHED`` for vertices not connected to the source).
    ``combining=True`` merges equal-vertex distance updates to their min
    in-network (:data:`BFS_COMBINER`); final distances are bit-identical.
    """
    if not 0 <= source < stream.num_vertices:
        raise ValueError(f"source {source} out of range")

    def rank_main(ctx: YgmContext) -> Generator:
        nranks, rank = ctx.nranks, ctx.rank
        part = CyclicPartition(stream.num_vertices, nranks)

        # ---------------------------------- phase A: adjacency build
        adj_src_parts: List[np.ndarray] = []
        adj_dst_parts: List[np.ndarray] = []

        def on_adj(batch: np.ndarray) -> None:
            adj_src_parts.append(batch["src"].astype(np.int64))
            adj_dst_parts.append(batch["dst"].astype(np.int64))

        adj_mb = ctx.mailbox(recv_batch=on_adj, capacity=capacity)
        gen_cost = ctx.machine.config.compute.per_edge_gen
        for u, v in stream.batches(ctx.rank, batch_size):
            yield ctx.compute(len(u) * gen_cost)
            src = np.concatenate((u, v))
            dst = np.concatenate((v, u))
            yield from adj_mb.send_batch(
                part.owner_vec(src),
                ADJ_SPEC.build(src=src.astype("u8"), dst=dst.astype("u8")),
                spec=ADJ_SPEC,
            )
        yield from adj_mb.wait_empty()

        if adj_src_parts:
            a_src = np.concatenate(adj_src_parts)
            a_dst = np.concatenate(adj_dst_parts)
        else:
            a_src = a_dst = np.empty(0, dtype=np.int64)
        # CSR over local ids: neighbours of owned vertex by local id.
        local_src = part.local_id_vec(a_src)
        nlocal = part.local_count(rank)
        order = np.argsort(local_src, kind="stable")
        sorted_src = local_src[order]
        sorted_dst = a_dst[order]
        indptr = np.searchsorted(sorted_src, np.arange(nlocal + 1))

        # ---------------------------------- phase B: async traversal
        dist = np.full(nlocal, UNREACHED, dtype=np.int64)

        def relax(batch: np.ndarray) -> None:
            ids = part.local_id_vec(batch["vertex"].astype(np.int64))
            new = batch["dist"].astype(np.int64)
            improved_mask = new < dist[ids]
            if not improved_mask.any():
                return
            ids = ids[improved_mask]
            new = new[improved_mask]
            # Several updates for one vertex may coexist in a batch; keep
            # the minimum, then re-check which actually improve.
            np.minimum.at(dist, ids, new)
            uniq = np.unique(ids)
            _expand(uniq)

        def _expand(local_ids: np.ndarray) -> None:
            """Post distance dist[v]+1 to every neighbour of each v."""
            counts = indptr[local_ids + 1] - indptr[local_ids]
            total = int(counts.sum())
            if total == 0:
                return
            neigh = np.empty(total, dtype=np.int64)
            dvals = np.empty(total, dtype=np.int64)
            pos = 0
            for lid, cnt in zip(local_ids.tolist(), counts.tolist()):
                if cnt == 0:
                    continue
                lo = indptr[lid]
                neigh[pos : pos + cnt] = sorted_dst[lo : lo + cnt]
                dvals[pos : pos + cnt] = dist[lid] + 1
                pos += cnt
            mb.post_batch(
                part.owner_vec(neigh),
                BFS_SPEC.build(vertex=neigh.astype("u8"), dist=dvals.astype("u8")),
                spec=BFS_SPEC,
            )

        mb = ctx.mailbox(
            recv_batch=relax,
            capacity=capacity,
            combiner=BFS_COMBINER if combining else None,
        )
        if part.owner(source) == rank:
            lid = part.local_id(source)
            dist[lid] = 0
            _expand(np.array([lid], dtype=np.int64))
        yield from mb.wait_empty()
        return dist

    return rank_main


def gather_global_distances(values, num_vertices: int, nranks: int) -> np.ndarray:
    """Reassemble the global distance array from per-rank results."""
    part = CyclicPartition(num_vertices, nranks)
    out = np.full(num_vertices, UNREACHED, dtype=np.int64)
    for rank, local in enumerate(values):
        out[part.local_vertices(rank)] = local
    return out
