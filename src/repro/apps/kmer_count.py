"""Distributed k-mer counting (the HipMer workload of Section II).

The paper's related work notes that HipMer's frequent-k-mer
identification "is similar to how we identify high-degree vertices in
graphs, and can likely benefit from using YGM", and that its de Bruijn
construction already uses mailbox-like per-destination buffers.  This
app realises that claim on the reproduction stack: reads (synthetic DNA
strings) are sheared into k-mers, each k-mer is hashed to an owning rank,
and owners count occurrences — the same shape as degree counting but
with hash-partitioned, variable-source keys, plus a frequent-k-mer
extraction at the end (HipMer's actual goal).

K-mers are 2-bit packed into u64 (k <= 32), so the hot path rides the
vectorized ``send_batch`` fast path.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..core.context import YgmContext
from ..core.routing.combiner import Combiner
from ..serde import RecordSpec

#: A packed k-mer occurrence routed to its hash owner.
KMER_SPEC = RecordSpec("kmer", [("kmer", "u8")])

#: Count-carrying variant for in-network combining.
KMER_COUNT_SPEC = RecordSpec("kmer_count", [("kmer", "u8"), ("count", "u8")])

#: K-mer occurrence counts sum in-network (integer-exact).
KMER_COMBINER = Combiner(
    "kmer_count", key_fields=("kmer",), reduce_fields={"count": "sum"}
)

_BASES = np.frombuffer(b"ACGT", dtype="u1")


def random_reads(
    n_reads: int, read_len: int, rng: np.random.Generator, skew: float = 0.0
) -> np.ndarray:
    """Synthetic reads as a (n_reads, read_len) array of base codes 0-3.

    ``skew > 0`` biases the base distribution, producing the repeated
    (high-frequency) k-mers a genome's repetitive regions would --
    HipMer's imbalance scenario.
    """
    probs = np.full(4, 0.25)
    if skew > 0:
        probs = np.array([0.25 + 0.75 * skew, 0.25 - 0.25 * skew,
                          0.25 - 0.25 * skew, 0.25 - 0.25 * skew])
        probs /= probs.sum()
    return rng.choice(4, size=(n_reads, read_len), p=probs).astype(np.uint8)


def shear_kmers(reads: np.ndarray, k: int) -> np.ndarray:
    """All k-mers of every read, 2-bit packed into u64 (vectorized)."""
    if not 1 <= k <= 32:
        raise ValueError(f"k must be in [1, 32], got {k}")
    n_reads, read_len = reads.shape
    if read_len < k:
        return np.empty(0, dtype=np.uint64)
    n_kmers = read_len - k + 1
    # Sliding windows via stride tricks, then polynomial packing.
    windows = np.lib.stride_tricks.sliding_window_view(reads, k, axis=1)
    packed = np.zeros((n_reads, n_kmers), dtype=np.uint64)
    for j in range(k):
        packed = (packed << np.uint64(2)) | windows[:, :, j].astype(np.uint64)
    return packed.reshape(-1)


def kmer_owner(kmers: np.ndarray, nranks: int) -> np.ndarray:
    """Hash-partition k-mers to ranks (splitmix-style mixer)."""
    mix = kmers * np.uint64(0x9E3779B97F4A7C15)
    mix ^= mix >> np.uint64(31)
    return (mix % np.uint64(nranks)).astype(np.int64)


def unpack_kmer(packed: int, k: int) -> str:
    """Human-readable k-mer (testing/reporting helper)."""
    out = []
    for _ in range(k):
        out.append("ACGT"[packed & 3])
        packed >>= 2
    return "".join(reversed(out))


def make_kmer_counting(
    n_reads_per_rank: int,
    read_len: int,
    k: int,
    frequent_threshold: int = 2,
    batch_size: int = 8192,
    capacity: Optional[int] = None,
    skew: float = 0.0,
    combining: bool = False,
) -> Callable[[YgmContext], Generator]:
    """Build the k-mer counting rank program.

    Each rank generates its reads, shears them and routes every k-mer to
    its hash owner; owners count in a dict keyed by packed k-mer.
    Returns ``(counts, frequent)`` per rank: the owner-side count table
    and the k-mers with count > ``frequent_threshold`` (HipMer's
    frequent-k-mer set).

    With ``combining=True`` occurrences carry an explicit count
    (:data:`KMER_COUNT_SPEC`) and equal k-mers merge in-network
    (:data:`KMER_COMBINER`); counts are integer sums, so results are
    bit-identical to the uncombined run.
    """

    def rank_main(ctx: YgmContext) -> Generator:
        counts: Dict[int, int] = {}

        if combining:

            def on_batch(batch: np.ndarray) -> None:
                for km, c in zip(
                    batch["kmer"].tolist(), batch["count"].tolist()
                ):
                    counts[km] = counts.get(km, 0) + c

            mb = ctx.mailbox(
                recv_batch=on_batch, capacity=capacity, combiner=KMER_COMBINER
            )
        else:

            def on_batch(batch: np.ndarray) -> None:
                uniq, cnt = np.unique(batch["kmer"], return_counts=True)
                for km, c in zip(uniq.tolist(), cnt.tolist()):
                    counts[km] = counts.get(km, 0) + c

            mb = ctx.mailbox(recv_batch=on_batch, capacity=capacity)
        gen_cost = ctx.machine.config.compute.per_edge_gen
        reads = random_reads(n_reads_per_rank, read_len, ctx.rng, skew=skew)
        kmers = shear_kmers(reads, k)
        yield ctx.compute(len(kmers) * gen_cost)
        owners = kmer_owner(kmers, ctx.nranks)
        for lo in range(0, len(kmers), batch_size):
            hi = lo + batch_size
            if combining:
                seg = kmers[lo:hi]
                yield from mb.send_batch(
                    owners[lo:hi],
                    KMER_COUNT_SPEC.build(
                        kmer=seg, count=np.ones(len(seg), dtype="u8")
                    ),
                    spec=KMER_COUNT_SPEC,
                )
                continue
            yield from mb.send_batch(
                owners[lo:hi],
                KMER_SPEC.build(kmer=kmers[lo:hi]),
                spec=KMER_SPEC,
            )
        yield from mb.wait_empty()
        frequent = sorted(
            km for km, c in counts.items() if c > frequent_threshold
        )
        return (counts, frequent)

    return rank_main


def merge_counts(values: List[Tuple[Dict[int, int], list]]) -> Dict[int, int]:
    """Combine per-rank count tables (ownership is disjoint, so this is a
    plain union; used by tests to compare against a direct recount)."""
    merged: Dict[int, int] = {}
    for counts, _freq in values:
        overlap = merged.keys() & counts.keys()
        if overlap:
            raise ValueError(f"ownership overlap on {len(overlap)} k-mers")
        merged.update(counts)
    return merged
