"""Vertex delegates: replicated high-degree vertices (paper Section V-B).

The paper handles the hubs of scale-free graphs with the *delegate*
technique of Pearce et al. [2]: vertices whose degree exceeds a threshold
are replicated on every rank with *colocated* edges (a delegate edge is
stored on the rank owning its non-delegate endpoint), and their state is
synchronised with YGM's asynchronous broadcasts.

The paper scales the delegate threshold with the expected largest RMAT
degree to keep the delegate count from exploding under weak scaling
(Section VI-B); :func:`rmat_expected_max_degree` provides that scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np


def degrees_from_edges(u: np.ndarray, v: np.ndarray, num_vertices: int) -> np.ndarray:
    """Undirected degree of every vertex (each edge contributes to both)."""
    deg = np.bincount(u, minlength=num_vertices)
    deg += np.bincount(v, minlength=num_vertices)
    return deg


def find_delegates(degrees: np.ndarray, threshold: float) -> np.ndarray:
    """Global ids of vertices whose degree exceeds ``threshold``."""
    return np.flatnonzero(degrees > threshold).astype(np.int64)


def rmat_expected_max_degree(scale: int, num_edges: int, a: float, b: float) -> float:
    """Expected degree of the hottest RMAT vertex (vertex 0).

    For an RMAT with parameters (a, b, c, d), vertex 0's expected
    out-degree is ``m (a+b)^scale`` and in-degree ``m (a+c)^scale``; the
    paper scales the delegate threshold with this quantity so the
    delegate count grows controllably under weak scaling.
    """
    return num_edges * ((a + b) ** scale + (a + b) ** scale)


def scaled_delegate_threshold(
    scale: int, num_edges: int, a: float, b: float, fraction: float = 0.05
) -> float:
    """The paper's weak-scaling threshold: a fixed fraction of the
    expected maximum degree (chosen "to give a larger number of delegates
    than would typically be desired" -- Section VI-B)."""
    return max(4.0, fraction * rmat_expected_max_degree(scale, num_edges, a, b))


@dataclass
class DelegateSet:
    """The delegate vertices of a distributed graph.

    Maps delegate global ids to dense *slot* indices so that replicated
    per-delegate state can live in flat NumPy arrays on every rank.
    """

    vertices: np.ndarray  # sorted global ids
    slot_of: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        self.vertices = np.sort(np.asarray(self.vertices, dtype=np.int64))
        self.slot_of = {int(v): i for i, v in enumerate(self.vertices)}

    @property
    def count(self) -> int:
        return len(self.vertices)

    def is_delegate_vec(self, v: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``v`` are delegates (vectorized)."""
        idx = np.searchsorted(self.vertices, v)
        idx = np.clip(idx, 0, max(0, self.count - 1))
        if self.count == 0:
            return np.zeros(len(v), dtype=bool)
        return self.vertices[idx] == v

    def slots_vec(self, v: np.ndarray) -> np.ndarray:
        """Slot index of each (assumed-delegate) vertex id."""
        return np.searchsorted(self.vertices, v)

    def split_edges(
        self, u: np.ndarray, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Classify edge endpoints: returns boolean masks
        ``(u_is_delegate, v_is_delegate, either)``."""
        du = self.is_delegate_vec(u)
        dv = self.is_delegate_vec(v)
        return du, dv, du | dv


def build_delegates(
    u: np.ndarray, v: np.ndarray, num_vertices: int, threshold: float
) -> DelegateSet:
    """Identify delegates from a (global) edge list."""
    deg = degrees_from_edges(u, v, num_vertices)
    return DelegateSet(find_delegates(deg, threshold))
