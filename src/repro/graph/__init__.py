"""Graph substrate: generators, partitioning, delegates, distributed CSC."""

from .csc import LocalCSC, build_local_csc, global_matrix_from_edges
from .delegates import (
    DelegateSet,
    build_delegates,
    degrees_from_edges,
    find_delegates,
    rmat_expected_max_degree,
    scaled_delegate_threshold,
)
from .generators import (
    EdgeStream,
    GRAPH500_PARAMS,
    UNIFORM_PARAMS,
    erdos_renyi_edges,
    er_stream,
    permute_vertices,
    rmat_edges,
    rmat_stream,
)
from .partition import BlockPartition, CyclicPartition

__all__ = [
    "BlockPartition",
    "CyclicPartition",
    "DelegateSet",
    "EdgeStream",
    "GRAPH500_PARAMS",
    "LocalCSC",
    "UNIFORM_PARAMS",
    "build_delegates",
    "build_local_csc",
    "degrees_from_edges",
    "er_stream",
    "erdos_renyi_edges",
    "find_delegates",
    "global_matrix_from_edges",
    "permute_vertices",
    "rmat_edges",
    "rmat_expected_max_degree",
    "rmat_stream",
    "scaled_delegate_threshold",
]
