"""Graph generators: Erdős–Rényi edge streams and RMAT (Graph500 style).

Both generators are vectorized (one NumPy pass per recursion level for
RMAT) and deterministic given a seed.  Edges are produced in *batches*, as
in the paper's experiments ("edges were produced and counted in batches to
isolate the time of degree counting from that of edge generation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

#: Graph500 RMAT parameters (paper Fig 8a: 0.57, 0.19, 0.19, 0.05).
GRAPH500_PARAMS = (0.57, 0.19, 0.19, 0.05)
#: Uniform parameters -- gives an Erdős–Rényi-like graph (paper Fig 8c).
UNIFORM_PARAMS = (0.25, 0.25, 0.25, 0.25)


def erdos_renyi_edges(
    num_vertices: int, num_edges: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniformly sampled edge endpoints (with replacement), as used in the
    degree-counting experiments (Fig 6)."""
    u = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    v = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return u, v


def rmat_edges(
    scale: int,
    num_edges: int,
    rng: np.random.Generator,
    params: Tuple[float, float, float, float] = GRAPH500_PARAMS,
    noise: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """RMAT edge sample: ``num_edges`` edges over ``2**scale`` vertices.

    Vectorized over edges: each of the ``scale`` recursion levels draws
    one uniform array and picks the quadrant per edge.  ``noise`` (aka
    "smoothing") perturbs the quadrant probabilities per level, as
    suggested by Seshadhri et al. to avoid degenerate Kronecker artifacts;
    0 reproduces classic RMAT.
    """
    a, b, c, d = params
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError(f"RMAT parameters must sum to 1, got {a + b + c + d}")
    if scale < 1:
        raise ValueError("scale must be >= 1")
    u = np.zeros(num_edges, dtype=np.int64)
    v = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        bit = np.int64(1) << (scale - 1 - level)
        ab = a + b  # P(upper row half)
        if noise > 0.0:
            ab *= 1.0 + rng.uniform(-noise, noise)
            ab = min(max(ab, 1e-9), 1.0 - 1e-9)
        r_row = rng.random(num_edges)
        r_col = rng.random(num_edges)
        go_down = r_row >= ab
        # Column choice conditioned on the row half:
        #   P(right | up) = b/(a+b),  P(right | down) = d/(c+d).
        right_if_up = r_col >= a / (a + b)
        right_if_down = r_col >= c / (c + d)
        go_right = np.where(go_down, right_if_down, right_if_up)
        u[go_down] |= bit
        v[go_right] |= bit
    return u, v


def permute_vertices(
    edges: Tuple[np.ndarray, np.ndarray],
    num_vertices: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Relabel vertices with a random permutation (Graph500 requires this
    so that vertex id correlates with nothing)."""
    perm = rng.permutation(num_vertices)
    u, v = edges
    return perm[u], perm[v]


@dataclass(frozen=True)
class EdgeStream:
    """A deterministic, batched, per-rank edge stream.

    Each rank of a distributed run generates its share of the global edge
    list locally (the standard Graph500 setup).  Batches are independent
    of the batch size in *content*: the stream is seeded per (seed, rank).
    """

    kind: str  # "er" | "rmat" | "rmat_uniform"
    num_vertices: int
    edges_per_rank: int
    seed: int
    scale: int = 0
    params: Tuple[float, float, float, float] = GRAPH500_PARAMS

    #: Internal generation granularity.  Edges are always produced in
    #: fixed chunks seeded by (seed, rank, chunk index), then re-sliced to
    #: the requested batch size -- so the stream *content* is independent
    #: of how callers batch it.
    CHUNK = 4096

    def _chunk(self, rank: int, index: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(rank, 0xED6E, index))
        )
        if self.kind == "er":
            return erdos_renyi_edges(self.num_vertices, n, rng)
        if self.kind == "rmat":
            return rmat_edges(self.scale, n, rng, params=self.params)
        raise ValueError(f"unknown edge stream kind {self.kind!r}")

    def batches(self, rank: int, batch_size: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        total = self.edges_per_rank
        pending_u: list = []
        pending_v: list = []
        pending_n = 0
        produced = 0
        chunk_index = 0
        while produced < total:
            take = min(self.CHUNK, total - produced)
            u, v = self._chunk(rank, chunk_index, take)
            chunk_index += 1
            produced += take
            pending_u.append(u)
            pending_v.append(v)
            pending_n += take
            while pending_n >= batch_size or (produced >= total and pending_n > 0):
                u_all = np.concatenate(pending_u) if len(pending_u) > 1 else pending_u[0]
                v_all = np.concatenate(pending_v) if len(pending_v) > 1 else pending_v[0]
                n = min(batch_size, pending_n)
                yield u_all[:n], v_all[:n]
                pending_u = [u_all[n:]] if n < pending_n else []
                pending_v = [v_all[n:]] if n < pending_n else []
                pending_n -= n

    def all_edges(self, rank: int) -> Tuple[np.ndarray, np.ndarray]:
        """The rank's whole edge share as one pair of arrays."""
        us, vs = [], []
        for u, v in self.batches(rank, max(1, self.edges_per_rank)):
            us.append(u)
            vs.append(v)
        if not us:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(us), np.concatenate(vs)


def er_stream(num_vertices: int, edges_per_rank: int, seed: int = 0) -> EdgeStream:
    """An Erdős–Rényi (uniform-endpoint) per-rank edge stream."""
    return EdgeStream(
        kind="er", num_vertices=num_vertices, edges_per_rank=edges_per_rank, seed=seed
    )


def rmat_stream(
    scale: int,
    edges_per_rank: int,
    seed: int = 0,
    params: Tuple[float, float, float, float] = GRAPH500_PARAMS,
) -> EdgeStream:
    """An RMAT per-rank edge stream over ``2**scale`` vertices."""
    return EdgeStream(
        kind="rmat",
        num_vertices=1 << scale,
        edges_per_rank=edges_per_rank,
        seed=seed,
        scale=scale,
        params=params,
    )
