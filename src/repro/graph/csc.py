"""Distributed compressed-sparse-column matrices (paper Section V-C).

The YGM SpMV stores the matrix in CSC with a 1D cyclic partitioning of
columns across ranks; this module builds each rank's local CSC slice from
a global edge/triple list and provides the local column iteration the
SpMV kernel needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .partition import CyclicPartition


@dataclass
class LocalCSC:
    """One rank's slice of a column-partitioned sparse matrix.

    ``mat`` has shape ``(n, local_cols)``; local column ``j`` is global
    column ``partition.global_id(rank, j)``.
    """

    rank: int
    partition: CyclicPartition
    mat: sp.csc_matrix

    @property
    def n(self) -> int:
        return self.partition.num_vertices

    @property
    def local_cols(self) -> int:
        return self.mat.shape[1]

    @property
    def nnz(self) -> int:
        return self.mat.nnz

    def column(self, local_j: int) -> Tuple[np.ndarray, np.ndarray]:
        """(row indices, values) of local column ``local_j``."""
        start, end = self.mat.indptr[local_j], self.mat.indptr[local_j + 1]
        return self.mat.indices[start:end], self.mat.data[start:end]

    def triples(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All local nonzeros as (rows, global_cols, values)."""
        coo = self.mat.tocoo()
        gcols = self.partition.global_id_vec(self.rank, coo.col.astype(np.int64))
        return coo.row.astype(np.int64), gcols, coo.data


def build_local_csc(
    rank: int,
    nranks: int,
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: Optional[np.ndarray] = None,
) -> LocalCSC:
    """Build rank ``rank``'s column slice from global COO triples.

    Only the triples whose column is owned by ``rank`` are kept (callers
    typically pass the full list in tests and pre-filtered lists in
    distributed settings); duplicate entries are summed, like
    ``scipy.sparse`` and CombBLAS.
    """
    part = CyclicPartition(n, nranks)
    if vals is None:
        vals = np.ones(len(rows), dtype=np.float64)
    mine = part.owner_vec(cols) == rank
    local_cols = part.local_id_vec(cols[mine])
    ncols_local = part.local_count(rank)
    mat = sp.coo_matrix(
        (vals[mine], (rows[mine], local_cols)), shape=(n, ncols_local)
    ).tocsc()
    mat.sum_duplicates()
    return LocalCSC(rank=rank, partition=part, mat=mat)


def global_matrix_from_edges(
    n: int, rows: np.ndarray, cols: np.ndarray, vals: Optional[np.ndarray] = None
) -> sp.csr_matrix:
    """The full matrix (verification helper for tests/benches)."""
    if vals is None:
        vals = np.ones(len(rows), dtype=np.float64)
    mat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    mat.sum_duplicates()
    return mat
