"""1D vertex partitioning: the paper's round-robin ("cyclic") assignment.

Algorithm 1 assigns vertex ``v`` to rank ``v % num_ranks`` with local id
``v / num_ranks``; this module provides that mapping in scalar and
vectorized form, plus a block partition used by the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CyclicPartition:
    """Round-robin assignment of ``num_vertices`` ids to ``nranks`` ranks."""

    num_vertices: int
    nranks: int

    def owner(self, v: int) -> int:
        return v % self.nranks

    def local_id(self, v: int) -> int:
        return v // self.nranks

    def owner_vec(self, v: np.ndarray) -> np.ndarray:
        return (np.asarray(v) % self.nranks).astype(np.int64)

    def local_id_vec(self, v: np.ndarray) -> np.ndarray:
        return (np.asarray(v) // self.nranks).astype(np.int64)

    def global_id(self, rank: int, local: int) -> int:
        return local * self.nranks + rank

    def global_id_vec(self, rank: int, local: np.ndarray) -> np.ndarray:
        return np.asarray(local) * self.nranks + rank

    def local_count(self, rank: int) -> int:
        """Vertices owned by ``rank``."""
        base, extra = divmod(self.num_vertices, self.nranks)
        return base + (1 if rank < extra else 0)

    def local_vertices(self, rank: int) -> np.ndarray:
        """Global ids of the vertices owned by ``rank``, ascending."""
        return np.arange(rank, self.num_vertices, self.nranks, dtype=np.int64)


@dataclass(frozen=True)
class BlockPartition:
    """Contiguous block assignment (used by the CombBLAS-style baseline)."""

    num_vertices: int
    nparts: int

    def bounds(self, part: int) -> tuple:
        """Half-open ``[lo, hi)`` range of part ``part``."""
        base, extra = divmod(self.num_vertices, self.nparts)
        lo = part * base + min(part, extra)
        hi = lo + base + (1 if part < extra else 0)
        return lo, hi

    def owner(self, v: int) -> int:
        base, extra = divmod(self.num_vertices, self.nparts)
        pivot = extra * (base + 1)
        if v < pivot:
            return v // (base + 1)
        return extra + (v - pivot) // base if base else self.nparts - 1

    def owner_vec(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.int64)
        base, extra = divmod(self.num_vertices, self.nparts)
        pivot = extra * (base + 1)
        if base == 0:
            return v.copy()
        low = v // (base + 1)
        high = extra + (v - pivot) // base
        return np.where(v < pivot, low, high).astype(np.int64)

    def local_count(self, part: int) -> int:
        lo, hi = self.bounds(part)
        return hi - lo
