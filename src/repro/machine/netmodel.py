"""The network cost model: a LogGP-style model with an eager/rendezvous
protocol switch.

This module is the substitute for the paper's physical interconnect
(Omni-Path on *Quartz*, measured in Fig 5).  The model decomposes the cost
of one transmitted packet into:

* **sender core overhead** -- CPU time to initiate a send (per packet),
* **NIC occupancy** -- per-packet gap plus ``bytes / wire_rate``; this is
  a *hold* on the sending (and receiving) node's NIC resource, which is
  what serializes packets through a node and produces congestion,
* **latency** -- pure wire delay, pipelined (not a resource hold),
* **rendezvous handshake** -- packets at or above ``eager_threshold``
  switch from the eager protocol to rendezvous, paying an extra
  request-to-send/clear-to-send round trip (2 x (latency + gap)) but
  enjoying a higher effective wire rate (zero-copy transfer).

The eager/rendezvous switch is what produces the characteristic downward
jump at 16 KiB in the paper's Fig 5; the model reproduces it by
construction and :mod:`repro.bench.fig5` measures it end-to-end through
the simulated MPI layer.

Local (same-node, shared-memory) messages bypass the NIC entirely and pay
a per-packet overhead plus a memory-copy cost at memory bandwidth
(Section III: "remote communication is bit-for-bit more expensive ...
local communication is handled in shared memory").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple


KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class NetworkModel:
    """Timing parameters of the simulated interconnect.

    All times in seconds, all rates in bytes/second.
    """

    #: Wire latency of one remote traversal (pure delay, pipelined).
    latency: float = 1.5e-6
    #: Per-packet NIC gap (packetisation/metadata cost) -- the reason
    #: message coalescing matters (Section IV-A).
    nic_gap: float = 1.0e-6
    #: Wire rate for eager-protocol packets (extra copy on both sides).
    eager_rate: float = 5.0 * GiB
    #: Wire rate for rendezvous-protocol packets (zero copy).
    rendezvous_rate: float = 12.0 * GiB
    #: Protocol-switch threshold (MVAPICH default: 16 KiB).
    eager_threshold: int = 16 * KiB
    #: Extra per-leg latency of the rendezvous RTS/CTS handshake.
    handshake_latency: float = 3.0e-6
    #: Sender-core CPU overhead per packet.
    send_overhead: float = 0.5e-6
    #: Receiver-core CPU overhead per packet (charged at dispatch).
    recv_overhead: float = 0.5e-6
    #: Per-packet overhead of a shared-memory (local) transfer.
    local_overhead: float = 0.4e-6
    #: Shared-memory copy rate.
    memory_rate: float = 24.0 * GiB

    #: Memoised per-size packet costs (see :meth:`packet_costs`).
    #: Coalesced buffers hit the same few sizes millions of times, so the
    #: per-packet arithmetic is worth caching.  Excluded from equality/
    #: hash/repr; ``replace``-based copies start with a fresh cache.
    _cost_cache: Dict[int, Tuple[float, float, float]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    #: Cache growth bound -- a runaway sweep of unique sizes falls back
    #: to uncached arithmetic instead of holding memory hostage.
    _COST_CACHE_MAX = 1 << 16

    # ---------------------------------------------------------------- remote
    def is_rendezvous(self, nbytes: int) -> bool:
        """Whether a packet of ``nbytes`` uses the rendezvous protocol."""
        return nbytes >= self.eager_threshold

    def wire_rate(self, nbytes: int) -> float:
        """Effective wire rate for a packet of ``nbytes``."""
        return self.rendezvous_rate if self.is_rendezvous(nbytes) else self.eager_rate

    def nic_time(self, nbytes: int) -> float:
        """NIC occupancy (resource hold) for one packet on one NIC."""
        return self.nic_gap + nbytes / self.wire_rate(nbytes)

    def remote_delay(self, nbytes: int) -> float:
        """Pure (pipelined) delay component of a remote packet."""
        if self.is_rendezvous(nbytes):
            # RTS/CTS round trip before the data leg.
            return self.latency + 2.0 * (self.handshake_latency + self.nic_gap)
        return self.latency

    def remote_time_uncontended(self, nbytes: int) -> float:
        """End-to-end time of one remote packet on an idle machine.

        Sender overhead + sender NIC + delay + receiver NIC + receiver
        overhead.  This is what the Fig 5 bandwidth sweep measures.
        """
        return (
            self.send_overhead
            + self.nic_time(nbytes)
            + self.remote_delay(nbytes)
            + self.nic_time(nbytes)
            + self.recv_overhead
        )

    def bandwidth(self, nbytes: int) -> float:
        """Achieved point-to-point bandwidth for ``nbytes`` packets (B/s)."""
        return nbytes / self.remote_time_uncontended(nbytes)

    @property
    def min_wire_latency(self) -> float:
        """Smallest :meth:`remote_delay` any remote packet can experience.

        This is the *lookahead* of the conservative parallel-DES engine
        (:mod:`repro.pdes`): a packet put on the wire at ``t`` cannot be
        observed by another node before ``t + min_wire_latency``, for any
        packet size and any inter-node pair (the model is distance-
        uniform).  Computed fresh on every access -- deliberately not
        memoised, so mutating a model in place (ablation helpers, tests)
        can never leave a stale bound behind (the PR-6
        :meth:`packet_costs` staleness bug class).
        """
        return min(
            # eager branch of remote_delay
            self.latency,
            # rendezvous branch of remote_delay
            self.latency + 2.0 * (self.handshake_latency + self.nic_gap),
        )

    # ---------------------------------------------------------------- local
    def local_time(self, nbytes: int) -> float:
        """Cost of one shared-memory packet (charged to the sending core)."""
        return self.local_overhead + nbytes / self.memory_rate

    # ---------------------------------------------------------------- cached
    def _cost_params(self) -> Tuple:
        """The parameters :meth:`packet_costs` results depend on."""
        return (
            self.latency,
            self.nic_gap,
            self.eager_rate,
            self.rendezvous_rate,
            self.eager_threshold,
            self.handshake_latency,
            self.local_overhead,
            self.memory_rate,
        )

    #: Sentinel key holding the parameter tuple the memo was built under.
    _PARAMS_KEY = "__params__"

    def packet_costs(self, nbytes: int) -> Tuple[float, float, float]:
        """Memoised ``(nic_time, remote_delay, local_time)`` for one size.

        The transport layer calls this once per packet; identical float
        results to calling the three methods directly (same expressions,
        computed once per distinct size).

        The memo is keyed on the parameters it was computed from: the
        dataclass is frozen, but ``object.__setattr__`` (ablation
        helpers, tests) can still mutate a model after first use, and a
        stale memo would silently keep charging the old costs.  A
        parameter change is detected on the next call and clears the
        cache.
        """
        cache = self._cost_cache
        params = self._cost_params()
        if cache.get(self._PARAMS_KEY) != params:
            cache.clear()
            cache[self._PARAMS_KEY] = params
        costs = cache.get(nbytes)
        if costs is None:
            costs = (
                self.nic_time(nbytes),
                self.remote_delay(nbytes),
                self.local_time(nbytes),
            )
            if len(cache) < self._COST_CACHE_MAX:
                cache[nbytes] = costs
        return costs

    # ---------------------------------------------------------------- misc
    def with_overrides(self, **kwargs) -> "NetworkModel":
        """A copy with some parameters replaced (for ablations)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ComputeModel:
    """CPU cost parameters for the simulated application work.

    The applications charge compute time through these knobs so that
    computation/communication overlap and imbalance behave like the paper's
    C++ applications rather than like the (much slower) Python host.
    """

    #: Cost of handling one application message in a receive callback.
    per_message_handle: float = 30.0e-9
    #: Cost of generating + queueing one application message (routing,
    #: buffer append).  Charged per message at send time on each hop.
    per_message_queue: float = 20.0e-9
    #: Cost of one floating-point multiply-add (SpMV local work).
    per_flop: float = 1.0e-9
    #: Cost of generating one graph edge (edge-stream generation).
    per_edge_gen: float = 15.0e-9

    def with_overrides(self, **kwargs) -> "ComputeModel":
        return replace(self, **kwargs)
