"""Rank addressing: the paper's ``(node, core)`` tuples.

The paper (Section III) addresses a core ``c`` on node ``n`` by the tuple
``(n, c) in [N] x [C]``.  We use 0-based offsets and the canonical
node-major linearisation ``rank = n * C + c``, matching how MPI ranks are
typically laid out with one rank per core and block placement per node.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple


class Addr(NamedTuple):
    """A core address: node offset and core offset (both 0-based)."""

    node: int
    core: int


def rank_of(node: int, core: int, cores_per_node: int) -> int:
    """Linear rank of core ``core`` on node ``node``."""
    return node * cores_per_node + core


def addr_of(rank: int, cores_per_node: int) -> Addr:
    """Inverse of :func:`rank_of`."""
    return Addr(rank // cores_per_node, rank % cores_per_node)


def node_of(rank: int, cores_per_node: int) -> int:
    """Node offset of ``rank``."""
    return rank // cores_per_node


def core_of(rank: int, cores_per_node: int) -> int:
    """Core offset of ``rank`` within its node."""
    return rank % cores_per_node


def same_node(a: int, b: int, cores_per_node: int) -> bool:
    """Whether two ranks are *local* to each other (paper Section III)."""
    return a // cores_per_node == b // cores_per_node


def layer_of(node: int, cores_per_node: int) -> int:
    """The NLNR *layer offset* of a node: ``n mod C`` (Section III-D)."""
    return node % cores_per_node


def validate_shape(nodes: int, cores_per_node: int) -> Tuple[int, int]:
    """Validate and return ``(nodes, cores_per_node)``."""
    if nodes < 1:
        raise ValueError(f"need at least 1 node, got {nodes}")
    if cores_per_node < 1:
        raise ValueError(f"need at least 1 core per node, got {cores_per_node}")
    return nodes, cores_per_node
