"""The simulated machine: N nodes x C cores, NICs, and packet transport.

:class:`Machine` owns the DES-level hardware resources and implements the
two transport paths of the paper's cost analysis:

* :meth:`transmit_remote` -- over the wire, serialized through the source
  and destination node NIC resources (one TX and one RX engine per node),
* :meth:`transmit_local` -- through shared memory, charged to the sending
  core only.

Delivery is a callback (``deliver(packet)``) supplied by the transport
layer above (the simulated MPI matching engine), so the machine layer
knows nothing about ranks' inboxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List

from ..sim import Resource, Simulator
from . import address
from .netmodel import ComputeModel, NetworkModel


@dataclass(frozen=True)
class MachineConfig:
    """Shape and timing of the simulated machine."""

    nodes: int
    cores_per_node: int
    net: NetworkModel
    compute: ComputeModel

    def __post_init__(self):
        address.validate_shape(self.nodes, self.cores_per_node)

    @property
    def nranks(self) -> int:
        return self.nodes * self.cores_per_node


class Machine:
    """Hardware resources + packet transport for one simulated machine."""

    def __init__(self, sim: Simulator, config: MachineConfig):
        self.sim = sim
        self.config = config
        n = config.nodes
        #: Per-node transmit NIC engines (serialize outbound remote packets).
        self.nic_tx: List[Resource] = [
            Resource(sim, name=f"nic_tx[{i}]") for i in range(n)
        ]
        #: Per-node receive NIC engines (serialize inbound remote packets;
        #: this is where hot-spot receivers queue up).
        self.nic_rx: List[Resource] = [
            Resource(sim, name=f"nic_rx[{i}]") for i in range(n)
        ]
        # -- transport statistics (whole machine) --
        self.remote_packets = 0
        self.remote_bytes = 0
        self.local_packets = 0
        self.local_bytes = 0
        #: Optional PDES export hook, called at the packet-on-wire point of
        #: :meth:`transmit_remote` as ``hook(t_wire, src, dst, nbytes,
        #: packet)``.  Returning true claims the packet: the in-flight
        #: remainder is *not* simulated here -- the owning partition of
        #: ``dst`` replays it via :meth:`inject_arrival` at the identical
        #: arrival instant.  ``None`` (the default) keeps the serial path.
        self.on_remote_export: Any = None

    # -- shape helpers -----------------------------------------------------
    @property
    def nranks(self) -> int:
        return self.config.nranks

    @property
    def nodes(self) -> int:
        return self.config.nodes

    @property
    def cores_per_node(self) -> int:
        return self.config.cores_per_node

    def node_of(self, rank: int) -> int:
        return address.node_of(rank, self.config.cores_per_node)

    def core_of(self, rank: int) -> int:
        return address.core_of(rank, self.config.cores_per_node)

    def addr_of(self, rank: int) -> address.Addr:
        return address.addr_of(rank, self.config.cores_per_node)

    def rank_of(self, node: int, core: int) -> int:
        return address.rank_of(node, core, self.config.cores_per_node)

    def same_node(self, a: int, b: int) -> bool:
        return address.same_node(a, b, self.config.cores_per_node)

    # -- transport ---------------------------------------------------------
    def transmit_local(
        self,
        src: int,
        dst: int,
        nbytes: int,
        packet: Any,
        deliver: Callable[[Any], None],
    ) -> Generator:
        """Send a packet through shared memory (same node).

        Generator run inside the *sending* rank's process: the shared
        memory copy is charged to the sending core (the paper's MPI-only
        YGM performs explicit on-node copies, Section VII).
        """
        net = self.config.net
        self.local_packets += 1
        self.local_bytes += nbytes
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("mpi"):
            tracer.instant(
                self.sim.now, "mpi", "local_packet", f"rank {src}",
                dst=dst, nbytes=nbytes,
            )
        cost = net.packet_costs(nbytes)[2]  # local_time, memoised
        if cost > 0:
            yield self.sim.timeout(cost)
        if tracer is not None and tracer.lineage is not None and packet.lin is not None:
            tracer.lineage.packet_delivered(packet.lin, self.sim.now, local=True)
        deliver(packet)

    def transmit_remote(
        self,
        src: int,
        dst: int,
        nbytes: int,
        packet: Any,
        deliver: Callable[[Any], None],
    ) -> Generator:
        """Send a packet over the wire (different nodes).

        Generator run inside the *sending* rank's process.  It charges the
        sender-core overhead and the source-NIC occupancy, then hands the
        in-flight remainder (wire delay, destination-NIC occupancy,
        delivery) to a detached process so the sender regains its core --
        buffered-send semantics.
        """
        net = self.config.net
        src_node = self.node_of(src)
        dst_node = self.node_of(dst)
        self.remote_packets += 1
        self.remote_bytes += nbytes
        tracer = self.sim.tracer
        trace = tracer is not None and tracer.wants("mpi")
        if trace:
            tracer.instant(
                self.sim.now, "mpi", "packet_injected", f"rank {src}",
                dst=dst, nbytes=nbytes,
                protocol="rendezvous" if net.is_rendezvous(nbytes) else "eager",
            )
        if net.send_overhead > 0:
            yield self.sim.timeout(net.send_overhead)
        yield from self.nic_tx[src_node].timed(net.packet_costs(nbytes)[0])
        if trace:
            tracer.instant(
                self.sim.now, "mpi", "packet_on_wire", f"rank {src}",
                dst=dst, nbytes=nbytes,
            )
        if tracer is not None and tracer.lineage is not None and packet.lin is not None:
            tracer.lineage.packet_wire(packet.lin, self.sim.now)
        exporter = self.on_remote_export
        if exporter is not None and exporter(self.sim.now, src, dst, nbytes, packet):
            return
        self.sim.process(
            self._in_flight(dst, dst_node, nbytes, packet, deliver),
            name=f"pkt:{src}->{dst}",
        )

    def _in_flight(
        self,
        dst: int,
        dst_node: int,
        nbytes: int,
        packet: Any,
        deliver: Callable[[Any], None],
    ) -> Generator:
        """Wire delay + destination NIC + delivery (detached process)."""
        yield self.sim.timeout(self.config.net.packet_costs(nbytes)[1])
        yield from self._arrive(dst, dst_node, nbytes, packet, deliver)

    def inject_arrival(
        self,
        t_wire: float,
        src: int,
        dst: int,
        nbytes: int,
        packet: Any,
        deliver: Callable[[Any], None],
    ) -> None:
        """Replay a cross-partition packet's arrival (PDES import side).

        The exporting partition observed the packet on the wire at
        ``t_wire`` and skipped its in-flight remainder; this reconstructs
        it here at ``t_wire + remote_delay(nbytes)`` -- the same float
        expression the serial :meth:`_in_flight` timeout would have
        produced, so arrival timestamps (and everything downstream:
        NIC-RX contention, delivery order, stats) are bit-identical.
        """
        t_arr = t_wire + self.config.net.packet_costs(nbytes)[1]
        self.sim.process_at(
            self._arrive(dst, self.node_of(dst), nbytes, packet, deliver),
            t_arr,
            name=f"pkt:{src}->{dst}",
        )

    def _arrive(
        self,
        dst: int,
        dst_node: int,
        nbytes: int,
        packet: Any,
        deliver: Callable[[Any], None],
    ) -> Generator:
        """Destination-side tail of a remote packet: NIC-RX + delivery.

        Runs at the instant the packet reaches the destination node --
        either resumed from :meth:`_in_flight`'s wire-delay timeout
        (serial) or started there directly by :meth:`inject_arrival`
        (PDES import).
        """
        net = self.config.net
        nic_time = net.packet_costs(nbytes)[0]
        tracer = self.sim.tracer
        prof = tracer.lineage if tracer is not None else None
        if prof is not None and packet.lin is not None:
            prof.packet_rx(packet.lin, self.sim.now)
        yield from self.nic_rx[dst_node].timed(nic_time)
        if net.recv_overhead > 0:
            yield self.sim.timeout(net.recv_overhead)
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("mpi"):
            tracer.instant(
                self.sim.now, "mpi", "packet_delivered", f"rank {dst}",
                nbytes=nbytes,
            )
        if prof is not None and packet.lin is not None:
            prof.packet_delivered(packet.lin, self.sim.now)
        deliver(packet)

    def transmit(
        self,
        src: int,
        dst: int,
        nbytes: int,
        packet: Any,
        deliver: Callable[[Any], None],
    ) -> Generator:
        """Dispatch to the local or remote path based on endpoints."""
        if self.same_node(src, dst):
            return self.transmit_local(src, dst, nbytes, packet, deliver)
        return self.transmit_remote(src, dst, nbytes, packet, deliver)

    # -- diagnostics ---------------------------------------------------------
    def nic_utilisation(self) -> dict:
        """Aggregate NIC busy time (seconds) for reporting."""
        return {
            "tx_busy": sum(r.busy_time for r in self.nic_tx),
            "rx_busy": sum(r.busy_time for r in self.nic_rx),
            "remote_packets": self.remote_packets,
            "remote_bytes": self.remote_bytes,
            "local_packets": self.local_packets,
            "local_bytes": self.local_bytes,
        }
