"""Ready-made machine configurations.

``quartz_like`` mirrors the evaluation platform of the paper (LLNL
*Quartz*: 36 cores/node, Omni-Path, MVAPICH 2.3 with a 16 KiB eager
threshold).  The smaller presets are what the test-suite and the scaled
benchmark sweeps use; they keep the same *network model* and shrink only
the core count so simulations stay fast.
"""

from __future__ import annotations

from .netmodel import ComputeModel, NetworkModel
from .topology import MachineConfig

#: The calibrated Omni-Path-like network model (Fig 5 shape).
QUARTZ_NET = NetworkModel()

#: Default application compute-cost model.
DEFAULT_COMPUTE = ComputeModel()


def quartz_like(nodes: int, cores_per_node: int = 36, **net_overrides) -> MachineConfig:
    """A Quartz-like machine: 36 cores/node, Omni-Path-like network."""
    net = QUARTZ_NET.with_overrides(**net_overrides) if net_overrides else QUARTZ_NET
    return MachineConfig(
        nodes=nodes, cores_per_node=cores_per_node, net=net, compute=DEFAULT_COMPUTE
    )


def bench_machine(nodes: int, cores_per_node: int = 8, **net_overrides) -> MachineConfig:
    """The scaled-down benchmark machine (8 cores/node by default).

    Same network model as :func:`quartz_like`; only the node width is
    reduced so that rank counts stay tractable for the DES.
    """
    net = QUARTZ_NET.with_overrides(**net_overrides) if net_overrides else QUARTZ_NET
    return MachineConfig(
        nodes=nodes, cores_per_node=cores_per_node, net=net, compute=DEFAULT_COMPUTE
    )


def small(nodes: int = 2, cores_per_node: int = 2, **net_overrides) -> MachineConfig:
    """A tiny machine for unit tests."""
    net = QUARTZ_NET.with_overrides(**net_overrides) if net_overrides else QUARTZ_NET
    return MachineConfig(
        nodes=nodes, cores_per_node=cores_per_node, net=net, compute=DEFAULT_COMPUTE
    )
