"""The simulated distributed machine: addressing, network model, NICs.

This package stands in for the paper's physical platform (LLNL *Quartz*).
See DESIGN.md section 1 for the substitution rationale.
"""

from .address import Addr, addr_of, core_of, layer_of, node_of, rank_of, same_node
from .netmodel import GiB, KiB, MiB, ComputeModel, NetworkModel
from .presets import bench_machine, quartz_like, small
from .topology import Machine, MachineConfig

__all__ = [
    "Addr",
    "ComputeModel",
    "GiB",
    "KiB",
    "Machine",
    "MachineConfig",
    "MiB",
    "NetworkModel",
    "addr_of",
    "bench_machine",
    "core_of",
    "layer_of",
    "node_of",
    "quartz_like",
    "rank_of",
    "same_node",
    "small",
]
