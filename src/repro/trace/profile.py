"""Causal message-lineage profiler (the "why", not just the "what").

The base tracer (:mod:`repro.trace.tracer`) records *that* events
happened; this module records *which message caused which*.  When a
:class:`LineageProfiler` is installed (``Tracer(profile=True)``), every
application-level send gets a **lineage id** that is carried through
coalescing buffers, routing intermediaries (NoRoute / NL / NR / NLNR
forwarding hops) and packet transmission, producing a causal DAG from
injection to final delivery:

* ``new_message`` / ``new_batch`` allocate lineage ids at injection and
  link each message to the message whose delivery callback posted it
  (the *causal parent*);
* ``enqueue`` marks a message entering a coalescing buffer on some rank
  bound for a next hop; ``packet_out`` snapshots which lineage ids left
  in which transport packet;
* the machine layer stamps each packet's transmission stages
  (``packet_wire`` / ``packet_rx`` / ``packet_delivered``);
* ``delivered`` marks the final receive-callback invocation;
* ``span`` classifies a rank's simulated time into attribution buckets
  (serialize / nic / handler / term / idle; the remainder is
  application compute + injection).

Recording is **strictly read-only with respect to the simulation**: every
hook only reads ``sim.now`` and appends to host-side lists -- no events,
no simulated cost, no randomness -- so a profiled run is bit-identical
to an unprofiled one (``tests/trace/test_noperturb.py``).  All hooks are
guarded by a cached ``is None`` check at the call site, so with
profiling disabled the cost is a single attribute load.

:func:`analyze_profile` turns the raw logs into a :class:`SchemeProfile`:
the critical dependency chain to quiescence with a per-edge stage
breakdown, per-rank time attribution, and per-hop latency histograms.
:mod:`repro.trace.profile_report` renders these into a self-contained
HTML report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

#: Stage names of a critical-path edge, in pipeline order.
STAGES = (
    "compute",     # causal gap: handler/application compute between messages
    "serialize",   # flush-time packing cost (per_message_queue)
    "queue",       # waiting in a coalescing buffer for the flush
    "nic_wait",    # queueing for a busy NIC engine (tx or rx side)
    "nic",         # NIC occupancy + per-packet core overheads
    "wire",        # pure wire delay (plus rendezvous handshake)
    "local",       # shared-memory copy of an on-node hop
    "deliver",     # arrived at the hop target, waiting to be processed
    "term_tail",   # from the last delivery to detected quiescence
)

#: Per-rank time-attribution buckets (``inject`` is the remainder:
#: application compute plus message generation).
BUCKETS = ("inject", "serialize", "nic", "handler", "term", "idle")

# Indexes into a packet record (see LineageProfiler.packet_out).
_P_SRC, _P_DST, _P_NBYTES, _P_COUNT, _P_SER = 0, 1, 2, 3, 4
_P_OUT, _P_WIRE, _P_RX, _P_DELIVER, _P_LOCAL, _P_FREE = 5, 6, 7, 8, 9, 10


class LineageProfiler:
    """Append-only lineage and time-attribution logs.

    Instances are installed on a :class:`~repro.trace.tracer.Tracer` via
    ``Tracer(profile=True)`` and cached by the instrumented layers; every
    method is a plain append (vectorized for the batch path) and charges
    zero simulated cost.
    """

    __slots__ = (
        "msgs",
        "batch_msgs",
        "enq",
        "enq_batch",
        "packets",
        "pkt_members",
        "deliveries",
        "batch_deliveries",
        "spans",
        "cause",
        "_next",
    )

    def __init__(self) -> None:
        #: Scalar messages: ``(lid, src, dest, t_inject, parent, kind)``.
        self.msgs: List[Tuple] = []
        #: Batch injections: ``(lid0, src, dests_array, t_inject, parent)``
        #: covering lineage ids ``lid0 .. lid0+len(dests)-1``.
        self.batch_msgs: List[Tuple] = []
        #: Buffer enqueues: ``(lid, rank, hop, t)``.
        self.enq: List[Tuple] = []
        #: Vectorized buffer enqueues: ``(lids_array, rank, hop, t)``.
        self.enq_batch: List[Tuple] = []
        #: Per-packet records (mutable lists indexed by the ``_P_*``
        #: constants); the packet id is the list index.
        self.packets: List[list] = []
        #: Per-packet lineage membership (ints and/or id arrays).
        self.pkt_members: List[list] = []
        #: Final deliveries: ``(lid, rank, t)``.
        self.deliveries: List[Tuple] = []
        #: Vectorized final deliveries: ``(lids_array, rank, t)``.
        self.batch_deliveries: List[Tuple] = []
        #: Rank time attribution: ``(rank, bucket, t0, t1)``.
        self.spans: List[Tuple] = []
        #: Lineage id whose delivery callback is currently running; new
        #: messages posted from inside a callback get it as their causal
        #: parent.
        self.cause: Optional[int] = None
        self._next = 0

    # -- injection ---------------------------------------------------------
    def new_message(
        self,
        src: int,
        dest: int,
        t: float,
        kind: str = "p2p",
        parent: Optional[int] = None,
    ) -> int:
        """Allocate a lineage id for one injected message."""
        lid = self._next
        self._next = lid + 1
        if parent is None:
            parent = self.cause
        self.msgs.append((lid, src, dest, t, parent, kind))
        return lid

    def new_batch(self, src: int, dests: np.ndarray, t: float) -> np.ndarray:
        """Allocate a contiguous lineage-id block for a record batch."""
        n = len(dests)
        lid0 = self._next
        self._next = lid0 + n
        # Copy: the caller's dests array is masked/reordered in place by
        # the mailbox after this call.
        self.batch_msgs.append((lid0, src, np.array(dests, dtype=np.int64), t, self.cause))
        return np.arange(lid0, lid0 + n, dtype=np.int64)

    # -- coalescing --------------------------------------------------------
    def enqueue(self, lid: int, rank: int, hop: int, t: float) -> None:
        self.enq.append((lid, rank, hop, t))

    def enqueue_batch(self, lids: np.ndarray, rank: int, hop: int, t: float) -> None:
        self.enq_batch.append((lids, rank, hop, t))

    # -- transport ---------------------------------------------------------
    def packet_out(
        self,
        src: int,
        dst: int,
        nbytes: int,
        count: int,
        t: float,
        serialize: float,
        entries: List[Any],
    ) -> int:
        """Record a flushed packet; snapshots its lineage membership.

        Called before the entries list is handed to the transport (it is
        recycled after delivery, so membership must be copied now).
        """
        pid = len(self.packets)
        members: List[Any] = []
        for e in entries:
            kind = e.kind
            if kind == "batch" or kind == "p2p_cols":
                # Columnar entries carry a parallel lineage-id column;
                # snapshot the whole array (the lins arrays are never
                # mutated in place, so no copy is needed).
                if e.lins is not None:
                    members.append(e.lins)
            elif e.lin is not None:
                members.append(e.lin)
        self.packets.append(
            [src, dst, nbytes, count, serialize, t,
             float("nan"), float("nan"), float("nan"), False, False]
        )
        self.pkt_members.append(members)
        return pid

    def packet_free_local(self, pid: int, t: float) -> None:
        """A zero-cost on-node hand-off (hybrid free local hop)."""
        rec = self.packets[pid]
        rec[_P_LOCAL] = rec[_P_FREE] = True
        rec[_P_DELIVER] = t

    def packet_wire(self, pid: int, t: float) -> None:
        """Sender side paid (overhead + TX NIC); packet is on the wire."""
        self.packets[pid][_P_WIRE] = t

    def packet_rx(self, pid: int, t: float) -> None:
        """Wire delay elapsed; packet queueing for the RX NIC."""
        self.packets[pid][_P_RX] = t

    def packet_delivered(self, pid: int, t: float, local: bool = False) -> None:
        """Packet handed to the destination rank's inbox."""
        rec = self.packets[pid]
        rec[_P_LOCAL] = local
        rec[_P_DELIVER] = t

    # -- delivery ----------------------------------------------------------
    def delivered(self, lid: int, rank: int, t: float) -> None:
        self.deliveries.append((lid, rank, t))

    def delivered_batch(self, lids: np.ndarray, rank: int, t: float) -> None:
        self.batch_deliveries.append((lids, rank, t))

    # -- time attribution --------------------------------------------------
    def span(self, rank: int, bucket: str, t0: float, t1: float) -> None:
        if t1 > t0:
            self.spans.append((rank, bucket, t0, t1))


# ---------------------------------------------------------------------------
# Post-hoc analysis
# ---------------------------------------------------------------------------


@dataclass
class SchemeProfile:
    """Causal-profile analysis of one run under one routing scheme."""

    scheme: str
    elapsed: float
    nranks: int
    messages: int
    packets: int
    #: Critical dependency chain, injection-order.  Each step:
    #: ``{lid, kind, src, dest, inject, handled, gap, hops: [...]}`` with
    #: per-hop ``{from, to, pid, nbytes, local, stages: {...}}``.
    critical_path: List[dict] = field(default_factory=list)
    #: Seconds of the run attributed to each stage along the chain
    #: (sums to ``elapsed`` up to float error -- the chain is anchored at
    #: t=0 and extended to quiescence by ``term_tail``).
    cp_stages: Dict[str, float] = field(default_factory=dict)
    #: Fraction of the run the chain spends in communication stages
    #: (everything except ``compute`` and ``term_tail``).
    comm_share: float = 0.0
    #: Per-rank attributed seconds: ``[{rank, total, <buckets...>}]``.
    rank_buckets: List[Dict[str, float]] = field(default_factory=list)
    #: Machine-wide bucket totals (seconds).
    bucket_totals: Dict[str, float] = field(default_factory=dict)
    #: Per-hop latency histograms ``{"local"|"remote": [(label, count)]}``.
    hop_latency: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "elapsed": self.elapsed,
            "nranks": self.nranks,
            "messages": self.messages,
            "packets": self.packets,
            "critical_path": self.critical_path,
            "cp_stages": self.cp_stages,
            "comm_share": self.comm_share,
            "rank_buckets": self.rank_buckets,
            "bucket_totals": self.bucket_totals,
            "hop_latency": {
                k: [[label, count] for label, count in v]
                for k, v in self.hop_latency.items()
            },
        }


def _expand_messages(prof: LineageProfiler) -> Dict[int, Tuple]:
    """Flatten scalar + batch injections to ``lid -> (src, dest, t, parent, kind)``."""
    msgs: Dict[int, Tuple] = {}
    for lid, src, dest, t, parent, kind in prof.msgs:
        msgs[lid] = (src, dest, t, parent, kind)
    for lid0, src, dests, t, parent in prof.batch_msgs:
        for i, d in enumerate(np.asarray(dests).tolist()):
            msgs[lid0 + i] = (src, int(d), t, parent, "batch")
    return msgs


def _expand_per_lid_events(prof: LineageProfiler):
    """Chronological per-lid enqueue and packet-membership sequences."""
    enq: Dict[int, List[Tuple]] = {}
    seq = 0
    merged: List[Tuple] = []
    for lid, rank, hop, t in prof.enq:
        merged.append((t, seq, lid, rank, hop))
        seq += 1
    for lids, rank, hop, t in prof.enq_batch:
        for lid in np.asarray(lids).tolist():
            merged.append((t, seq, lid, rank, hop))
            seq += 1
    merged.sort(key=lambda r: (r[0], r[1]))
    for t, _seq, lid, rank, hop in merged:
        enq.setdefault(lid, []).append((t, rank, hop))

    membership: Dict[int, List[int]] = {}
    for pid, members in enumerate(prof.pkt_members):
        for m in members:
            if isinstance(m, (int, np.integer)):
                membership.setdefault(int(m), []).append(pid)
            else:
                for lid in np.asarray(m).tolist():
                    membership.setdefault(lid, []).append(pid)
    return enq, membership


def _expand_deliveries(prof: LineageProfiler) -> Dict[int, Tuple]:
    handled: Dict[int, Tuple] = {}
    for lid, rank, t in prof.deliveries:
        handled[lid] = (rank, t)
    for lids, rank, t in prof.batch_deliveries:
        for lid in np.asarray(lids).tolist():
            handled[lid] = (rank, t)
    return handled


def _hop_stages(pkt: list, t_enq: float, t_next: float, net) -> Dict[str, float]:
    """Decompose one hop of one message into stage durations.

    ``t_next`` is when the hop target *processed* the message (re-enqueued
    it, or ran the delivery callback).
    """
    serialize = pkt[_P_SER]
    t_out = pkt[_P_OUT]
    t_deliver = pkt[_P_DELIVER]
    stages = dict.fromkeys(
        ("serialize", "queue", "nic_wait", "nic", "wire", "local", "deliver"), 0.0
    )
    stages["serialize"] = serialize
    stages["queue"] = max(0.0, (t_out - t_enq) - serialize)
    if pkt[_P_FREE]:
        pass  # zero-cost pointer hand-off
    elif pkt[_P_LOCAL]:
        stages["local"] = max(0.0, t_deliver - t_out)
    else:
        nbytes = pkt[_P_NBYTES]
        nic_t = net.nic_time(nbytes)
        tx_span = pkt[_P_WIRE] - t_out
        rx_span = t_deliver - pkt[_P_RX]
        wait_tx = max(0.0, tx_span - net.send_overhead - nic_t)
        wait_rx = max(0.0, rx_span - nic_t - net.recv_overhead)
        stages["nic_wait"] = wait_tx + wait_rx
        stages["nic"] = max(0.0, (tx_span - wait_tx) + (rx_span - wait_rx))
        stages["wire"] = max(0.0, pkt[_P_RX] - pkt[_P_WIRE])
    stages["deliver"] = max(0.0, t_next - t_deliver)
    return stages


def _histogram(latencies: List[float]) -> List[Tuple[str, int]]:
    """Geometric (power-of-two microsecond) latency histogram."""
    if not latencies:
        return []
    arr = np.asarray(latencies) * 1e6  # -> microseconds
    edges = [0.0]
    top = max(1.0, float(arr.max()))
    e = 0.5
    while e < top:
        edges.append(e)
        e *= 2.0
    edges.append(top + 1e-12)
    counts, _ = np.histogram(arr, bins=edges)
    out = []
    for i, c in enumerate(counts.tolist()):
        lo, hi = edges[i], edges[i + 1]
        out.append((f"{lo:.3g}-{hi:.3g}us", int(c)))
    return out


def analyze_profile(prof, result, config, scheme: str) -> SchemeProfile:
    """Build the causal analysis of one profiled run.

    Parameters
    ----------
    prof:
        The run's :class:`LineageProfiler` (``tracer.lineage``).
    result:
        The :class:`~repro.core.context.YgmResult` of the same run.
    config:
        The :class:`~repro.machine.MachineConfig` the run used (the
        network model decomposes NIC wait from NIC occupancy).
    scheme:
        Routing-scheme name, carried into the report.
    """
    net = config.net
    elapsed = result.elapsed
    msgs = _expand_messages(prof)
    enq, membership = _expand_per_lid_events(prof)
    handled = _expand_deliveries(prof)

    # -- per-message hop chains -------------------------------------------
    hop_chain: Dict[int, List[dict]] = {}
    local_lat: List[float] = []
    remote_lat: List[float] = []
    for lid, enqs in enq.items():
        pids = membership.get(lid, [])
        n = min(len(enqs), len(pids))  # tolerate in-flight tails
        hops = []
        for k in range(n):
            t_enq, rank, hop = enqs[k]
            pkt = prof.packets[pids[k]]
            if k + 1 < n:
                t_next = enqs[k + 1][0]
            elif lid in handled:
                t_next = handled[lid][1]
            else:
                t_next = pkt[_P_DELIVER]
            stages = _hop_stages(pkt, t_enq, t_next, net)
            hops.append(
                {
                    "from": rank,
                    "to": hop,
                    "pid": pids[k],
                    "nbytes": pkt[_P_NBYTES],
                    "local": bool(pkt[_P_LOCAL]),
                    "stages": stages,
                }
            )
            lat = pkt[_P_DELIVER] - t_enq
            if np.isfinite(lat) and lat >= 0:
                (local_lat if pkt[_P_LOCAL] else remote_lat).append(lat)
        hop_chain[lid] = hops

    # -- critical path: walk parents back from the last delivery ----------
    critical_path: List[dict] = []
    cp_stages = dict.fromkeys(STAGES, 0.0)
    if handled:
        last_lid = max(handled, key=lambda lid: (handled[lid][1], lid))
        chain: List[int] = []
        seen = set()
        cur: Optional[int] = last_lid
        while cur is not None and cur in msgs and cur not in seen:
            seen.add(cur)
            chain.append(cur)
            cur = msgs[cur][3]  # parent
        chain.reverse()
        prev_handled = 0.0
        for lid in chain:
            src, dest, t_inject, _parent, kind = msgs[lid]
            t_handled = handled.get(lid, (None, t_inject))[1]
            gap = max(0.0, t_inject - prev_handled)
            hops = hop_chain.get(lid, [])
            step = {
                "lid": lid,
                "kind": kind,
                "src": src,
                "dest": dest,
                "inject": t_inject,
                "handled": t_handled,
                "gap": gap,
                "hops": hops,
            }
            critical_path.append(step)
            cp_stages["compute"] += gap
            for hop in hops:
                for name, dur in hop["stages"].items():
                    cp_stages[name] += dur
            prev_handled = t_handled
        cp_stages["term_tail"] = max(0.0, elapsed - prev_handled)
    comm = sum(
        v for k, v in cp_stages.items() if k not in ("compute", "term_tail")
    )
    comm_share = comm / elapsed if elapsed > 0 else 0.0

    # -- per-rank time attribution ----------------------------------------
    nranks = config.nranks
    per_rank = [dict.fromkeys(BUCKETS, 0.0) for _ in range(nranks)]
    bucket_of = {"serialize": "serialize", "nic": "nic", "handler": "handler",
                 "term": "term", "idle": "idle"}
    for rank, bucket, t0, t1 in prof.spans:
        per_rank[rank][bucket_of.get(bucket, bucket)] += t1 - t0
    rank_rows: List[Dict[str, float]] = []
    bucket_totals = dict.fromkeys(BUCKETS, 0.0)
    for rank in range(nranks):
        finish = result.finish_times[rank]
        total = finish if np.isfinite(finish) else elapsed
        row = per_rank[rank]
        attributed = sum(row.values())
        row["inject"] = max(0.0, total - attributed)
        entry: Dict[str, float] = {"rank": rank, "total": total}
        entry.update(row)
        rank_rows.append(entry)
        for b in BUCKETS:
            bucket_totals[b] += row[b]

    return SchemeProfile(
        scheme=scheme,
        elapsed=elapsed,
        nranks=nranks,
        messages=len(msgs),
        packets=len(prof.packets),
        critical_path=critical_path,
        cp_stages=cp_stages,
        comm_share=comm_share,
        rank_buckets=rank_rows,
        bucket_totals=bucket_totals,
        hop_latency={
            "local": _histogram(local_lat),
            "remote": _histogram(remote_lat),
        },
    )
