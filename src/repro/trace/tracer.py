"""The tracer: an always-available, zero-cost-when-disabled event bus.

Every layer of the stack (DES kernel, machine resources, simulated MPI,
mailboxes) carries optional trace hooks of the form::

    tr = self.sim.tracer
    if tr is not None and tr.wants("mailbox"):
        tr.instant(self.sim.now, "mailbox", "forward", lane, entries=n)

When no tracer is installed (``sim.tracer is None``) the cost of a hook
is a single attribute load and identity check; when one is installed the
hooks only *read* simulated state (``sim.now``, counters) and append to
sink buffers -- they never create events, charge simulated time, or
consume randomness, so an instrumented run is bit-identical to an
untraced one (asserted by ``tests/trace/test_noperturb.py``).

Events are fanned out to pluggable :class:`Sink` objects.  The default
:class:`MemorySink` buffers everything for the post-hoc exporters in
:mod:`repro.trace.chrome` and :mod:`repro.trace.metrics`.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple


class TraceEvent(NamedTuple):
    """One trace record.

    ``ph`` follows the Chrome ``trace_event`` phase vocabulary:
    ``"i"`` instant, ``"X"`` complete (duration) and ``"C"`` counter.
    ``lane`` is the display track: ``"rank <r>"`` for rank timelines,
    the resource name (``"nic_tx[<node>]"`` / ``"nic_rx[<node>]"``) for
    NIC timelines, or a free-form label.
    """

    ts: float  # simulated seconds
    cat: str
    name: str
    ph: str
    lane: str
    dur: float
    args: Optional[Dict[str, object]]


class Sink:
    """Base class for trace sinks (the pluggable output side)."""

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/finalize; called by :meth:`Tracer.close`."""


class MemorySink(Sink):
    """Buffers every event in memory (feeds the exporters)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)


class CallbackSink(Sink):
    """Streams every event to a user callback (e.g. live filtering)."""

    def __init__(self, callback) -> None:
        self.callback = callback

    def record(self, event: TraceEvent) -> None:
        self.callback(event)


def _jsonable(value):
    """Best-effort JSON coercion for event args (numpy scalars, tuples)."""
    item = getattr(value, "item", None)
    if item is not None:  # numpy scalar
        return item()
    return repr(value)


class JsonlSink(Sink):
    """Streams events to a JSON-lines file -- constant memory.

    The in-memory :class:`MemorySink` is unbounded; for long traced runs
    attach a ``JsonlSink`` instead (alone, or alongside a ``MemorySink``)
    and post-process the ``.jsonl`` file.  One JSON object per line with
    the :class:`TraceEvent` fields (``dur``/``args`` omitted when empty).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._file = open(path, "w")
        #: Events written so far.
        self.count = 0

    def record(self, event: TraceEvent) -> None:
        rec: Dict[str, object] = {
            "ts": event.ts,
            "cat": event.cat,
            "name": event.name,
            "ph": event.ph,
            "lane": event.lane,
        }
        if event.dur:
            rec["dur"] = event.dur
        if event.args:
            rec["args"] = event.args
        self._file.write(json.dumps(rec, default=_jsonable))
        self._file.write("\n")
        self.count += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


#: Categories recorded by default: application annotations, mailbox
#: activity (flush/forward/termination/idle), transport packets,
#: resource (NIC) occupancy, host-side job-pool execution records
#: (``repro.exec`` -- per-job queued/started/finished/cache-hit spans;
#: host wall clock, not simulated time), and parallel-DES driver events
#: (``repro.pdes`` -- per-window horizon/barrier records with
#: per-partition progress; simulated time on the window axis).
DEFAULT_CATEGORIES = frozenset({"app", "mailbox", "mpi", "resource", "exec", "pdes"})

#: Everything, including the very chatty per-event kernel dispatch and
#: per-process block/unblock categories.
ALL_CATEGORIES = DEFAULT_CATEGORIES | {"kernel", "process"}


class Tracer:
    """Collects :class:`TraceEvent` records from the instrumented stack.

    Parameters
    ----------
    sinks:
        Output sinks; defaults to a single :class:`MemorySink`.
    categories:
        Enabled event categories (see :data:`DEFAULT_CATEGORIES`).
        Layers skip recording entirely for disabled categories.
    profile:
        Install a :class:`~repro.trace.profile.LineageProfiler` as
        :attr:`lineage`: the instrumented layers then track per-message
        causal lineage, packet transmission stages and per-rank time
        attribution (see :mod:`repro.trace.profile`).  Like the event
        hooks, profiling never perturbs the simulation.
    """

    def __init__(
        self,
        sinks: Optional[Sequence[Sink]] = None,
        categories: Iterable[str] = DEFAULT_CATEGORIES,
        profile: bool = False,
    ) -> None:
        self.sinks: List[Sink] = list(sinks) if sinks is not None else [MemorySink()]
        self.categories = frozenset(categories)
        #: The :class:`~repro.trace.profile.LineageProfiler`, or ``None``.
        #: Layers cache this once at construction; ``None`` keeps every
        #: lineage hook a single attribute check.
        self.lineage = None
        if profile:
            from .profile import LineageProfiler

            self.lineage = LineageProfiler()
        #: Machine shape, filled in by :meth:`bind` when the tracer is
        #: attached to a world; lets exporters synthesize every rank/NIC
        #: lane even if some never emitted an event.
        self.nodes: int = 0
        self.cores_per_node: int = 0
        #: Kernel progress samples ``(sim_time, events_processed,
        #: wall_seconds)``, appended by the run loops every
        #: :data:`~repro.sim.kernel.PROGRESS_SAMPLE_EVERY` events.  The
        #: metrics exporter turns these into per-interval
        #: ``events_per_sec`` / ``wall_ms`` columns.  Wall clock is
        #: host-dependent, so these never participate in determinism
        #: comparisons.
        self.progress_samples: List[Tuple[float, int, float]] = []
        #: Per-worker progress samples from a flight-recorded parallel
        #: run (:mod:`repro.pdes.flight`), keyed ``"worker<p>"``; same
        #: tuple shape as :attr:`progress_samples`.  Filled by
        #: :meth:`~repro.pdes.flight.FlightLog.merge_into_tracer`; the
        #: metrics exporter turns these into per-worker ``rank_group``
        #: rows.
        self.worker_progress: Dict[str, List[Tuple[float, int, float]]] = {}

    # -- wiring ------------------------------------------------------------
    def bind(self, nodes: int, cores_per_node: int) -> None:
        """Record the machine shape this tracer is attached to."""
        self.nodes = nodes
        self.cores_per_node = cores_per_node

    def wants(self, category: str) -> bool:
        """Whether ``category`` events should be recorded."""
        return category in self.categories

    # -- recording ---------------------------------------------------------
    def instant(self, ts: float, cat: str, name: str, lane: str, **args) -> None:
        """A zero-duration marker event."""
        self._record(TraceEvent(ts, cat, name, "i", lane, 0.0, args or None))

    def complete(
        self, ts: float, dur: float, cat: str, name: str, lane: str, **args
    ) -> None:
        """A duration span ``[ts, ts + dur]``."""
        self._record(TraceEvent(ts, cat, name, "X", lane, dur, args or None))

    def progress(self, sim_time: float, steps: int) -> None:
        """Record a kernel wall-clock progress sample (throughput probe).

        Called by the kernel run loops; reads nothing from the
        simulation beyond its clock and step counter, so instrumented
        runs stay bit-identical to untraced ones.
        """
        self.progress_samples.append((sim_time, steps, perf_counter()))

    def counter(self, ts: float, cat: str, name: str, lane: str, value) -> None:
        """A sampled counter value (renders as a counter track)."""
        self._record(TraceEvent(ts, cat, name, "C", lane, 0.0, {"value": value}))

    def _record(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.record(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    # -- access ------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """The buffered events of the first :class:`MemorySink`."""
        for sink in self.sinks:
            if isinstance(sink, MemorySink):
                return sink.events
        configured = ", ".join(type(s).__name__ for s in self.sinks) or "no sinks"
        raise ValueError(
            f"Tracer.events needs a MemorySink, but this tracer has {configured}; "
            "add a MemorySink or read the streaming sink's output (e.g. the "
            "JsonlSink's .jsonl file) instead"
        )

    # -- exporters (convenience wrappers) ------------------------------------
    def export_chrome(self, path: str, extra_events=None) -> None:
        """Write a Chrome ``trace_event`` JSON file (chrome://tracing)."""
        from .chrome import export_chrome

        export_chrome(self, path, extra_events=extra_events)

    def export_metrics(self, path: str, interval: Optional[float] = None):
        """Write the per-interval metrics table as CSV; returns the rows."""
        from .metrics import export_metrics

        return export_metrics(self, path, interval=interval)
