"""The tracer: an always-available, zero-cost-when-disabled event bus.

Every layer of the stack (DES kernel, machine resources, simulated MPI,
mailboxes) carries optional trace hooks of the form::

    tr = self.sim.tracer
    if tr is not None and tr.wants("mailbox"):
        tr.instant(self.sim.now, "mailbox", "forward", lane, entries=n)

When no tracer is installed (``sim.tracer is None``) the cost of a hook
is a single attribute load and identity check; when one is installed the
hooks only *read* simulated state (``sim.now``, counters) and append to
sink buffers -- they never create events, charge simulated time, or
consume randomness, so an instrumented run is bit-identical to an
untraced one (asserted by ``tests/trace/test_noperturb.py``).

Events are fanned out to pluggable :class:`Sink` objects.  The default
:class:`MemorySink` buffers everything for the post-hoc exporters in
:mod:`repro.trace.chrome` and :mod:`repro.trace.metrics`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple


class TraceEvent(NamedTuple):
    """One trace record.

    ``ph`` follows the Chrome ``trace_event`` phase vocabulary:
    ``"i"`` instant, ``"X"`` complete (duration) and ``"C"`` counter.
    ``lane`` is the display track: ``"rank <r>"`` for rank timelines,
    the resource name (``"nic_tx[<node>]"`` / ``"nic_rx[<node>]"``) for
    NIC timelines, or a free-form label.
    """

    ts: float  # simulated seconds
    cat: str
    name: str
    ph: str
    lane: str
    dur: float
    args: Optional[Dict[str, object]]


class Sink:
    """Base class for trace sinks (the pluggable output side)."""

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/finalize; called by :meth:`Tracer.close`."""


class MemorySink(Sink):
    """Buffers every event in memory (feeds the exporters)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)


class CallbackSink(Sink):
    """Streams every event to a user callback (e.g. live filtering)."""

    def __init__(self, callback) -> None:
        self.callback = callback

    def record(self, event: TraceEvent) -> None:
        self.callback(event)


#: Categories recorded by default: application annotations, mailbox
#: activity (flush/forward/termination/idle), transport packets,
#: resource (NIC) occupancy, and host-side job-pool execution records
#: (``repro.exec`` -- per-job queued/started/finished/cache-hit spans;
#: host wall clock, not simulated time).
DEFAULT_CATEGORIES = frozenset({"app", "mailbox", "mpi", "resource", "exec"})

#: Everything, including the very chatty per-event kernel dispatch and
#: per-process block/unblock categories.
ALL_CATEGORIES = DEFAULT_CATEGORIES | {"kernel", "process"}


class Tracer:
    """Collects :class:`TraceEvent` records from the instrumented stack.

    Parameters
    ----------
    sinks:
        Output sinks; defaults to a single :class:`MemorySink`.
    categories:
        Enabled event categories (see :data:`DEFAULT_CATEGORIES`).
        Layers skip recording entirely for disabled categories.
    """

    def __init__(
        self,
        sinks: Optional[Sequence[Sink]] = None,
        categories: Iterable[str] = DEFAULT_CATEGORIES,
    ) -> None:
        self.sinks: List[Sink] = list(sinks) if sinks is not None else [MemorySink()]
        self.categories = frozenset(categories)
        #: Machine shape, filled in by :meth:`bind` when the tracer is
        #: attached to a world; lets exporters synthesize every rank/NIC
        #: lane even if some never emitted an event.
        self.nodes: int = 0
        self.cores_per_node: int = 0
        #: Kernel progress samples ``(sim_time, events_processed,
        #: wall_seconds)``, appended by the run loops every
        #: :data:`~repro.sim.kernel.PROGRESS_SAMPLE_EVERY` events.  The
        #: metrics exporter turns these into per-interval
        #: ``events_per_sec`` / ``wall_ms`` columns.  Wall clock is
        #: host-dependent, so these never participate in determinism
        #: comparisons.
        self.progress_samples: List[Tuple[float, int, float]] = []

    # -- wiring ------------------------------------------------------------
    def bind(self, nodes: int, cores_per_node: int) -> None:
        """Record the machine shape this tracer is attached to."""
        self.nodes = nodes
        self.cores_per_node = cores_per_node

    def wants(self, category: str) -> bool:
        """Whether ``category`` events should be recorded."""
        return category in self.categories

    # -- recording ---------------------------------------------------------
    def instant(self, ts: float, cat: str, name: str, lane: str, **args) -> None:
        """A zero-duration marker event."""
        self._record(TraceEvent(ts, cat, name, "i", lane, 0.0, args or None))

    def complete(
        self, ts: float, dur: float, cat: str, name: str, lane: str, **args
    ) -> None:
        """A duration span ``[ts, ts + dur]``."""
        self._record(TraceEvent(ts, cat, name, "X", lane, dur, args or None))

    def progress(self, sim_time: float, steps: int) -> None:
        """Record a kernel wall-clock progress sample (throughput probe).

        Called by the kernel run loops; reads nothing from the
        simulation beyond its clock and step counter, so instrumented
        runs stay bit-identical to untraced ones.
        """
        self.progress_samples.append((sim_time, steps, perf_counter()))

    def counter(self, ts: float, cat: str, name: str, lane: str, value) -> None:
        """A sampled counter value (renders as a counter track)."""
        self._record(TraceEvent(ts, cat, name, "C", lane, 0.0, {"value": value}))

    def _record(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.record(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    # -- access ------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """The buffered events of the first :class:`MemorySink`."""
        for sink in self.sinks:
            if isinstance(sink, MemorySink):
                return sink.events
        raise ValueError("tracer has no MemorySink; use a streaming sink's output")

    # -- exporters (convenience wrappers) ------------------------------------
    def export_chrome(self, path: str) -> None:
        """Write a Chrome ``trace_event`` JSON file (chrome://tracing)."""
        from .chrome import export_chrome

        export_chrome(self, path)

    def export_metrics(self, path: str, interval: Optional[float] = None):
        """Write the per-interval metrics table as CSV; returns the rows."""
        from .metrics import export_metrics

        return export_metrics(self, path, interval=interval)
