"""Chrome ``trace_event`` JSON exporter.

Produces a file loadable in ``chrome://tracing`` or Perfetto with one
timeline lane per rank (pid "ranks") and one per NIC engine (pid "nic"):
rank lanes carry mailbox flushes, idle intervals, packet
injection/delivery markers and unexpected-queue counters; NIC lanes carry
occupancy holds and queue-depth counters.

Timestamps are converted from simulated seconds to the format's
microseconds.  The format reference is the "Trace Event Format" document
(the JSON array-of-events flavour, ``{"traceEvents": [...]}``).

Clock domains: almost every category carries *simulated* time, but the
``exec`` category (host-side job-pool records from :mod:`repro.exec`)
carries host wall-clock seconds since pool start.  Interleaving the two
on one timeline would be meaningless, so ``exec`` events are exported to
their own process group (``host (wall clock)``, pid
:data:`PID_HOST`) instead of the simulated-time groups.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Tuple

from .tracer import Tracer

#: pid values for the lane groups.  The first three carry simulated
#: time; PID_HOST is the separate host wall-clock domain (``exec``).
PID_RANKS = 1
PID_NIC = 2
PID_OTHER = 3
PID_HOST = 4

_RANK_RE = re.compile(r"^rank (\d+)$")
_NIC_RE = re.compile(r"^nic_(tx|rx)\[(\d+)\]$")


def _lane_pid_tid(lane: str, other_tids: Dict[str, int]) -> Tuple[int, int]:
    """Map a lane label onto a stable (pid, tid) pair."""
    m = _RANK_RE.match(lane)
    if m:
        return PID_RANKS, int(m.group(1))
    m = _NIC_RE.match(lane)
    if m:
        # tx engines on even tids, rx on odd: nic_tx[n] -> 2n, nic_rx[n] -> 2n+1.
        return PID_NIC, 2 * int(m.group(2)) + (0 if m.group(1) == "tx" else 1)
    tid = other_tids.setdefault(lane, len(other_tids))
    return PID_OTHER, tid


def _metadata(pid: int, name: str, tid: int = 0, kind: str = "process_name") -> dict:
    return {
        "name": kind,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def to_chrome_events(tracer: Tracer) -> List[dict]:
    """Convert the tracer's buffered events to trace_event dicts."""
    other_tids: Dict[str, int] = {}
    host_tids: Dict[str, int] = {}
    out: List[dict] = [
        _metadata(PID_RANKS, "ranks"),
        _metadata(PID_NIC, "nic"),
        _metadata(PID_OTHER, "sim"),
        _metadata(PID_HOST, "host (wall clock)"),
    ]
    # Synthesize every rank/NIC lane from the bound machine shape so the
    # timeline is complete even for lanes that never emitted an event.
    for rank in range(tracer.nodes * tracer.cores_per_node):
        out.append(_metadata(PID_RANKS, f"rank {rank}", tid=rank, kind="thread_name"))
    for node in range(tracer.nodes):
        out.append(
            _metadata(PID_NIC, f"nic_tx[{node}]", tid=2 * node, kind="thread_name")
        )
        out.append(
            _metadata(PID_NIC, f"nic_rx[{node}]", tid=2 * node + 1, kind="thread_name")
        )
    seen_lanes = set()
    for ev in tracer.events:
        if ev.cat == "exec":
            # Host wall-clock domain: never interleave with simulated time.
            tid = host_tids.setdefault(ev.lane, len(host_tids))
            pid = PID_HOST
            if ("host", ev.lane) not in seen_lanes:
                seen_lanes.add(("host", ev.lane))
                out.append(
                    _metadata(PID_HOST, ev.lane, tid=tid, kind="thread_name")
                )
        else:
            pid, tid = _lane_pid_tid(ev.lane, other_tids)
            if pid == PID_OTHER and ev.lane not in seen_lanes:
                seen_lanes.add(ev.lane)
                out.append(_metadata(PID_OTHER, ev.lane, tid=tid, kind="thread_name"))
        rec: dict = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": ev.ph,
            "ts": ev.ts * 1e6,  # simulated seconds -> microseconds
            "pid": pid,
            "tid": tid,
        }
        if ev.ph == "X":
            rec["dur"] = ev.dur * 1e6
        elif ev.ph == "i":
            rec["s"] = "t"  # thread-scoped instant
        if ev.args:
            rec["args"] = ev.args
        out.append(rec)
    return out


def export_chrome(tracer: Tracer, path: str, extra_events=None) -> None:
    """Write ``path`` as a Chrome trace_event JSON object.

    ``extra_events`` are pre-built trace_event dicts appended verbatim
    after the tracer's own events -- the flight recorder uses this to
    add its per-worker host wall-clock process groups
    (:meth:`repro.pdes.flight.FlightLog.to_chrome_events`).
    """
    events = to_chrome_events(tracer)
    if extra_events:
        events.extend(extra_events)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as f:
        json.dump(doc, f)
