"""Self-contained HTML (and JSON) rendering of PDES overhead attribution.

:func:`write_report` takes the attribution document produced by
:meth:`repro.pdes.flight.FlightLog.attribution` and writes

* a machine-readable JSON document (``schema`` versioned), and
* a single-file HTML report with **no external assets** (inline CSS,
  inline SVG, same discipline as :mod:`repro.trace.profile_report`):
  per-worker and driver wall-clock tilings as stacked share bars, the
  measured serial-equivalent fraction, ring telemetry (always-on
  :class:`~repro.pdes.rings.RingStats` counters plus the per-round
  series) and the run's window-protocol facts.

:func:`validate` is the schema check the CI ``pdes-observability`` job
and the test suite share: it asserts the document shape, that every
process's phase buckets tile at least :data:`MIN_COVERAGE` of its
measured wall-clock span, and that the serial-equivalent fraction is a
sane probability.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List

#: JSON document schema version.
SCHEMA = 1

#: Minimum fraction of a process's wall-clock span its phase buckets
#: must explain for the document to validate (the remainder is loop
#: bookkeeping between clock reads).
MIN_COVERAGE = 0.95

#: Worker phase buckets, pipeline order (mirrors
#: :data:`repro.pdes.flight.WORKER_PHASES`; duplicated here so the
#: report layer does not import the engine).
WORKER_BUCKETS = (
    "compute",
    "export-serialize",
    "ring-push",
    "barrier-wait",
    "import-drain",
)

#: Driver phase buckets (mirrors :data:`repro.pdes.flight.DRIVER_PHASES`).
DRIVER_BUCKETS = ("horizon", "fan-in", "re-inject")

#: Phase colors (colorblind-safe-ish categorical palette; ``compute``
#: shares the profile report's compute blue on purpose).
_COLORS = {
    "compute": "#4477aa",
    "export-serialize": "#66ccee",
    "ring-push": "#aa3377",
    "barrier-wait": "#dddddd",
    "import-drain": "#ff9955",
    "horizon": "#228833",
    "fan-in": "#ccbb44",
    "re-inject": "#ee6677",
    "other": "#f7f7f7",
}

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 24px auto; max-width: 1100px; color: #1c1c1c; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 1.6em; }
h3 { font-size: 1.0em; margin-bottom: 0.3em; }
table { border-collapse: collapse; margin: 8px 0 16px; font-size: 0.85em; }
th, td { border: 1px solid #ccc; padding: 3px 8px; text-align: right; }
th { background: #f2f2f2; } td.l, th.l { text-align: left; }
.bar { display: flex; height: 16px; width: 100%; max-width: 720px;
       border: 1px solid #aaa; margin: 2px 0; }
.bar div { height: 100%; }
.strip { display: flex; align-items: center; margin: 1px 0; }
.strip .lbl { width: 86px; font-size: 0.75em; color: #555; }
.legend { font-size: 0.8em; margin: 6px 0; }
.legend span { display: inline-block; margin-right: 12px; }
.legend i { display: inline-block; width: 10px; height: 10px;
            margin-right: 4px; border: 1px solid #888; }
.big { font-size: 1.3em; font-weight: 600; }
.note { color: #666; font-size: 0.8em; }
"""


class AttributionError(ValueError):
    """The attribution document failed schema validation."""


def validate(doc: dict) -> None:
    """Assert ``doc`` is a well-formed attribution document.

    Raises :class:`AttributionError` naming the first violation; used
    by the tests and the CI ``pdes-observability`` validation step.
    """
    if doc.get("schema") != SCHEMA:
        raise AttributionError(f"schema {doc.get('schema')!r} != {SCHEMA}")
    if doc.get("kind") != "pdes-attribution":
        raise AttributionError(f"kind {doc.get('kind')!r}")
    drv = doc.get("driver") or {}
    for key in ("span_s", "wall_s", "coverage", "buckets"):
        if key not in drv:
            raise AttributionError(f"driver missing {key!r}")
    if set(drv["buckets"]) != set(DRIVER_BUCKETS):
        raise AttributionError(
            f"driver buckets {sorted(drv['buckets'])} != "
            f"{sorted(DRIVER_BUCKETS)}"
        )
    if not drv["coverage"] >= MIN_COVERAGE:
        raise AttributionError(
            f"driver buckets tile only {drv['coverage']:.1%} of the span "
            f"(need >= {MIN_COVERAGE:.0%})"
        )
    workers = doc.get("workers")
    if not workers:
        raise AttributionError("no worker tilings")
    for w in workers:
        label = f"worker {w.get('part')}"
        if set(w.get("buckets", ())) != set(WORKER_BUCKETS):
            raise AttributionError(
                f"{label} buckets {sorted(w.get('buckets', ()))} != "
                f"{sorted(WORKER_BUCKETS)}"
            )
        if not w["coverage"] >= MIN_COVERAGE:
            raise AttributionError(
                f"{label} buckets tile only {w['coverage']:.1%} of the "
                f"span (need >= {MIN_COVERAGE:.0%})"
            )
        for value in w["buckets"].values():
            if value < 0:
                raise AttributionError(f"{label} has a negative bucket")
    frac = (doc.get("serial_equivalent") or {}).get("fraction")
    if frac is None or not 0.0 <= frac <= 1.0 + 1e-9:
        raise AttributionError(f"serial-equivalent fraction {frac!r}")
    if not isinstance(doc.get("rounds"), list):
        raise AttributionError("missing per-round ring telemetry series")


# -- HTML ---------------------------------------------------------------------
def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def _legend(keys) -> str:
    parts = [
        f'<span><i style="background:{_COLORS.get(k, "#888")}"></i>'
        f"{html.escape(k)}</span>"
        for k in keys
    ]
    return f'<div class="legend">{"".join(parts)}</div>'


def _share_bar(parts: Dict[str, float], total: float, title: str = "") -> str:
    if total <= 0:
        return '<div class="bar"></div>'
    cells = []
    for name, value in parts.items():
        if value <= 0:
            continue
        pct = 100.0 * value / total
        if pct < 0.05:
            continue
        tip = f"{html.escape(name)}: {_fmt_ms(value)}ms ({pct:.1f}%)"
        cells.append(
            f'<div style="width:{pct:.2f}%;'
            f'background:{_COLORS.get(name, "#888")}" title="{tip}"></div>'
        )
    return f'<div class="bar" title="{html.escape(title)}">{"".join(cells)}</div>'


def _tiling_strip(label: str, tile: dict, buckets) -> str:
    parts = {b: tile["buckets"].get(b, 0.0) for b in buckets}
    explained = sum(parts.values())
    span = tile["span_s"]
    if span > explained:
        parts["other"] = span - explained
    bar = _share_bar(parts, span, title=label)
    return (
        f'<div class="strip"><span class="lbl">{html.escape(label)}</span>'
        f"{bar}</div>"
    )


def _bucket_table(doc: dict) -> str:
    head = (
        "<tr><th class='l'>process</th><th>span (ms)</th>"
        + "".join(f"<th>{html.escape(b)}</th>" for b in WORKER_BUCKETS)
        + "<th>coverage</th></tr>"
    )
    rows = []
    for w in doc["workers"]:
        cells = "".join(
            f"<td>{_fmt_ms(w['buckets'][b])}</td>" for b in WORKER_BUCKETS
        )
        rows.append(
            f"<tr><td class='l'>worker {w['part']}</td>"
            f"<td>{_fmt_ms(w['span_s'])}</td>{cells}"
            f"<td>{w['coverage'] * 100:.1f}%</td></tr>"
        )
    return f"<table>{head}{''.join(rows)}</table>"


def _driver_table(doc: dict) -> str:
    drv = doc["driver"]
    head = (
        "<tr><th class='l'>process</th><th>span (ms)</th>"
        + "".join(f"<th>{html.escape(b)}</th>" for b in DRIVER_BUCKETS)
        + "<th>coverage</th></tr>"
    )
    cells = "".join(
        f"<td>{_fmt_ms(drv['buckets'][b])}</td>" for b in DRIVER_BUCKETS
    )
    row = (
        f"<tr><td class='l'>driver</td><td>{_fmt_ms(drv['span_s'])}</td>"
        f"{cells}<td>{drv['coverage'] * 100:.1f}%</td></tr>"
    )
    return f"<table>{head}{row}</table>"


def _ring_table(doc: dict) -> str:
    rows = []
    for w in doc["workers"]:
        ring = w.get("ring") or {}
        exp = ring.get("exports")
        if exp is None:
            continue
        rows.append(
            f"<tr><td class='l'>worker {w['part']}</td>"
            f"<td>{exp['pushes']}</td><td>{exp['bytes_pushed']}</td>"
            f"<td>{exp['high_water']}</td><td>{exp['spills']}</td>"
            f"<td>{exp['fence_errors']}</td></tr>"
        )
    if not rows:
        return (
            '<p class="note">No ring telemetry (pipe transport or a '
            "single partition).</p>"
        )
    head = (
        "<tr><th class='l'>export ring</th><th>batches</th><th>bytes</th>"
        "<th>high-water (B)</th><th>spills</th><th>fence errors</th></tr>"
    )
    return f"<table>{head}{''.join(rows)}</table>"


def _rounds_svg(doc: dict) -> str:
    """Per-round exported-packet counts as a tiny inline-SVG series."""
    rounds: List[dict] = doc.get("rounds") or []
    if len(rounds) < 2:
        return '<p class="note">Too few rounds for a series.</p>'
    values = [row.get("exports", 0) for row in rounds]
    peak = max(values) or 1
    width, height = 720, 80
    n = len(values)
    bw = max(1.0, width / n - 1.0)
    bars = []
    for i, v in enumerate(values):
        h = round((height - 16) * v / peak, 1)
        x = round(i * width / n, 1)
        k = rounds[i].get("k", 1)
        bars.append(
            f'<rect x="{x}" y="{height - h}" width="{bw}" height="{h}" '
            f'fill="#4477aa"><title>round {rounds[i]["round"]}: {v} '
            f"export(s), K={k}</title></rect>"
        )
    return (
        f'<svg width="{width}" height="{height}" role="img">{"".join(bars)}'
        f"</svg>"
        f'<p class="note">{n} barrier rounds; bar height = exported '
        f"packets per round (peak {peak}).</p>"
    )


def _meta_table(meta: dict) -> str:
    keys = (
        "workers", "transport", "nodes", "cores_per_node", "rounds",
        "window_batch", "max_window_batch", "exported_packets",
        "spilled_batches", "lookahead", "elapsed_sim",
    )
    cells = "".join(
        f"<tr><td class='l'>{html.escape(k)}</td>"
        f"<td>{html.escape(str(meta.get(k)))}</td></tr>"
        for k in keys
        if k in meta
    )
    return f"<table><tr><th class='l'>run</th><th>value</th></tr>{cells}</table>"


def render_html(doc: dict) -> str:
    """Render the attribution document as one self-contained HTML page."""
    se = doc["serial_equivalent"]
    meta = doc.get("meta", {})
    title = (
        f"PDES overhead attribution: {meta.get('workers', '?')} workers, "
        f"{meta.get('transport', '?')} transport"
    )
    body = [
        f"<h1>{html.escape(title)}</h1>",
        '<p class="note">Host wall-clock tiling of one flight-recorded '
        "parallel-DES run (repro.pdes.flight).  Worker spans are "
        "clock-aligned via the handshake offset estimate; all times are "
        "milliseconds of host wall clock, not simulated time.</p>",
        "<h2>Serial-equivalent fraction</h2>",
        f'<p><span class="big">{se["fraction"] * 100:.1f}%</span> of the '
        f'run\'s {_fmt_ms(se["wall_s"])}ms wall-clock span was serial-'
        f'equivalent compute ({_fmt_ms(se["compute_s"])}ms summed across '
        f"workers); the rest is partitioning overhead -- serialization, "
        f"ring traffic, barriers and driver fan-in.</p>",
        "<h2>Worker wall-clock tiling</h2>",
        _legend(WORKER_BUCKETS + ("other",)),
    ]
    for w in doc["workers"]:
        body.append(
            _tiling_strip(f"worker {w['part']}", w, WORKER_BUCKETS)
        )
    body.append(_bucket_table(doc))
    body.append("<h2>Driver wall-clock tiling</h2>")
    body.append(_legend(DRIVER_BUCKETS + ("other",)))
    body.append(_tiling_strip("driver", doc["driver"], DRIVER_BUCKETS))
    body.append(_driver_table(doc))
    body.append(
        '<p class="note">fan-in includes the wait for barrier reports: '
        "on one CPU that is the price of the single-threaded export "
        "fan-in design.</p>"
    )
    body.append("<h2>Ring telemetry</h2>")
    body.append(_ring_table(doc))
    body.append(_rounds_svg(doc))
    body.append("<h2>Run facts</h2>")
    body.append(_meta_table(meta))
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        + "".join(body)
        + "</body></html>\n"
    )


def write_report(doc: dict, html_path: str, json_path: str) -> None:
    """Validate ``doc`` and write the JSON + HTML report pair."""
    validate(doc)
    with open(json_path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    with open(html_path, "w") as f:
        f.write(render_html(doc))
