"""Observability for the simulated stack: tracing and per-interval metrics.

The stack is instrumented end to end -- DES kernel event dispatch,
process block/unblock, resource (NIC) occupancy, transport packets with
their eager/rendezvous protocol choice, unexpected-queue depth, and
mailbox flushes / forwards / termination rounds / idle intervals.  All
hooks are inert (one attribute check) until a :class:`Tracer` is
installed on the simulator, and recording never perturbs the simulation:
a traced run is bit-identical to an untraced one.

Typical use::

    from repro import YgmWorld
    from repro.trace import Tracer

    tracer = Tracer()
    world = YgmWorld(4, scheme="nlnr", tracer=tracer)
    result = world.run(rank_main)
    tracer.export_chrome("trace.json")    # chrome://tracing / Perfetto
    tracer.export_metrics("metrics.csv")  # per-interval table

or, from the bench CLI::

    python -m repro.bench fig6 --trace trace.json --metrics metrics.csv

Beyond event tracing, ``Tracer(profile=True)`` enables the causal
message-lineage profiler (:mod:`repro.trace.profile`): per-message
causal DAGs, critical-path extraction with per-hop stage breakdowns,
and per-rank time attribution, rendered to a self-contained HTML report
by :mod:`repro.trace.profile_report` (CLI:
``python -m repro.bench 6a --profile``).

For flight-recorded *parallel* (PDES) runs, the cross-process overhead
attribution report lives in :mod:`repro.trace.pdes_report` (CLI:
``python -m repro.bench pdes --attribute``); telemetry collection is
the engine's side (:mod:`repro.pdes.flight`).
"""

from .chrome import export_chrome, to_chrome_events
from .metrics import COLUMNS as METRIC_COLUMNS
from .metrics import STRING_COLUMNS, WALL_CLOCK_COLUMNS, compute_metrics, export_metrics
from .pdes_report import MIN_COVERAGE, AttributionError
from .pdes_report import SCHEMA as PDES_ATTRIBUTION_SCHEMA
from .pdes_report import render_html as render_attribution_html
from .pdes_report import validate as validate_attribution
from .pdes_report import write_report as write_attribution_report
from .profile import BUCKETS, STAGES, LineageProfiler, SchemeProfile, analyze_profile
from .profile_report import render_html, report_document, write_report
from .tracer import (
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
    CallbackSink,
    JsonlSink,
    MemorySink,
    Sink,
    TraceEvent,
    Tracer,
)

__all__ = [
    "ALL_CATEGORIES",
    "AttributionError",
    "BUCKETS",
    "CallbackSink",
    "DEFAULT_CATEGORIES",
    "JsonlSink",
    "LineageProfiler",
    "METRIC_COLUMNS",
    "MIN_COVERAGE",
    "MemorySink",
    "PDES_ATTRIBUTION_SCHEMA",
    "STAGES",
    "STRING_COLUMNS",
    "SchemeProfile",
    "Sink",
    "TraceEvent",
    "Tracer",
    "WALL_CLOCK_COLUMNS",
    "analyze_profile",
    "compute_metrics",
    "export_chrome",
    "export_metrics",
    "render_attribution_html",
    "render_html",
    "report_document",
    "validate_attribution",
    "write_attribution_report",
    "write_report",
]
