"""Self-contained HTML (and JSON) rendering of causal profiles.

:func:`write_report` takes the per-scheme :class:`~repro.trace.profile.
SchemeProfile` analyses of one workload and writes

* a machine-readable JSON document (``schema`` versioned, mirrors
  ``SchemeProfile.as_dict``), and
* a single-file HTML report with **no external assets** (inline CSS,
  inline SVG): a side-by-side scheme comparison, per-scheme
  critical-path tables with stage-share bars, per-rank utilization
  strips, and per-hop latency histograms.

The HTML is deliberately dependency-free so it can be attached to CI
runs and opened anywhere.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional

from .profile import BUCKETS, SchemeProfile

#: JSON document schema version.
SCHEMA = 1

#: Rows shown in the HTML critical-path table (the JSON keeps the full
#: chain).
MAX_CP_ROWS = 30

#: Stage/bucket colors (colorblind-safe-ish categorical palette).
_COLORS = {
    "compute": "#4477aa",
    "inject": "#4477aa",
    "serialize": "#66ccee",
    "queue": "#228833",
    "nic_wait": "#ee6677",
    "nic": "#aa3377",
    "wire": "#ccbb44",
    "local": "#bbbbbb",
    "deliver": "#ff9955",
    "handler": "#ff9955",
    "term": "#999944",
    "term_tail": "#999944",
    "idle": "#dddddd",
}

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 24px auto; max-width: 1100px; color: #1c1c1c; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 1.6em; }
h3 { font-size: 1.0em; margin-bottom: 0.3em; }
table { border-collapse: collapse; margin: 8px 0 16px; font-size: 0.85em; }
th, td { border: 1px solid #ccc; padding: 3px 8px; text-align: right; }
th { background: #f2f2f2; } td.l, th.l { text-align: left; }
.bar { display: flex; height: 16px; width: 100%; max-width: 720px;
       border: 1px solid #aaa; margin: 2px 0; }
.bar div { height: 100%; }
.strip { display: flex; align-items: center; margin: 1px 0; }
.strip .lbl { width: 72px; font-size: 0.75em; color: #555; }
.legend { font-size: 0.8em; margin: 6px 0; }
.legend span { display: inline-block; margin-right: 12px; }
.legend i { display: inline-block; width: 10px; height: 10px;
            margin-right: 4px; border: 1px solid #888; }
.note { color: #666; font-size: 0.8em; }
"""


def _fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:.2f}"


def _fmt_pct(frac: float) -> str:
    return f"{100.0 * frac:.1f}%"


def _legend(keys) -> str:
    parts = [
        f'<span><i style="background:{_COLORS.get(k, "#888")}"></i>{html.escape(k)}</span>'
        for k in keys
    ]
    return f'<div class="legend">{"".join(parts)}</div>'


def _share_bar(parts: Dict[str, float], total: float, title: str = "") -> str:
    """A horizontal stacked bar of ``parts`` normalized by ``total``."""
    if total <= 0:
        return '<div class="bar"></div>'
    cells = []
    for name, value in parts.items():
        if value <= 0:
            continue
        pct = 100.0 * value / total
        if pct < 0.05:
            continue
        tip = f"{html.escape(name)}: {_fmt_us(value)}us ({pct:.1f}%)"
        cells.append(
            f'<div style="width:{pct:.2f}%;background:{_COLORS.get(name, "#888")}"'
            f' title="{tip}"></div>'
        )
    return f'<div class="bar" title="{html.escape(title)}">{"".join(cells)}</div>'


def _histogram_svg(hist: List, title: str) -> str:
    """A tiny inline-SVG bar chart of one latency histogram."""
    if not hist:
        return f'<p class="note">{html.escape(title)}: no packets</p>'
    bar_w, gap, height = 34, 4, 90
    width = len(hist) * (bar_w + gap) + gap
    peak = max(count for _label, count in hist) or 1
    bars = []
    for i, (label, count) in enumerate(hist):
        h = round((height - 20) * count / peak)
        x = gap + i * (bar_w + gap)
        y = height - 14 - h
        bars.append(
            f'<rect x="{x}" y="{y}" width="{bar_w}" height="{h}" fill="#4477aa">'
            f"<title>{html.escape(label)}: {count}</title></rect>"
            f'<text x="{x + bar_w / 2}" y="{height - 3}" font-size="7"'
            f' text-anchor="middle">{html.escape(label)}</text>'
        )
    return (
        f"<h3>{html.escape(title)}</h3>"
        f'<svg width="{width}" height="{height}" role="img">{"".join(bars)}</svg>'
    )


def _cp_table(profile: SchemeProfile) -> str:
    rows = []
    chain = profile.critical_path
    shown = chain[-MAX_CP_ROWS:]
    for step in shown:
        route = " &rarr; ".join(
            [str(step["src"])]
            + [f'{h["to"]}{"" if not h["local"] else "*"}' for h in step["hops"]]
        )
        stage_sums: Dict[str, float] = {}
        for hop in step["hops"]:
            for k, v in hop["stages"].items():
                stage_sums[k] = stage_sums.get(k, 0.0) + v
        cells = "".join(
            f"<td>{_fmt_us(stage_sums.get(k, 0.0))}</td>"
            for k in ("serialize", "queue", "nic_wait", "nic", "wire", "local", "deliver")
        )
        rows.append(
            f'<tr><td>{step["lid"]}</td><td class="l">{html.escape(step["kind"])}</td>'
            f'<td class="l">{route}</td>'
            f'<td>{_fmt_us(step["gap"])}</td>{cells}'
            f'<td>{_fmt_us(step["handled"] - step["inject"])}</td></tr>'
        )
    note = ""
    if len(chain) > len(shown):
        note = (
            f'<p class="note">Showing the last {len(shown)} of {len(chain)} '
            f"chain steps (full chain in the JSON report).</p>"
        )
    header = (
        "<tr><th>lid</th><th class='l'>kind</th><th class='l'>route</th>"
        "<th>compute</th><th>serialize</th><th>queue</th><th>nic_wait</th>"
        "<th>nic</th><th>wire</th><th>local</th><th>deliver</th>"
        "<th>inject&rarr;handled</th></tr>"
    )
    return (
        f"{note}<table>{header}{''.join(rows)}</table>"
        '<p class="note">All times in microseconds; * marks an on-node hop; '
        "compute is the causal gap from the parent message's delivery.</p>"
    )


def _rank_strips(profile: SchemeProfile) -> str:
    strips = []
    for row in profile.rank_buckets:
        parts = {b: row[b] for b in BUCKETS}
        bar = _share_bar(parts, row["total"], title=f"rank {row['rank']}")
        strips.append(
            f'<div class="strip"><span class="lbl">rank {row["rank"]}</span>'
            f"{bar}</div>"
        )
    return "".join(strips)


def _scheme_section(profile: SchemeProfile) -> str:
    cp = profile.cp_stages
    out = [f"<h2>Scheme: {html.escape(profile.scheme)}</h2>"]
    out.append(
        f"<p>elapsed {_fmt_us(profile.elapsed)}us &middot; "
        f"{profile.messages} messages &middot; {profile.packets} packets &middot; "
        f"critical-path communication share {_fmt_pct(profile.comm_share)}</p>"
    )
    out.append("<h3>Critical-path stage shares</h3>")
    out.append(_share_bar(cp, profile.elapsed))
    out.append(_legend([k for k, v in cp.items() if v > 0]))
    out.append("<h3>Critical path to quiescence</h3>")
    out.append(_cp_table(profile))
    out.append("<h3>Per-rank utilization</h3>")
    out.append(_rank_strips(profile))
    out.append(_legend(BUCKETS))
    out.append(_histogram_svg(profile.hop_latency.get("remote", []),
                              "Per-hop latency, remote hops"))
    out.append(_histogram_svg(profile.hop_latency.get("local", []),
                              "Per-hop latency, local hops"))
    return "".join(out)


def _comparison_table(profiles: List[SchemeProfile]) -> str:
    header = (
        "<tr><th class='l'>scheme</th><th>elapsed (us)</th><th>messages</th>"
        "<th>packets</th><th>comm share</th><th>dominant cp stage</th>"
        "<th>idle share</th></tr>"
    )
    rows = []
    for p in profiles:
        comm = {
            k: v for k, v in p.cp_stages.items() if k not in ("compute", "term_tail")
        }
        dominant = max(comm, key=comm.get) if any(comm.values()) else "-"
        total_time = sum(r["total"] for r in p.rank_buckets) or 1.0
        idle_share = p.bucket_totals.get("idle", 0.0) / total_time
        rows.append(
            f'<tr><td class="l">{html.escape(p.scheme)}</td>'
            f"<td>{_fmt_us(p.elapsed)}</td><td>{p.messages}</td>"
            f"<td>{p.packets}</td><td>{_fmt_pct(p.comm_share)}</td>"
            f'<td class="l">{html.escape(dominant)}</td>'
            f"<td>{_fmt_pct(idle_share)}</td></tr>"
        )
    return f"<table>{header}{''.join(rows)}</table>"


def render_html(profiles: List[SchemeProfile], title: str) -> str:
    """Render the full self-contained HTML report."""
    body = [f"<h1>{html.escape(title)}</h1>"]
    body.append("<h2>Scheme comparison</h2>")
    body.append(_comparison_table(profiles))
    for p in profiles:
        body.append(_scheme_section(p))
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head>"
        f"<body>{''.join(body)}</body></html>"
    )


def report_document(profiles: List[SchemeProfile], meta: Optional[dict] = None) -> dict:
    """The machine-readable JSON document for ``profiles``."""
    return {
        "schema": SCHEMA,
        "meta": meta or {},
        "schemes": [p.as_dict() for p in profiles],
    }


def write_report(
    profiles: List[SchemeProfile],
    html_path: str,
    json_path: str,
    title: str,
    meta: Optional[dict] = None,
) -> None:
    """Write the HTML and JSON reports for one profiled workload."""
    with open(html_path, "w") as f:
        f.write(render_html(profiles, title))
    with open(json_path, "w") as f:
        json.dump(report_document(profiles, meta), f, indent=1)
