"""Per-interval metrics: the time-resolved view of `MailboxStats`.

Buckets the trace into fixed simulated-time intervals and tabulates, per
interval: packet and byte volumes by locality, the eager/rendezvous
split, flushes, forwarded entries, termination rounds, idle seconds, NIC
busy seconds and utilization, and peak queue depths.  This is the
"where do time and bytes go *over time*" table the end-of-run
``MailboxStats`` totals cannot provide.
"""

from __future__ import annotations

import csv
import math
from typing import Dict, List, Optional

from .tracer import Tracer

#: Column order of the exported table.
COLUMNS = [
    "rank_group",
    "t_start",
    "t_end",
    "remote_packets",
    "remote_bytes",
    "eager_packets",
    "rendezvous_packets",
    "local_packets",
    "local_bytes",
    "packets_delivered",
    "flushes",
    "flush_messages",
    "entries_forwarded",
    "term_rounds",
    "idle_seconds",
    "nic_busy_seconds",
    "nic_utilization",
    "max_unexpected_depth",
    "max_nic_queue_depth",
    "events",
    "wall_ms",
    "events_per_sec",
]

#: Columns holding (simulated) seconds or rates; everything else is a count.
FLOAT_COLUMNS = frozenset(
    {
        "t_start",
        "t_end",
        "idle_seconds",
        "nic_busy_seconds",
        "nic_utilization",
        "wall_ms",
        "events_per_sec",
    }
)

#: Columns holding strings, not numbers.  ``rank_group`` names the
#: process a row's wall-clock columns belong to: ``"driver"`` for the
#: tracer-owning process (the only process in a serial run) and
#: ``"worker<p>"`` for flight-recorded PDES worker kernels.  Before
#: this column existed, a multi-process run silently folded every
#: process's wall clock into one set of rows -- meaningless when the
#: kernels run concurrently.
STRING_COLUMNS = frozenset({"rank_group"})

#: Columns derived from host wall-clock time: deterministic in *shape*
#: but not in value run-to-run.  Determinism checks project these out.
WALL_CLOCK_COLUMNS = frozenset({"wall_ms", "events_per_sec"})

#: Default number of intervals when no explicit interval is given.
DEFAULT_BINS = 50


def compute_metrics(
    tracer: Tracer, interval: Optional[float] = None
) -> List[Dict[str, float]]:
    """Bucket the tracer's events into per-interval metric rows."""
    events = tracer.events
    if not events:
        return []
    t_end = max(ev.ts + ev.dur for ev in events)
    if t_end <= 0.0:
        t_end = 1.0
    if interval is None:
        interval = t_end / DEFAULT_BINS
    if interval <= 0.0:
        raise ValueError(f"metrics interval must be positive, got {interval}")
    nbins = max(1, math.ceil(t_end / interval - 1e-12))
    rows = _blank_rows("driver", nbins, interval, t_end)

    def bucket(ts: float) -> Dict[str, float]:
        return rows[min(int(ts / interval), nbins - 1)]

    nic_count = 2 * tracer.nodes  # one TX and one RX engine per node
    for ev in events:
        row = bucket(ev.ts)
        key = (ev.cat, ev.name)
        if key == ("mpi", "packet_injected"):
            row["remote_packets"] += 1
            row["remote_bytes"] += ev.args["nbytes"]
            if ev.args.get("protocol") == "rendezvous":
                row["rendezvous_packets"] += 1
            else:
                row["eager_packets"] += 1
        elif key == ("mpi", "local_packet"):
            row["local_packets"] += 1
            row["local_bytes"] += ev.args["nbytes"]
        elif key == ("mpi", "packet_delivered"):
            row["packets_delivered"] += 1
        elif key == ("mpi", "unexpected_depth"):
            row["max_unexpected_depth"] = max(
                row["max_unexpected_depth"], ev.args["value"]
            )
        elif key == ("mailbox", "flush"):
            row["flushes"] += 1
            row["flush_messages"] += ev.args.get("messages", 0)
        elif key == ("mailbox", "forward"):
            row["entries_forwarded"] += ev.args.get("entries", 0)
        elif key == ("mailbox", "term_round"):
            row["term_rounds"] += ev.args.get("completed", 1)
        elif key == ("mailbox", "idle"):
            row["idle_seconds"] += ev.dur
        elif ev.cat == "resource" and ev.lane.startswith("nic_"):
            if ev.name == "hold":
                row["nic_busy_seconds"] += ev.dur
            elif ev.name == "queue_depth":
                row["max_nic_queue_depth"] = max(
                    row["max_nic_queue_depth"], ev.args["value"]
                )
    _fold_progress_samples(tracer.progress_samples, rows, interval, nbins)
    for row in rows:
        width = row["t_end"] - row["t_start"]
        if nic_count > 0 and width > 0:
            row["nic_utilization"] = row["nic_busy_seconds"] / (width * nic_count)
    _finalize_rows(rows)
    # Flight-recorded PDES workers: one full set of bins per worker
    # kernel, carrying only that worker's progress-derived columns.
    # Every bin is emitted even when empty so the row *shape* stays
    # deterministic (filtering on host-dependent wall_ms would not be).
    for group in sorted(getattr(tracer, "worker_progress", {})):
        wrows = _blank_rows(group, nbins, interval, t_end)
        _fold_progress_samples(
            tracer.worker_progress[group], wrows, interval, nbins
        )
        _finalize_rows(wrows)
        rows.extend(wrows)
    return rows


def _blank_rows(
    group: str, nbins: int, interval: float, t_end: float
) -> List[Dict[str, float]]:
    rows = []
    for i in range(nbins):
        row: Dict[str, float] = {col: 0.0 for col in COLUMNS}
        row["rank_group"] = group
        row["t_start"] = i * interval
        row["t_end"] = min((i + 1) * interval, t_end)
        rows.append(row)
    return rows


def _finalize_rows(rows: List[Dict[str, float]]) -> None:
    for row in rows:
        wall_s = row["wall_ms"] / 1e3
        row["events_per_sec"] = row["events"] / wall_s if wall_s > 0 else 0.0
        for col in COLUMNS:
            if col not in FLOAT_COLUMNS and col not in STRING_COLUMNS:
                row[col] = int(row[col])


def _fold_progress_samples(
    samples, rows: List[Dict[str, float]], interval: float, nbins: int
) -> None:
    """Distribute kernel wall-clock progress samples over the bins.

    The kernel records ``(sim_time, steps, wall_time)`` samples every
    :data:`~repro.sim.kernel.PROGRESS_SAMPLE_EVERY` events.  Each
    consecutive pair spans a simulated-time window; its event count and
    wall-clock cost are spread across the bins that window overlaps,
    proportionally to the overlap.  ``events`` is deterministic (a DES
    step count); ``wall_ms``/``events_per_sec`` are host-dependent.
    """
    if not samples or len(samples) < 2:
        return
    for (s0, st0, w0), (s1, st1, w1) in zip(samples, samples[1:]):
        d_steps = st1 - st0
        d_wall_ms = (w1 - w0) * 1e3
        if d_steps <= 0 and d_wall_ms <= 0:
            continue
        span = s1 - s0
        if span <= 0:
            # All the work happened at one simulated instant.
            row = rows[min(int(s0 / interval), nbins - 1)]
            row["events"] += d_steps
            row["wall_ms"] += d_wall_ms
            continue
        b0 = min(int(s0 / interval), nbins - 1)
        b1 = min(int(s1 / interval), nbins - 1)
        for b in range(b0, b1 + 1):
            lo = max(s0, b * interval)
            hi = s1 if b == b1 else min(s1, (b + 1) * interval)
            frac = (hi - lo) / span
            if frac <= 0:
                continue
            rows[b]["events"] += d_steps * frac
            rows[b]["wall_ms"] += d_wall_ms * frac


def export_metrics(
    tracer: Tracer, path: str, interval: Optional[float] = None
) -> List[Dict[str, float]]:
    """Write the per-interval metrics table to ``path`` as CSV."""
    rows = compute_metrics(tracer, interval=interval)
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=COLUMNS)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return rows
