"""Serial-vs-parallel equivalence assertions (the conformance contract).

The parallel engine's claim is *bit-identity*: a partitioned run must
reproduce the serial run's application values, event timestamps and
statistics exactly -- not approximately, not "same answer eventually".
:func:`assert_equivalent` is that claim as an executable check, shared
by the ``tests/pdes`` battery and the oracle's ``--pdes-workers`` mode.

One field gets a measured carve-out: ``idle_time``.  When two packets
hit their wire instants at the *exact same float timestamp* on
different partitions, serial orders their in-flight events by a global
heap sequence that no partition can reconstruct (it reflects the full
interleaved push history).  The engine orders them by wire time with
partition-index tie order instead.  Both orders are valid schedules of the same
instant; the only observable difference ever measured across the
battery (6 apps x 4 schemes x 4 partition counts) is the association
order of idle-interval sums in the ``idle_time`` diagnostic -- a
last-ulp wobble -- so ``idle_time`` is compared to within
``IDLE_TIME_ULPS`` units in the last place and everything else byte
for byte.  See EXPERIMENTS.md ("Parallel DES") for the derivation.
"""

from __future__ import annotations

import math
from dataclasses import fields
from typing import Any, Callable, Optional

#: Units-in-the-last-place tolerance for ``idle_time`` (see module doc).
IDLE_TIME_ULPS = 4


class ConformanceError(AssertionError):
    """A parallel run diverged from its serial reference."""


def _ulps_apart(a: float, b: float) -> float:
    if a == b:
        return 0.0
    return abs(a - b) / math.ulp(max(abs(a), abs(b)))


def _check_stats(rank: Any, par: Any, ser: Any, errors: list) -> None:
    for f in fields(ser):
        pv, sv = getattr(par, f.name), getattr(ser, f.name)
        if pv == sv:
            continue
        if f.name == "idle_time" and _ulps_apart(pv, sv) <= IDLE_TIME_ULPS:
            continue
        errors.append(
            f"per_rank_stats[{rank}].{f.name}: parallel={pv!r} serial={sv!r}"
        )


def assert_equivalent(
    parallel: Any,
    serial: Any,
    values_equal: Optional[Callable[[Any, Any], bool]] = None,
) -> None:
    """Assert a parallel :class:`~repro.core.context.YgmResult` matches
    the serial one bit for bit (``idle_time`` within a few ulps).

    ``values_equal`` compares the per-rank value lists; it defaults to
    ``==``, which is right for picklable scalars/tuples/dicts.  Pass
    :func:`repro.check.fuzz.results_equal` (optionally composed with an
    app-specific gather) for values holding numpy arrays.
    """
    errors: list = []
    if values_equal is None:
        if parallel.values != serial.values:
            errors.append("per-rank values differ")
    elif not values_equal(parallel.values, serial.values):
        errors.append("per-rank values differ (values_equal comparator)")
    if parallel.finish_times != serial.finish_times:
        errors.append(
            f"finish_times: parallel={parallel.finish_times!r} "
            f"serial={serial.finish_times!r}"
        )
    if parallel.elapsed != serial.elapsed:
        errors.append(
            f"elapsed: parallel={parallel.elapsed!r} serial={serial.elapsed!r}"
        )
    if parallel.transport != serial.transport:
        errors.append(
            f"transport: parallel={parallel.transport!r} "
            f"serial={serial.transport!r}"
        )
    if len(parallel.per_rank_stats) != len(serial.per_rank_stats):
        errors.append("per_rank_stats length differs")
    else:
        for r, (p, s) in enumerate(
            zip(parallel.per_rank_stats, serial.per_rank_stats)
        ):
            _check_stats(r, p, s, errors)
        ag_err: list = []
        _check_stats("aggregate", parallel.mailbox_stats, serial.mailbox_stats, ag_err)
        errors += [e.replace("per_rank_stats[aggregate]", "mailbox_stats") for e in ag_err]
    if errors:
        raise ConformanceError(
            "parallel run diverged from serial:\n  " + "\n  ".join(errors)
        )
