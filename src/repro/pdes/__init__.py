"""Parallel discrete-event simulation of one YGM run.

Partitions the simulated machine's nodes across forked worker
processes, advances them with a conservative window-barrier protocol
(lookahead = the network model's minimum wire latency) and reassembles
a result bit-identical to the serial :class:`~repro.core.YgmWorld`.
See :mod:`repro.pdes.engine` for the protocol and EXPERIMENTS.md
("Parallel DES") for the derivation and the conformance battery.

``PdesWorld(flight=True)`` enables the cross-process flight recorder
(:mod:`repro.pdes.flight`): per-worker phase spans, clock-aligned and
merged with driver spans and ring telemetry into the overhead
attribution report (``python -m repro.bench pdes --attribute``).
"""

from .conformance import ConformanceError, assert_equivalent
from .engine import PdesError, PdesStallError, PdesWorld, run_pdes
from .flight import (
    DRIVER_PHASES,
    WORKER_PHASES,
    DriverFlight,
    FlightLog,
    FlightSpec,
    WorkerFlight,
    estimate_offset,
)
from .partition import NodePartition
from .rings import RingError, RingStats, ShmTransport, SpscRing
from .wire import WireError, decode_batch, encode_batch
from .worker import CausalityError

__all__ = [
    "PdesWorld",
    "run_pdes",
    "NodePartition",
    "PdesError",
    "PdesStallError",
    "CausalityError",
    "ConformanceError",
    "DRIVER_PHASES",
    "DriverFlight",
    "FlightLog",
    "FlightSpec",
    "RingError",
    "RingStats",
    "ShmTransport",
    "SpscRing",
    "WORKER_PHASES",
    "WireError",
    "WorkerFlight",
    "assert_equivalent",
    "decode_batch",
    "encode_batch",
    "estimate_offset",
]
