"""Parallel discrete-event simulation of one YGM run.

Partitions the simulated machine's nodes across forked worker
processes, advances them with a conservative window-barrier protocol
(lookahead = the network model's minimum wire latency) and reassembles
a result bit-identical to the serial :class:`~repro.core.YgmWorld`.
See :mod:`repro.pdes.engine` for the protocol and EXPERIMENTS.md
("Parallel DES") for the derivation and the conformance battery.
"""

from .conformance import ConformanceError, assert_equivalent
from .engine import PdesError, PdesStallError, PdesWorld, run_pdes
from .partition import NodePartition
from .rings import RingError, ShmTransport, SpscRing
from .wire import WireError, decode_batch, encode_batch
from .worker import CausalityError

__all__ = [
    "PdesWorld",
    "run_pdes",
    "NodePartition",
    "PdesError",
    "PdesStallError",
    "CausalityError",
    "ConformanceError",
    "RingError",
    "ShmTransport",
    "SpscRing",
    "WireError",
    "assert_equivalent",
    "decode_batch",
    "encode_batch",
]
