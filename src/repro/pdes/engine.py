"""The conservative parallel-DES driver (window-barrier protocol).

One big simulation, partitioned by node across forked worker processes
(:mod:`repro.pdes.worker`), each running the unchanged serial kernel
over its node block.  The driver advances everyone in *windows*:

1. every partition reports the timestamp of its earliest pending event;
2. the driver computes each partition's earliest activity ``e_p`` (its
   next event or earliest not-yet-injected import arrival) and hands
   partition ``p`` the horizon ``H_p = min(A_p + L, e_p + K*L)``, where
   ``A_p = min over other active partitions q of e_q``, the lookahead
   ``L`` is the network model's
   :attr:`~repro.machine.netmodel.NetworkModel.min_wire_latency`, and
   ``K`` is the window-batch factor (``K = 1`` collapses every ``H_p``
   to the classic common horizon ``t_min + L``);
3. partitions process every event strictly below ``H_p``, *dynamically
   clamped* by the worker's export hook: after the partition's first
   export of the round at wire instant ``w`` it stops at ``w + 2L``
   (the earliest instant the outside world's reaction to that export
   could arrive back), and after its first export *to itself* at ``w_s``
   it stops at ``w_s + L`` (such a packet re-enters directly).  Any
   import generated this round by another partition arrives at
   ``>= A_p + L >= H_p``; chains that pass through this partition's own
   influence arrive ``>= w + 2L`` (or ``w_s + L``) -- so nothing a
   partition processes can precede an import it has yet to see
   (conservative synchronisation, no rollback), while a partition with
   no nearby neighbours or no outbound traffic runs up to ``K`` windows
   between barriers;
4. at the barrier, exported packets are routed to the partitions owning
   their destination ranks and injected at bit-identical arrival
   timestamps; repeat.  With ``window_batch=0`` (the default) ``K``
   adapts to observed traffic: it doubles after an export-free round
   and halves (to a floor of 1) after a round that exported, so chatty
   phases run at the provably-tight single window while quiet phases
   collapse barriers ~``K``-fold.

Export batches cross process boundaries through the shared-memory ring
transport (:mod:`repro.pdes.rings`) by default: the pipes carry only
verbs, horizons and tiny batch descriptors while the packet bytes move
through per-worker SPSC rings in the serde wire format
(:mod:`repro.pdes.wire`) -- no pickling on the hot path.
``PDES_TRANSPORT=pipe`` (or ``PdesWorld(transport="pipe")``) selects
the legacy pickle-over-pipe path for differential testing.

A partition whose owned rank programs have all completed freezes at its
local completion instant (the serial ``run_until_complete`` stop rule)
and is excluded from the horizon computation; once *every* partition has
completed, leftovers strictly below the global completion time
``T_final = max(local finishes)`` -- events the serial run would still
have processed while later-finishing ranks were live -- are drained,
and per-rank results are aggregated into a normal
:class:`~repro.core.context.YgmResult`.

Global quiescence totals are audited across partitions: every mailbox's
:attr:`~repro.core.mailbox.Mailbox.term_contribution` samples (one per
rank) must sum to the termination detector's agreed global
``last_totals`` -- the partition-composable identity the serial
detector guarantees.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from time import perf_counter
from typing import Any, Callable, Dict, Generator, List, Optional, Union

from ..core.config import MailboxConfig
from ..core.context import YgmResult
from ..core.routing import RoutingScheme, get_scheme
from ..core.stats import aggregate
from ..machine import MachineConfig, bench_machine
from ..sim.errors import DeadlockError
from .partition import NodePartition
from .rings import RingError, ShmTransport, recv_batch, send_batch
from .wire import decode_batch
from .worker import (
    CMD_CLOCK,
    CMD_FINISH,
    CMD_STEP,
    REP_CLOCK,
    REP_ERROR,
    REP_READY,
    REP_REPORT,
    REP_RESULT,
    WorkerSpec,
    worker_main,
)


class PdesError(RuntimeError):
    """A protocol failure in the parallel engine (not a simulation error)."""


class PdesStallError(PdesError):
    """A worker failed to reach the window barrier within the timeout.

    ``detail`` names the congested ring(s) from the always-on
    :class:`~repro.pdes.rings.RingStats` counters, so a stall verdict
    says *where* the traffic was sitting, not just who went quiet.
    """

    def __init__(
        self, stalled: List[int], timeout: float, round_no: int,
        detail: str = "",
    ):
        self.stalled = stalled
        super().__init__(
            f"PDES partition(s) {stalled} stalled: no barrier report within "
            f"{timeout:.1f}s (window round {round_no}); workers killed"
            + detail
        )


class PdesWorld:
    """A :class:`~repro.core.YgmWorld` lookalike running the simulation
    partitioned across ``workers`` processes.

    The result is bit-identical to the serial ``YgmWorld.run`` -- same
    values, timestamps, delivery orders and statistics -- which the
    ``tests/pdes`` conformance battery enforces across every app,
    routing scheme and partition count.
    """

    def __init__(
        self,
        machine: Union[MachineConfig, int],
        scheme: Union[str, RoutingScheme] = "nlnr",
        seed: int = 0,
        mailbox_capacity: int = MailboxConfig().capacity,
        cores_per_node: int = 8,
        tracer=None,
        tiebreaker=None,
        columnar: bool = MailboxConfig().columnar,
        workers: int = 2,
        window_timeout: float = 120.0,
        transport: Optional[str] = None,
        window_batch: Optional[int] = None,
        ring_bytes: Optional[int] = None,
        flight: Any = False,
    ):
        if isinstance(machine, int):
            machine = bench_machine(nodes=machine, cores_per_node=cores_per_node)
        self.machine_config = machine
        self.tracer = tracer
        self.tiebreaker = tiebreaker
        self.seed = seed
        if isinstance(scheme, str):
            scheme = get_scheme(scheme, machine.nodes, machine.cores_per_node)
        elif (scheme.nodes, scheme.cores) != (machine.nodes, machine.cores_per_node):
            raise ValueError("routing scheme shape does not match the machine")
        self.scheme = scheme
        self.default_config = MailboxConfig(
            capacity=mailbox_capacity, columnar=columnar
        )
        self.partition = NodePartition(
            machine.nodes, machine.cores_per_node, workers
        )
        self.lookahead = machine.net.min_wire_latency
        if not self.lookahead > 0.0:
            raise PdesError(
                f"conservative lookahead must be positive, got "
                f"{self.lookahead!r} (NetworkModel.min_wire_latency); a "
                "zero-latency interconnect admits no parallel window"
            )
        self.window_timeout = window_timeout
        if transport is None:
            transport = os.environ.get("PDES_TRANSPORT", "shm")
        if transport not in ("pipe", "shm"):
            raise PdesError(
                f"unknown PDES transport {transport!r} "
                "(expected 'pipe' or 'shm')"
            )
        #: Export-batch transport: ``"shm"`` ships batches through
        #: shared-memory rings, ``"pipe"`` pickles them over the pipes
        #: (the legacy path, kept for differential testing).
        self.transport = transport
        if window_batch is None:
            window_batch = int(os.environ.get("PDES_WINDOW_BATCH", "0"))
        if window_batch < 0:
            raise PdesError(
                f"window_batch must be >= 0 (0 selects the adaptive "
                f"policy), got {window_batch}"
            )
        #: Window-batch factor K; 0 = adaptive, 1 = the legacy common
        #: horizon, k > 1 = up to k lookahead windows per barrier round.
        self.window_batch = window_batch
        self.ring_bytes = ring_bytes
        #: Flight-recorder spec (:class:`~repro.pdes.flight.FlightSpec`)
        #: or ``None``.  ``flight=True`` selects the default spec; off by
        #: default, in which case workers run the bare serve loop and no
        #: flight-recorder code executes anywhere on the window path.
        self.flight_spec = None
        if flight:
            from .flight import FlightSpec

            self.flight_spec = (
                flight if isinstance(flight, FlightSpec) else FlightSpec()
            )
        #: The merged :class:`~repro.pdes.flight.FlightLog` of the last
        #: flight-recorded :meth:`run`, or ``None``.
        self.flight_log = None
        self._rings: Optional[ShmTransport] = None
        self._scratch = bytearray()
        if tracer is not None:
            tracer.bind(
                nodes=machine.nodes, cores_per_node=machine.cores_per_node
            )
        #: Driver-side :class:`~repro.pdes.rings.RingStats` dicts of the
        #: last shm run (``{"to_worker": [...], "from_worker": [...]}``),
        #: captured at ring teardown so they stay readable post-run;
        #: ``None`` before the first run or under the pipe transport.
        self.ring_stats: Optional[dict] = None
        #: Window-protocol counters of the last :meth:`run` (diagnostics).
        self.rounds = 0
        self.exported_packets = 0
        self.spilled_batches = 0
        self.max_window_batch = 1

    @property
    def nranks(self) -> int:
        return self.machine_config.nranks

    @property
    def nworkers(self) -> int:
        return self.partition.nparts

    # -- worker management -------------------------------------------------
    def _spawn(self, rank_main) -> tuple:
        ctx = multiprocessing.get_context("fork")
        conns, procs = [], []
        # The shared segment must exist before the fork: workers inherit
        # the one mapping (nothing is pickled, nothing re-attaches by
        # name), so only the driver's resource tracker registers it and
        # the single unlink in run()'s finally leaves it quiet.
        rings = None
        if self.transport == "shm" and self.nworkers > 1:
            rings = ShmTransport(self.nworkers, self.ring_bytes)
        self._rings = rings
        try:
            for p in range(self.nworkers):
                parent, child = ctx.Pipe()
                spec = WorkerSpec(
                    part=p,
                    partition=self.partition,
                    machine_config=self.machine_config,
                    scheme=self.scheme,
                    seed=self.seed,
                    default_config=self.default_config,
                    rank_main=rank_main,
                    tiebreaker=self.tiebreaker,
                    transport=self.transport,
                    rings=rings,
                    flight=self.flight_spec,
                )
                proc = ctx.Process(
                    target=worker_main, args=(child, spec), daemon=True,
                    name=f"pdes-part{p}",
                )
                proc.start()
                child.close()
                conns.append(parent)
                procs.append(proc)
        except BaseException:
            self._kill(procs)
            self._teardown_rings()
            raise
        return conns, procs

    def _teardown_rings(self) -> None:
        rings, self._rings = self._rings, None
        if rings is None:
            return
        # Keep the always-on driver-side counters readable after the
        # segment is gone: `engine.ring_stats` is the post-run view.
        self.ring_stats = {
            "to_worker": [r.stats.as_dict() for r in rings.to_worker],
            "from_worker": [r.stats.as_dict() for r in rings.from_worker],
        }
        try:
            rings.close()
        except BufferError:  # pragma: no cover - leaked view; best effort
            pass
        finally:
            rings.unlink()

    def _kill(self, procs) -> None:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in procs:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()

    def _recv(self, conns, procs, expect: str, round_no: int) -> List[tuple]:
        """One reply per worker, stall- and error-checked.

        Waits on all outstanding pipes at once and drains whichever are
        ready, so a stall verdict only ever names partitions that truly
        sent nothing -- not ones whose reply merely sat unread behind a
        slower sibling in the polling order.
        """
        replies: List[Optional[tuple]] = [None] * len(conns)
        part_of = {id(conn): p for p, conn in enumerate(conns)}
        pending = set(range(len(conns)))
        deadline = time.monotonic() + self.window_timeout
        eof: List[int] = []
        grace: Optional[float] = None
        while pending:
            budget = deadline - time.monotonic()
            if grace is not None:
                budget = min(budget, grace - time.monotonic())
            ready = (
                multiprocessing.connection.wait(
                    [conns[p] for p in pending], timeout=budget
                )
                if budget > 0
                else []
            )
            if not ready:
                if eof:
                    break  # grace expired: report the silent deaths
                stalled = sorted(pending)
                detail = self._ring_stall_note(stalled)
                self._kill(procs)
                raise PdesStallError(
                    stalled, self.window_timeout, round_no, detail
                )
            errors = []
            for conn in ready:
                p = part_of[id(conn)]
                try:
                    msg = conn.recv()
                except EOFError:
                    eof.append(p)
                    pending.discard(p)
                    continue
                if msg[0] == REP_ERROR:
                    errors.append(msg)
                    pending.discard(p)
                    continue
                if msg[0] != expect:
                    self._kill(procs)
                    raise PdesError(
                        f"PDES partition {p}: expected {expect!r} reply, "
                        f"got {msg[0]!r}"
                    )
                replies[p] = msg
                pending.discard(p)
            if errors:
                # A real traceback always beats a bare EOF: name the
                # partition that actually failed, even if a sibling's
                # pipe collapsed first in the polling order.
                self._kill(procs)
                raise PdesError(
                    f"PDES partition {errors[0][1]} failed:\n{errors[0][2]}"
                )
            if eof and grace is None:
                # A worker died without a traceback.  Give its siblings
                # a short grace window: when the true failure is a crash
                # elsewhere (the usual cascade), its REP_ERROR is already
                # in flight and must win the attribution.
                grace = time.monotonic() + 1.0
        if eof:
            self._kill(procs)
            parts = sorted(eof)
            raise PdesError(
                f"PDES partition(s) {parts} exited without a report "
                f"(window round {round_no})" + self._ring_attribution(parts)
            ) from None
        return replies  # type: ignore[return-value]

    def _ring_stall_note(self, parts: List[int]) -> str:
        """Name a stalled partition's congested rings (RingStats).

        Read *before* killing the workers so the shared head/tail
        counters still reflect the stall.  The import ring's high-water
        and spill counters are driver-side (the driver produces into
        it); the export ring's producer counters live in the worker, so
        only its live occupancy is reported here.
        """
        rings = self._rings
        if rings is None:
            return ""
        notes = []
        for p in parts:
            imp = rings.to_worker[p]
            ist = imp.stats
            if imp.used or ist.spills or ist.high_water:
                notes.append(
                    f"; partition {p} import ring: {imp.used} byte(s) "
                    f"unread of {imp.capacity} (high-water "
                    f"{ist.high_water}, {ist.spills} spill(s))"
                )
            exp = rings.from_worker[p]
            if exp.used:
                notes.append(
                    f"; partition {p} export ring: {exp.used} byte(s) "
                    f"undelivered of {exp.capacity}"
                )
        return "".join(notes)

    def _clock_sync(self, conns, procs) -> List[float]:
        """Handshake-estimate every worker's monotonic-clock offset.

        Flight recording only.  Ping-pongs ``CMD_CLOCK`` echoes on the
        control pipe (:data:`~repro.pdes.flight.CLOCK_PROBES` round
        trips per worker) and keeps the minimum-RTT midpoint estimate
        (:func:`~repro.pdes.flight.estimate_offset`), so the merger can
        map worker span timestamps onto the driver's clock.
        """
        from .flight import CLOCK_PROBES, estimate_offset

        offsets = []
        for p, conn in enumerate(conns):
            probes = []
            for _ in range(CLOCK_PROBES):
                t_send = perf_counter()
                conn.send((CMD_CLOCK,))
                if not conn.poll(self.window_timeout):
                    self._kill(procs)
                    raise PdesStallError([p], self.window_timeout, 0)
                rep = conn.recv()
                t_recv = perf_counter()
                if rep[0] != REP_CLOCK:
                    self._kill(procs)
                    raise PdesError(
                        f"PDES partition {p}: expected clock echo, "
                        f"got {rep[0]!r}"
                    )
                probes.append((t_send, rep[2], t_recv))
            offsets.append(estimate_offset(probes))
        return offsets

    def _ring_attribution(self, parts: List[int]) -> str:
        """Describe what a dead worker left sitting in its export ring.

        A non-empty ``from_worker`` ring means the worker died *after*
        encoding its window exports but *before* its report reached the
        barrier -- the batches are drained (never routed: their window
        never completed) and counted so the error names how much traffic
        the dead partition was holding.
        """
        if self._rings is None:
            return ""
        notes = []
        for p in parts:
            ring = self._rings.from_worker[p]
            batches = msgs = 0
            while True:
                try:
                    data = ring.begin_pop()
                except RingError:
                    break
                try:
                    msgs += len(decode_batch(data))
                    batches += 1
                except Exception:  # truncated by the crash mid-encode
                    notes.append(
                        f"; partition {p} left a corrupt batch in its "
                        f"export ring"
                    )
                    break
                finally:
                    if type(data) is memoryview:
                        data.release()
                ring.commit_pop()
            if batches:
                notes.append(
                    f"; partition {p} left {batches} undelivered export "
                    f"batch(es) ({msgs} message(s)) in its ring"
                )
            elif ring.used > 0:
                notes.append(
                    f"; partition {p} left {ring.used} unread byte(s) "
                    f"(partial batch) in its export ring"
                )
        return "".join(notes)

    # -- export-batch transport --------------------------------------------
    def _ship(self, p: int, batch: List[tuple]):
        """Driver -> worker: returns what to put on the pipe for ``batch``."""
        rings = self._rings
        if rings is None:
            return batch
        desc = send_batch(rings.to_worker[p], batch, self._scratch)
        if desc[0] == "spill":
            self.spilled_batches += 1
        return desc

    def _fetch(self, p: int, desc) -> List[tuple]:
        """Worker -> driver: materialise a report's export batch."""
        rings = self._rings
        if rings is None:
            return desc
        if desc[0] == "spill":
            self.spilled_batches += 1
        return recv_batch(rings.from_worker[p], desc)

    # -- the window-barrier protocol ---------------------------------------
    def run(self, rank_main: Callable[..., Generator]) -> YgmResult:
        """Run ``rank_main(ctx)`` on every rank, partitioned; returns the
        same :class:`YgmResult` the serial ``YgmWorld.run`` would."""
        nparts = self.nworkers
        lookahead = self.lookahead
        delay_of = self.machine_config.net.packet_costs
        owner_of_rank = self.partition.owner_of_rank
        tracer = self.tracer
        self.rounds = 0
        self.exported_packets = 0
        self.spilled_batches = 0
        self.max_window_batch = 1

        self.flight_log = None
        conns, procs = self._spawn(rank_main)
        fl = None
        offsets: List[float] = []
        try:
            self._recv(conns, procs, REP_READY, round_no=0)
            if self.flight_spec is not None:
                from .flight import DriverFlight

                offsets = self._clock_sync(conns, procs)
                fl = DriverFlight()
            pending: List[List[tuple]] = [[] for _ in range(nparts)]

            def step_all(horizons, drain: bool, k: int = 1) -> List[tuple]:
                if fl is not None:
                    t0 = perf_counter()
                    spills0 = self.spilled_batches
                for p, conn in enumerate(conns):
                    batch, pending[p] = pending[p], []
                    conn.send(
                        (CMD_STEP, horizons[p], self._ship(p, batch), drain)
                    )
                if fl is not None:
                    t1 = perf_counter()
                    fl.span("re-inject", t0, t1 - t0, self.rounds)
                reports = self._recv(conns, procs, REP_REPORT, self.rounds)
                n_exports = 0
                for rep in reports:
                    exports = self._fetch(rep[1], rep[2])
                    self.exported_packets += len(exports)
                    n_exports += len(exports)
                    for exp in exports:
                        pending[owner_of_rank(exp[2])].append(exp)
                if fl is not None:
                    t2 = perf_counter()
                    # fan-in includes the wait for barrier reports: that
                    # *is* the cost of the single-threaded fan-in design.
                    fl.span("fan-in", t1, t2 - t1, self.rounds)
                    fl.sample_round(
                        self.rounds, self._rings, k, n_exports,
                        self.spilled_batches - spills0,
                    )
                return reports

            # Round 0: report-only (no horizon), to learn initial t_min.
            reports = step_all([None] * nparts, drain=False)

            batch_k = self.window_batch if self.window_batch > 0 else 1
            adaptive = self.window_batch == 0
            while True:
                if fl is not None:
                    t_h = perf_counter()
                remaining = {rep[1]: rep[4] for rep in reports}
                if sum(remaining.values()) == 0:
                    break
                # Earliest activity e_p per *active* partition: its next
                # local event or earliest not-yet-injected import.
                # Completed partitions are frozen at their finish
                # instant -- their leftovers are post-completion chains
                # that cannot export (a packet's wire instant never
                # trails its sender's finish), so they are deferred to
                # the final drain rather than allowed to pin the horizon
                # forever.
                nxt: Dict[int, float] = {}
                for rep in reports:
                    p = rep[1]
                    if remaining[p] <= 0:
                        continue
                    cands = [
                        exp[0] + delay_of(exp[3])[1] for exp in pending[p]
                    ]
                    if rep[3] is not None:
                        cands.append(rep[3])
                    if cands:
                        nxt[p] = min(cands)
                if not nxt:
                    blocked = sum(remaining.values())
                    latest = max(rep[6] for rep in reports)
                    raise DeadlockError(blocked, latest)
                t_min = min(nxt.values())
                base = math.inf if nparts == 1 else t_min + lookahead
                if nparts == 1 or batch_k <= 1:
                    horizons = [base] * nparts
                else:
                    # Batched per-partition horizons: everything below
                    # min(A_p + L, e_p + K*L) is provably independent of
                    # this round's other windows *given* the workers'
                    # dynamic first-export clamp (see the module
                    # docstring for the two-hop reflection argument).
                    # K = 1 reduces exactly to the common base horizon.
                    horizons = []
                    for p in range(nparts):
                        e_p = nxt.get(p)
                        if e_p is None:
                            horizons.append(base)
                            continue
                        a_p = min(
                            (e for q, e in nxt.items() if q != p),
                            default=math.inf,
                        )
                        horizons.append(
                            min(a_p + lookahead, e_p + batch_k * lookahead)
                        )
                self.rounds += 1
                if batch_k > self.max_window_batch:
                    self.max_window_batch = batch_k
                if fl is not None:
                    fl.span(
                        "horizon", t_h, perf_counter() - t_h, self.rounds
                    )
                spills_before = self.spilled_batches
                reports = step_all(horizons, drain=False, k=batch_k)
                n_exports = sum(len(b) for b in pending)
                k_used = batch_k
                if adaptive and nparts > 1:
                    # Volume-driven K: double after an export-free round
                    # (quiet phase -- barriers are pure overhead), halve
                    # after an exporting round, collapse to 1 the moment
                    # a batch outgrew its ring.
                    if self.spilled_batches > spills_before:
                        batch_k = 1
                    elif n_exports == 0:
                        batch_k = min(batch_k * 2, 512)
                    else:
                        batch_k = max(1, batch_k // 2)
                if tracer is not None and tracer.wants("pdes"):
                    tracer.instant(
                        t_min, "pdes", "window", "pdes driver",
                        round=self.rounds, horizon=base,
                        batch=k_used,
                        active=sum(1 for r in remaining.values() if r > 0),
                        exports=n_exports,
                    )
                    for rep in reports:
                        tracer.instant(
                            rep[6], "pdes", "barrier", f"partition {rep[1]}",
                            round=self.rounds, next_t=rep[3],
                            remaining=rep[4], steps=rep[7],
                        )

            # -- final drain: the serial run keeps popping events until
            # the globally-last rank finishes; replay that tail.
            t_final = max(rep[5] for rep in reports)
            while True:
                self.rounds += 1
                reports = step_all([t_final] * nparts, drain=True)
                busy = any(
                    rep[3] is not None and rep[3] < t_final for rep in reports
                )
                if not busy and not any(pending):
                    break
            if tracer is not None and tracer.wants("pdes"):
                tracer.instant(
                    t_final, "pdes", "complete", "pdes driver",
                    rounds=self.rounds, exported=self.exported_packets,
                )

            if fl is not None:
                t_f = perf_counter()
            for conn in conns:
                conn.send((CMD_FINISH,))
            if fl is not None:
                t_f1 = perf_counter()
                fl.span("re-inject", t_f, t_f1 - t_f, self.rounds)
            results = self._recv(conns, procs, REP_RESULT, self.rounds)
            if fl is not None:
                fl.t_end = perf_counter()
                fl.span("fan-in", t_f1, fl.t_end - t_f1, self.rounds)
        finally:
            self._kill(procs)
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass
            # Exactly one unlink, on every exit path -- normal, error,
            # stall kill, KeyboardInterrupt -- so no segment outlives
            # the run and the resource tracker stays quiet.
            self._teardown_rings()

        result = self._assemble([rep[2] for rep in results])
        if fl is not None:
            from .flight import FlightLog

            snaps = sorted(
                (rep[2]["flight"] for rep in results), key=lambda s: s["part"]
            )
            self.flight_log = FlightLog(
                driver=fl,
                workers=snaps,
                offsets=offsets,
                meta={
                    "workers": self.nworkers,
                    "transport": self.transport,
                    "rounds": self.rounds,
                    "lookahead": self.lookahead,
                    "window_batch": self.window_batch,
                    "max_window_batch": self.max_window_batch,
                    "exported_packets": self.exported_packets,
                    "spilled_batches": self.spilled_batches,
                    "nodes": self.machine_config.nodes,
                    "cores_per_node": self.machine_config.cores_per_node,
                    "elapsed_sim": result.elapsed,
                },
            )
            if tracer is not None:
                # Worker simulated-time events + progress samples join
                # the driver tracer (rank/NIC lanes are partition-
                # disjoint): metrics and Chrome exports then cover the
                # whole run, with per-process wall-clock rows tagged by
                # the rank_group column.
                self.flight_log.merge_into_tracer(tracer)
        return result

    # -- result assembly ---------------------------------------------------
    def _assemble(self, parts: List[dict]) -> YgmResult:
        nranks = self.nranks
        nodes = self.machine_config.nodes
        values: List[Any] = [None] * nranks
        finish_times: List[float] = [float("nan")] * nranks
        per_rank: List[Any] = [None] * nranks
        tx_busy: Dict[int, float] = {}
        rx_busy: Dict[int, float] = {}
        counters = {
            "remote_packets": 0, "remote_bytes": 0,
            "local_packets": 0, "local_bytes": 0,
        }
        term: Dict[int, list] = {}
        for part in parts:
            for r, v in part["values"].items():
                values[r] = v
            for r, t in part["finish_times"].items():
                finish_times[r] = t
            for r, stats in part["per_rank_stats"].items():
                per_rank[r] = stats
            term.update(part["term"])
            tx_busy.update(part["transport"]["tx_busy"])
            rx_busy.update(part["transport"]["rx_busy"])
            for key in counters:
                counters[key] += part["transport"][key]
        missing = [r for r in range(nranks) if per_rank[r] is None]
        if missing:
            raise PdesError(f"no partition reported ranks {missing}")
        # Serial elapsed is sim.now at the stop instant: the completion
        # event (success or failure) of the globally last rank.  Each
        # partition records exactly that instant locally as ``done_at``,
        # so the global stop is their max.  For all-success runs this
        # equals max(finish_times); unlike it, it stays finite when a
        # rank program died (its finish_time is NaN, as in serial).
        elapsed = max(part["done_at"] for part in parts)
        self._audit_term(term)
        # Same node-order float summation as Machine.nic_utilisation.
        transport = {
            "tx_busy": sum(tx_busy[n] for n in range(nodes)),
            "rx_busy": sum(rx_busy[n] for n in range(nodes)),
            **counters,
        }
        return YgmResult(
            values=values,
            elapsed=elapsed,
            finish_times=finish_times,
            transport=transport,
            per_rank_stats=per_rank,
            mailbox_stats=aggregate(per_rank),
        )

    def _audit_term(self, term: Dict[int, list]) -> None:
        """Check the partition-composable quiescence identity.

        For every mailbox id: the agreed global ``last_totals`` (same on
        every rank that completed the epoch) must equal the sum of the
        per-rank ``last_contribution`` samples collected from the
        partitions.  A mismatch means a partition lost or double-counted
        cross-partition traffic.
        """
        by_mailbox: Dict[int, Dict[str, Any]] = {}
        for rank, entries in term.items():
            for mailbox_id, totals, contribution in entries:
                if totals is None or contribution is None:
                    continue
                slot = by_mailbox.setdefault(
                    mailbox_id, {"totals": totals, "sent": 0, "recv": 0}
                )
                if slot["totals"] != totals:
                    raise PdesError(
                        f"mailbox {mailbox_id}: partitions disagree on "
                        f"quiescence totals ({slot['totals']} vs {totals} "
                        f"at rank {rank})"
                    )
                slot["sent"] += contribution[0]
                slot["recv"] += contribution[1]
        for mailbox_id, slot in by_mailbox.items():
            if (slot["sent"], slot["recv"]) != tuple(slot["totals"]):
                raise PdesError(
                    f"mailbox {mailbox_id}: quiescence totals are not "
                    f"partition-composable: sum of per-rank contributions "
                    f"({slot['sent']}, {slot['recv']}) != agreed totals "
                    f"{tuple(slot['totals'])}"
                )


def run_pdes(
    rank_main: Callable[..., Generator],
    machine: Union[MachineConfig, int],
    scheme: Union[str, RoutingScheme] = "nlnr",
    workers: int = 2,
    **kwargs,
) -> YgmResult:
    """One-call convenience wrapper around :class:`PdesWorld`."""
    return PdesWorld(machine, scheme=scheme, workers=workers, **kwargs).run(
        rank_main
    )
