"""The conservative parallel-DES driver (window-barrier protocol).

One big simulation, partitioned by node across forked worker processes
(:mod:`repro.pdes.worker`), each running the unchanged serial kernel
over its node block.  The driver advances everyone in *windows*:

1. every partition reports the timestamp of its earliest pending event;
2. the driver takes the global minimum ``t_min`` (including any packet
   exported last window but not yet injected) and announces the horizon
   ``H = t_min + L``, where the lookahead ``L`` is the network model's
   :attr:`~repro.machine.netmodel.NetworkModel.min_wire_latency`;
3. partitions process every event strictly below ``H``.  Any event in
   the window sits at ``t >= t_min``, so a packet it puts on the wire
   arrives at ``t_wire + remote_delay >= t_min + L = H`` -- beyond the
   window -- which is why processing the window concurrently on all
   partitions is safe (conservative synchronisation, no rollback);
4. at the barrier, exported packets are routed to the partitions owning
   their destination ranks and injected at bit-identical arrival
   timestamps; repeat.

A partition whose owned rank programs have all completed freezes at its
local completion instant (the serial ``run_until_complete`` stop rule)
and is excluded from the horizon computation; once *every* partition has
completed, leftovers strictly below the global completion time
``T_final = max(local finishes)`` -- events the serial run would still
have processed while later-finishing ranks were live -- are drained,
and per-rank results are aggregated into a normal
:class:`~repro.core.context.YgmResult`.

Global quiescence totals are audited across partitions: every mailbox's
:attr:`~repro.core.mailbox.Mailbox.term_contribution` samples (one per
rank) must sum to the termination detector's agreed global
``last_totals`` -- the partition-composable identity the serial
detector guarantees.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from typing import Any, Callable, Dict, Generator, List, Optional, Union

from ..core.config import MailboxConfig
from ..core.context import YgmResult
from ..core.routing import RoutingScheme, get_scheme
from ..core.stats import aggregate
from ..machine import MachineConfig, bench_machine
from ..sim.errors import DeadlockError
from .partition import NodePartition
from .worker import (
    CMD_FINISH,
    CMD_STEP,
    REP_ERROR,
    REP_READY,
    REP_REPORT,
    REP_RESULT,
    WorkerSpec,
    worker_main,
)


class PdesError(RuntimeError):
    """A protocol failure in the parallel engine (not a simulation error)."""


class PdesStallError(PdesError):
    """A worker failed to reach the window barrier within the timeout."""

    def __init__(self, stalled: List[int], timeout: float, round_no: int):
        self.stalled = stalled
        super().__init__(
            f"PDES partition(s) {stalled} stalled: no barrier report within "
            f"{timeout:.1f}s (window round {round_no}); workers killed"
        )


class PdesWorld:
    """A :class:`~repro.core.YgmWorld` lookalike running the simulation
    partitioned across ``workers`` processes.

    The result is bit-identical to the serial ``YgmWorld.run`` -- same
    values, timestamps, delivery orders and statistics -- which the
    ``tests/pdes`` conformance battery enforces across every app,
    routing scheme and partition count.
    """

    def __init__(
        self,
        machine: Union[MachineConfig, int],
        scheme: Union[str, RoutingScheme] = "nlnr",
        seed: int = 0,
        mailbox_capacity: int = MailboxConfig().capacity,
        cores_per_node: int = 8,
        tracer=None,
        tiebreaker=None,
        columnar: bool = MailboxConfig().columnar,
        workers: int = 2,
        window_timeout: float = 120.0,
    ):
        if isinstance(machine, int):
            machine = bench_machine(nodes=machine, cores_per_node=cores_per_node)
        self.machine_config = machine
        self.tracer = tracer
        self.tiebreaker = tiebreaker
        self.seed = seed
        if isinstance(scheme, str):
            scheme = get_scheme(scheme, machine.nodes, machine.cores_per_node)
        elif (scheme.nodes, scheme.cores) != (machine.nodes, machine.cores_per_node):
            raise ValueError("routing scheme shape does not match the machine")
        self.scheme = scheme
        self.default_config = MailboxConfig(
            capacity=mailbox_capacity, columnar=columnar
        )
        self.partition = NodePartition(
            machine.nodes, machine.cores_per_node, workers
        )
        self.lookahead = machine.net.min_wire_latency
        if not self.lookahead > 0.0:
            raise PdesError(
                f"conservative lookahead must be positive, got "
                f"{self.lookahead!r} (NetworkModel.min_wire_latency); a "
                "zero-latency interconnect admits no parallel window"
            )
        self.window_timeout = window_timeout
        if tracer is not None:
            tracer.bind(
                nodes=machine.nodes, cores_per_node=machine.cores_per_node
            )
        #: Window-protocol counters of the last :meth:`run` (diagnostics).
        self.rounds = 0
        self.exported_packets = 0

    @property
    def nranks(self) -> int:
        return self.machine_config.nranks

    @property
    def nworkers(self) -> int:
        return self.partition.nparts

    # -- worker management -------------------------------------------------
    def _spawn(self, rank_main) -> tuple:
        ctx = multiprocessing.get_context("fork")
        conns, procs = [], []
        for p in range(self.nworkers):
            parent, child = ctx.Pipe()
            spec = WorkerSpec(
                part=p,
                partition=self.partition,
                machine_config=self.machine_config,
                scheme=self.scheme,
                seed=self.seed,
                default_config=self.default_config,
                rank_main=rank_main,
                tiebreaker=self.tiebreaker,
            )
            proc = ctx.Process(
                target=worker_main, args=(child, spec), daemon=True,
                name=f"pdes-part{p}",
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)
        return conns, procs

    def _kill(self, procs) -> None:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in procs:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()

    def _recv(self, conns, procs, expect: str, round_no: int) -> List[tuple]:
        """One reply per worker, stall- and error-checked.

        Waits on all outstanding pipes at once and drains whichever are
        ready, so a stall verdict only ever names partitions that truly
        sent nothing -- not ones whose reply merely sat unread behind a
        slower sibling in the polling order.
        """
        replies: List[Optional[tuple]] = [None] * len(conns)
        part_of = {id(conn): p for p, conn in enumerate(conns)}
        pending = set(range(len(conns)))
        deadline = time.monotonic() + self.window_timeout
        while pending:
            budget = deadline - time.monotonic()
            ready = (
                multiprocessing.connection.wait(
                    [conns[p] for p in pending], timeout=budget
                )
                if budget > 0
                else []
            )
            if not ready:
                stalled = sorted(pending)
                self._kill(procs)
                raise PdesStallError(stalled, self.window_timeout, round_no)
            for conn in ready:
                p = part_of[id(conn)]
                try:
                    msg = conn.recv()
                except EOFError:
                    self._kill(procs)
                    raise PdesError(
                        f"PDES partition {p} exited without a report "
                        f"(window round {round_no})"
                    ) from None
                if msg[0] == REP_ERROR:
                    self._kill(procs)
                    raise PdesError(
                        f"PDES partition {msg[1]} failed:\n{msg[2]}"
                    )
                if msg[0] != expect:
                    self._kill(procs)
                    raise PdesError(
                        f"PDES partition {p}: expected {expect!r} reply, "
                        f"got {msg[0]!r}"
                    )
                replies[p] = msg
                pending.discard(p)
        return replies  # type: ignore[return-value]

    # -- the window-barrier protocol ---------------------------------------
    def run(self, rank_main: Callable[..., Generator]) -> YgmResult:
        """Run ``rank_main(ctx)`` on every rank, partitioned; returns the
        same :class:`YgmResult` the serial ``YgmWorld.run`` would."""
        nparts = self.nworkers
        lookahead = self.lookahead
        delay_of = self.machine_config.net.packet_costs
        owner_of_rank = self.partition.owner_of_rank
        tracer = self.tracer
        self.rounds = 0
        self.exported_packets = 0

        conns, procs = self._spawn(rank_main)
        try:
            self._recv(conns, procs, REP_READY, round_no=0)
            pending: List[List[tuple]] = [[] for _ in range(nparts)]

            def step_all(horizons, drain: bool) -> List[tuple]:
                for p, conn in enumerate(conns):
                    conn.send((CMD_STEP, horizons[p], pending[p], drain))
                    pending[p] = []
                reports = self._recv(conns, procs, REP_REPORT, self.rounds)
                for rep in reports:
                    _, part, exports, _nt, _rem, _done, _now, _steps = rep
                    self.exported_packets += len(exports)
                    for exp in exports:
                        pending[owner_of_rank(exp[2])].append(exp)
                return reports

            # Round 0: report-only (no horizon), to learn initial t_min.
            reports = step_all([None] * nparts, drain=False)

            while True:
                remaining = {rep[1]: rep[4] for rep in reports}
                if sum(remaining.values()) == 0:
                    break
                # Horizon: earliest pending event over *active* partitions
                # and not-yet-injected imports.  Completed partitions are
                # frozen at their finish instant -- their leftovers are
                # post-completion chains that cannot export (a packet's
                # wire instant never trails its sender's finish), so they
                # are deferred to the final drain rather than allowed to
                # pin the horizon forever.
                candidates = [
                    rep[3]
                    for rep in reports
                    if rep[4] > 0 and rep[3] is not None
                ]
                candidates += [
                    exp[0] + delay_of(exp[3])[1]
                    for p in range(nparts)
                    if remaining[p] > 0
                    for exp in pending[p]
                ]
                if not candidates:
                    blocked = sum(remaining.values())
                    latest = max(rep[6] for rep in reports)
                    raise DeadlockError(blocked, latest)
                t_min = min(candidates)
                horizon = math.inf if nparts == 1 else t_min + lookahead
                self.rounds += 1
                reports = step_all([horizon] * nparts, drain=False)
                if tracer is not None and tracer.wants("pdes"):
                    n_exports = sum(len(b) for b in pending)
                    tracer.instant(
                        t_min, "pdes", "window", "pdes driver",
                        round=self.rounds, horizon=horizon,
                        active=sum(1 for r in remaining.values() if r > 0),
                        exports=n_exports,
                    )
                    for rep in reports:
                        tracer.instant(
                            rep[6], "pdes", "barrier", f"partition {rep[1]}",
                            round=self.rounds, next_t=rep[3],
                            remaining=rep[4], steps=rep[7],
                        )

            # -- final drain: the serial run keeps popping events until
            # the globally-last rank finishes; replay that tail.
            t_final = max(rep[5] for rep in reports)
            while True:
                self.rounds += 1
                reports = step_all([t_final] * nparts, drain=True)
                busy = any(
                    rep[3] is not None and rep[3] < t_final for rep in reports
                )
                if not busy and not any(pending):
                    break
            if tracer is not None and tracer.wants("pdes"):
                tracer.instant(
                    t_final, "pdes", "complete", "pdes driver",
                    rounds=self.rounds, exported=self.exported_packets,
                )

            for conn in conns:
                conn.send((CMD_FINISH,))
            results = self._recv(conns, procs, REP_RESULT, self.rounds)
        finally:
            self._kill(procs)
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass

        return self._assemble([rep[2] for rep in results])

    # -- result assembly ---------------------------------------------------
    def _assemble(self, parts: List[dict]) -> YgmResult:
        nranks = self.nranks
        nodes = self.machine_config.nodes
        values: List[Any] = [None] * nranks
        finish_times: List[float] = [float("nan")] * nranks
        per_rank: List[Any] = [None] * nranks
        tx_busy: Dict[int, float] = {}
        rx_busy: Dict[int, float] = {}
        counters = {
            "remote_packets": 0, "remote_bytes": 0,
            "local_packets": 0, "local_bytes": 0,
        }
        term: Dict[int, list] = {}
        for part in parts:
            for r, v in part["values"].items():
                values[r] = v
            for r, t in part["finish_times"].items():
                finish_times[r] = t
            for r, stats in part["per_rank_stats"].items():
                per_rank[r] = stats
            term.update(part["term"])
            tx_busy.update(part["transport"]["tx_busy"])
            rx_busy.update(part["transport"]["rx_busy"])
            for key in counters:
                counters[key] += part["transport"][key]
        missing = [r for r in range(nranks) if per_rank[r] is None]
        if missing:
            raise PdesError(f"no partition reported ranks {missing}")
        # Serial elapsed is sim.now at the stop instant: the completion
        # event (success or failure) of the globally last rank.  Each
        # partition records exactly that instant locally as ``done_at``,
        # so the global stop is their max.  For all-success runs this
        # equals max(finish_times); unlike it, it stays finite when a
        # rank program died (its finish_time is NaN, as in serial).
        elapsed = max(part["done_at"] for part in parts)
        self._audit_term(term)
        # Same node-order float summation as Machine.nic_utilisation.
        transport = {
            "tx_busy": sum(tx_busy[n] for n in range(nodes)),
            "rx_busy": sum(rx_busy[n] for n in range(nodes)),
            **counters,
        }
        return YgmResult(
            values=values,
            elapsed=elapsed,
            finish_times=finish_times,
            transport=transport,
            per_rank_stats=per_rank,
            mailbox_stats=aggregate(per_rank),
        )

    def _audit_term(self, term: Dict[int, list]) -> None:
        """Check the partition-composable quiescence identity.

        For every mailbox id: the agreed global ``last_totals`` (same on
        every rank that completed the epoch) must equal the sum of the
        per-rank ``last_contribution`` samples collected from the
        partitions.  A mismatch means a partition lost or double-counted
        cross-partition traffic.
        """
        by_mailbox: Dict[int, Dict[str, Any]] = {}
        for rank, entries in term.items():
            for mailbox_id, totals, contribution in entries:
                if totals is None or contribution is None:
                    continue
                slot = by_mailbox.setdefault(
                    mailbox_id, {"totals": totals, "sent": 0, "recv": 0}
                )
                if slot["totals"] != totals:
                    raise PdesError(
                        f"mailbox {mailbox_id}: partitions disagree on "
                        f"quiescence totals ({slot['totals']} vs {totals} "
                        f"at rank {rank})"
                    )
                slot["sent"] += contribution[0]
                slot["recv"] += contribution[1]
        for mailbox_id, slot in by_mailbox.items():
            if (slot["sent"], slot["recv"]) != tuple(slot["totals"]):
                raise PdesError(
                    f"mailbox {mailbox_id}: quiescence totals are not "
                    f"partition-composable: sum of per-rank contributions "
                    f"({slot['sent']}, {slot['recv']}) != agreed totals "
                    f"{tuple(slot['totals'])}"
                )


def run_pdes(
    rank_main: Callable[..., Generator],
    machine: Union[MachineConfig, int],
    scheme: Union[str, RoutingScheme] = "nlnr",
    workers: int = 2,
    **kwargs,
) -> YgmResult:
    """One-call convenience wrapper around :class:`PdesWorld`."""
    return PdesWorld(machine, scheme=scheme, workers=workers, **kwargs).run(
        rank_main
    )
