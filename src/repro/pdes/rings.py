"""Single-producer/single-consumer rings over shared memory.

The PDES barrier protocol keeps its *control* plane on pipes (tiny
tuples: verbs, horizons, reports) but moves the *bulk* plane -- the
per-window columnar export batches -- through shared-memory rings, so a
batch crosses process boundaries as one ``memcpy`` in and one out with
no ``pickle`` anywhere (:mod:`repro.pdes.wire` does the encoding).

Layout: one :class:`multiprocessing.shared_memory.SharedMemory` segment
per engine, carved into ``2 * nworkers`` ring slots (driver->worker and
worker->driver per partition).  Each slot is::

    [ tail u64 | pad ... | head u64 | pad ... |  data[capacity] ]
      ^0                   ^64                  ^192

``tail``/``head`` are *monotonic* byte counters (they never wrap; the
data offset is ``counter % capacity``), each alone on its own cache
line: the producer writes only ``tail``, the consumer only ``head``, so
the single-producer/single-consumer discipline needs no locks.  The
pipe round-trip that announces every record doubles as the memory
fence: a consumer only reads a record after the producer's pipe message
about it arrives, which on CPython (single 8-byte aligned writes under
the buffer protocol) is sufficient ordering.

Records are framed ``[seq u64][len u64][payload]`` with modular
wrap-around copies.  ``seq`` is a per-ring monotonic sequence number
carried redundantly in the pipe descriptor; both sides fence on it
(:class:`RingError` on mismatch), so a desynchronised ring -- a lost
record, a double pop, a stray producer -- fails loudly instead of
silently mispairing batches with windows.

Lifecycle: the driver creates the segment *before* forking and workers
inherit the mapping (nothing is pickled, nothing re-attaches by name,
so only the driver's ``resource_tracker`` ever knows the segment and
the unlink happens exactly once, in the driver's ``finally``).  A batch
larger than the ring's free space takes the overflow spill: the encoded
blob rides the pipe message itself (bytes cross a pipe as one plain
buffer copy -- still no object pickling).
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory
from typing import List, Optional

from .wire import decode_batch, encode_batch

#: Default per-direction ring capacity (bytes); override with
#: ``PDES_RING_BYTES`` or ``PdesWorld(ring_bytes=...)``.
DEFAULT_RING_BYTES = 1 << 20

#: Slot header geometry: tail and head counters on separate cache lines.
_TAIL_OFF = 0
_HEAD_OFF = 64
_DATA_OFF = 192
_REC_HDR = 16  # [seq u64][len u64]


class RingError(RuntimeError):
    """A ring protocol violation (desync, truncation, bad descriptor)."""


class RingStats:
    """Cheap always-on counters of one ring endpoint (this process's side).

    Pure integer bumps on the *batch* path (once per window record, never
    per message), so they stay on even without the flight recorder and
    are readable post-run -- e.g. a :class:`~repro.pdes.engine.
    PdesStallError` names the congested ring from these.  Producer-side
    fields (``pushes``/``bytes_pushed``/``high_water``/``spills``) are
    maintained by whichever process produces into the ring; consumer-side
    fields (``pops``/``bytes_popped``/``fence_errors``) by the consumer.
    ``high_water`` is the peak occupancy in bytes observed just after a
    push; ``spills`` counts pushes refused for lack of space (the caller
    then takes the pipe spill path -- this ring never blocks, so
    congestion shows up as spills, not waits).
    """

    __slots__ = (
        "pushes",
        "pops",
        "bytes_pushed",
        "bytes_popped",
        "high_water",
        "spills",
        "fence_errors",
    )

    def __init__(self) -> None:
        self.pushes = 0
        self.pops = 0
        self.bytes_pushed = 0
        self.bytes_popped = 0
        self.high_water = 0
        self.spills = 0
        self.fence_errors = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"RingStats({body})"


class SpscRing:
    """One single-producer/single-consumer ring inside a shared slot.

    Either side of a ring pair uses the same class; roles are fixed by
    convention (the driver produces into ``to_worker`` rings and
    consumes ``from_worker`` rings, each worker the reverse), and the
    local ``_push_seq``/``_pop_seq`` counters -- process-private, both
    starting at the fork point's zero -- enforce it.
    """

    def __init__(self, buf: memoryview, capacity: int):
        self._buf = buf
        self._data = buf[_DATA_OFF:_DATA_OFF + capacity]
        self.capacity = capacity
        self._push_seq = 0
        self._pop_seq = 0
        self._consumed: Optional[int] = None
        #: Always-on endpoint counters (see :class:`RingStats`).  Updated
        #: with plain integer bumps only -- the push/pop fast path takes
        #: no clock reads and no recorder calls (enforced by
        #: ``tools/hotpath_lint.py``).
        self.stats = RingStats()

    # -- shared counters ---------------------------------------------------
    def _load(self, off: int) -> int:
        return int.from_bytes(self._buf[off:off + 8], "little")

    def _store(self, off: int, value: int) -> None:
        self._buf[off:off + 8] = value.to_bytes(8, "little")

    @property
    def used(self) -> int:
        return self._load(_TAIL_OFF) - self._load(_HEAD_OFF)

    # -- modular data copies -----------------------------------------------
    def _write(self, pos: int, data) -> None:
        cap = self.capacity
        off = pos % cap
        n = len(data)
        if off + n <= cap:
            self._data[off:off + n] = data
        else:
            first = cap - off
            self._data[off:] = data[:first]
            self._data[:n - first] = data[first:]

    def _read(self, pos: int, n: int) -> bytes:
        cap = self.capacity
        off = pos % cap
        first = min(n, cap - off)
        if first == n:
            return bytes(self._data[off:off + n])
        return bytes(self._data[off:off + first]) + bytes(
            self._data[:n - first]
        )

    # -- producer side -----------------------------------------------------
    def try_push(self, payload) -> Optional[int]:
        """Frame and write one record; returns its sequence number, or
        ``None`` when the ring lacks space (caller takes the spill
        path -- blocking here could deadlock against the barrier)."""
        stats = self.stats
        need = _REC_HDR + len(payload)
        tail = self._load(_TAIL_OFF)
        used = tail - self._load(_HEAD_OFF)
        if need > self.capacity - used:
            stats.spills += 1
            return None
        seq = self._push_seq
        self._write(
            tail,
            seq.to_bytes(8, "little") + len(payload).to_bytes(8, "little"),
        )
        self._write(tail + _REC_HDR, payload)
        self._store(_TAIL_OFF, tail + need)
        self._push_seq = seq + 1
        stats.pushes += 1
        stats.bytes_pushed += need
        if used + need > stats.high_water:
            stats.high_water = used + need
        return seq

    # -- consumer side -----------------------------------------------------
    def begin_pop(self):
        """Read the next record's payload without consuming it.

        Returns a zero-copy memoryview into the ring when the payload is
        contiguous, a bytes copy when it wraps; either way the bytes are
        only valid until :meth:`commit_pop`.
        """
        tail = self._load(_TAIL_OFF)
        head = self._load(_HEAD_OFF)
        if tail - head < _REC_HDR:
            raise RingError("ring empty: no record to pop")
        hdr = self._read(head, _REC_HDR)
        seq = int.from_bytes(hdr[:8], "little")
        length = int.from_bytes(hdr[8:], "little")
        if seq != self._pop_seq:
            self.stats.fence_errors += 1
            raise RingError(
                f"ring sequence fence broken: expected record "
                f"{self._pop_seq}, found {seq}"
            )
        if tail - head < _REC_HDR + length:
            self.stats.fence_errors += 1
            raise RingError(
                f"ring record {seq} truncated: framed {length} bytes, "
                f"only {tail - head - _REC_HDR} present"
            )
        cap = self.capacity
        off = (head + _REC_HDR) % cap
        self._consumed = _REC_HDR + length
        if off + length <= cap:
            return self._data[off:off + length]
        return self._read(head + _REC_HDR, length)

    def commit_pop(self) -> None:
        """Consume the record returned by the last :meth:`begin_pop`."""
        if self._consumed is None:
            raise RingError("commit_pop without begin_pop")
        self._store(_HEAD_OFF, self._load(_HEAD_OFF) + self._consumed)
        self._pop_seq += 1
        stats = self.stats
        stats.pops += 1
        stats.bytes_popped += self._consumed
        self._consumed = None

    def release(self) -> None:
        """Drop the memoryviews so the segment can be closed."""
        self._data.release()
        self._buf.release()


class ShmTransport:
    """The engine's shared segment: one ring pair per worker.

    Created by the driver before forking; every process holds its own
    :class:`SpscRing` objects over the one inherited mapping.  The
    driver (and only the driver) calls :meth:`unlink`; every process
    calls :meth:`close` on its way out.
    """

    def __init__(self, nworkers: int, ring_bytes: Optional[int] = None):
        if ring_bytes is None:
            ring_bytes = int(
                os.environ.get("PDES_RING_BYTES", DEFAULT_RING_BYTES)
            )
        if ring_bytes < 4096:
            raise ValueError(f"ring_bytes too small: {ring_bytes}")
        self.ring_bytes = ring_bytes
        slot = _DATA_OFF + ring_bytes
        self.name = f"repro_pdes_{os.getpid()}_{secrets.token_hex(4)}"
        self._shm = shared_memory.SharedMemory(
            name=self.name, create=True, size=2 * nworkers * slot
        )
        buf = self._shm.buf
        #: Driver -> worker ``p`` (window imports).
        self.to_worker: List[SpscRing] = []
        #: Worker ``p`` -> driver (window exports).
        self.from_worker: List[SpscRing] = []
        for p in range(nworkers):
            lo = 2 * p * slot
            self.to_worker.append(SpscRing(buf[lo:lo + slot], ring_bytes))
            self.from_worker.append(
                SpscRing(buf[lo + slot:lo + 2 * slot], ring_bytes)
            )
        self._closed = False
        self._unlinked = False

    def close(self) -> None:
        """Unmap this process's view (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for ring in self.to_worker + self.from_worker:
            ring.release()
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment name (driver only, idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


# -- batch descriptors -------------------------------------------------------
#: Pipe-side descriptors naming where a batch's bytes live.
DESC_NONE = ("none",)


def encode_exports(exports: List[tuple], scratch: bytearray) -> bool:
    """Serialize ``exports`` into ``scratch``; the encode half of
    :func:`send_batch`.  Returns whether there is anything to push."""
    if not exports:
        return False
    del scratch[:]
    encode_batch(exports, scratch)
    return True


def push_encoded(ring: SpscRing, scratch: bytearray, nonempty: bool):
    """Push an :func:`encode_exports` blob; the ring half of
    :func:`send_batch`.  Returns the pipe descriptor."""
    if not nonempty:
        return DESC_NONE
    seq = ring.try_push(scratch)
    if seq is None:
        return ("spill", bytes(scratch))
    return ("ring", seq)


def send_batch(ring: SpscRing, exports: List[tuple], scratch: bytearray):
    """Encode ``exports`` into ``ring``; returns the pipe descriptor.

    ``("none",)`` for an empty batch, ``("ring", seq)`` for the fast
    path, ``("spill", blob)`` when the batch outgrows the ring's free
    space (the encoded bytes then ride the pipe message itself).
    """
    return push_encoded(ring, scratch, encode_exports(exports, scratch))


def recv_batch(ring: SpscRing, desc) -> List[tuple]:
    """Decode the batch named by a :func:`send_batch` descriptor."""
    tag = desc[0]
    if tag == "none":
        return []
    if tag == "spill":
        return decode_batch(desc[1])
    if tag != "ring":
        raise RingError(f"unknown batch descriptor {desc!r}")
    data = ring.begin_pop()
    if desc[1] != ring._pop_seq:
        raise RingError(
            f"batch descriptor names record {desc[1]}, ring is at "
            f"{ring._pop_seq}"
        )
    try:
        exports = decode_batch(data)
    finally:
        if type(data) is memoryview:
            data.release()
    ring.commit_pop()
    return exports
