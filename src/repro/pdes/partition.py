"""Node-granularity partitioning of one simulated machine.

The parallel engine splits the machine's *nodes* -- never individual
cores -- across worker processes.  Node granularity is what makes
conservative synchronisation cheap and exact:

* same-node traffic (:meth:`~repro.machine.topology.Machine.
  transmit_local` and the mailbox's free local hops) never crosses a
  partition, so the shared-memory fast paths run untouched;
* the per-node NIC resources live wholly inside one partition, so all
  NIC queueing/contention is simulated by a single kernel, in the same
  event order as the serial run;
* the only cross-partition interaction is a packet on the wire, which is
  bounded below by the network model's
  :attr:`~repro.machine.netmodel.NetworkModel.min_wire_latency` -- the
  engine's lookahead.

Nodes are assigned in contiguous blocks (the same split as
``numpy.array_split``): partition sizes differ by at most one node and
the mapping is a pure function of ``(nodes, nparts)``, so every worker
derives it independently.
"""

from __future__ import annotations

from typing import List, Tuple


class NodePartition:
    """Deterministic contiguous mapping of nodes (and ranks) to partitions."""

    def __init__(self, nodes: int, cores_per_node: int, nparts: int):
        if nparts < 1:
            raise ValueError(f"need at least one partition, got {nparts}")
        if nparts > nodes:
            raise ValueError(
                f"cannot split {nodes} node(s) across {nparts} partitions: "
                "partitioning is per node (cores of one node share NIC "
                "resources and shared-memory paths)"
            )
        self.nodes = nodes
        self.cores_per_node = cores_per_node
        self.nparts = nparts
        # numpy.array_split semantics: the first ``nodes % nparts``
        # blocks get one extra node.
        base, extra = divmod(nodes, nparts)
        bounds = [0]
        for p in range(nparts):
            bounds.append(bounds[-1] + base + (1 if p < extra else 0))
        self._bounds = bounds
        self._owner_of_node: List[int] = []
        for p in range(nparts):
            self._owner_of_node.extend([p] * (bounds[p + 1] - bounds[p]))

    # -- node side ---------------------------------------------------------
    def node_range(self, part: int) -> Tuple[int, int]:
        """Half-open ``[first, last)`` node range owned by ``part``."""
        return self._bounds[part], self._bounds[part + 1]

    def nodes_of(self, part: int) -> range:
        lo, hi = self.node_range(part)
        return range(lo, hi)

    def owner_of_node(self, node: int) -> int:
        return self._owner_of_node[node]

    # -- rank side ---------------------------------------------------------
    def ranks_of(self, part: int) -> range:
        """World ranks owned by ``part`` (contiguous: ranks are node-major)."""
        lo, hi = self.node_range(part)
        c = self.cores_per_node
        return range(lo * c, hi * c)

    def owner_of_rank(self, rank: int) -> int:
        return self._owner_of_node[rank // self.cores_per_node]

    def __repr__(self) -> str:
        blocks = ", ".join(
            f"p{p}:nodes[{self._bounds[p]}:{self._bounds[p + 1]}]"
            for p in range(self.nparts)
        )
        return f"NodePartition({blocks})"
