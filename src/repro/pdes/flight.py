"""The PDES flight recorder: cross-process telemetry for one run.

The serial ``repro.trace`` layer stops at the fork boundary: a worker's
tracer lives and dies inside the worker process.  The flight recorder
closes that blind spot.  When enabled (``PdesWorld(flight=True)``):

* every **worker** buffers per-window *phase spans* on its own monotonic
  clock -- ``barrier-wait`` (blocked on the control pipe),
  ``import-drain`` (descriptor decode + injection), ``compute`` (the
  unchanged serial kernel pumping events), ``export-serialize`` (the
  columnar wire encode) and ``ring-push`` (the SPSC push / report send)
  -- plus a full in-worker :class:`~repro.trace.Tracer` over the
  simulated stack (mailbox/transport/NIC events on the *simulated*
  clock, kernel progress samples on the worker's wall clock);
* the **driver** interleaves its own spans -- ``horizon`` (window
  horizon computation incl. the adaptive-K decision), ``re-inject``
  (routing + shipping import batches) and ``fan-in`` (waiting on
  barrier reports + materialising export batches) -- and samples
  per-round ring telemetry (occupancy, spill and byte counters from the
  always-on :class:`~repro.pdes.rings.RingStats`);
* worker buffers are streamed back **out of band**: they ride the
  control pipe piggybacked on the final ``REP_RESULT`` message, never
  through the data rings, so recording cannot perturb the export plane;
* worker clocks are aligned by a **handshake**: after ``REP_READY`` the
  driver ping-pongs :data:`~repro.pdes.worker.CMD_CLOCK` probes and
  keeps the minimum-RTT midpoint estimate (:func:`estimate_offset`);
  the merged :class:`FlightLog` maps every worker timestamp onto the
  driver's clock.

The merger emits one unified Chrome trace (one process-group per worker
plus one for the driver, all on the host wall-clock axis, alongside the
usual simulated-time groups), a per-round ring telemetry series, and
the schema-versioned overhead **attribution** document rendered by
:mod:`repro.trace.pdes_report` (CLI:
``python -m repro.bench pdes --attribute``).

Cost discipline (same as PR 1's tracer): with recording off the worker
hot path pays exactly one cached-attribute check
(``PartitionRuntime.step`` loads ``self.flight`` once) and the
per-event pump loop is untouched; recording on only *reads* simulated
state and appends to process-local buffers, so the run stays
bit-identical (``tests/pdes/test_flight.py`` enforces both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

#: Worker wall-clock phase buckets, in pipeline order.  Together they
#: tile a worker's serve-loop span (the attribution report asserts
#: >= 95% coverage; the remainder is loop bookkeeping between clock
#: reads).
WORKER_PHASES = (
    "compute",
    "export-serialize",
    "ring-push",
    "barrier-wait",
    "import-drain",
)

#: Driver wall-clock phase buckets.  ``fan-in`` includes the wait for
#: barrier reports -- on a single-CPU host that *is* the cost of the
#: driver's single-threaded fan-in design, which is exactly the number
#: the ROADMAP asks for.
DRIVER_PHASES = ("horizon", "fan-in", "re-inject")

#: Clock-handshake probes per worker; the minimum-RTT probe wins.
CLOCK_PROBES = 5

#: Default in-worker tracer categories.  ``exec`` and ``pdes`` are
#: driver-side categories; kernel/process are too chatty to ship by
#: default.
WORKER_TRACE_CATEGORIES = ("app", "mailbox", "mpi", "resource")

#: Chrome pid values of the flight recorder's host wall-clock process
#: groups.  Kept clear of repro.trace.chrome's PID_* (1..4): the merged
#: trace carries both domains side by side.
PID_FLIGHT_DRIVER = 100
PID_FLIGHT_WORKER0 = 101


@dataclass(frozen=True)
class FlightSpec:
    """What a worker should record (inherited across the fork)."""

    #: Trace categories enabled on the in-worker tracer; ``()`` records
    #: only phase spans and kernel progress samples.
    categories: Tuple[str, ...] = WORKER_TRACE_CATEGORIES


def estimate_offset(probes: List[Tuple[float, float, float]]) -> float:
    """Estimate a worker clock's offset from handshake probes.

    Each probe is ``(t_send, t_worker, t_recv)``: driver clock at send,
    worker clock inside the echo, driver clock at receipt.  The probe
    with the smallest round trip is the least contaminated by
    scheduling noise; assuming its delay is symmetric, the worker clock
    read happened at driver instant ``(t_send + t_recv) / 2``, so::

        offset = t_worker - (t_send + t_recv) / 2
        t_driver = t_worker - offset

    (On Linux ``perf_counter`` is system-wide ``CLOCK_MONOTONIC`` and
    offsets come out near zero; the handshake keeps the merge honest on
    platforms where each process gets its own epoch.)
    """
    if not probes:
        raise ValueError("no clock probes")
    t_send, t_worker, t_recv = min(probes, key=lambda p: p[2] - p[0])
    return t_worker - (t_send + t_recv) / 2.0


class WorkerFlight:
    """A worker's buffered recorder (lives in the worker process).

    Appends ``(phase, t_start, dur, round)`` span tuples -- worker
    monotonic clock -- to a plain list.  Nothing here touches the data
    rings or the simulation; the buffer ships back with the final
    ``REP_RESULT``.
    """

    __slots__ = ("part", "spans", "round", "tracer", "t0")

    def __init__(self, part: int, tracer=None):
        self.part = part
        self.spans: List[Tuple[str, float, float, int]] = []
        #: Window round the next spans belong to (round 0 is the
        #: report-only round; clock-handshake waits land on round 0 too).
        self.round = 0
        #: The in-worker :class:`~repro.trace.Tracer`, or ``None``.
        self.tracer = tracer
        self.t0 = perf_counter()

    def span(self, phase: str, t_start: float, dur: float) -> None:
        self.spans.append((phase, t_start, dur, self.round))

    def snapshot(self, runtime) -> dict:
        """Everything the driver-side merger needs, all picklable."""
        tracer = self.tracer
        tx = getattr(runtime, "_tx", None)
        rx = getattr(runtime, "_rx", None)
        return {
            "part": self.part,
            "t0": self.t0,
            "spans": list(self.spans),
            "steps": runtime.sim.steps,
            "ring": {
                "exports": tx.stats.as_dict() if tx is not None else None,
                "imports": rx.stats.as_dict() if rx is not None else None,
            },
            "progress": list(tracer.progress_samples) if tracer else [],
            "trace_events": (
                [tuple(ev) for ev in tracer.events] if tracer else []
            ),
        }


class DriverFlight:
    """The driver's span buffer and per-round ring telemetry sampler."""

    __slots__ = ("spans", "rounds", "t_start", "t_end", "_popped", "_pushed")

    def __init__(self) -> None:
        self.spans: List[Tuple[str, float, float, int]] = []
        #: Per-round telemetry rows (dicts; see :meth:`sample_round`).
        self.rounds: List[dict] = []
        self.t_start = perf_counter()
        self.t_end = self.t_start
        self._popped = 0
        self._pushed = 0

    def span(self, phase: str, t_start: float, dur: float, rnd: int) -> None:
        self.spans.append((phase, t_start, dur, rnd))

    def sample_round(self, rnd: int, rings, k: int, exports: int,
                     spills: int) -> None:
        """One ring-telemetry row at the barrier of round ``rnd``.

        Occupancy is read live from the shared counters; byte/batch
        volumes are per-round deltas of the driver-side
        :class:`~repro.pdes.rings.RingStats` (exact: the driver pops
        every export batch and pushes every import batch).
        """
        row = {
            "round": rnd,
            "t": perf_counter(),
            "k": k,
            "exports": exports,
            "spills": spills,
        }
        if rings is not None:
            popped = sum(r.stats.bytes_popped for r in rings.from_worker)
            pushed = sum(r.stats.bytes_pushed for r in rings.to_worker)
            row["export_bytes"] = popped - self._popped
            row["import_bytes"] = pushed - self._pushed
            row["batches"] = sum(r.stats.pops for r in rings.from_worker)
            row["occupancy"] = [r.used for r in rings.from_worker]
            self._popped, self._pushed = popped, pushed
        self.rounds.append(row)

    def rounds_rel(self) -> List[dict]:
        """Ring-telemetry rows with ``t`` relative to the flight epoch."""
        t0 = self.t_start
        return [{**row, "t": row["t"] - t0} for row in self.rounds]


@dataclass
class FlightLog:
    """The merged, clock-aligned record of one flight-recorded run."""

    driver: DriverFlight
    #: Per-partition snapshots (see :meth:`WorkerFlight.snapshot`).
    workers: List[dict]
    #: Per-partition clock offsets from :func:`estimate_offset`
    #: (``t_driver = t_worker - offset``).
    offsets: List[float]
    #: Engine facts for the report (transport, rounds, counters, ...).
    meta: Dict[str, Any] = field(default_factory=dict)

    # -- clock alignment ---------------------------------------------------
    def aligned_spans(self, part: int) -> List[Tuple[str, float, float, int]]:
        """A worker's spans mapped onto the driver clock."""
        off = self.offsets[part]
        return [
            (phase, t - off, dur, rnd)
            for phase, t, dur, rnd in self.workers[part]["spans"]
        ]

    # -- attribution -------------------------------------------------------
    @staticmethod
    def _tile(spans, phases) -> dict:
        """Bucket totals + coverage of one process's span list."""
        buckets = {p: 0.0 for p in phases}
        if not spans:
            return {"span_s": 0.0, "buckets": buckets, "coverage": 0.0}
        t0 = min(s[1] for s in spans)
        t1 = max(s[1] + s[2] for s in spans)
        for phase, _t, dur, _rnd in spans:
            buckets[phase] = buckets.get(phase, 0.0) + dur
        span = t1 - t0
        total = sum(buckets.values())
        return {
            "span_s": span,
            "buckets": buckets,
            "coverage": (total / span) if span > 0 else 1.0,
        }

    def attribution(self) -> dict:
        """The schema-versioned overhead-attribution document.

        Tiles each worker's and the driver's wall clock into the named
        phase buckets and states the measured *serial-equivalent
        fraction*: the share of the run's wall-clock span that went to
        ``compute`` -- event processing a serial run would also have
        done -- summed across workers.  Everything above it is the
        partitioning overhead (serialization, ring traffic, barriers,
        driver fan-in); on a single-CPU host the fraction is bounded by
        ``1 / nworkers`` plus timeslicing, which the report makes
        visible instead of leaving to folklore.
        """
        from ..trace.pdes_report import SCHEMA

        drv = self._tile(self.driver.spans, DRIVER_PHASES)
        wall = self.driver.t_end - self.driver.t_start
        workers = []
        compute_total = 0.0
        for snap in self.workers:
            p = snap["part"]
            tile = self._tile(self.aligned_spans(p), WORKER_PHASES)
            tile.update(
                part=p,
                steps=snap["steps"],
                clock_offset_s=self.offsets[p],
                ring=snap["ring"],
            )
            compute_total += tile["buckets"]["compute"]
            workers.append(tile)
        return {
            "schema": SCHEMA,
            "kind": "pdes-attribution",
            "meta": dict(self.meta),
            "driver": {**drv, "wall_s": wall},
            "workers": workers,
            "rounds": list(self.driver.rounds_rel()),
            "serial_equivalent": {
                "compute_s": compute_total,
                "wall_s": wall,
                "fraction": (compute_total / wall) if wall > 0 else 0.0,
            },
        }

    # -- chrome export -----------------------------------------------------
    def to_chrome_events(self) -> List[dict]:
        """Host wall-clock process groups: the driver plus one per worker.

        Timestamps are microseconds since the driver's flight epoch
        (``DriverFlight.t_start``), so the groups interleave correctly
        after clock alignment.  Appended to the simulated-time groups of
        :func:`repro.trace.chrome.to_chrome_events` this is the one
        unified trace the tentpole asks for.
        """
        t0 = self.driver.t_start
        out: List[dict] = [
            _meta(PID_FLIGHT_DRIVER, "pdes driver (wall clock)"),
            _meta(PID_FLIGHT_DRIVER, "phases", tid=0, kind="thread_name"),
        ]
        for phase, t, dur, rnd in self.driver.spans:
            out.append(_span(PID_FLIGHT_DRIVER, phase, t - t0, dur, rnd))
        for row in self.driver.rounds:
            out.append({
                "name": "ring export bytes", "cat": "pdes-flight", "ph": "C",
                "ts": (row["t"] - t0) * 1e6, "pid": PID_FLIGHT_DRIVER,
                "tid": 0, "args": {"value": row.get("export_bytes", 0)},
            })
        for snap in self.workers:
            p = snap["part"]
            pid = PID_FLIGHT_WORKER0 + p
            out.append(_meta(pid, f"pdes worker {p} (wall clock)"))
            out.append(_meta(pid, "phases", tid=0, kind="thread_name"))
            for phase, t, dur, rnd in self.aligned_spans(p):
                out.append(_span(pid, phase, t - t0, dur, rnd))
        return out

    def merge_into_tracer(self, tracer) -> None:
        """Fold worker telemetry into a driver-side tracer.

        Worker *simulated-time* trace events join the tracer's memory
        sink (rank/NIC lanes are partition-disjoint, so this rebuilds
        the serial-style timeline); worker kernel progress samples land
        in ``tracer.worker_progress`` under a ``worker<p>`` label so the
        metrics table can tell the processes' wall-clock columns apart
        (the ``rank_group`` column).
        """
        from ..trace.tracer import TraceEvent

        for snap in self.workers:
            label = f"worker{snap['part']}"
            # Always set the key, even with no samples: the metrics row
            # shape (one bin set per worker) must not depend on how far
            # a worker happened to get.
            tracer.worker_progress[label] = list(snap["progress"])
            for ev in snap["trace_events"]:
                tracer._record(TraceEvent(*ev))


def _meta(pid: int, name: str, tid: int = 0, kind: str = "process_name") -> dict:
    return {"name": kind, "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}}


def _span(pid: int, phase: str, t_rel: float, dur: float, rnd: int) -> dict:
    return {
        "name": phase, "cat": "pdes-flight", "ph": "X",
        "ts": t_rel * 1e6, "dur": dur * 1e6, "pid": pid, "tid": 0,
        "args": {"round": rnd},
    }
