"""The pickle-free wire codec for cross-partition export batches.

One export batch is every packet a partition put on the wire during one
window round: a list of ``(t_wire, src, dst, nbytes, Packet)`` tuples.
:func:`encode_batch` lays a batch out columnar-first so the ring
transport (:mod:`repro.pdes.rings`) can ship it as one contiguous
blob and the decoder touches NumPy once per *batch*, not once per
packet::

    batch   := count
               t_wire: f8[count]  src: i8[count]       -- serde ndarrays
               dst:    i8[count]  nbytes: i8[count]
               metas   -- serde list of distinct (ctx, kind, tag)
               ilen istream[ilen]   -- fused int64 column stream
               flen fstream[flen]   -- fused float64 column stream
               record[count]
    record  := midx payload
               midx > 0: metas[midx-1] + serde lin; envelope src/dst/
                         nbytes come from the batch columns
               midx = 0: serde (ctx,kind,tag,lin,src,dst,nbytes)
                         -- defensive fallback for hand-built packets
                         whose envelope diverges from the export row
    payload := M_COLS1 cols           -- exactly [one P2PColumns]
             | M_ENTRIES n entry[n]   -- mixed coalescing-entry list
             | M_OBJ serde-object | M_BYTEARRAY serde-bytes
    cols    := 1 n lflag mode         -- fast form: dests, nbytes,
                                      [lins], and an all-int/all-float
                                      payload column live in the side
                                      streams as raw 8-byte runs
             | 0 serde-arrays ...     -- generic form (odd dtypes)

Scalars and objects go through serde ``pack_into``/``unpack_from``; the
*bulk* -- every int64/float64 column of every entry in the batch -- is
appended raw to one of two side streams and recovered with a single
``np.frombuffer`` + copy per stream, then sliced per entry.  Slices of
one writable base are handed to :class:`P2PColumns` directly (disjoint
ranges, so entry columns stay independently mutable).  There is no
``pickle`` anywhere on this path (``tools/hotpath_lint.py`` enforces
that).

Packet meta is dictionary-encoded: batches repeat a handful of
``(ctx, kind, tag)`` combinations thousands of times, so each record
spends one uvarint on them.  ``lin`` (the causal-profiler lineage id)
stays per-record -- it is distinct per packet when profiling is on.

The P2PColumns object-payload column takes the all-int or all-float
raw-stream path only when a cheap exact-type scan proves it safe --
``bool`` is an ``int`` subclass and NumPy scalars compare equal to
Python ints, so anything but exact ``int``/``float`` elements falls
back to per-element serde, preserving bit-identical payload objects.
"""

from __future__ import annotations

from array import array
from typing import List

import numpy as np

from ..core.coalescing import BatchEntry, BcastEntry, P2PColumns, P2PEntry
from ..mpi.envelope import Packet
from ..serde.packer import (
    SerdeError,
    _read_uvarint,
    _write_uvarint,
    pack_into,
    unpack_from,
)

#: Payload markers (what a packet carries), raw single bytes.
PAYLOAD_OBJ = 0
PAYLOAD_BYTEARRAY = 1
PAYLOAD_ENTRIES = 2
PAYLOAD_COLS1 = 3  # the common case: exactly [one P2PColumns]

#: Coalescing-entry tags inside a PAYLOAD_ENTRIES list.
E_OBJ = 0  # not an entry object: generic serde element
E_P2P = 1
E_BCAST = 2
E_BATCH = 3
E_COLS = 4

#: P2PColumns object-payload column encodings.
COL_INT64 = 0
COL_FLOAT64 = 1
COL_OBJECTS = 2

_ENTRY_TAGS = {
    P2PEntry: E_P2P,
    BcastEntry: E_BCAST,
    BatchEntry: E_BATCH,
    P2PColumns: E_COLS,
}

_INT_ONLY = frozenset((int,))
_FLOAT_ONLY = frozenset((float,))

_I8 = np.dtype(np.int64)
_F8 = np.dtype(np.float64)

_NEW_COLS = P2PColumns.__new__
_NEW_PKT = Packet.__new__


class WireError(RuntimeError):
    """An export batch failed to encode or decode."""


# -- payload objects ---------------------------------------------------------
def _pack_obj(out: bytearray, obj) -> None:
    """One payload value: generic serde, with a bytearray escape.

    The serde packer deliberately has no bytearray tag (it would be
    ambiguous with bytes on the unpack side); app payloads may still be
    bytearrays, so flag them explicitly and restore the type on decode.
    """
    if type(obj) is bytearray:
        out.append(PAYLOAD_BYTEARRAY)
        pack_into(out, bytes(obj))
    else:
        out.append(PAYLOAD_OBJ)
        try:
            pack_into(out, obj)
        except SerdeError as exc:
            raise WireError(
                f"payload {type(obj).__name__!r} is not serde-packable; "
                "register the type (repro.serde.register) or run with "
                "PDES_TRANSPORT=pipe"
            ) from exc


def _unpack_obj(buf, pos):
    marker = buf[pos]
    obj, pos = unpack_from(buf, pos + 1)
    if marker == PAYLOAD_BYTEARRAY:
        obj = bytearray(obj)
    return obj, pos


# -- P2PColumns --------------------------------------------------------------
def _cols_fast(arr) -> bool:
    return (
        type(arr) is np.ndarray
        and (arr.dtype is _I8 or arr.dtype == _I8)
        and arr.flags.c_contiguous
    )


def _pack_cols(
    rec: bytearray, ibuf: bytearray, fbuf: bytearray, e: P2PColumns
) -> None:
    """One P2PColumns entry: columns into the side streams when the
    dtypes allow (they always do for runs built by the mailbox), the
    generic serde form otherwise."""
    dests, nbytes, lins, pay = e.dests, e.nbytes, e.lins, e.payloads
    n = e.count
    if (
        type(dests) is np.ndarray
        and (dests.dtype is _I8 or dests.dtype == _I8)
        and dests.flags.c_contiguous
        and type(nbytes) is np.ndarray
        and (nbytes.dtype is _I8 or nbytes.dtype == _I8)
        and nbytes.flags.c_contiguous
        and (lins is None or (_cols_fast(lins) and len(lins) == n))
    ):
        rec.append(1)
        if n < 0x80:
            rec.append(n)
        else:
            _write_uvarint(rec, n)
        _write_uvarint(rec, e.wire_bytes)
        ibuf += dests.data
        ibuf += nbytes.data
        if lins is None:
            rec.append(0)
        else:
            rec.append(1)
            ibuf += lins.data
        lst = pay.tolist()
        kinds = set(map(type, lst))
        if kinds == _INT_ONLY:
            try:
                col = array("q", lst)
            except OverflowError:
                col = None
            if col is not None:
                rec.append(COL_INT64)
                ibuf += col
                return
        elif kinds == _FLOAT_ONLY:
            rec.append(COL_FLOAT64)
            fbuf += array("d", lst)
            return
        rec.append(COL_OBJECTS)
        for obj in lst:
            _pack_obj(rec, obj)
        return
    # Generic form: any dtype, any layout, via serde arrays.
    rec.append(0)
    pack_into(rec, dests)
    pack_into(rec, nbytes)
    pack_into(rec, None if lins is None else lins)
    kinds = set(map(type, pay))
    if kinds == _INT_ONLY:
        try:
            col = np.fromiter(pay, np.int64, n)
        except OverflowError:
            col = None
        if col is not None:
            rec.append(COL_INT64)
            pack_into(rec, col)
            return
    elif kinds == _FLOAT_ONLY:
        rec.append(COL_FLOAT64)
        pack_into(rec, np.fromiter(pay, np.float64, n))
        return
    rec.append(COL_OBJECTS)
    for obj in pay:
        _pack_obj(rec, obj)


def _unpack_cols(buf, pos, istream, fstream, io, fo):
    """Mirror of :func:`_pack_cols`; returns (entry, pos, io, fo)."""
    form = buf[pos]
    pos += 1
    if form == 1:
        n, pos = _read_uvarint(buf, pos)
        wire_bytes, pos = _read_uvarint(buf, pos)
        dests = istream[io:io + n]
        nbytes = istream[io + n:io + 2 * n]
        io += 2 * n
        if buf[pos]:
            lins = istream[io:io + n]
            io += n
        else:
            lins = None
        mode = buf[pos + 1]
        pos += 2
        if mode == COL_INT64:
            # astype(object) boxes to exact Python ints in one pass.
            pay = istream[io:io + n].astype(object)
            io += n
        elif mode == COL_FLOAT64:
            pay = fstream[fo:fo + n].astype(object)
            fo += n
        elif mode == COL_OBJECTS:
            pay = np.empty(n, dtype=object)
            for j in range(n):
                pay[j], pos = _unpack_obj(buf, pos)
        else:
            raise WireError(f"unknown payload-column mode {mode}")
        # Bypass __init__: lengths are consistent by construction and
        # wire_bytes rides the wire instead of being re-summed.
        e = _NEW_COLS(P2PColumns)
        e.dests = dests
        e.payloads = pay
        e.nbytes = nbytes
        e.lins = lins
        e.count = n
        e.wire_bytes = wire_bytes
        return e, pos, io, fo
    dests, pos = unpack_from(buf, pos)
    nbytes, pos = unpack_from(buf, pos)
    lins, pos = unpack_from(buf, pos)
    n = len(dests)
    mode = buf[pos]
    pos += 1
    if mode == COL_INT64 or mode == COL_FLOAT64:
        col, pos = unpack_from(buf, pos)
        # astype(object) boxes to exact Python ints/floats, restoring
        # the original object column element types bit-for-bit.
        pay = col.astype(object)
    elif mode == COL_OBJECTS:
        pay = np.empty(n, dtype=object)
        for j in range(n):
            pay[j], pos = _unpack_obj(buf, pos)
    else:
        raise WireError(f"unknown payload-column mode {mode}")
    return P2PColumns(dests, pay, nbytes, lins), pos, io, fo


# -- coalescing entries ------------------------------------------------------
def _pack_entry(rec: bytearray, ibuf: bytearray, fbuf: bytearray, entry):
    tag = _ENTRY_TAGS.get(type(entry), E_OBJ)
    rec.append(tag)
    if tag == E_COLS:
        _pack_cols(rec, ibuf, fbuf, entry)
    elif tag == E_P2P:
        pack_into(rec, (entry.dest, entry.nbytes, entry.lin))
        _pack_obj(rec, entry.payload)
    elif tag == E_BCAST:
        pack_into(rec, (entry.origin, entry.nbytes, entry.lin))
        _pack_obj(rec, entry.payload)
    elif tag == E_BATCH:
        pack_into(rec, entry.dests)
        pack_into(rec, entry.batch)
        pack_into(rec, None if entry.lins is None else entry.lins)
    else:
        _pack_obj(rec, entry)


def _unpack_entry(buf, pos, istream, fstream, io, fo):
    tag = buf[pos]
    pos += 1
    if tag == E_COLS:
        return _unpack_cols(buf, pos, istream, fstream, io, fo)
    if tag == E_P2P:
        (dest, nbytes, lin), pos = unpack_from(buf, pos)
        payload, pos = _unpack_obj(buf, pos)
        return P2PEntry(dest, payload, nbytes, lin), pos, io, fo
    if tag == E_BCAST:
        (origin, nbytes, lin), pos = unpack_from(buf, pos)
        payload, pos = _unpack_obj(buf, pos)
        return BcastEntry(origin, payload, nbytes, lin), pos, io, fo
    if tag == E_BATCH:
        dests, pos = unpack_from(buf, pos)
        batch, pos = unpack_from(buf, pos)
        lins, pos = unpack_from(buf, pos)
        return BatchEntry(dests, batch, lins), pos, io, fo
    if tag == E_OBJ:
        obj, pos = _unpack_obj(buf, pos)
        return obj, pos, io, fo
    raise WireError(f"unknown entry tag {tag}")


# -- whole batches -----------------------------------------------------------
def encode_batch(exports: List[tuple], out: bytearray) -> None:
    """Append the encoding of one export batch to ``out``."""
    n = len(exports)
    pack_into(out, n)
    if n == 0:
        return
    t_wire, src, dst, nbytes, packets = zip(*exports)
    pack_into(out, np.fromiter(t_wire, np.float64, n))
    pack_into(out, np.fromiter(src, np.int64, n))
    pack_into(out, np.fromiter(dst, np.int64, n))
    pack_into(out, np.fromiter(nbytes, np.int64, n))
    metas: List[tuple] = []
    midx: dict = {}
    rec = bytearray()
    ibuf = bytearray()
    fbuf = bytearray()
    for i, pkt in enumerate(packets):
        if (
            pkt.src == src[i]
            and pkt.dst == dst[i]
            and pkt.nbytes == nbytes[i]
        ):
            key = (pkt.ctx, pkt.kind, pkt.tag)
            m = midx.get(key)
            if m is None:
                m = midx[key] = len(metas) + 1
                metas.append(key)
            if m < 0x80:
                rec.append(m)
            else:
                _write_uvarint(rec, m)
            if pkt.lin is None:  # the overwhelmingly common case
                rec.append(0)  # serde T_NONE
            else:
                pack_into(rec, pkt.lin)
        else:
            rec.append(0)
            pack_into(
                rec,
                (pkt.ctx, pkt.kind, pkt.tag, pkt.lin,
                 pkt.src, pkt.dst, pkt.nbytes),
            )
        payload = pkt.payload
        if (
            type(payload) is list
            and payload
            and type(payload[0]) in _ENTRY_TAGS
        ):
            if len(payload) == 1 and type(payload[0]) is P2PColumns:
                rec.append(PAYLOAD_COLS1)
                _pack_cols(rec, ibuf, fbuf, payload[0])
            else:
                rec.append(PAYLOAD_ENTRIES)
                _write_uvarint(rec, len(payload))
                for entry in payload:
                    _pack_entry(rec, ibuf, fbuf, entry)
        else:
            _pack_obj(rec, payload)
    pack_into(out, metas)
    _write_uvarint(out, len(ibuf))
    out += ibuf
    _write_uvarint(out, len(fbuf))
    out += fbuf
    out += rec


def decode_batch(buf) -> List[tuple]:
    """Decode one export batch encoded by :func:`encode_batch`.

    ``buf`` may be any buffer -- including a memoryview straight into a
    shared-memory ring; everything is copied out before returning.
    """
    if type(buf) is not memoryview:
        buf = memoryview(buf)
    n, pos = unpack_from(buf, 0)
    if n == 0:
        return []
    t_wire, pos = unpack_from(buf, pos)
    src, pos = unpack_from(buf, pos)
    dst, pos = unpack_from(buf, pos)
    nbytes, pos = unpack_from(buf, pos)
    t_wire = t_wire.tolist()
    src = src.tolist()
    dst = dst.tolist()
    nbytes = nbytes.tolist()
    metas, pos = unpack_from(buf, pos)
    ilen, pos = _read_uvarint(buf, pos)
    istream = None
    if ilen:
        istream = np.frombuffer(buf[pos:pos + ilen], _I8).copy()
        pos += ilen
    flen, pos = _read_uvarint(buf, pos)
    fstream = None
    if flen:
        fstream = np.frombuffer(buf[pos:pos + flen], _F8).copy()
        pos += flen
    io = 0
    fo = 0
    exports: List[tuple] = []
    append = exports.append
    for i in range(n):
        m = buf[pos]
        if m < 0x80:
            pos += 1
        else:
            m, pos = _read_uvarint(buf, pos)
        if m:
            ctx, kind, tag = metas[m - 1]
            if buf[pos] == 0:  # serde T_NONE: profiling off
                lin = None
                pos += 1
            else:
                lin, pos = unpack_from(buf, pos)
            p_src = src[i]
            p_dst = dst[i]
            p_nbytes = nbytes[i]
        else:
            meta, pos = unpack_from(buf, pos)
            ctx, kind, tag, lin, p_src, p_dst, p_nbytes = meta
        marker = buf[pos]
        pos += 1
        if marker == PAYLOAD_COLS1 and buf[pos] == 1:
            # Inlined fast form of :func:`_unpack_cols` -- the loop body
            # the engine runs once per exported packet.
            cnt = buf[pos + 1]
            if cnt < 0x80:
                pos += 2
            else:
                cnt, pos = _read_uvarint(buf, pos + 1)
            wire_b = buf[pos]
            if wire_b < 0x80:
                pos += 1
            elif buf[pos + 1] < 0x80:
                # Two-byte uvarint: typical wire_bytes of a short run.
                wire_b = (wire_b & 0x7F) | (buf[pos + 1] << 7)
                pos += 2
            else:
                wire_b, pos = _read_uvarint(buf, pos)
            cdests = istream[io:io + cnt]
            cnbytes = istream[io + cnt:io + 2 * cnt]
            io += 2 * cnt
            if buf[pos]:
                clins = istream[io:io + cnt]
                io += cnt
            else:
                clins = None
            mode = buf[pos + 1]
            pos += 2
            if mode == COL_INT64:
                # astype(object) boxes to exact Python ints in one pass.
                pay = istream[io:io + cnt].astype(object)
                io += cnt
            elif mode == COL_FLOAT64:
                pay = fstream[fo:fo + cnt].astype(object)
                fo += cnt
            elif mode == COL_OBJECTS:
                pay = np.empty(cnt, dtype=object)
                for j in range(cnt):
                    pay[j], pos = _unpack_obj(buf, pos)
            else:
                raise WireError(f"unknown payload-column mode {mode}")
            e = _NEW_COLS(P2PColumns)
            e.dests = cdests
            e.payloads = pay
            e.nbytes = cnbytes
            e.lins = clins
            e.count = cnt
            e.wire_bytes = wire_b
            payload = [e]
        elif marker == PAYLOAD_COLS1:
            entry, pos, io, fo = _unpack_cols(
                buf, pos, istream, fstream, io, fo
            )
            payload = [entry]
        elif marker == PAYLOAD_ENTRIES:
            cnt, pos = _read_uvarint(buf, pos)
            payload = []
            for _ in range(cnt):
                entry, pos, io, fo = _unpack_entry(
                    buf, pos, istream, fstream, io, fo
                )
                payload.append(entry)
        elif marker == PAYLOAD_OBJ:
            payload, pos = unpack_from(buf, pos)
        elif marker == PAYLOAD_BYTEARRAY:
            payload, pos = unpack_from(buf, pos)
            payload = bytearray(payload)
        else:
            raise WireError(f"unknown payload marker {marker}")
        # Bypass the dataclass __init__ (it's ~2x the cost of a dict
        # literal and this runs once per packet); field order matches
        # the dataclass declaration so repr/eq behave identically.
        pkt = _NEW_PKT(Packet)
        pkt.__dict__ = {
            "src": p_src, "dst": p_dst, "ctx": ctx, "kind": kind,
            "tag": tag, "payload": payload, "nbytes": p_nbytes, "lin": lin,
        }
        append((t_wire[i], src[i], dst[i], nbytes[i], pkt))
    if (istream is not None and 8 * io != ilen) or (
        fstream is not None and 8 * fo != flen
    ):
        raise WireError(
            f"side streams not fully consumed (int {8 * io}/{ilen} bytes, "
            f"float {8 * fo}/{flen}): corrupt or mispaired batch"
        )
    return exports
