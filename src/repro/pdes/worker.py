"""The per-partition worker of the parallel DES engine.

Each worker is a forked OS process owning one :class:`NodePartition`
block of the simulated machine.  It builds the *full* serial stack -- a
fresh :class:`~repro.mpi.world.World` with the complete machine shape
and inboxes for every rank -- but launches rank programs only for its
owned ranks and installs the machine's ``on_remote_export`` hook, so:

* all intra-partition simulation (local transfers, NIC contention,
  mailbox routing, same-node fast paths) runs through the unchanged
  serial kernel;
* a packet bound for a foreign rank is captured at its packet-on-wire
  instant and shipped to the driver instead of being simulated in
  flight; the owning partition replays the arrival at the bit-identical
  timestamp via :meth:`~repro.machine.topology.Machine.inject_arrival`.

The worker is driven round by round over a pipe (see
:mod:`repro.pdes.engine` for the window-barrier protocol).  Forking --
not spawning -- matters: rank programs are closures that never need to
be pickled; only per-window packet batches cross the pipe.
"""

from __future__ import annotations

import heapq
import math
import traceback
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional

from ..core.config import MailboxConfig
from ..core.context import YgmContext
from ..core.stats import aggregate
from ..mpi import World
from ..sim.errors import DeadlockError
from .rings import encode_exports, push_encoded, recv_batch, send_batch

#: Command / reply verbs of the driver<->worker pipe protocol.
CMD_STEP = "step"
CMD_CLOCK = "clock"  # flight recorder: echo perf_counter for clock alignment
CMD_FINISH = "finish"
REP_READY = "ready"
REP_CLOCK = "clock"
REP_REPORT = "report"
REP_RESULT = "result"
REP_ERROR = "error"


@dataclass
class WorkerSpec:
    """Everything a forked worker needs (inherited, never pickled)."""

    part: int
    partition: Any  # NodePartition
    machine_config: Any
    scheme: Any  # resolved RoutingScheme object
    seed: int
    default_config: MailboxConfig
    rank_main: Any
    tiebreaker: Any = None
    #: ``"pipe"`` ships export batches as objects over the pipe (the
    #: legacy pickling transport); ``"shm"`` ships them through the
    #: shared-memory rings with only a tiny descriptor on the pipe.
    transport: str = "pipe"
    rings: Any = None  # ShmTransport, shared with the driver via fork
    #: A :class:`~repro.pdes.flight.FlightSpec`, or ``None`` (the
    #: default): flight recording off, zero-cost on the worker hot path.
    flight: Any = None


class CausalityError(RuntimeError):
    """An imported packet arrived behind the partition's clock.

    This cannot happen for conforming runs (the window protocol bounds
    every import below by the horizon); it indicates a protocol bug and
    is raised loudly instead of silently corrupting the timeline.
    """


class PartitionRuntime:
    """One partition's simulation state inside a worker process."""

    def __init__(self, spec: WorkerSpec):
        self.part = spec.part
        self.partition = spec.partition
        #: While injecting an imported arrival, the wire instant the
        #: serial run would have pushed it at (see the tiebreaker below).
        self._push_override: Optional[float] = None
        if spec.partition.nparts > 1:
            tiebreaker = self._make_push_order_tiebreaker(spec.tiebreaker)
        else:
            tiebreaker = spec.tiebreaker
        #: The :class:`~repro.pdes.flight.WorkerFlight` buffer, or
        #: ``None``.  Disabled is the default and costs the serve loop
        #: exactly one cached-attribute check per window, with zero
        #: flight-recorder code executed (both asserted by
        #: tests/pdes/test_flight.py).
        self.flight = None
        flight_tracer = None
        if spec.flight is not None:
            from ..trace import Tracer
            from .flight import WorkerFlight

            # In-worker tracer: simulated-time events + kernel progress
            # samples, buffered locally and shipped with the result.
            # Tracer hooks only *read* simulated state, so the run stays
            # bit-identical (the flight differentials enforce it).
            flight_tracer = Tracer(categories=spec.flight.categories)
            self.flight = WorkerFlight(spec.part, flight_tracer)
        self.world = World(
            spec.machine_config, seed=spec.seed, tracer=flight_tracer,
            tiebreaker=tiebreaker,
        )
        self.sim = self.world.sim
        self.machine = self.world.machine
        self.net = spec.machine_config.net
        self.owned: List[int] = list(spec.partition.ranks_of(spec.part))
        owned_nodes = set(spec.partition.nodes_of(spec.part))
        self._owned_nodes = owned_nodes
        self.exports: List[tuple] = []
        self.transport = spec.transport
        self._scratch = bytearray()
        if spec.rings is not None:
            self._rx = spec.rings.to_worker[spec.part]
            self._tx = spec.rings.from_worker[spec.part]
        else:
            self._rx = self._tx = None

        #: Live pump limit for the current window.  :meth:`pump` seeds it
        #: with the driver's horizon; the exporter hook *tightens* it as
        #: packets hit the wire (see below), which is what makes the
        #: driver's batched per-partition horizons safe.
        self._limit: float = math.inf

        exports_append = self.exports.append
        lookahead = self.net.min_wire_latency
        reflect = 2.0 * lookahead
        owner_of_rank = spec.partition.owner_of_rank
        part = spec.part

        def exporter(t_wire, src, dst, nbytes, packet):
            exports_append((t_wire, src, dst, nbytes, packet))
            # Dynamic clamp: once this partition has influenced the
            # outside world (first export at wire instant w), nothing it
            # does beyond w + 2L is safe -- another partition may react
            # to that export and send something back arriving as early
            # as w + 2L.  An export whose destination we own ourselves
            # re-enters at w + L exactly, so it clamps a full L tighter.
            # Under the legacy common horizon H = t_min + L both bounds
            # are >= H (w >= t_min), i.e. the clamp is provably inert at
            # window_batch=1 and only bites when the driver hands out
            # batched (> t_min + L) horizons.
            limit = t_wire + (
                lookahead if owner_of_rank(dst) == part else reflect
            )
            if limit < self._limit:
                self._limit = limit
            return True

        # Every inter-node packet -- cross-partition or not -- leaves via
        # the export hook and re-enters through :meth:`inject`, so all
        # remote arrivals at one timestamp are sequenced under the single
        # canonical key ``(t_arr, t_wire, src)``.  Exporting only the
        # cross-partition subset would interleave barrier-injected
        # arrivals with natively-simulated ones and break the serial
        # delivery order whenever two sources' packets land on the same
        # rank at the same instant (routine in rank-symmetric apps).  In
        # single-partition mode there is no barrier to re-inject at, so
        # the native in-flight path runs untouched (exactly the serial
        # kernel).
        if spec.partition.nparts > 1:
            self.machine.on_remote_export = exporter

        # -- launch owned rank programs (same wrapping as YgmWorld.run +
        # World.run, restricted to the owned ranks in world-rank order so
        # partition-relative startup order matches the serial run) --
        self.contexts: List[YgmContext] = []
        self.finish_times: Dict[int, float] = {}
        self.remaining = len(self.owned)
        world = self.world
        rank_main = spec.rank_main
        scheme = spec.scheme
        # Each forked worker owns a private copy of the scheme object;
        # adaptive schemes read *this* worker's machine (they only ever
        # consult the sending node's NIC, which the owning partition
        # simulates natively -- see repro.core.routing.adaptive).
        scheme.bind_machine(self.machine)
        default_config = spec.default_config

        def make_wrapper(r: int):
            def wrapper():
                ctx = YgmContext(world.make_context(r), scheme, default_config)
                self.contexts.append(ctx)
                value = yield from rank_main(ctx)
                self.finish_times[r] = world.sim.now
                return value

            return wrapper()

        self.procs = dict(
            zip(
                self.owned,
                world.sim.process_batch(
                    (make_wrapper(r) for r in self.owned),
                    names=[f"rank{r}" for r in self.owned],
                ),
            )
        )

        #: Instant the last owned rank program completed (succeeded *or*
        #: failed -- the serial stop rule counts both), None while live.
        self.done_at: Optional[float] = None

        def finished(_ev) -> None:
            self.remaining -= 1
            if self.remaining == 0:
                self.done_at = self.sim.now

        for p in self.procs.values():
            p.attach(finished)

    def _make_push_order_tiebreaker(self, user):
        """Order same-timestamp events by *push time* -- the serial order.

        The serial kernel breaks timestamp ties by sequence number,
        i.e. by heap-push order; and since pushes happen at the
        simulator's (nondecreasing) current time, that order is exactly
        ``(push time, push index)``.  A partitioned run can reproduce
        the push times: native pushes use the local clock (matching
        serial, because intra-partition event order is preserved), and
        an injected arrival uses the wire instant its serial push
        (``_in_flight``'s timeout) would have happened at.  Keying the
        heap this way restores the serial interleaving of an import
        against local events pushed *after* its wire instant but landing
        on the same timestamp -- the one tie the barrier's injection
        sequence numbers get backwards.  (In a serial-equivalent run the
        key is provably inert: push time is nondecreasing in push index,
        so sorting by it never reorders.)  A user tiebreaker (schedule
        fuzzing) still scrambles within each push instant.
        """

        def tiebreaker(at, seq):
            push_time = self._push_override
            if push_time is None:
                push_time = self.world.sim._now
            if user is not None:
                return (push_time, user(at, seq))
            return push_time

        return tiebreaker

    # -- stepping ----------------------------------------------------------
    def peek(self) -> Optional[float]:
        heap = self.sim._heap
        return heap[0][0] if heap else None

    def inject(self, imports: List[tuple]) -> None:
        """Enqueue imported packet arrivals at their exact timestamps.

        Injection order is wire order: a *stable* sort by ``t_wire``.
        The driver hands over each partition's exports in that
        partition's local wire order (which the engine provably
        preserves), concatenated in partition order -- so after the
        stable sort, same-instant packets from one partition keep their
        exact serial order, and the only tie resolved arbitrarily (by
        partition index) is the exact-same-float-instant collision
        *across* partitions, which serial resolves by an unknowable
        global heap artifact.  Each arrival is pushed under its wire
        instant via the push-order tiebreaker, and ``t_arr`` is computed
        with the identical memoised ``remote_delay`` expression the
        serial in-flight path uses, so both the timestamp and its tie
        rank are reproduced.
        """
        if not imports:
            return
        costs = self.net.packet_costs
        imports = sorted(imports, key=lambda e: e[0])
        machine = self.machine
        inboxes = self.world.inboxes
        now = self.sim.now
        try:
            for t_wire, src, dst, nbytes, packet in imports:
                if t_wire + costs(nbytes)[1] < now:
                    raise CausalityError(
                        f"partition {self.part}: import {src}->{dst} arrives "
                        f"at t={t_wire + costs(nbytes)[1]!r}, behind local "
                        f"clock t={now!r}"
                    )
                self._push_override = t_wire
                machine.inject_arrival(
                    t_wire, src, dst, nbytes, packet, inboxes[dst].deliver
                )
        finally:
            self._push_override = None

    def pump(self, limit: float) -> Optional[float]:
        """Process events strictly below ``limit``, stopping at completion.

        The serial :meth:`~repro.sim.kernel.Simulator.run_until_complete`
        stop rule, windowed: the event that finishes the last owned rank
        program ends the pump mid-window.  The same simulated timestamp
        is then flushed (``run_until_complete`` would keep popping those
        events while *other* partitions' ranks are still live), so any
        packet already committed to the wire at the finish instant still
        exports instead of being stranded in a frozen heap.
        """
        sim = self.sim
        heap = sim._heap
        pop = heapq.heappop
        self._limit = limit
        while heap and heap[0][0] < self._limit:
            if self.remaining <= 0 and heap[0][0] != sim._now:
                break
            item = pop(heap)
            sim._now = item[0]
            sim._steps += 1
            if sim.tracer is not None:
                sim._trace_step(sim.tracer, item[-1])
            item[-1]._process()
        if not heap and self.remaining > 0 and limit == math.inf:
            # Single-partition mode mirrors the serial deadlock check; in
            # windowed mode an empty heap just means "waiting for
            # imports" and the driver rules on global deadlock.
            raise DeadlockError(self.sim._live_processes, self.sim.now)
        return heap[0][0] if heap else None

    def _advance(self, horizon, drain: bool) -> Optional[float]:
        """Pump this window's events; returns the next pending timestamp."""
        if horizon is None:
            return self.peek()
        if drain:
            return self.sim.run_window(horizon)
        if self.remaining > 0:
            return self.pump(horizon)
        return self.peek()

    def step(self, horizon, batch, drain: bool):
        """One window: inject, advance, report.

        ``batch`` is the import batch's pipe payload (object list or
        ring descriptor).  With the flight recorder off this path costs
        one cached-attribute check over the bare protocol work.
        """
        fl = self.flight
        if fl is not None:
            return self._step_flight(fl, horizon, batch, drain)
        self.inject(self.recv_imports(batch))
        next_t = self._advance(horizon, drain)
        exports, self.exports[:] = list(self.exports), []
        return (
            REP_REPORT,
            self.part,
            self._ship_exports(exports),
            next_t,
            self.remaining,
            self.done_at,
            self.sim.now,
            self.sim.steps,
        )

    def _step_flight(self, fl, horizon, batch, drain: bool):
        """The instrumented twin of :meth:`step`: same work, same order,
        with a clock read between the phases.  Under the pipe transport
        serialization happens implicitly inside the report's
        ``Connection.send``, so it lands in the serve loop's
        ``ring-push`` span instead of ``export-serialize``."""
        pc = perf_counter
        t0 = pc()
        self.inject(self.recv_imports(batch))
        t1 = pc()
        next_t = self._advance(horizon, drain)
        t2 = pc()
        exports, self.exports[:] = list(self.exports), []
        if self._tx is None or self.transport == "pipe":
            desc = exports
            t3 = t2
        else:
            nonempty = encode_exports(exports, self._scratch)
            t3 = pc()
            desc = push_encoded(self._tx, self._scratch, nonempty)
        t4 = pc()
        fl.span("import-drain", t0, t1 - t0)
        fl.span("compute", t1, t2 - t1)
        fl.span("export-serialize", t2, t3 - t2)
        fl.span("ring-push", t3, t4 - t3)
        if fl.tracer is not None:
            # Window-granularity progress sample: small workers may never
            # hit the kernel's 1024-step sampling stride, but the metrics
            # exporter needs >= 2 samples per worker to attribute wall
            # clock (the rank_group rows).  Reads state only.
            fl.tracer.progress_samples.append((self.sim.now, self.sim.steps, t2))
        fl.round += 1
        return (
            REP_REPORT,
            self.part,
            desc,
            next_t,
            self.remaining,
            self.done_at,
            self.sim.now,
            self.sim.steps,
        )

    # -- transport ---------------------------------------------------------
    def recv_imports(self, batch) -> List[tuple]:
        """Materialise a window's imports from their pipe descriptor."""
        if self._rx is None or self.transport == "pipe":
            return batch
        return recv_batch(self._rx, batch)

    def _ship_exports(self, exports: List[tuple]):
        """Encode a window's exports; returns what rides the pipe."""
        if self._tx is None or self.transport == "pipe":
            return exports
        return send_batch(self._tx, exports, self._scratch)

    # -- result assembly ---------------------------------------------------
    def result(self) -> tuple:
        """Per-rank outcome of this partition, all picklable."""
        contexts = sorted(self.contexts, key=lambda c: c.world_rank)
        per_rank_stats = {
            ctx.world_rank: aggregate(mb.stats for mb in ctx.mailboxes)
            for ctx in contexts
        }
        term = {
            ctx.world_rank: [
                (mb._app_kind[1], mb.term_totals, mb.term_contribution)
                for mb in ctx.mailboxes
            ]
            for ctx in contexts
        }
        values = {
            r: (p.value if p.triggered else None) for r, p in self.procs.items()
        }
        transport = {
            "tx_busy": {
                n: self.machine.nic_tx[n].busy_time for n in self._owned_nodes
            },
            "rx_busy": {
                n: self.machine.nic_rx[n].busy_time for n in self._owned_nodes
            },
            "remote_packets": self.machine.remote_packets,
            "remote_bytes": self.machine.remote_bytes,
            "local_packets": self.machine.local_packets,
            "local_bytes": self.machine.local_bytes,
        }
        return (
            REP_RESULT,
            self.part,
            {
                "values": values,
                "done_at": self.done_at,
                "finish_times": dict(self.finish_times),
                "per_rank_stats": per_rank_stats,
                "term": term,
                "transport": transport,
                "steps": self.sim.steps,
                # Flight telemetry rides the control pipe with the final
                # result -- out of band, never through the data rings.
                "flight": (
                    self.flight.snapshot(self)
                    if self.flight is not None
                    else None
                ),
            },
        )


def _serve(conn, runtime: PartitionRuntime) -> None:
    """The flight-off serve loop: bare protocol, no clock reads."""
    while True:
        msg = conn.recv()
        cmd = msg[0]
        if cmd == CMD_STEP:
            _, horizon, batch, drain = msg
            conn.send(runtime.step(horizon, batch, drain))
        elif cmd == CMD_CLOCK:
            conn.send((REP_CLOCK, runtime.part, perf_counter()))
        elif cmd == CMD_FINISH:
            conn.send(runtime.result())
            return
        else:
            raise ValueError(f"unknown PDES command {cmd!r}")


def _serve_flight(conn, runtime: PartitionRuntime, fl) -> None:
    """The recorded serve loop: times the pipe waits and report sends.

    ``barrier-wait`` is the interval blocked in ``conn.recv`` -- it
    covers both the true barrier (waiting for siblings via the driver)
    and the driver's own bookkeeping, which is exactly the
    synchronisation cost a worker experiences.  Clock probes are
    answered before any recording so the handshake RTT stays minimal.
    """
    pc = perf_counter
    recv = conn.recv
    while True:
        t0 = pc()
        msg = recv()
        t1 = pc()
        cmd = msg[0]
        if cmd == CMD_CLOCK:
            conn.send((REP_CLOCK, runtime.part, pc()))
            fl.span("barrier-wait", t0, t1 - t0)
            continue
        fl.span("barrier-wait", t0, t1 - t0)
        if cmd == CMD_STEP:
            _, horizon, batch, drain = msg
            rep = runtime.step(horizon, batch, drain)
            t2 = pc()
            conn.send(rep)
            fl.span("ring-push", t2, pc() - t2)
        elif cmd == CMD_FINISH:
            # result() snapshots the flight buffer, so this is the last
            # thing recorded; the send itself is not (nobody could ship
            # a span describing its own shipping).
            conn.send(runtime.result())
            return
        else:
            raise ValueError(f"unknown PDES command {cmd!r}")


def worker_main(conn, spec: WorkerSpec) -> None:
    """Forked-process entry point: build the partition, serve the pipe."""
    try:
        runtime = PartitionRuntime(spec)
        conn.send((REP_READY, spec.part))
        if runtime.flight is not None:
            _serve_flight(conn, runtime, runtime.flight)
        else:
            _serve(conn, runtime)
    except EOFError:
        return  # driver went away; nothing to report to
    except BaseException:
        try:
            conn.send((REP_ERROR, spec.part, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        if spec.rings is not None:
            try:
                spec.rings.close()
            except BufferError:  # pragma: no cover - leaked view; best effort
                pass
        try:
            conn.close()
        except OSError:
            pass
