"""Nonblocking request handles (MPI_Request analogue)."""

from __future__ import annotations

from typing import Generator, Optional

from ..sim import Event
from .envelope import Message


class Request:
    """Base class for isend/irecv handles."""

    def __init__(self, event: Event):
        self._event = event

    @property
    def complete(self) -> bool:
        return self._event.triggered

    def test(self) -> bool:
        """Nonblocking completion check."""
        return self._event.triggered

    def wait(self) -> Generator:
        """Generator: block until complete; returns the result."""
        value = yield self._event
        return self._finish(value)

    def result(self):
        """The result of a completed request (raises if pending)."""
        return self._finish(self._event.value)

    def _finish(self, value):
        return value


class SendRequest(Request):
    """Handle for a nonblocking send; completes when the sender-side
    costs are paid (buffered-send semantics, like a completed MPI_Isend
    into a system buffer)."""


class RecvRequest(Request):
    """Handle for a nonblocking receive; completes with a
    :class:`~repro.mpi.envelope.Message`."""

    def __init__(self, event: Event, translate):
        super().__init__(event)
        self._translate = translate

    def cancel(self) -> None:
        """Withdraw the receive if not yet matched."""
        cancel = getattr(self._event, "cancel", None)
        if cancel is not None and not self._event.triggered:
            cancel()

    def _finish(self, packet) -> Message:
        return self._translate(packet)


def waitall(requests) -> Generator:
    """Generator: wait for every request; returns their results in order."""
    results = []
    for req in requests:
        res = yield from req.wait()
        results.append(res)
    return results
