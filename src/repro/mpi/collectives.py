"""Collective algorithms over simulated point-to-point messaging.

These are classic implementations (binomial trees for rooted collectives,
post-all-irecv for the vector exchange) -- deliberately *synchronous* in
the MPI sense: every member must enter the call, and stragglers stall
their tree neighbours.  That behaviour is exactly the problem statement of
the paper's introduction, and the BSP baseline uses it as-is.

All functions are generators; drive with ``yield from``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

from .envelope import KIND_COLL
from .requests import waitall


def _vrank(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _wrank(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def bcast(comm, value: Any, root: int = 0) -> Generator:
    """Binomial-tree broadcast; returns the root's value on every rank."""
    tag = comm._next_coll_tag("bcast")
    size = comm.size
    if size == 1:
        return value
    rel = _vrank(comm.rank, root, size)
    mask = 1
    while mask < size and not (rel & mask):
        mask <<= 1
    if rel != 0:
        parent = _wrank(rel - mask, root, size)
        msg = yield from comm.recv(source=parent, tag=tag, kind=KIND_COLL)
        value = msg.payload
    # Forward to children: bits below our low set bit (or below size for root).
    child_mask = mask >> 1 if rel != 0 else _highest_pow2_below(size)
    while child_mask >= 1:
        child_rel = rel + child_mask
        if child_rel < size:
            child = _wrank(child_rel, root, size)
            yield from comm.send(child, value, tag=tag, kind=KIND_COLL)
        child_mask >>= 1
    return value


def _highest_pow2_below(n: int) -> int:
    p = 1
    while p * 2 < n:
        p *= 2
    return p if n > 1 else 0


def reduce(comm, value: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Generator:
    """Binomial-tree reduction; the result is returned at ``root`` only
    (``None`` elsewhere).  ``op`` must be associative and commutative."""
    tag = comm._next_coll_tag("reduce")
    size = comm.size
    if size == 1:
        return value
    rel = _vrank(comm.rank, root, size)
    acc = value
    mask = 1
    while mask < size:
        if rel & mask:
            parent = _wrank(rel - mask, root, size)
            yield from comm.send(parent, acc, tag=tag, kind=KIND_COLL)
            return None
        peer_rel = rel | mask
        if peer_rel < size:
            peer = _wrank(peer_rel, root, size)
            msg = yield from comm.recv(source=peer, tag=tag, kind=KIND_COLL)
            acc = op(acc, msg.payload)
        mask <<= 1
    return acc


def allreduce(comm, value: Any, op: Callable[[Any, Any], Any]) -> Generator:
    """Reduce to rank 0 followed by broadcast."""
    acc = yield from reduce(comm, value, op, root=0)
    result = yield from bcast(comm, acc, root=0)
    return result


def barrier(comm) -> Generator:
    """Allreduce of nothing: completes only when every rank has entered."""
    yield from allreduce(comm, None, lambda a, b: None)


def gather(comm, value: Any, root: int = 0) -> Generator:
    """Gather one value per rank to ``root`` (list ordered by rank)."""
    tag = comm._next_coll_tag("gather")
    if comm.rank != root:
        yield from comm.send(root, value, tag=tag, kind=KIND_COLL)
        return None
    results: list = [None] * comm.size
    results[root] = value
    for _ in range(comm.size - 1):
        msg = yield from comm.recv(tag=tag, kind=KIND_COLL)
        results[msg.source] = msg.payload
    return results


def allgather(comm, value: Any) -> Generator:
    """Gather to rank 0, then broadcast the full list."""
    gathered = yield from gather(comm, value, root=0)
    result = yield from bcast(comm, gathered, root=0)
    return result


def scatter(comm, values: Optional[Sequence[Any]], root: int = 0) -> Generator:
    """Scatter one value per rank from ``root``."""
    tag = comm._next_coll_tag("scatter")
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise ValueError("scatter root needs one value per rank")
        for dest in range(comm.size):
            if dest != root:
                yield from comm.send(dest, values[dest], tag=tag, kind=KIND_COLL)
        return values[root]
    msg = yield from comm.recv(source=root, tag=tag, kind=KIND_COLL)
    return msg.payload


def alltoallv(comm, values: Sequence[Any]) -> Generator:
    """Vector all-to-all: ``values[i]`` goes to rank ``i``.

    Implemented as post-all-irecvs + isends + waitall, the dense
    synchronous exchange the paper contrasts YGM against.  Every pair
    exchanges a packet even when the payload is empty, like a true
    ALLTOALLV (this is what makes it scale poorly -- by design).
    """
    if len(values) != comm.size:
        raise ValueError(
            f"alltoallv needs one payload per rank ({comm.size}), got {len(values)}"
        )
    tag = comm._next_coll_tag("a2av")
    recv_reqs = [
        comm.irecv(source=src, tag=tag, kind=KIND_COLL)
        for src in range(comm.size)
        if src != comm.rank
    ]
    send_reqs = [
        comm.isend(dst, values[dst], tag=tag, kind=KIND_COLL)
        for dst in range(comm.size)
        if dst != comm.rank
    ]
    results: list = [None] * comm.size
    results[comm.rank] = values[comm.rank]
    msgs = yield from waitall(recv_reqs)
    for msg in msgs:
        results[msg.source] = msg.payload
    yield from waitall(send_reqs)
    return results


def reduce_scatter(comm, values: Sequence[Any], op: Callable[[Any, Any], Any]) -> Generator:
    """Element-wise reduce of per-rank value vectors, scattering result i
    to rank i.  Implemented as reduce-to-root of the list + scatter."""
    if len(values) != comm.size:
        raise ValueError("reduce_scatter needs one value per rank")

    def list_op(a, b):
        return [op(x, y) for x, y in zip(a, b)]

    reduced = yield from reduce(comm, list(values), list_op, root=0)
    mine = yield from scatter(comm, reduced, root=0)
    return mine
