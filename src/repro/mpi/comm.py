"""The simulated MPI communicator.

:class:`Comm` provides the subset of MPI that YGM and the baselines need:

* blocking and nonblocking point-to-point (``send``/``recv``/``isend``/
  ``irecv``) with tag and source matching,
* collectives (``barrier``, ``bcast``, ``reduce``, ``allreduce``,
  ``gather``, ``allgather``, ``scatter``, ``alltoallv``,
  ``reduce_scatter``) implemented over p2p with binomial trees,
* communicator ``split``/``dup`` with proper context isolation.

All potentially blocking methods are *generators* and must be driven with
``yield from`` inside a simulated process -- the same convention as the
rest of the stack.

Semantics notes (documented deviations from MPI):

* sends are always *buffered*: they complete once the sender-side costs
  (core overhead + source NIC occupancy) are paid, never blocking on the
  receiver.  MPI's eager path behaves this way; rendezvous sends in real
  MPI can block, which we model as added latency instead.
* message ordering between a pair of ranks is preserved per traffic class
  (the simulated network is FIFO per path by construction).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Hashable, List, Optional, Sequence

import numpy as np

from ..sim import Event
from .envelope import ANY_SOURCE, ANY_TAG, HEADER_BYTES, KIND_P2P, Message, Packet
from .requests import RecvRequest, SendRequest, waitall
from .sizes import payload_nbytes


class Comm:
    """A communicator over a subset of the world's ranks.

    Parameters
    ----------
    world:
        The owning :class:`~repro.mpi.world.World`.
    ctx:
        Context id; isolates this communicator's traffic.
    members:
        World ranks belonging to this communicator, ordered by
        communicator rank.
    my_world_rank:
        The world rank of the process this handle belongs to.
    """

    def __init__(self, world, ctx: int, members: Sequence[int], my_world_rank: int):
        self.world = world
        self.ctx = ctx
        self._members = list(members)
        self._world_rank = my_world_rank
        self._comm_rank = {w: i for i, w in enumerate(self._members)}
        if my_world_rank not in self._comm_rank:
            raise ValueError(
                f"world rank {my_world_rank} is not a member of this communicator"
            )
        self.rank = self._comm_rank[my_world_rank]
        self.size = len(self._members)
        # Collective sequence number; identical call order on all members
        # (an MPI requirement) keeps these in sync.
        self._coll_seq = 0

    # -- rank translation -----------------------------------------------------
    def world_rank_of(self, comm_rank: int) -> int:
        return self._members[comm_rank]

    def comm_rank_of(self, world_rank: int) -> int:
        return self._comm_rank[world_rank]

    @property
    def members(self) -> List[int]:
        return list(self._members)

    def _translate(self, packet: Packet) -> Message:
        return Message(
            payload=packet.payload,
            source=self._comm_rank[packet.src],
            tag=packet.tag,
            nbytes=packet.nbytes,
        )

    # -- point to point ----------------------------------------------------------
    def send(
        self,
        dest: int,
        payload: Any,
        tag: Hashable = 0,
        nbytes: Optional[int] = None,
        kind: str = KIND_P2P,
        lin=None,
    ) -> Generator:
        """Blocking (buffered) send.  ``yield from comm.send(...)``.

        ``lin`` is an optional causal-profiler packet id carried on the
        packet envelope (see :mod:`repro.trace.profile`).
        """
        src_w = self._world_rank
        dst_w = self._members[dest]
        size = payload_nbytes(payload, nbytes) + HEADER_BYTES
        if isinstance(payload, np.ndarray):
            payload = payload.copy()  # MPI copies the buffer; avoid aliasing
        pkt = Packet(
            src=src_w, dst=dst_w, ctx=self.ctx, kind=kind, tag=tag,
            payload=payload, nbytes=size, lin=lin,
        )
        machine = self.world.machine
        deliver = self.world.inboxes[dst_w].deliver
        yield from machine.transmit(src_w, dst_w, size, pkt, deliver)

    def isend(
        self,
        dest: int,
        payload: Any,
        tag: Hashable = 0,
        nbytes: Optional[int] = None,
        kind: str = KIND_P2P,
    ) -> SendRequest:
        """Nonblocking send; returns a request completing when the
        sender-side costs are paid."""
        proc = self.world.sim.process(
            self.send(dest, payload, tag=tag, nbytes=nbytes, kind=kind),
            name=f"isend:{self._world_rank}->{self._members[dest]}",
        )
        return SendRequest(proc)

    def recv(
        self,
        source=ANY_SOURCE,
        tag: Hashable = ANY_TAG,
        kind: str = KIND_P2P,
    ) -> Generator:
        """Blocking receive; returns a :class:`Message`."""
        req = self.irecv(source=source, tag=tag, kind=kind)
        msg = yield from req.wait()
        return msg

    def irecv(
        self,
        source=ANY_SOURCE,
        tag: Hashable = ANY_TAG,
        kind: str = KIND_P2P,
    ) -> RecvRequest:
        """Nonblocking receive."""
        src_w = source if source is ANY_SOURCE else self._members[source]
        ev = self.world.inboxes[self._world_rank].post(self.ctx, kind, src_w, tag)
        return RecvRequest(ev, self._translate)

    def probe(self, source=ANY_SOURCE, tag: Hashable = ANY_TAG, kind: str = KIND_P2P):
        """Nonblocking probe of the unexpected queue; Message or None."""
        src_w = source if source is ANY_SOURCE else self._members[source]
        pkt = self.world.inboxes[self._world_rank].probe(self.ctx, kind, src_w, tag)
        return None if pkt is None else self._translate(pkt)

    # -- collectives ------------------------------------------------------------
    def _next_coll_tag(self, name: str):
        self._coll_seq += 1
        return (self._coll_seq, name)

    def barrier(self) -> Generator:
        from . import collectives

        yield from collectives.barrier(self)

    def bcast(self, value: Any = None, root: int = 0) -> Generator:
        from . import collectives

        result = yield from collectives.bcast(self, value, root)
        return result

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Generator:
        from . import collectives

        result = yield from collectives.reduce(self, value, op, root)
        return result

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Generator:
        from . import collectives

        result = yield from collectives.allreduce(self, value, op)
        return result

    def gather(self, value: Any, root: int = 0) -> Generator:
        from . import collectives

        result = yield from collectives.gather(self, value, root)
        return result

    def allgather(self, value: Any) -> Generator:
        from . import collectives

        result = yield from collectives.allgather(self, value)
        return result

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0) -> Generator:
        from . import collectives

        result = yield from collectives.scatter(self, values, root)
        return result

    def alltoall(self, values: Sequence[Any]) -> Generator:
        from . import collectives

        result = yield from collectives.alltoallv(self, values)
        return result

    def alltoallv(self, values: Sequence[Any]) -> Generator:
        from . import collectives

        result = yield from collectives.alltoallv(self, values)
        return result

    def reduce_scatter(self, values: Sequence[Any], op: Callable) -> Generator:
        from . import collectives

        result = yield from collectives.reduce_scatter(self, values, op)
        return result

    # -- communicator management ---------------------------------------------------
    def split(self, color: Hashable, key: Optional[int] = None) -> Generator:
        """Collective: partition into sub-communicators by ``color``.

        Returns the new :class:`Comm` for this rank (``color=None`` ranks
        get ``None``, like MPI_UNDEFINED).
        """
        if key is None:
            key = self.rank
        entries = yield from self.allgather((color, key, self.rank))
        tag = self._next_coll_tag("split")  # keeps _coll_seq aligned
        del tag
        if color is None:
            return None
        members_sorted = sorted(
            (k, r) for (c, k, r) in entries if c == color
        )
        members_world = [self._members[r] for (_k, r) in members_sorted]
        # Context id derived identically on every member: parent ctx,
        # collective seq, and color order ensure global uniqueness.
        ctx = self.world.derive_context(self.ctx, self._coll_seq, color)
        return Comm(self.world, ctx, members_world, self._world_rank)

    def dup(self) -> Generator:
        """Collective: duplicate this communicator with a fresh context."""
        comm = yield from self.split(color=0, key=self.rank)
        return comm
