"""Payload size measurement for the simulated transport.

The network model times packets by their wire size.  For NumPy arrays the
size is exact (``nbytes``); for generic Python objects we use the serde
encoding size -- the same bytes a real YGM would put on the wire through
cereal.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..serde import packed_size, packed_size_many
from ..serde.packer import int64_packed_sizes


def payload_nbytes(payload: Any, nbytes: Optional[int] = None) -> int:
    """Wire size of ``payload`` (excluding the packet header).

    An explicit ``nbytes`` always wins (callers that already know the
    encoded size, e.g. coalesced YGM buffers, avoid re-measuring).
    """
    if nbytes is not None:
        if nbytes < 0:
            raise ValueError(f"negative payload size: {nbytes}")
        return nbytes
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    return packed_size(payload)


def payload_nbytes_many(payloads, nbytes=None) -> np.ndarray:
    """Vectorized :func:`payload_nbytes` for a payload column (int64).

    ``nbytes`` may be ``None`` (measure every payload), one int (all
    payloads share the size) or a parallel array of per-payload sizes.
    Element-for-element equal to calling :func:`payload_nbytes` in a
    loop; the all-``int`` payload case is measured in bulk through
    :func:`repro.serde.packed_size_many`.
    """
    n = len(payloads)
    if nbytes is not None:
        sizes = np.asarray(nbytes, dtype=np.int64)
        if sizes.ndim == 0:
            if sizes < 0:
                raise ValueError(f"negative payload size: {int(sizes)}")
            return np.full(n, int(sizes), dtype=np.int64)
        if sizes.shape != (n,):
            raise ValueError(
                f"nbytes shape {sizes.shape} does not match {n} payloads"
            )
        if n and sizes.min() < 0:
            raise ValueError(f"negative payload size: {int(sizes.min())}")
        return sizes
    if n and set(map(type, payloads)) == {int}:
        # The type scan runs in C (one frame, no generator); ``bool``
        # and NumPy scalars fall through to the generic path.  Straight
        # to the int64 kernel: ``packed_size_many`` would rescan the
        # column for the same all-int precondition.
        sizes = int64_packed_sizes(payloads, n)
        if sizes is not None:
            return sizes
        return packed_size_many(payloads)  # beyond-int64 values
    return np.fromiter(
        (payload_nbytes(p) for p in payloads), dtype=np.int64, count=n
    )
