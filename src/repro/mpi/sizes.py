"""Payload size measurement for the simulated transport.

The network model times packets by their wire size.  For NumPy arrays the
size is exact (``nbytes``); for generic Python objects we use the serde
encoding size -- the same bytes a real YGM would put on the wire through
cereal.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..serde import packed_size


def payload_nbytes(payload: Any, nbytes: Optional[int] = None) -> int:
    """Wire size of ``payload`` (excluding the packet header).

    An explicit ``nbytes`` always wins (callers that already know the
    encoded size, e.g. coalesced YGM buffers, avoid re-measuring).
    """
    if nbytes is not None:
        if nbytes < 0:
            raise ValueError(f"negative payload size: {nbytes}")
        return nbytes
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    return packed_size(payload)
