"""Packet envelopes and matching wildcards for the simulated MPI layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable


class _Any:
    """Singleton wildcard (``ANY_SOURCE`` / ``ANY_TAG``)."""

    __slots__ = ("_label",)

    def __init__(self, label: str):
        self._label = label

    def __repr__(self) -> str:
        return self._label


#: Match a message from any source (MPI_ANY_SOURCE).
ANY_SOURCE = _Any("ANY_SOURCE")
#: Match a message with any tag (MPI_ANY_TAG).
ANY_TAG = _Any("ANY_TAG")

#: Wire-header bytes charged per packet on top of the payload
#: (source/dest/tag/length metadata -- the overhead coalescing amortises).
HEADER_BYTES = 32

#: Packet kinds: plain point-to-point, collective-internal, and the two
#: YGM transport channels (application data and termination protocol).
KIND_P2P = "p2p"
KIND_COLL = "coll"


@dataclass
class Packet:
    """One transmitted packet.

    ``src``/``dst`` are *world* ranks.  ``ctx`` is the communicator
    context id (isolates communicators from each other, like MPI context
    ids); ``kind`` separates traffic classes so upper layers can subscribe
    whole classes to dedicated stores.  ``lin`` is the causal profiler's
    packet id (:mod:`repro.trace.profile`) when profiling is enabled --
    the machine layer stamps transmission stages against it -- and
    ``None`` otherwise.
    """

    src: int
    dst: int
    ctx: int
    kind: str
    tag: Hashable
    payload: Any
    nbytes: int
    lin: Any = None

    def matches(self, ctx: int, kind: str, src, tag) -> bool:
        """Whether this packet satisfies a posted receive."""
        return (
            self.ctx == ctx
            and self.kind == kind
            and (src is ANY_SOURCE or self.src == src)
            and (tag is ANY_TAG or self.tag == tag)
        )


@dataclass(frozen=True)
class Message:
    """What a receive returns: payload plus communicator-level metadata."""

    payload: Any
    source: int
    tag: Hashable
    nbytes: int
