"""A simulated MPI layer over the discrete-event machine model.

Provides point-to-point messaging with MPI-style matching, the classic
synchronous collectives, and communicator management -- the substrate the
paper's YGM is "bootstrapped" on top of (and the strawman it improves on).
"""

from .envelope import ANY_SOURCE, ANY_TAG, HEADER_BYTES, KIND_COLL, KIND_P2P, Message, Packet
from .comm import Comm
from .matching import Inbox, PostedRecv
from .requests import RecvRequest, Request, SendRequest, waitall
from .sizes import payload_nbytes
from .world import RankContext, World, WorldResult

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "HEADER_BYTES",
    "Inbox",
    "KIND_COLL",
    "KIND_P2P",
    "Message",
    "Packet",
    "PostedRecv",
    "RankContext",
    "RecvRequest",
    "Request",
    "SendRequest",
    "World",
    "WorldResult",
    "payload_nbytes",
    "waitall",
]
