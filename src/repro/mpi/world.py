"""The simulated world: machine + per-rank inboxes + rank processes.

:class:`World` wires the layers together and runs one *rank program* (a
generator function taking a :class:`RankContext`) on every simulated core.
This is the moral equivalent of ``mpiexec -n <ranks> python program.py``
for the simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

import numpy as np

from ..machine import Machine, MachineConfig
from ..sim import Simulator
from .comm import Comm
from .matching import Inbox

#: Context id of the world communicator (MPI_COMM_WORLD analogue).
WORLD_CTX = 0


@dataclass
class RankContext:
    """Everything a rank program gets: identity, comm, rng, compute hook."""

    world: "World"
    rank: int
    comm: Comm

    @property
    def nranks(self) -> int:
        return self.world.machine.nranks

    @property
    def node(self) -> int:
        return self.world.machine.node_of(self.rank)

    @property
    def core(self) -> int:
        return self.world.machine.core_of(self.rank)

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    @property
    def machine(self) -> Machine:
        return self.world.machine

    @property
    def rng(self) -> np.random.Generator:
        """Per-rank deterministic RNG (seeded from the world seed + rank)."""
        if not hasattr(self, "_rng") or self._rng is None:
            self._rng = np.random.default_rng(
                np.random.SeedSequence(entropy=self.world.seed, spawn_key=(self.rank,))
            )
        return self._rng

    def compute(self, seconds: float):
        """Charge ``seconds`` of application CPU work to this core.

        Returns an event; use as ``yield ctx.compute(t)``.
        """
        if seconds < 0:
            raise ValueError(f"negative compute time: {seconds}")
        return self.world.sim.timeout(seconds)


@dataclass
class WorldResult:
    """Outcome of a world run."""

    #: Per-rank return values of the rank program.
    values: List[Any]
    #: Simulated seconds from launch to the last rank finishing.
    elapsed: float
    #: Per-rank finish times (simulated seconds).
    finish_times: List[float]
    #: Machine-level transport statistics.
    transport: Dict[str, Any] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.elapsed

    @property
    def avg_finish(self) -> float:
        return float(np.mean(self.finish_times))


class World:
    """A simulated machine with one MPI rank per core."""

    def __init__(self, config: MachineConfig, seed: int = 0, tracer=None, tiebreaker=None):
        self.sim = Simulator(tiebreaker=tiebreaker)
        if tracer is not None:
            tracer.bind(nodes=config.nodes, cores_per_node=config.cores_per_node)
            self.sim.tracer = tracer
        self.machine = Machine(self.sim, config)
        self.seed = seed
        self.inboxes: List[Inbox] = [
            Inbox(self.sim, r) for r in range(self.machine.nranks)
        ]
        self._contexts: Dict[tuple, int] = {}
        self._next_ctx = WORLD_CTX + 1

    @property
    def nranks(self) -> int:
        return self.machine.nranks

    def comm_world(self, rank: int) -> Comm:
        """The world communicator handle for ``rank``."""
        return Comm(self, WORLD_CTX, range(self.machine.nranks), rank)

    def derive_context(self, parent_ctx: int, seq: int, color) -> int:
        """Deterministically allocate a context id for a split subcomm.

        All members call with identical ``(parent_ctx, seq, color)`` so
        they agree on the id without extra communication.
        """
        key = (parent_ctx, seq, color)
        if key not in self._contexts:
            self._contexts[key] = self._next_ctx
            self._next_ctx += 1
        return self._contexts[key]

    def make_context(self, rank: int) -> RankContext:
        return RankContext(world=self, rank=rank, comm=self.comm_world(rank))

    def run(
        self,
        rank_main: Callable[[RankContext], Generator],
        until: Optional[float] = None,
    ) -> WorldResult:
        """Run ``rank_main(ctx)`` on every rank until all complete.

        ``rank_main`` must be a generator function (the simulated process
        body).  Returns per-rank results and the simulated makespan.
        """
        contexts = [self.make_context(r) for r in range(self.nranks)]
        finish_times: List[float] = [float("nan")] * self.nranks

        def wrapper(ctx: RankContext) -> Generator:
            value = yield from rank_main(ctx)
            finish_times[ctx.rank] = self.sim.now
            return value

        procs = self.sim.process_batch(
            (wrapper(ctx) for ctx in contexts),
            names=[f"rank{ctx.rank}" for ctx in contexts],
        )
        if until is not None:
            self.sim.run(until=until)
        else:
            self.sim.run_until_complete(*procs)
        values = [p.value if p.triggered else None for p in procs]
        return WorldResult(
            values=values,
            elapsed=self.sim.now,
            finish_times=finish_times,
            transport=self.machine.nic_utilisation(),
        )
