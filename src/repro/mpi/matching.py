"""Per-rank message matching: posted receives and unexpected messages.

This mirrors how MPI implementations match incoming traffic:

* arriving packets first try the *posted-receive queue* (FIFO order of
  posting, first match wins),
* otherwise they land in the *unexpected-message queue*, which future
  receives scan before blocking,
* additionally, whole traffic classes ``(ctx, kind)`` can be *subscribed*
  to a :class:`~repro.sim.stores.Store` -- the YGM transport uses this to
  steer its application and termination channels into dedicated queues it
  can progress independently of MPI-style matching.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from ..sim import Event, Simulator, Store
from .envelope import ANY_SOURCE, ANY_TAG, Packet


class PostedRecv(Event):
    """A posted receive; triggers with the matching :class:`Packet`."""

    __slots__ = ("ctx", "kind", "source", "tag", "_cancelled")

    def __init__(self, sim: Simulator, ctx: int, kind: str, source, tag):
        super().__init__(sim, name="posted_recv")
        self.ctx = ctx
        self.kind = kind
        self.source = source
        self.tag = tag
        self._cancelled = False

    def cancel(self) -> None:
        """Withdraw the receive if not yet matched (lazy removal)."""
        if not self.triggered:
            self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Inbox:
    """The matching engine of a single rank."""

    def __init__(self, sim: Simulator, rank: int):
        self.sim = sim
        self.rank = rank
        self._posted: Deque[PostedRecv] = deque()
        self._unexpected: List[Packet] = []
        self._subscriptions: Dict[Tuple[int, str], Store] = {}
        #: Counters for diagnostics.
        self.delivered = 0
        self.unexpected_peak = 0

    # -- subscription ---------------------------------------------------------
    def subscribe(self, ctx: int, kind: str) -> Store:
        """Route all ``(ctx, kind)`` packets into a dedicated store.

        Must be installed before any matching traffic arrives; packets of
        a subscribed class never enter the posted/unexpected machinery.
        """
        key = (ctx, kind)
        if key in self._subscriptions:
            return self._subscriptions[key]
        store = Store(self.sim, name=f"inbox[{self.rank}]:{kind}")
        self._subscriptions[key] = store
        # Re-steer any earlier arrivals of this class.
        keep: List[Packet] = []
        for pkt in self._unexpected:
            if pkt.ctx == ctx and pkt.kind == kind:
                store.put(pkt)
            else:
                keep.append(pkt)
        self._unexpected = keep
        return store

    # -- delivery (called by the machine transport) ------------------------------
    def deliver(self, packet: Packet) -> None:
        self.delivered += 1
        store = self._subscriptions.get((packet.ctx, packet.kind))
        if store is not None:
            store.put(packet)
            return
        for posted in self._posted:
            if posted.cancelled or posted.triggered:
                continue
            if packet.matches(posted.ctx, posted.kind, posted.source, posted.tag):
                posted.succeed(packet)
                self._posted.remove(posted)
                self._compact()
                return
        self._unexpected.append(packet)
        if len(self._unexpected) > self.unexpected_peak:
            self.unexpected_peak = len(self._unexpected)
        self._trace_unexpected_depth()

    # -- receiving -------------------------------------------------------------
    def post(self, ctx: int, kind: str, source, tag) -> PostedRecv:
        """Post a receive; triggers with the first matching packet."""
        ev = PostedRecv(self.sim, ctx, kind, source, tag)
        for i, pkt in enumerate(self._unexpected):
            if pkt.matches(ctx, kind, source, tag):
                del self._unexpected[i]
                ev.succeed(pkt)
                self._trace_unexpected_depth()
                return ev
        self._posted.append(ev)
        return ev

    def _trace_unexpected_depth(self) -> None:
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("mpi"):
            tracer.counter(
                self.sim.now, "mpi", "unexpected_depth", f"rank {self.rank}",
                len(self._unexpected),
            )

    def probe(self, ctx: int, kind: str, source=ANY_SOURCE, tag=ANY_TAG) -> Optional[Packet]:
        """Non-destructively find a matching unexpected packet."""
        for pkt in self._unexpected:
            if pkt.matches(ctx, kind, source, tag):
                return pkt
        return None

    def _compact(self) -> None:
        """Drop stale (cancelled/triggered) posted entries from the front."""
        while self._posted and (
            self._posted[0].cancelled or self._posted[0].triggered
        ):
            self._posted.popleft()

    @property
    def pending_unexpected(self) -> int:
        return len(self._unexpected)

    def subscribed_stores(self) -> Dict[Tuple[int, str], Store]:
        """Snapshot of the subscribed traffic-class stores (diagnostics;
        the invariant checker audits them for undrained packets)."""
        return dict(self._subscriptions)
