"""Bulk-synchronous baseline: superstep exchanges via ALLTOALLV.

This is the strawman of the paper's introduction: computation proceeds in
supersteps, each ending with a synchronous collective exchange, so the
whole job moves at the speed of its slowest rank.  The module provides a
generic exchange helper plus a BSP degree-counting program used by the
imbalance ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

import numpy as np

from ..graph.generators import EdgeStream
from ..graph.partition import CyclicPartition
from ..mpi import RankContext


def bsp_exchange(comm, per_dest: List[np.ndarray]) -> Generator:
    """One superstep exchange: ``per_dest[r]`` goes to rank ``r``.

    Returns the list of arrays received (by source).  A thin wrapper
    around ``alltoallv`` kept for symmetry with the mailbox API.
    """
    received = yield from comm.alltoallv(per_dest)
    return received


def make_bsp_degree_counting(
    stream: EdgeStream,
    batch_size: int = 4096,
    compute_skew: Optional[Callable[[int, int], float]] = None,
) -> Callable[[RankContext], Generator]:
    """Degree counting in BSP style: generate a batch, ALLTOALLV, count.

    ``compute_skew(rank, superstep)`` optionally returns extra seconds of
    per-superstep computation, used by the imbalance ablation to model a
    straggler; under BSP everyone waits for it at every exchange.
    """

    def rank_main(ctx: RankContext) -> Generator:
        nranks = ctx.comm.size
        part = CyclicPartition(stream.num_vertices, nranks)
        degrees = np.zeros(part.local_count(ctx.comm.rank), dtype=np.int64)
        gen_cost = ctx.machine.config.compute.per_edge_gen

        # All ranks must execute the same number of supersteps: the
        # global maximum batch count (collective schedule, BSP-style).
        my_steps = -(-stream.edges_per_rank // batch_size)
        steps = yield from ctx.comm.allreduce(my_steps, max)

        batches = stream.batches(ctx.comm.rank, batch_size)
        for step in range(steps):
            try:
                u, v = next(batches)
            except StopIteration:
                u = v = np.empty(0, dtype=np.int64)
            yield ctx.compute(len(u) * gen_cost)
            if compute_skew is not None:
                extra = compute_skew(ctx.comm.rank, step)
                if extra > 0:
                    yield ctx.compute(extra)
            verts = np.concatenate((u, v))
            owners = part.owner_vec(verts)
            order = np.argsort(owners, kind="stable")
            verts, owners = verts[order], owners[order]
            bounds = np.searchsorted(owners, np.arange(nranks + 1))
            per_dest = [verts[bounds[r] : bounds[r + 1]] for r in range(nranks)]
            received = yield from bsp_exchange(ctx.comm, per_dest)
            for arr in received:
                if len(arr):
                    ids = part.local_id_vec(arr)
                    degrees[:] += np.bincount(ids, minlength=len(degrees))
        return degrees

    return rank_main
