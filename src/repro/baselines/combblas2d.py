"""A CombBLAS-style 2D SpMV baseline (paper Section VI-C comparator).

CombBLAS distributes matrices over a ``pr x pc`` processor grid; its
sparse-matrix/dense-vector product is the textbook 2D algorithm:

1. **allgather** the x segments within each processor *column*, so every
   rank holds the full x slice matching its column block,
2. local ``y_part = A_block @ x_block`` (scipy CSR locally, with flops
   charged to the compute model),
3. **reduce-scatter** the y partials within each processor *row*, leaving
   y distributed like x.

The communication pattern is collective and synchronous -- all ranks of a
row/column must arrive before anyone proceeds -- which is exactly the
contrast the paper draws against YGM's pseudo-asynchronous mailboxes.
This is deliberately a faithful *algorithmic* stand-in, not a feature
port of CombBLAS (the paper likewise uses only its SpMV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph.partition import BlockPartition
from ..mpi import RankContext


def choose_grid(nranks: int) -> Tuple[int, int]:
    """The most square ``pr x pc`` factorisation of ``nranks``
    (CombBLAS requires a grid; perfect squares are ideal)."""
    pr = int(np.sqrt(nranks))
    while pr > 1 and nranks % pr != 0:
        pr -= 1
    return pr, nranks // pr


@dataclass
class Combblas2DProblem:
    """One rank's block of the 2D-distributed problem."""

    n: int
    pr: int
    pc: int
    block: sp.csr_matrix  # A[row-block pi, col-block pj]
    x_piece: np.ndarray  # the owned piece of x (sub-block pi of col-block pj)


def partition_combblas_problem(
    nranks: int,
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    x: np.ndarray,
) -> List[Combblas2DProblem]:
    """Carve the global COO triples into the 2D grid blocks."""
    pr, pc = choose_grid(nranks)
    row_part = BlockPartition(n, pr)
    col_part = BlockPartition(n, pc)
    problems = []
    row_owner = row_part.owner_vec(rows)
    col_owner = col_part.owner_vec(cols)
    for rank in range(nranks):
        pi, pj = divmod(rank, pc)
        mine = (row_owner == pi) & (col_owner == pj)
        rlo, rhi = row_part.bounds(pi)
        clo, chi = col_part.bounds(pj)
        block = sp.coo_matrix(
            (vals[mine], (rows[mine] - rlo, cols[mine] - clo)),
            shape=(rhi - rlo, chi - clo),
        ).tocsr()
        block.sum_duplicates()
        # x owned piece: sub-block pi (within the column block pj).
        sub = BlockPartition(chi - clo, pr)
        slo, shi = sub.bounds(pi)
        problems.append(
            Combblas2DProblem(
                n=n, pr=pr, pc=pc, block=block, x_piece=x[clo + slo : clo + shi].copy()
            )
        )
    return problems


@dataclass
class CombblasRankResult:
    y_piece: np.ndarray  # owned y piece (sub-block pj of row-block pi)
    nnz: int


def make_combblas_spmv(
    problems: List[Combblas2DProblem],
    iterations: int = 1,
) -> Callable[[RankContext], Generator]:
    """Build the 2D SpMV rank program (runs on the plain MPI context)."""

    def rank_main(ctx: RankContext) -> Generator:
        rank = ctx.comm.rank
        prob = problems[rank]
        pr, pc = prob.pr, prob.pc
        pi, pj = divmod(rank, pc)
        flop = ctx.machine.config.compute.per_flop

        col_comm = yield from ctx.comm.split(color=pj, key=pi)
        row_comm = yield from ctx.comm.split(color=pi, key=pj)

        y_piece = None
        for _ in range(iterations):
            # 1. Allgather x within the processor column.
            pieces = yield from col_comm.allgather(prob.x_piece)
            x_block = np.concatenate(pieces)
            # 2. Local SpMV over the block.
            yield ctx.compute(2.0 * prob.block.nnz * flop)
            y_part = prob.block @ x_block
            # 3. Reduce-scatter within the processor row.
            sub = BlockPartition(len(y_part), pc)
            chunks = [y_part[slice(*sub.bounds(j))] for j in range(pc)]
            y_piece = yield from row_comm.reduce_scatter(
                chunks, lambda a, b: a + b
            )
        return CombblasRankResult(y_piece=y_piece, nnz=prob.block.nnz)

    return rank_main


def gather_combblas_y(
    values: List[CombblasRankResult], n: int, pr: int, pc: int
) -> np.ndarray:
    """Reassemble the global y from the grid-distributed pieces."""
    row_part = BlockPartition(n, pr)
    out = np.zeros(n, dtype=np.float64)
    for rank, res in enumerate(values):
        pi, pj = divmod(rank, pc)
        rlo, rhi = row_part.bounds(pi)
        sub = BlockPartition(rhi - rlo, pc)
        slo, shi = sub.bounds(pj)
        out[rlo + slo : rlo + shi] = res.y_piece
    return out
