"""Comparison baselines: CombBLAS-style 2D SpMV and BSP ALLTOALLV."""

from .bsp_alltoall import bsp_exchange, make_bsp_degree_counting
from .combblas2d import (
    Combblas2DProblem,
    CombblasRankResult,
    choose_grid,
    gather_combblas_y,
    make_combblas_spmv,
    partition_combblas_problem,
)

__all__ = [
    "Combblas2DProblem",
    "CombblasRankResult",
    "bsp_exchange",
    "choose_grid",
    "gather_combblas_y",
    "make_bsp_degree_counting",
    "make_combblas_spmv",
    "partition_combblas_problem",
]
