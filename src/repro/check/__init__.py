"""Deterministic-simulation correctness harness (see TESTING.md).

Three pillars:

* :mod:`~repro.check.invariants` -- runtime invariant checkers that
  attach to any simulation through the trace hooks;
* :mod:`~repro.check.fuzz` -- a schedule fuzzer perturbing the kernel's
  same-timestamp tie-breaking, with failing-seed window minimization;
* :mod:`~repro.check.oracle` -- a differential oracle running every
  application under all routing schemes against in-process sequential
  references.
"""

from .fuzz import (
    FuzzFailure,
    FuzzReport,
    ShuffledTiebreaker,
    fuzz_schedules,
    fuzz_schedules_sharded,
    mailbox_quiescence_scenario,
    minimize_window,
    results_equal,
)
from .invariants import (
    CHECK_CATEGORIES,
    InvariantChecker,
    InvariantViolation,
    run_checked,
)

__all__ = [
    "CHECK_CATEGORIES",
    "FuzzFailure",
    "FuzzReport",
    "InvariantChecker",
    "InvariantViolation",
    "OracleReport",
    "ShuffledTiebreaker",
    "fuzz_schedules",
    "fuzz_schedules_sharded",
    "mailbox_quiescence_scenario",
    "minimize_window",
    "results_equal",
    "run_checked",
    "run_oracle",
]


def __getattr__(name):
    # Oracle imports every app module; load it lazily so the light
    # pillars stay cheap to import.
    if name in ("OracleReport", "run_oracle", "ORACLE_APPS", "ORACLE_SCALES"):
        from . import oracle

        return getattr(oracle, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
