"""Runtime invariant checkers for the DES/YGM stack.

An :class:`InvariantChecker` audits a running :class:`~repro.mpi.world.
World` / :class:`~repro.core.context.YgmWorld` through the existing
trace hooks (:mod:`repro.trace`), so checking is attachable to *any*
simulation without instrumenting application code.  The invariants:

* **monotonic simulated time** -- the kernel clock never moves backwards
  (sampled at every trace event);
* **quiescence is real** -- whenever the termination detector completes
  an epoch, the protocol's agreed global totals must balance
  (``sent == received``), every rank of the epoch must agree on them,
  and no rank may exit with messages still in its coalescing buffers;
* **resource sanity** -- NIC queue depths are never negative, and at
  finalize no NIC slot is still held (a leak) and no waiter is queued;
* **nothing left behind** -- at finalize the unexpected-message queues
  and all subscribed traffic-class stores are drained;
* **conservation** -- over a completed run, application messages posted
  equal messages delivered plus messages eliminated by in-network
  combining, each broadcast was delivered to exactly ``nranks - 1``
  ranks, and transport entries sent equal entries received.

Violations raise :class:`InvariantViolation` (an ``AssertionError``
subclass) at the moment of detection, so a failing schedule-fuzzer seed
points directly at the first bad state transition.

Typical use::

    checker = InvariantChecker()
    world = YgmWorld(machine, scheme="nlnr", tracer=checker.tracer)
    checker.watch(world)
    result = world.run(rank_main)
    checker.finalize(result)

or, in one call, :func:`run_checked`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..trace.tracer import CallbackSink, TraceEvent, Tracer

#: Trace categories the checker needs when it builds its own tracer.
CHECK_CATEGORIES = frozenset({"mailbox", "resource"})


class InvariantViolation(AssertionError):
    """A runtime invariant of the simulation stack was violated."""


class InvariantChecker:
    """Audits simulation runs for stack invariants via trace hooks.

    Parameters
    ----------
    tracer:
        An existing :class:`~repro.trace.Tracer` to piggyback on (it
        must record the ``"mailbox"`` category).  By default the checker
        builds its own minimal tracer; pass it as the ``tracer=`` of the
        world under test, or simply call :meth:`watch` on a world that
        has no tracer yet.
    strict_epochs:
        Whether an epoch that was reported by only *some* ranks by
        finalize time is a violation.  True for ``wait_empty``-style
        collectives; disable for apps that stop polling ``test_empty``
        early.
    """

    def __init__(self, tracer: Optional[Tracer] = None, strict_epochs: bool = True):
        if tracer is None:
            tracer = Tracer(sinks=[], categories=CHECK_CATEGORIES)
        if not tracer.wants("mailbox"):
            raise ValueError(
                "invariant checking requires the 'mailbox' trace category"
            )
        tracer.sinks.append(CallbackSink(self._on_event))
        self.tracer = tracer
        self.strict_epochs = strict_epochs
        self._worlds: List[Tuple[Any, Any]] = []  # (as-given, inner World)
        self._last_now: Dict[int, float] = {}
        #: Open (not yet fully reported) epochs:
        #: ``(mailbox_id, epoch) -> {rank: (sent, received)}``.
        self._open: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = {}
        #: Fully checked quiescence epochs.
        self.epochs_checked = 0
        #: Trace events audited.
        self.events_seen = 0

    # -- wiring ------------------------------------------------------------
    def watch(self, world):
        """Register a world for auditing; returns it for chaining.

        Accepts a :class:`YgmWorld` or a bare :class:`World`.  If the
        world has no tracer yet, the checker's tracer is installed;
        if it has a different one, that is an error (build the world
        with ``tracer=checker.tracer`` instead).
        """
        inner = getattr(world, "world", world)
        sim = inner.sim
        if sim.tracer is None:
            cfg = inner.machine.config
            self.tracer.bind(nodes=cfg.nodes, cores_per_node=cfg.cores_per_node)
            sim.tracer = self.tracer
        elif sim.tracer is not self.tracer:
            raise ValueError(
                "world already carries a different tracer; construct it with "
                "tracer=checker.tracer to audit it"
            )
        self._worlds.append((world, inner))
        return world

    # -- event-time checks ---------------------------------------------------
    def _fail(self, message: str) -> None:
        raise InvariantViolation(message)

    def _on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        for _, inner in self._worlds:
            sim = inner.sim
            now = sim.now
            last = self._last_now.get(id(sim))
            if last is not None and now < last:
                self._fail(
                    f"simulated time moved backwards: {last} -> {now} "
                    f"(at event {event.cat}/{event.name})"
                )
            self._last_now[id(sim)] = now
        if event.cat == "mailbox" and event.name == "quiescent":
            self._on_quiescent(event.args or {})
        elif event.cat == "resource" and event.ph == "C":
            value = (event.args or {}).get("value", 0)
            if value < 0:
                self._fail(
                    f"resource {event.lane!r} reported negative queue depth {value}"
                )

    def _on_quiescent(self, args: Dict[str, Any]) -> None:
        key = (args["mailbox"], args["epoch"])
        group = self._open.setdefault(key, {})
        rank = args["rank"]
        if rank in group:
            self._fail(
                f"mailbox {key[0]} epoch {key[1]}: rank {rank} reported "
                "quiescence twice"
            )
        if args["queued"] != 0:
            self._fail(
                f"mailbox {key[0]} epoch {key[1]}: rank {rank} declared "
                f"quiescent with {args['queued']} messages still buffered"
            )
        totals = (args["term_sent"], args["term_received"])
        if totals[0] != totals[1]:
            self._fail(
                f"mailbox {key[0]} epoch {key[1]}: termination declared with "
                f"unbalanced global totals sent={totals[0]} received={totals[1]} "
                "-- messages were still in flight"
            )
        group[rank] = totals
        if len(group) == args["size"]:
            if len(set(group.values())) != 1:
                self._fail(
                    f"mailbox {key[0]} epoch {key[1]}: ranks disagree on the "
                    f"quiescence totals: {sorted(group.items())}"
                )
            del self._open[key]
            self.epochs_checked += 1

    # -- end-of-run checks ------------------------------------------------------
    def finalize(self, result=None) -> Dict[str, int]:
        """Run the at-quiescence checks; call after the world completes.

        ``result`` (a :class:`~repro.core.context.YgmResult`), when
        given, additionally enables the global conservation checks.
        Returns a small summary dict for reporting.
        """
        for _, inner in self._worlds:
            machine = inner.machine
            for res in (*machine.nic_tx, *machine.nic_rx):
                if res.in_use != 0:
                    self._fail(
                        f"resource {res.name!r} leaked: in_use={res.in_use} "
                        "after quiescence"
                    )
                if res.queue_length != 0:
                    self._fail(
                        f"resource {res.name!r} still has {res.queue_length} "
                        "queued waiters after quiescence"
                    )
            for inbox in inner.inboxes:
                if inbox.pending_unexpected:
                    self._fail(
                        f"rank {inbox.rank}: {inbox.pending_unexpected} packets "
                        "left in the unexpected queue at finalize"
                    )
                for (_ctx, kind), store in inbox.subscribed_stores().items():
                    if len(store):
                        self._fail(
                            f"rank {inbox.rank}: {len(store)} undelivered "
                            f"packets in subscribed store {kind!r} at finalize"
                        )
        if self.strict_epochs and self._open:
            partial = {
                key: sorted(group) for key, group in sorted(self._open.items())
            }
            self._fail(
                f"quiescence epochs reported by only some ranks: {partial}"
            )
        if result is not None:
            self.check_conservation(result)
        return {
            "epochs_checked": self.epochs_checked,
            "events_seen": self.events_seen,
            "worlds": len(self._worlds),
        }

    def check_conservation(self, result) -> None:
        """Global message-conservation checks over a completed run."""
        stats = result.mailbox_stats
        nranks = len(result.per_rank_stats)
        # In-network combining legitimately collapses posted records
        # mid-route; every merged-away record is tallied exactly once in
        # ``entries_combined``, so the conserved quantity is
        # posted == delivered + combined (combined == 0 without a combiner).
        if (
            stats.app_messages_sent
            != stats.app_messages_delivered + stats.entries_combined
        ):
            self._fail(
                f"application messages not conserved: posted "
                f"{stats.app_messages_sent}, delivered "
                f"{stats.app_messages_delivered} + combined "
                f"{stats.entries_combined}"
            )
        expected = stats.bcasts_initiated * max(0, nranks - 1)
        if expected != stats.bcast_deliveries:
            self._fail(
                f"broadcast copies not conserved: {stats.bcasts_initiated} "
                f"broadcasts on {nranks} ranks should deliver {expected} "
                f"copies, saw {stats.bcast_deliveries}"
            )
        if stats.entries_sent != stats.entries_received:
            self._fail(
                f"transport entries not conserved: sent {stats.entries_sent}, "
                f"received {stats.entries_received}"
            )


def run_checked(
    machine,
    rank_main,
    scheme: str = "nlnr",
    seed: int = 0,
    mailbox_capacity: Optional[int] = None,
    tiebreaker=None,
):
    """Run ``rank_main`` on a fresh audited world; returns ``(result, checker)``.

    Raises :class:`InvariantViolation` if any invariant fails during the
    run or at finalize.
    """
    from ..core.context import YgmWorld

    checker = InvariantChecker()
    kwargs = {}
    if mailbox_capacity is not None:
        kwargs["mailbox_capacity"] = mailbox_capacity
    world = YgmWorld(
        machine,
        scheme=scheme,
        seed=seed,
        tracer=checker.tracer,
        tiebreaker=tiebreaker,
        **kwargs,
    )
    checker.watch(world)
    result = world.run(rank_main)
    checker.finalize(result)
    return result, checker
