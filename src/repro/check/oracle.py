"""Routing-differential oracle: every app x every scheme x references.

For each application and graph scale, the oracle runs the distributed
YGM program under all six routing policies (``noroute``,
``node_local``, ``node_remote``, ``nlnr``, ``node_aware``,
``adaptive``) with full invariant checking
(:mod:`repro.check.invariants`) and asserts that

1. every scheme's gathered global output is **bit-identical** to every
   other scheme's (routing must never change answers), and
2. the output matches the sequential in-process reference
   (:mod:`repro.check.sequential`) -- bit-exactly for the integer and
   fixpoint apps, within tight tolerance for SpMV (whose distributed
   float-sum decomposition a sequential pass cannot replicate).

``combining=True`` re-runs the sweep with each app's in-network
combiner enabled (:mod:`repro.core.routing.combiner`): the integer and
min-relax algebras remain bit-exact and cross-scheme bit-identical,
while combined SpMV -- whose windowed partial sums are rounding-order
dependent -- is verified to tolerance only and excluded from the
cross-scheme digest comparison.

Run it from the benchmark CLI as ``python -m repro.bench --check`` or
programmatically via :func:`run_oracle`.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.bfs import gather_global_distances, make_bfs
from ..apps.connected_components import (
    gather_global_labels,
    make_connected_components,
)
from ..apps.degree_count import gather_global_degrees, make_degree_counting
from ..apps.kmer_count import make_kmer_counting, merge_counts
from ..apps.sssp import gather_global_sssp, make_sssp
from ..bench.harness import schemes_for
from ..core.routing import EXTENDED_SCHEMES
from ..graph.delegates import DelegateSet
from ..graph.generators import er_stream, rmat_stream
from ..linalg.spmv import gather_global_y, make_spmv, partition_spmv_problem
from ..machine import bench_machine
from . import sequential
from .fuzz import results_equal
from .invariants import InvariantViolation, run_checked

#: Scale name -> (nodes, cores_per_node) of the simulated machine.
ORACLE_SCALES: Dict[str, Tuple[int, int]] = {
    "tiny": (2, 2),
    "small": (4, 2),
}

#: All oracle-covered applications.
ORACLE_APPS: Tuple[str, ...] = (
    "degree_count",
    "connected_components",
    "bfs",
    "sssp",
    "kmer_count",
    "spmv",
)

#: Mailbox capacity used by oracle runs: small enough that every
#: scenario exercises mid-stream flushes and intermediary re-binning.
_CAPACITY = 32
_BATCH = 48


@dataclass
class _Case:
    """One (app, scale) oracle case."""

    app: str
    make: Callable[[], Callable]  # fresh rank_main per run
    gather: Callable[[List[Any]], Any]  # values -> canonical global output
    reference: Callable[[], Any]
    exact: bool = True  # bit-exact vs tolerance comparison


def _graph_sizes(scale: str) -> Tuple[int, int]:
    """(num_vertices, edges_per_rank) for the oracle's ER graphs."""
    return {"tiny": (64, 40), "small": (128, 60)}[scale]


def _build_case(
    app: str, scale: str, nranks: int, seed: int, combining: bool = False
) -> _Case:
    n, epr = _graph_sizes(scale)
    if app == "degree_count":
        stream = er_stream(n, epr, seed=seed + 7)
        return _Case(
            app,
            make=lambda: make_degree_counting(
                stream,
                batch_size=_BATCH,
                capacity=_CAPACITY,
                combining=combining,
            ),
            gather=lambda vals: gather_global_degrees(vals, n, nranks),
            reference=lambda: sequential.ref_degrees(stream, nranks),
        )
    if app == "connected_components":
        # RMAT for skewed degrees so the delegate threshold actually
        # promotes hubs and broadcasts flow.
        stream = rmat_stream(6 if scale == "tiny" else 7, epr, seed=seed + 11)
        nv = stream.num_vertices
        return _Case(
            app,
            make=lambda: make_connected_components(
                stream,
                delegate_threshold=8.0,
                batch_size=_BATCH,
                capacity=_CAPACITY,
                combining=combining,
            ),
            gather=lambda vals: gather_global_labels(vals, nv, nranks),
            reference=lambda: sequential.ref_connected_components(
                stream, nranks
            ),
        )
    if app == "bfs":
        stream = er_stream(n, epr, seed=seed + 13)
        return _Case(
            app,
            make=lambda: make_bfs(
                stream,
                source=0,
                batch_size=_BATCH,
                capacity=_CAPACITY,
                combining=combining,
            ),
            gather=lambda vals: gather_global_distances(vals, n, nranks),
            reference=lambda: sequential.ref_bfs(stream, 0, nranks),
        )
    if app == "sssp":
        stream = er_stream(n, epr, seed=seed + 17)
        return _Case(
            app,
            make=lambda: make_sssp(
                stream,
                source=0,
                batch_size=_BATCH,
                capacity=_CAPACITY,
                weight_seed=seed + 3,
                combining=combining,
            ),
            gather=lambda vals: gather_global_sssp(vals, n, nranks),
            reference=lambda: sequential.ref_sssp(
                stream, 0, nranks, weight_seed=seed + 3
            ),
        )
    if app == "kmer_count":
        n_reads = 24 if scale == "tiny" else 40
        params = dict(
            n_reads_per_rank=n_reads,
            read_len=18,
            k=8,
            frequent_threshold=1,
            skew=0.6,
        )

        def gather_kmer(vals):
            counts = merge_counts(vals)
            frequent: List[int] = sorted(
                km for _, freq in vals for km in freq
            )
            return (tuple(sorted(counts.items())), tuple(frequent))

        def ref_kmer():
            counts, frequent = sequential.ref_kmer_counts(
                nranks=nranks, seed=seed, **params
            )
            return (tuple(sorted(counts.items())), tuple(frequent))

        return _Case(
            app,
            make=lambda: make_kmer_counting(
                batch_size=_BATCH,
                capacity=_CAPACITY,
                combining=combining,
                **params,
            ),
            gather=gather_kmer,
            reference=ref_kmer,
        )
    if app == "spmv":
        rng = np.random.default_rng(seed + 23)
        nnz = n * 5
        rows = rng.integers(0, n, nnz)
        cols = rng.integers(0, n, nnz)
        vals = rng.standard_normal(nnz)
        x = rng.standard_normal(n)
        # Delegate the densest columns so the replica paths are covered.
        top = np.argsort(np.bincount(cols, minlength=n))[-3:]
        delegates = DelegateSet(np.sort(top).astype(np.int64))
        problems = [
            partition_spmv_problem(
                r, nranks, n, rows, cols, vals, x, delegates=delegates
            )
            for r in range(nranks)
        ]
        return _Case(
            app,
            make=lambda: make_spmv(
                problems,
                batch_size=_BATCH,
                capacity=_CAPACITY,
                combining=combining,
            ),
            gather=lambda vs: gather_global_y(vs, n, nranks),
            reference=lambda: sequential.ref_spmv(n, rows, cols, vals, x),
            exact=False,
        )
    raise ValueError(f"unknown oracle app {app!r}")


def _feed_digest(h, obj: Any) -> None:
    """Canonical byte-feed mirroring :func:`~repro.check.fuzz.results_equal`:
    two outputs that compare equal feed identical bytes (ndarrays by
    dtype+shape+raw data, floats as float64 bits, list==tuple)."""
    if isinstance(obj, np.ndarray):
        h.update(b"nd:")
        h.update(str(obj.dtype).encode())
        h.update(repr(obj.shape).encode())
        h.update(obj.tobytes())
    elif isinstance(obj, dict):
        h.update(b"map:")
        for key in sorted(obj, key=repr):
            h.update(repr(key).encode())
            _feed_digest(h, obj[key])
    elif isinstance(obj, (list, tuple)):
        h.update(b"seq:%d:" % len(obj))
        for item in obj:
            _feed_digest(h, item)
    elif isinstance(obj, (bool, np.bool_)):
        h.update(b"b:%d" % int(obj))
    elif isinstance(obj, (float, np.floating)):
        h.update(b"f:")
        h.update(np.float64(obj).tobytes())
    elif isinstance(obj, (int, np.integer)):
        h.update(b"i:" + repr(int(obj)).encode())
    else:
        h.update(b"o:" + repr(obj).encode())


def canonical_digest(obj: Any) -> str:
    """Hex digest of a gathered oracle output; equal outputs (in the
    :func:`results_equal` sense) hash identically, so workers can check
    cross-scheme bit-identity without shipping arrays back."""
    h = hashlib.sha256()
    _feed_digest(h, obj)
    return h.hexdigest()


def oracle_cell(
    *,
    app: str,
    scale: str,
    scheme: str,
    seed: int,
    pdes_workers: int = 0,
    combining: bool = False,
) -> dict:
    """One (app, scale, scheme) oracle run, self-contained for a worker.

    Rebuilds the case, runs it with full invariant checking, compares
    against the sequential reference *inside the worker*, and returns
    only JSON scalars: the pass/fail verdict plus a canonical digest of
    the gathered output for the driver's cross-scheme comparison.

    ``pdes_workers`` > 1 additionally re-runs the same configuration
    partitioned across that many processes
    (:class:`~repro.pdes.PdesWorld`) and asserts the parallel result
    equivalent to the serial one (:func:`~repro.pdes.assert_equivalent`:
    timestamps, stats and gathered values all match), turning every
    oracle cell into a serial-vs-parallel differential test.

    ``combining=True`` enables the app's in-network combiner.  A
    combined tolerance-verified app (SpMV) returns ``digest=None``:
    its windowed partial sums are rounding-order dependent, so
    cross-scheme bit-identity is not a claim it makes.
    """
    nodes, cores = ORACLE_SCALES[scale]
    machine = bench_machine(nodes, cores_per_node=cores)
    case = _build_case(app, scale, machine.nranks, seed, combining=combining)
    try:
        result, _ = run_checked(machine, case.make(), scheme=scheme, seed=seed)
        out = case.gather(result.values)
    except InvariantViolation as exc:
        return {"ok": False, "detail": f"invariant: {exc}", "digest": None}
    if pdes_workers and pdes_workers > 1:
        from ..pdes import ConformanceError, PdesError, PdesWorld, assert_equivalent

        engine = PdesWorld(
            machine,
            scheme=scheme,
            seed=seed,
            workers=min(pdes_workers, nodes),
        )
        try:
            parallel = engine.run(case.make())
            assert_equivalent(
                parallel,
                result,
                values_equal=lambda a, b: results_equal(
                    case.gather(a), case.gather(b)
                ),
            )
        except (ConformanceError, PdesError) as exc:
            return {"ok": False, "detail": f"pdes: {exc}", "digest": None}
    ref = case.reference()
    if case.exact:
        ok = results_equal(out, ref)
        detail = "" if ok else "differs from sequential reference"
    else:
        ok = bool(np.allclose(out, ref, rtol=1e-9, atol=1e-12))
        detail = "" if ok else (
            f"max |delta| = {np.abs(out - ref).max():.3e} "
            "vs sequential reference"
        )
    digest = None if (combining and not case.exact) else canonical_digest(out)
    return {"ok": ok, "detail": detail, "digest": digest}


@dataclass
class OracleEntry:
    app: str
    scale: str
    check: str  # scheme name, or "cross-scheme"
    ok: bool
    detail: str = ""


@dataclass
class OracleReport:
    entries: List[OracleEntry] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.entries)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise InvariantViolation(self.render())

    def render(self) -> str:
        lines = []
        failures = [e for e in self.entries if not e.ok]
        by_case: Dict[Tuple[str, str], List[OracleEntry]] = {}
        for e in self.entries:
            by_case.setdefault((e.app, e.scale), []).append(e)
        for (app, scale), group in sorted(by_case.items()):
            bad = [e for e in group if not e.ok]
            status = "ok" if not bad else "FAIL"
            lines.append(f"  {app:22s} {scale:6s} [{status}] "
                         f"{len(group) - len(bad)}/{len(group)} checks")
            for e in bad:
                lines.append(f"    {e.check}: {e.detail}")
        header = (
            f"differential oracle: {len(self.entries) - len(failures)}"
            f"/{len(self.entries)} checks passed in {self.elapsed:.1f}s"
        )
        return "\n".join([header, *lines])


def _case_grid(
    apps: Optional[Sequence[str]],
    scales: Optional[Sequence[str]],
    schemes: Optional[Sequence[str]],
) -> List[Tuple[str, str, Tuple[str, ...]]]:
    """The (scale, app, run_schemes) sweep in canonical report order."""
    apps = tuple(apps) if apps else ORACLE_APPS
    scales = tuple(scales) if scales else tuple(ORACLE_SCALES)
    # Validate eagerly, before any job fans out to a worker.
    for app in apps:
        if app not in ORACLE_APPS:
            raise ValueError(f"unknown oracle app {app!r}")
    grid = []
    for scale in scales:
        nodes, cores = ORACLE_SCALES[scale]
        run_schemes = (
            tuple(schemes)
            if schemes
            else tuple(schemes_for(nodes, cores, EXTENDED_SCHEMES))
        )
        for app in apps:
            grid.append((scale, app, run_schemes))
    return grid


def run_oracle(
    apps: Optional[Sequence[str]] = None,
    scales: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
    seed: int = 0,
    tiebreaker=None,
    pool=None,
    pdes_workers: int = 0,
    combining: bool = False,
) -> OracleReport:
    """Run the differential oracle; see the module docstring.

    ``tiebreaker`` optionally perturbs the kernel schedule of every
    simulated run (the oracle's assertions must hold under any legal
    schedule -- composing it with the fuzzer's
    :class:`~repro.check.fuzz.ShuffledTiebreaker` checks exactly that).
    Tiebreakers are arbitrary callables, so a perturbed oracle always
    runs in-process; otherwise the per-scheme runs fan out through
    ``pool`` (a :class:`repro.exec.Pool`; None runs them inline) as
    :func:`oracle_cell` jobs, with cross-scheme bit-identity checked via
    canonical output digests.

    ``pdes_workers`` > 1 adds a serial-vs-parallel differential to every
    cell (see :func:`oracle_cell`); the perturbed in-process path stays
    serial-only (fuzzed parallel schedules are covered by
    ``tests/pdes/test_fuzz_pdes.py``).
    """
    report = OracleReport()
    start = time.perf_counter()
    if tiebreaker is not None:
        _run_oracle_perturbed(
            report, apps, scales, schemes, seed, tiebreaker, combining
        )
        report.elapsed = time.perf_counter() - start
        return report

    from ..exec import Job, run_jobs

    grid = _case_grid(apps, scales, schemes)
    jobs = [
        Job(
            fn="repro.check.oracle:oracle_cell",
            kwargs=dict(
                app=app,
                scale=scale,
                scheme=scheme,
                seed=seed,
                pdes_workers=pdes_workers,
                combining=combining,
            ),
            label=f"oracle {app}/{scale}/{scheme}"
            + ("/combining" if combining else ""),
        )
        for scale, app, run_schemes in grid
        for scheme in run_schemes
    ]
    cells = iter(run_jobs(jobs, pool))
    for scale, app, run_schemes in grid:
        digests: Dict[str, str] = {}
        for scheme in run_schemes:
            cell = next(cells)
            report.entries.append(
                OracleEntry(app, scale, scheme, cell["ok"], cell["detail"])
            )
            if cell["digest"] is not None:
                digests[scheme] = cell["digest"]
        if len(digests) > 1:
            baseline_scheme = next(iter(digests))
            baseline = digests[baseline_scheme]
            bad = [s for s, d in digests.items() if d != baseline]
            report.entries.append(
                OracleEntry(
                    app,
                    scale,
                    "cross-scheme",
                    not bad,
                    ""
                    if not bad
                    else f"{bad} differ bitwise from {baseline_scheme}",
                )
            )
    report.elapsed = time.perf_counter() - start
    return report


def _run_oracle_perturbed(
    report: OracleReport,
    apps: Optional[Sequence[str]],
    scales: Optional[Sequence[str]],
    schemes: Optional[Sequence[str]],
    seed: int,
    tiebreaker,
    combining: bool = False,
) -> None:
    """In-process oracle sweep under a custom kernel tiebreaker."""
    for scale, app, run_schemes in _case_grid(apps, scales, schemes):
        nodes, cores = ORACLE_SCALES[scale]
        machine = bench_machine(nodes, cores_per_node=cores)
        case = _build_case(
            app, scale, machine.nranks, seed, combining=combining
        )
        ref = case.reference()
        outputs: Dict[str, Any] = {}
        for scheme in run_schemes:
            try:
                result, _ = run_checked(
                    machine,
                    case.make(),
                    scheme=scheme,
                    seed=seed,
                    tiebreaker=tiebreaker,
                )
                out = case.gather(result.values)
            except InvariantViolation as exc:
                report.entries.append(
                    OracleEntry(app, scale, scheme, False,
                                f"invariant: {exc}")
                )
                continue
            if not (combining and not case.exact):
                outputs[scheme] = out
            if case.exact:
                ok = results_equal(out, ref)
                detail = "" if ok else "differs from sequential reference"
            else:
                ok = bool(
                    np.allclose(out, ref, rtol=1e-9, atol=1e-12)
                )
                detail = "" if ok else (
                    f"max |delta| = {np.abs(out - ref).max():.3e} "
                    "vs sequential reference"
                )
            report.entries.append(
                OracleEntry(app, scale, scheme, ok, detail)
            )
        if len(outputs) > 1:
            baseline_scheme = next(iter(outputs))
            baseline = outputs[baseline_scheme]
            bad = [
                s
                for s, o in outputs.items()
                if not results_equal(o, baseline)
            ]
            report.entries.append(
                OracleEntry(
                    app,
                    scale,
                    "cross-scheme",
                    not bad,
                    ""
                    if not bad
                    else f"{bad} differ bitwise from {baseline_scheme}",
                )
            )
