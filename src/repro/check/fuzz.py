"""Schedule fuzzing: adversarial same-timestamp interleavings.

The DES kernel orders simultaneous events FIFO by default, which is
deterministic but explores exactly *one* of the many interleavings a
real asynchronous machine could produce.  Correctness of the YGM stack
(termination detection, coalescing, routing, reentrant posts) must not
depend on that accident of scheduling.

This module perturbs the kernel's tie-breaking through the pluggable
``tiebreaker`` hook of :class:`~repro.sim.kernel.Simulator`:
:class:`ShuffledTiebreaker` assigns every event a pseudo-random key from
a stateless hash of ``(seed, seq)``, so events that share a timestamp
pop in a seed-determined shuffled order while the simulation stays fully
reproducible -- re-running with the same seed replays the exact same
schedule.  :func:`fuzz_schedules` re-runs a scenario under many such
shuffles and asserts (a) no invariant fires (see
:mod:`repro.check.invariants`) and (b) the application-level result is
identical to the unperturbed baseline.

Because the hash is stateless, a failing seed can be *minimized*:
:func:`minimize_window` restricts the perturbation to a ``[lo, hi)``
event-sequence window (events outside keep the default key) and bisects
it down, without shifting the random keys of the events that remain
perturbed.  The surviving window localizes the first schedule decision
that matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

import numpy as np

from ..serde import RecordSpec
from .invariants import InvariantViolation, run_checked

_MASK64 = (1 << 64) - 1

#: A schedule under test: maps a tiebreaker (or None for the pristine
#: baseline) to the scenario's canonical result.  Must raise
#: :class:`InvariantViolation` on any invariant failure.
RunFn = Callable[[Optional[Callable[[float, int], int]]], Any]


def _mix(seed: int, seq: int) -> int:
    """Stateless splitmix64-style hash of ``(seed, seq)`` to 64 bits."""
    x = (seed ^ (seq * 0x9E3779B97F4A7C15)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


class ShuffledTiebreaker:
    """Pseudo-randomly orders same-timestamp events, reproducibly.

    ``window=(lo, hi)`` restricts the perturbation to events whose
    kernel sequence number falls in ``[lo, hi)``; all other events keep
    the default key 0 (and hence their FIFO order among themselves).
    Keys are a pure function of ``(seed, seq)``, so narrowing the window
    never changes the key of an event that stays inside it -- the
    property :func:`minimize_window` relies on.
    """

    def __init__(self, seed: int, window: Optional[Tuple[int, int]] = None):
        self.seed = seed
        self.window = window

    def __call__(self, time: float, seq: int) -> int:
        if self.window is not None:
            lo, hi = self.window
            if not lo <= seq < hi:
                return 0
        return _mix(self.seed, seq)

    def __repr__(self) -> str:  # pragma: no cover -- debugging aid
        win = f", window={self.window}" if self.window else ""
        return f"ShuffledTiebreaker(seed={self.seed}{win})"


def results_equal(a: Any, b: Any) -> bool:
    """Deep, bit-exact equality (ndarrays compare dtype + raw bytes)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and a.tobytes() == b.tobytes()
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            results_equal(a[k], b[k]) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            results_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, (float, np.floating)) and isinstance(b, (float, np.floating)):
        return np.float64(a).tobytes() == np.float64(b).tobytes()
    return bool(a == b)


@dataclass
class FuzzFailure:
    """One failing perturbed schedule, reproducible from ``seed``."""

    seed: int
    kind: str  # "invariant" | "divergence" | "error"
    detail: str

    def tiebreaker(self) -> ShuffledTiebreaker:
        """Rebuild the exact tiebreaker that exposed this failure."""
        return ShuffledTiebreaker(self.seed)


@dataclass
class FuzzReport:
    """Outcome of a :func:`fuzz_schedules` campaign."""

    runs: int
    seeds: List[int] = field(default_factory=list)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_if_failed(self) -> None:
        if self.failures:
            raise InvariantViolation(self.render())

    def render(self) -> str:
        if self.ok:
            return f"schedule fuzz: {self.runs} perturbed interleavings OK"
        lines = [
            f"schedule fuzz: {len(self.failures)}/{self.runs} interleavings FAILED"
        ]
        for f in self.failures:
            lines.append(f"  seed={f.seed} [{f.kind}] {f.detail}")
        lines.append(
            "reproduce with ShuffledTiebreaker(seed=<seed>); "
            "localize with repro.check.minimize_window"
        )
        return "\n".join(lines)


def fuzz_schedules(
    run_fn: RunFn,
    runs: int = 50,
    seed: int = 0,
    baseline: Any = None,
) -> FuzzReport:
    """Re-run a scenario under ``runs`` shuffled schedules.

    Each run ``i`` uses the derived tiebreak seed ``_mix(seed, i)`` so
    campaigns with different master seeds explore disjoint schedules.
    The baseline (default-FIFO) result is computed once unless supplied.
    """
    if baseline is None:
        baseline = run_fn(None)
    report = FuzzReport(runs=runs)
    for i in range(runs):
        sub_seed = _mix(seed, i)
        report.seeds.append(sub_seed)
        failure = _run_one(run_fn, sub_seed, baseline)
        if failure is not None:
            report.failures.append(failure)
    return report


def _run_one(
    run_fn: RunFn, sub_seed: int, baseline: Any
) -> Optional[FuzzFailure]:
    """Execute one perturbed schedule; a failure record or None."""
    try:
        result = run_fn(ShuffledTiebreaker(sub_seed))
    except InvariantViolation as exc:
        return FuzzFailure(sub_seed, "invariant", str(exc))
    except Exception as exc:  # crash under a legal schedule is a bug too
        return FuzzFailure(sub_seed, "error", f"{type(exc).__name__}: {exc}")
    if not results_equal(baseline, result):
        return FuzzFailure(
            sub_seed, "divergence",
            "result differs from the unperturbed baseline",
        )
    return None


def quiescence_shard(*, lo: int, hi: int, seed: int, scenario: dict) -> dict:
    """Worker cell: runs ``[lo, hi)`` of a fuzz campaign over the
    canonical quiescence scenario (rebuilt from ``scenario`` kwargs).

    Each run ``i`` uses the same derived seed ``_mix(seed, i)`` as the
    serial campaign, so sharding changes nothing about which schedules
    are explored.  The shard recomputes the (cheap, deterministic)
    unperturbed baseline itself rather than shipping it across the
    process boundary.
    """
    run_fn = mailbox_quiescence_scenario(**scenario)
    baseline = run_fn(None)
    seeds: List[int] = []
    failures: List[dict] = []
    for i in range(lo, hi):
        sub_seed = _mix(seed, i)
        seeds.append(sub_seed)
        failure = _run_one(run_fn, sub_seed, baseline)
        if failure is not None:
            failures.append(
                {"seed": failure.seed, "kind": failure.kind,
                 "detail": failure.detail}
            )
    return {"seeds": seeds, "failures": failures}


def fuzz_schedules_sharded(
    runs: int = 50,
    seed: int = 0,
    scenario: Optional[dict] = None,
    pool=None,
) -> FuzzReport:
    """A :func:`fuzz_schedules` campaign sharded across pool workers.

    Splits the run indices into one contiguous shard per worker and
    fans them out through ``pool`` (a :class:`repro.exec.Pool`; None
    runs the single shard inline).  Shards merge in index order, so the
    report's seeds and failures match the serial campaign exactly.
    """
    from ..exec import Job, run_jobs

    scenario = dict(scenario or {})
    nshards = min(runs, pool.jobs) if pool is not None else 1
    nshards = max(1, nshards)
    bounds = [
        (runs * k // nshards, runs * (k + 1) // nshards)
        for k in range(nshards)
    ]
    jobs = [
        Job(
            fn="repro.check.fuzz:quiescence_shard",
            kwargs=dict(lo=lo, hi=hi, seed=seed, scenario=scenario),
            label=f"fuzz runs {lo}-{hi}",
        )
        for lo, hi in bounds
        if hi > lo
    ]
    report = FuzzReport(runs=runs)
    for shard in run_jobs(jobs, pool):
        report.seeds.extend(shard["seeds"])
        report.failures.extend(
            FuzzFailure(f["seed"], f["kind"], f["detail"])
            for f in shard["failures"]
        )
    return report


def _window_failure(
    run_fn: RunFn, seed: int, window: Tuple[int, int], baseline: Any
) -> Optional[str]:
    try:
        result = run_fn(ShuffledTiebreaker(seed, window=window))
    except InvariantViolation as exc:
        return f"invariant: {exc}"
    except Exception as exc:
        return f"error: {type(exc).__name__}: {exc}"
    if not results_equal(baseline, result):
        return "divergence from baseline"
    return None


def minimize_window(
    run_fn: RunFn,
    seed: int,
    max_seq: int,
    baseline: Any = None,
) -> Optional[Tuple[Tuple[int, int], str]]:
    """Bisect a failing fuzz seed down to a minimal perturbation window.

    ``max_seq`` bounds the kernel sequence numbers of the scenario (the
    baseline run's event count; a generous over-estimate only costs a
    few extra bisection steps).  Returns ``((lo, hi), detail)`` for the
    smallest window this greedy bisection still fails on, or ``None`` if
    the full window does not fail (seed is not a reproducer).
    """
    if baseline is None:
        baseline = run_fn(None)
    window = (0, max_seq)
    detail = _window_failure(run_fn, seed, window, baseline)
    if detail is None:
        return None
    while window[1] - window[0] > 1:
        lo, hi = window
        mid = (lo + hi) // 2
        left = _window_failure(run_fn, seed, (lo, mid), baseline)
        if left is not None:
            window, detail = (lo, mid), left
            continue
        right = _window_failure(run_fn, seed, (mid, hi), baseline)
        if right is not None:
            window, detail = (mid, hi), right
            continue
        break  # failure needs decisions from both halves
    return window, detail


# -- canonical fuzz scenario ---------------------------------------------------

#: Batch records for the quiescence scenario: (origin rank, value).
FUZZ_SPEC = RecordSpec("fuzzmix", [("src", "u8"), ("val", "i8")])


def quiescence_rank_main(
    n_scalar: int = 5, n_batch: int = 40
) -> Callable[[Any], Generator]:
    """The canonical mixed-traffic quiescence rank program.

    Two ``wait_empty`` epochs over one mailbox: epoch 1 mixes random
    point-to-point pings (each answered by an echo *posted from the
    delivery callback*, exercising reentrancy) with a broadcast from
    every rank; epoch 2 sends coalesced record batches.  Its per-rank
    value (sorted receive logs) is schedule-independent, which is what
    makes it the right payload for both the schedule fuzzer and the
    parallel-DES engine's fuzz-under-partitioning test.
    """

    def rank_main(ctx) -> Generator:
        rank, nranks = ctx.rank, ctx.nranks
        got_scalar: List[Tuple[int, int]] = []
        got_echo: List[Tuple[int, int]] = []
        got_batch: List[Tuple[int, int]] = []
        got_bcast: List[Tuple[str, int]] = []

        def on_recv(msg):
            if msg[0] == "ping":
                _, src, i = msg
                got_scalar.append((src, i))
                mb.post(src, ("echo", rank, i))  # reentrant post
            else:
                _, src, i = msg
                got_echo.append((src, i))

        def on_batch(batch: np.ndarray) -> None:
            got_batch.extend(
                zip(batch["src"].tolist(), batch["val"].tolist())
            )

        def on_bcast(msg) -> None:
            got_bcast.append(msg)

        mb = ctx.mailbox(
            recv=on_recv, recv_batch=on_batch, recv_bcast=on_bcast
        )

        # Epoch 1: scalar pings (echoed from the callback) + broadcasts.
        for i in range(n_scalar):
            dest = int(ctx.rng.integers(0, nranks))
            yield from mb.send(dest, ("ping", rank, i))
        mb.post_bcast(("hello", rank))
        yield from mb.wait_empty()

        # Epoch 2: coalesced record batches.
        vals = np.arange(n_batch, dtype=np.int64) + rank * 1000
        dests = vals % nranks
        batch = FUZZ_SPEC.build(
            src=np.full(n_batch, rank, dtype=np.uint64), val=vals
        )
        yield from mb.send_batch(dests, batch, spec=FUZZ_SPEC)
        yield from mb.wait_empty()

        return {
            "scalar": tuple(sorted(got_scalar)),
            "echo": tuple(sorted(got_echo)),
            "batch": tuple(sorted(got_batch)),
            "bcast": tuple(sorted(got_bcast)),
        }

    return rank_main


def mailbox_quiescence_scenario(
    nodes: int = 2,
    cores_per_node: int = 2,
    scheme: str = "nlnr",
    capacity: int = 6,
    seed: int = 0,
    n_scalar: int = 5,
    n_batch: int = 40,
) -> RunFn:
    """Wrap :func:`quiescence_rank_main` as a checked :data:`RunFn`
    (fresh machine per run, invariant checking on) for
    :func:`fuzz_schedules` / :func:`minimize_window`."""
    from ..machine import bench_machine

    rank_main = quiescence_rank_main(n_scalar=n_scalar, n_batch=n_batch)

    def run_fn(tiebreaker):
        machine = bench_machine(nodes, cores_per_node=cores_per_node)
        result, _checker = run_checked(
            machine,
            rank_main,
            scheme=scheme,
            seed=seed,
            mailbox_capacity=capacity,
            tiebreaker=tiebreaker,
        )
        return tuple(result.values)

    return run_fn
