"""Sequential in-process reference implementations of the six apps.

Each function recomputes, with plain NumPy / textbook algorithms and **no
simulator involvement**, the exact global answer the distributed YGM
programs must produce.  The differential oracle (:mod:`repro.check.
oracle`) runs every app under every routing scheme and compares against
these references.

Determinism contracts the references replicate:

* edge streams are regenerated with the same :class:`~repro.graph.
  generators.EdgeStream` chunk seeding the rank programs use, so the
  input graph is identical by construction;
* k-mer reads use the same per-rank RNG derivation as
  :class:`~repro.mpi.world.RankContext`
  (``SeedSequence(entropy=seed, spawn_key=(rank,))``);
* SSSP weights come from :func:`repro.apps.sssp.edge_weights`, and
  path lengths are folded source-outward exactly like the distributed
  relaxation, so even the float results are bit-identical;
* SpMV is the one app whose distributed sum decomposition a sequential
  pass cannot cheaply replicate (float addition is not associative), so
  its reference comparison is tolerance-based -- cross-*scheme*
  bit-identity is still asserted separately by the oracle.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

from ..apps.bfs import UNREACHED
from ..apps.kmer_count import random_reads, shear_kmers
from ..apps.sssp import INF, edge_weights
from ..graph.generators import EdgeStream


def _all_edges(stream: EdgeStream, nranks: int) -> Tuple[np.ndarray, np.ndarray]:
    """Every rank's share of the stream, concatenated."""
    us: List[np.ndarray] = []
    vs: List[np.ndarray] = []
    for rank in range(nranks):
        u, v = stream.all_edges(rank)
        us.append(np.asarray(u, dtype=np.int64))
        vs.append(np.asarray(v, dtype=np.int64))
    return np.concatenate(us), np.concatenate(vs)


def ref_degrees(stream: EdgeStream, nranks: int) -> np.ndarray:
    """Global degree array (both endpoints of every edge count)."""
    u, v = _all_edges(stream, nranks)
    return np.bincount(
        np.concatenate((u, v)), minlength=stream.num_vertices
    ).astype(np.int64)


def ref_connected_components(stream: EdgeStream, nranks: int) -> np.ndarray:
    """Per-vertex label: the minimum vertex id of its component."""
    n = stream.num_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    u, v = _all_edges(stream, nranks)
    for a, b in zip(u.tolist(), v.tolist()):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
    roots = np.fromiter((find(i) for i in range(n)), dtype=np.int64, count=n)
    # With unions always rooted at the smaller id, the root *is* the
    # minimum vertex id of the component -- the fixpoint of YGM's
    # min-label propagation.
    return roots


def _adjacency(
    src: np.ndarray, dst: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR (indptr, neighbours, perm) over directed arcs src->dst."""
    order = np.argsort(src, kind="stable")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, dst[order], order


def ref_bfs(stream: EdgeStream, source: int, nranks: int) -> np.ndarray:
    """Hop distances from ``source`` (``UNREACHED`` sentinel)."""
    n = stream.num_vertices
    u, v = _all_edges(stream, nranks)
    src = np.concatenate((u, v))
    dst = np.concatenate((v, u))
    indptr, neigh, _ = _adjacency(src, dst, n)
    dist = np.full(n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    while frontier:
        nxt: List[int] = []
        for x in frontier:
            d = dist[x] + 1
            for y in neigh[indptr[x] : indptr[x + 1]].tolist():
                if d < dist[y]:
                    dist[y] = d
                    nxt.append(y)
        frontier = nxt
    return dist


def ref_sssp(
    stream: EdgeStream, source: int, nranks: int, weight_seed: int = 0
) -> np.ndarray:
    """Dijkstra distances from ``source`` (``INF`` sentinel).

    Tentative distances are built as ``dist[u] + w`` exactly like the
    distributed relaxation, so converged values match bit-for-bit.
    """
    n = stream.num_vertices
    u, v = _all_edges(stream, nranks)
    w = edge_weights(u, v, weight_seed)
    src = np.concatenate((u, v))
    dst = np.concatenate((v, u))
    ww = np.concatenate((w, w))
    indptr, neigh, perm = _adjacency(src, dst, n)
    wsorted = ww[perm]
    dist = np.full(n, INF, dtype=np.float64)
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, x = heapq.heappop(heap)
        if d > dist[x]:
            continue
        lo, hi = indptr[x], indptr[x + 1]
        for y, wy in zip(neigh[lo:hi].tolist(), wsorted[lo:hi].tolist()):
            nd = dist[x] + wy
            if nd < dist[y]:
                dist[y] = nd
                heapq.heappush(heap, (nd, y))
    return dist


def ref_kmer_counts(
    n_reads_per_rank: int,
    read_len: int,
    k: int,
    nranks: int,
    seed: int = 0,
    skew: float = 0.0,
    frequent_threshold: int = 2,
) -> Tuple[Dict[int, int], List[int]]:
    """Global (counts, sorted frequent k-mers) over every rank's reads.

    Regenerates each rank's reads with the same RNG derivation
    :class:`~repro.mpi.world.RankContext` uses, so the dataset matches
    the simulated run exactly.
    """
    counts: Dict[int, int] = {}
    for rank in range(nranks):
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(rank,))
        )
        reads = random_reads(n_reads_per_rank, read_len, rng, skew=skew)
        kmers = shear_kmers(reads, k)
        uniq, cnt = np.unique(kmers, return_counts=True)
        for km, c in zip(uniq.tolist(), cnt.tolist()):
            counts[km] = counts.get(km, 0) + c
    frequent = sorted(km for km, c in counts.items() if c > frequent_threshold)
    return counts, frequent


def ref_spmv(
    n: int, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Dense y = A @ x from COO triples (tolerance-based comparison)."""
    y = np.zeros(n, dtype=np.float64)
    np.add.at(
        y,
        np.asarray(rows, dtype=np.int64),
        np.asarray(vals, dtype=np.float64) * np.asarray(x, dtype=np.float64)[
            np.asarray(cols, dtype=np.int64)
        ],
    )
    return y
