"""The adaptive routing scheme: pick a route from live NIC occupancy.

The paper's schemes are static functions of the machine shape; its
Section III-E analysis shows the trade they make is *channel count*
(fewer, fatter remote channels coalesce better) against *hops* (every
extra hop is an extra copy).  Which side wins depends on instantaneous
load, so this scheme decides per re-binning call from a signal the
simulator already maintains: the sending node's NIC-TX occupancy
(:class:`~repro.sim.resources.Resource` ``in_use`` + ``queue_length`` --
the same counters the PR 5 profiler and ``YgmContext.occupancy()``
surface).

* NIC idle -> **direct** delivery (NoRoute's hop): no forwarding
  copies, lowest latency while bandwidth is plentiful.
* NIC busy -> **NLNR**'s route: traffic funnels through layer
  intermediaries, producing fewer/larger remote packets exactly when
  the wire is the bottleneck.

Both branches are existing static schemes, so every route stays acyclic
with at most 3 hops, and the scalar/vector paths agree given the same
simulation state.  Broadcasts always use NLNR's static tree: the
forwarding tree must be consistent across ranks, so it cannot depend on
per-rank load.

PDES safety: the signal is the *current* node's ``nic_tx`` resource.
``Machine.transmit_remote`` acquires the source-side NIC natively in
the partition that owns the sending node (only the destination tail is
replayed via ``inject_arrival``), and PDES partitions machines by whole
nodes -- so the executing worker always owns ``cur``'s node and reads
exactly the counters the serial engine would.  The conformance battery
covers this scheme for that reason.

Until :meth:`bind_machine` is called (e.g. in shape-only unit tests)
the scheme never sees congestion and routes like NoRoute.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import RoutingScheme
from .nlnr import NLNR


class Adaptive(RoutingScheme):
    """Direct when the NIC is idle, NLNR when it is congested."""

    name = "adaptive"

    #: Occupancy (``in_use + queue_length`` of the node's NIC-TX
    #: resource) at or above which the detour through NLNR engages.
    congestion_threshold: int = 1

    def __init__(self, nodes: int, cores_per_node: int):
        super().__init__(nodes, cores_per_node)
        self._nlnr = NLNR(nodes, cores_per_node)
        self._nic_tx: Optional[list] = None

    def bind_machine(self, machine) -> None:
        self._nic_tx = machine.nic_tx

    def _congested(self, node: int) -> bool:
        tx = self._nic_tx
        if tx is None:
            return False
        nic = tx[node]
        return nic.in_use + nic.queue_length >= self.congestion_threshold

    def next_hop(self, cur: int, dest: int) -> int:
        if self._congested(cur // self.cores):
            return self._nlnr.next_hop(cur, dest)
        return dest

    def next_hop_vec(self, cur: int, dests: np.ndarray) -> np.ndarray:
        # One routing decision per re-binning call: the whole batch sees
        # the same congestion state, mirroring what the scalar path sees
        # when nothing yields between messages.
        if self._congested(cur // self.cores):
            return self._nlnr.next_hop_vec(cur, dests)
        return np.asarray(dests, dtype=np.int64)

    def max_hops(self) -> int:
        return 3

    def bcast_targets(self, cur: int, origin: int) -> List[int]:
        # Static NLNR tree: broadcast forwarding must be consistent
        # across ranks, so it cannot depend on per-rank load.
        return self._nlnr.bcast_targets(cur, origin)

    def remote_partners(self, rank: int) -> List[int]:
        # The direct branch may hit any off-node rank; NLNR's partners
        # (and the bcast tree's) are a subset of that.
        node = self._node(rank)
        return [r for r in range(self.nranks) if self._node(r) != node]

    def channel_count(self) -> int:
        # Like NoRoute's single any-to-any channel class: under load the
        # NLNR subset is used, but the channel *structure* admits all.
        return 1
