"""The Node Local Node Remote (NLNR) routing scheme (paper Section III-D).

NLNR reduces the number of remote channels to the theoretical minimum by
organising nodes into *layers* (layer offset ``l = n mod C``) and making
core ``(n, c)`` the unique intermediary for all traffic from node ``n`` to
the nodes ``n'`` with ``n' mod C == c``.  A point-to-point message takes
up to three hops::

    (n, c)  --local-->  (n, n' mod C)  --remote-->  (n', n mod C)  --local-->  (n', c')

Each core communicates remotely with only ~N/C nodes, so for a fixed
total send volume V the average remote message size is O(V C / N) -- a
factor C larger than Node Local / Node Remote, which is what keeps
coalescing effective at large node counts (Section III-E, Figs 6-8).

Broadcasts cost ``N - 1`` remote messages, like Node Remote: the origin
fans out locally, each on-node core forwards over its own remote partner
set (the nodes in its "column"), and remote receivers distribute locally.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import RoutingScheme


class NLNR(RoutingScheme):
    """Local, remote, local: minimal remote channels via node layers."""

    name = "nlnr"

    def next_hop(self, cur: int, dest: int) -> int:
        cores = self.cores
        cur_node, cur_core = divmod(cur, cores)
        dest_node = dest // cores
        if cur_node == dest_node:
            return dest  # final local hop
        if cur_core == dest_node % cores:
            # We are the designated intermediary: remote hop to the
            # destination node's core matching *our* node offset.
            return dest_node * cores + cur_node % cores
        # First local hop to this node's intermediary for dest's node.
        return cur_node * cores + dest_node % cores

    def next_hop_vec(self, cur: int, dests: np.ndarray) -> np.ndarray:
        dests = np.asarray(dests, dtype=np.int64)
        cores = self.cores
        cur_node, cur_core = divmod(cur, cores)
        dnode = dests // cores
        layer = dnode % cores  # destination node's layer offset
        # Default: first local hop to this node's intermediary for the
        # destination's layer.  Overwrite in precedence order (in-place
        # form of the nested np.where() for the columnar re-bin path):
        # intermediary positions take the remote hop, same-node positions
        # the destination itself.
        hops = layer + cur_node * cores
        np.copyto(hops, dnode * cores + cur_node % cores, where=layer == cur_core)
        np.copyto(hops, dests, where=dnode == cur_node)
        return hops

    def max_hops(self) -> int:
        return 3

    def bcast_targets(self, cur: int, origin: int) -> List[int]:
        cores = self.cores
        origin_node, _origin_core = divmod(origin, cores)
        cur_node, cur_core = divmod(cur, cores)
        targets: List[int] = []
        if cur_node == origin_node:
            if cur == origin:
                # Stage 1: local fan-out to every other core on the node.
                base = origin_node * cores
                targets.extend(base + c for c in range(cores) if base + c != origin)
            # Stage 2 (origin included, for its own column): remote
            # fan-out to the nodes this core is intermediary for.
            targets.extend(
                self._rank(n, origin_node % cores)
                for n in range(self.nodes)
                if n != origin_node and n % cores == cur_core
            )
        elif cur_core == origin_node % cores:
            # Stage 3: remote receiver distributes on its own node.
            base = cur_node * cores
            targets.extend(base + c for c in range(cores) if base + c != cur)
        return targets

    def remote_partners(self, rank: int) -> List[int]:
        cores = self.cores
        node, core = divmod(rank, cores)
        partners: List[int] = []
        for other in range(self.nodes):
            if other == node:
                continue
            # We send remotely to nodes in our column (other % C == core),
            # landing on their core (node % C); and we receive from cores
            # (other, node % C)... the channel is symmetric: the pair
            # (node, core) <-> (other, node % C) exists iff other % C == core.
            if other % cores == core:
                partners.append(self._rank(other, node % cores))
        return partners

    def channel_count(self) -> int:
        # One channel per unordered layer pair, plus the self-offset
        # channels: C choose 2 + C (paper Section III-D).
        c = self.cores
        return c * (c - 1) // 2 + c


class HybridNLNR(NLNR):
    """NLNR with zero-cost local hops.

    Models the hybrid MPI+threads YGM of Section VII (ongoing work): all
    cores of a node share an address space, so the local exchange steps
    are pointer hand-offs rather than copies.  Routing is identical to
    NLNR; only the local-hop transport cost is waived by the mailbox.
    """

    name = "nlnr_hybrid"
    free_local_hops = True
