"""The Node Local routing scheme (paper Section III-B).

A message from ``(n, c)`` to ``(n', c')`` is first forwarded *locally* to
``(n, c')`` -- the on-node core matching the destination's core offset --
and then *remotely* to ``(n', c')`` along the remote channel of core
offset ``c'``.  All messages destined for a particular remote process are
thus accumulated at a single intermediary per node before remote
transmission.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import RoutingScheme


class NodeLocal(RoutingScheme):
    """Local exchange first, then C per-core-offset remote exchanges."""

    name = "node_local"

    def next_hop(self, cur: int, dest: int) -> int:
        cores = self.cores
        if cur % cores != dest % cores:
            # Local hop to the on-node core with the destination's offset.
            return (cur // cores) * cores + dest % cores
        return dest  # core offsets match: remote (or final local) hop

    def next_hop_vec(self, cur: int, dests: np.ndarray) -> np.ndarray:
        dests = np.asarray(dests, dtype=np.int64)
        cores = self.cores
        cur_node = cur // cores
        dcore = dests % cores
        # Build the local hop in place (one fresh array), then overwrite
        # the matching-offset positions with the direct hop -- the same
        # values as the np.where() formulation with fewer temporaries on
        # the columnar re-binning path.
        hops = dcore + cur_node * cores
        np.copyto(hops, dests, where=dcore == cur % cores)
        return hops

    def max_hops(self) -> int:
        return 2

    def bcast_targets(self, cur: int, origin: int) -> List[int]:
        cores = self.cores
        if cur // cores != origin // cores:
            return []  # remote recipients only deliver
        targets: List[int] = []
        if cur == origin:
            # Fan out to every other core on the origin node.
            base = (origin // cores) * cores
            targets.extend(base + c for c in range(cores) if base + c != origin)
        # Every origin-node holder (origin included) fans out over its own
        # per-core-offset remote channel: C * (N - 1) remote messages total.
        my_core = cur % cores
        origin_node = origin // cores
        targets.extend(
            self._rank(n, my_core) for n in range(self.nodes) if n != origin_node
        )
        return targets

    def remote_partners(self, rank: int) -> List[int]:
        core = self._core(rank)
        node = self._node(rank)
        return [self._rank(n, core) for n in range(self.nodes) if n != node]

    def channel_count(self) -> int:
        # One channel per core offset, each containing the N matching cores.
        return self.cores
