"""The node-aware aggregation routing scheme (NAPSpMV-style).

Node-aware communication (Bienz, Gropp & Olson -- NAPSpMV, PAPERS.md)
funnels *all* off-node traffic from a node through one designated
node-local **aggregator** rank before it crosses the wire, and delivers
incoming traffic through the receiving node's aggregator.  We pick core
``a(n) = n mod C`` as node ``n``'s aggregator (the node's layer offset,
like NLNR's self-column intermediary) so aggregators are spread across
cores rather than all landing on core 0.  A point-to-point message takes
up to three hops::

    (n, c) --local--> (n, a(n)) --remote--> (n', a(n')) --local--> (n', c')

Compared to the paper's static schemes this is the *most* concentrated
policy: exactly one remote channel per node pair, so for a fixed send
volume V the aggregator's average remote message is O(V C / N) -- like
NLNR -- but every record for a given remote node meets every other such
record from the whole source node at the aggregator.  That maximal
meeting point is what makes node_aware the natural carrier for
in-network combining (:mod:`.combiner`): duplicate keys from all C
on-node cores collapse before transmission.  The cost is aggregator
serialization -- one core per node handles all remote traffic -- which is
why the paper's topology-only analysis prefers NLNR when records do not
combine.

Broadcasts cost ``N - 1`` remote messages: the origin fans out locally
and hands the broadcast to its node's aggregator, which sends one copy
to every other node's aggregator; those distribute locally.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import RoutingScheme


class NodeAware(RoutingScheme):
    """All off-node traffic routes via per-node aggregator ranks."""

    name = "node_aware"

    def _aggregator(self, node: int) -> int:
        return node * self.cores + node % self.cores

    def next_hop(self, cur: int, dest: int) -> int:
        cores = self.cores
        cur_node, cur_core = divmod(cur, cores)
        dest_node = dest // cores
        if cur_node == dest_node:
            return dest  # final local hop
        if cur_core == cur_node % cores:
            # We are this node's aggregator: remote hop to the
            # destination node's aggregator.
            return dest_node * cores + dest_node % cores
        # First local hop to our own node's aggregator.
        return cur_node * cores + cur_node % cores

    def next_hop_vec(self, cur: int, dests: np.ndarray) -> np.ndarray:
        dests = np.asarray(dests, dtype=np.int64)
        cores = self.cores
        cur_node = cur // cores
        dnode = dests // cores
        if cur == self._aggregator(cur_node):
            # Remote hop to each destination node's aggregator.
            hops = dnode * cores + dnode % cores
        else:
            hops = np.full(len(dests), self._aggregator(cur_node), dtype=np.int64)
        np.copyto(hops, dests, where=dnode == cur_node)
        return hops

    def max_hops(self) -> int:
        return 3

    def bcast_targets(self, cur: int, origin: int) -> List[int]:
        cores = self.cores
        origin_node = origin // cores
        cur_node, _cur_core = divmod(cur, cores)
        targets: List[int] = []
        if cur_node == origin_node:
            if cur == origin:
                # Stage 1: local fan-out to every other core on the node.
                base = origin_node * cores
                targets.extend(base + c for c in range(cores) if base + c != origin)
            if cur == self._aggregator(origin_node):
                # Stage 2: origin node's aggregator (possibly the origin
                # itself) sends one copy to every other node's aggregator.
                targets.extend(
                    self._aggregator(n) for n in range(self.nodes) if n != origin_node
                )
        elif cur == self._aggregator(cur_node):
            # Stage 3: remote aggregator distributes on its own node.
            base = cur_node * cores
            targets.extend(base + c for c in range(cores) if base + c != cur)
        return targets

    def remote_partners(self, rank: int) -> List[int]:
        cores = self.cores
        node, core = divmod(rank, cores)
        if core != node % cores:
            return []  # non-aggregators never touch the wire
        return [self._aggregator(n) for n in range(self.nodes) if n != node]

    def channel_count(self) -> int:
        # A single aggregator<->aggregator channel class: every remote
        # packet in the system travels aggregator-to-aggregator.
        return 1
