"""The NoRoute baseline: every message goes directly to its destination.

This is the paper's comparison baseline ("NoRoute" in Figs 6-8).  With
uniform traffic each core talks to all ``(N-1)C`` remote cores, so the
average remote message size is O(V / NC) -- the worst coalescing of all
schemes (Section III-E).
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import RoutingScheme


class NoRoute(RoutingScheme):
    """Direct delivery; coalescing only at the core-core level."""

    name = "noroute"

    def next_hop(self, cur: int, dest: int) -> int:
        return dest

    def next_hop_vec(self, cur: int, dests: np.ndarray) -> np.ndarray:
        # Direct delivery: the hop column *is* the destination column.
        # Callers (``bin_by_hop``, the columnar re-binning path) only
        # read it, so returning the input unaliased-uncopied is safe.
        return np.asarray(dests, dtype=np.int64)

    def max_hops(self) -> int:
        return 1

    def bcast_targets(self, cur: int, origin: int) -> List[int]:
        if cur != origin:
            return []
        return [r for r in range(self.nranks) if r != origin]

    def remote_partners(self, rank: int) -> List[int]:
        node = self._node(rank)
        return [r for r in range(self.nranks) if self._node(r) != node]

    def channel_count(self) -> int:
        # One global channel: any core may talk to any remote core.
        return 1
