"""YGM routing schemes (paper Section III) and their registry."""

from __future__ import annotations

from typing import Dict, List, Type

from .adaptive import Adaptive
from .base import RoutingScheme
from .combiner import Combiner
from .nlnr import NLNR, HybridNLNR
from .node_aware import NodeAware
from .node_local import NodeLocal
from .node_remote import NodeRemote
from .noroute import NoRoute

#: All built-in schemes by registry name.
SCHEMES: Dict[str, Type[RoutingScheme]] = {
    cls.name: cls
    for cls in (NoRoute, NodeLocal, NodeRemote, NLNR, HybridNLNR, NodeAware, Adaptive)
}

#: The four schemes evaluated in the paper's figures, in figure order.
PAPER_SCHEMES: List[str] = ["noroute", "node_local", "node_remote", "nlnr"]

#: The extended registry benchmarked/oracle-checked since the node-aware
#: and adaptive schemes landed (nlnr_hybrid stays a fig8 variant).
EXTENDED_SCHEMES: List[str] = PAPER_SCHEMES + ["node_aware", "adaptive"]


def get_scheme(name: str, nodes: int, cores_per_node: int) -> RoutingScheme:
    """Instantiate a routing scheme by name for an N x C machine."""
    try:
        cls = SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing scheme {name!r}; available: {sorted(SCHEMES)}"
        ) from None
    return cls(nodes, cores_per_node)


__all__ = [
    "Adaptive",
    "Combiner",
    "EXTENDED_SCHEMES",
    "HybridNLNR",
    "NLNR",
    "NoRoute",
    "NodeAware",
    "NodeLocal",
    "NodeRemote",
    "PAPER_SCHEMES",
    "RoutingScheme",
    "SCHEMES",
    "get_scheme",
]
