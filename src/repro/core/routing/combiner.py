"""In-network combining: collapse mergeable records during re-binning.

The paper's routing schemes only *re-bin* records at forwarding hops;
every injected record crosses every hop of its route intact.  For many
of the paper's applications the records are mergeable: two CC label
updates for the same vertex can be replaced by the one with the smaller
label, two degree-count increments for the same vertex by their sum,
two SpMV partials for the same row by their partial sum.  A
:class:`Combiner` describes that per-application algebra so the mailbox
can collapse equal-key records into one *before* re-transmission — at
injection and again at every intermediate hop, where records from many
sources meet for the first time (message-combining sparse collectives,
Traeff et al.; NAPSpMV, Bienz/Gropp/Olson).

The pass is a NumPy group-by riding the existing columnar batch path:
one ``lexsort`` (destination rank first, then the key fields), one
adjacent-equality scan for group boundaries, and one ``ufunc.reduceat``
per reduced field.  No per-record Python loop — ``tools/hotpath_lint.py``
enforces that only per-*field* iteration appears here.

Algebra requirements: every reduce op must be associative and
commutative, because records meet in window- and route-dependent
orders.  ``min``/``max`` are also idempotent, which makes combining
*bit-exact*: CC/BFS/SSSP deliver identical final state with or without
combining, under any routing scheme.  Floating-point ``sum`` (SpMV) is
only associative up to rounding, so combined SpMV results are compared
with a tolerance, never bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

#: ufuncs implementing the supported reduce ops.  All are associative
#: and commutative; ``min``/``max`` are idempotent as well.
REDUCE_OPS = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


@dataclass(frozen=True)
class Combiner:
    """Per-application merge algebra for in-network combining.

    Records in a batch are grouped by ``(destination rank, *key_fields)``;
    each group collapses to one record whose ``reduce_fields`` hold the
    group-wise reduction and whose remaining fields come from the
    group's first record in sorted order.

    ``exact`` declares whether combining preserves results bit-exactly
    (integer algebras, and ``min``/``max`` selections which pick one of
    the original values) or only up to floating-point tolerance
    (``sum`` over floats, where grouping changes evaluation order).
    """

    name: str
    key_fields: Tuple[str, ...]
    reduce_fields: Dict[str, str]  # field -> "sum" | "min" | "max"
    exact: bool = True

    def __post_init__(self):
        if not self.key_fields:
            raise ValueError("combiner needs at least one key field")
        for field, op in self.reduce_fields.items():
            if op not in REDUCE_OPS:
                raise ValueError(
                    f"unsupported reduce op {op!r} for field {field!r}; "
                    f"known: {sorted(REDUCE_OPS)}"
                )
            if field in self.key_fields:
                raise ValueError(f"field {field!r} is both key and reduced")

    def combine(
        self,
        dests: np.ndarray,
        batch: np.ndarray,
        lins: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], int]:
        """Collapse equal-key records; returns ``(dests, batch, lins, eliminated)``.

        When nothing merges the *original* arrays come back untouched
        (no copy, ``eliminated == 0``).  Otherwise the returned arrays
        are fresh, sorted by ``(dest, *key_fields)``, with one record
        per group; ``lins`` (message-lineage ids, may be ``None``)
        follows the group representative — the profiler keeps tracking
        the surviving record, the merged-away ones simply end their
        lineage at the combining rank.
        """
        n = len(dests)
        if n <= 1:
            return dests, batch, lins, 0
        # np.lexsort sorts by the *last* key first: dests is primary.
        cols = [batch[f] for f in reversed(self.key_fields)]
        cols.append(dests)
        order = np.lexsort(cols)
        sd = dests[order]
        sb = batch[order]
        same = sd[1:] == sd[:-1]
        for f in self.key_fields:
            col = sb[f]
            same &= col[1:] == col[:-1]
        starts = np.flatnonzero(np.concatenate(([True], ~same)))
        if len(starts) == n:
            return dests, batch, lins, 0
        out = sb[starts].copy()
        for f, op in self.reduce_fields.items():
            out[f] = REDUCE_OPS[op].reduceat(sb[f], starts)
        out_lins = None if lins is None else lins[order][starts]
        return sd[starts], out, out_lins, n - len(starts)
