"""The Node Remote routing scheme (paper Section III-C).

The mirror image of Node Local: a message from ``(n, c)`` to ``(n', c')``
first travels *remotely* to ``(n', c)`` -- the destination node's core
with the sender's offset -- then *locally* to ``(n', c')``.  All messages
from a particular process destined for the same node are bundled, and
broadcasts cost only ``N - 1`` remote messages (versus ``C (N-1)`` for
Node Local) because the local fan-out happens after the wire.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import RoutingScheme


class NodeRemote(RoutingScheme):
    """Remote exchange first, then a local exchange on each node."""

    name = "node_remote"

    def next_hop(self, cur: int, dest: int) -> int:
        cores = self.cores
        if cur // cores != dest // cores:
            # Remote hop to the destination node, keeping our core offset.
            return (dest // cores) * cores + cur % cores
        return dest  # already on the destination node: final local hop

    def next_hop_vec(self, cur: int, dests: np.ndarray) -> np.ndarray:
        dests = np.asarray(dests, dtype=np.int64)
        cores = self.cores
        dnode = dests // cores
        # Remote hop by default; same-node positions fall through to the
        # destination itself (final local hop).  In-place form of the
        # np.where() expression for the columnar re-binning path.
        hops = dnode * cores + cur % cores
        np.copyto(hops, dests, where=dnode == cur // cores)
        return hops

    def max_hops(self) -> int:
        return 2

    def bcast_targets(self, cur: int, origin: int) -> List[int]:
        cores = self.cores
        origin_node = origin // cores
        cur_node = cur // cores
        targets: List[int] = []
        if cur == origin:
            # One remote message per other node (the paper's N - 1), plus
            # the local fan-out on the origin's own node.
            my_core = cur % cores
            targets.extend(
                self._rank(n, my_core) for n in range(self.nodes) if n != origin_node
            )
            base = origin_node * cores
            targets.extend(base + c for c in range(cores) if base + c != origin)
        elif cur_node != origin_node and cur % cores == origin % cores:
            # Remote recipient with the origin's core offset: distribute
            # locally on this node.
            base = cur_node * cores
            targets.extend(base + c for c in range(cores) if base + c != cur)
        return targets

    def remote_partners(self, rank: int) -> List[int]:
        core = self._core(rank)
        node = self._node(rank)
        return [self._rank(n, core) for n in range(self.nodes) if n != node]

    def channel_count(self) -> int:
        return self.cores
