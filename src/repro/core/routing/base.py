"""The routing-scheme interface (paper Section III).

A routing scheme decides, for a message currently held by rank ``cur``
with final destination ``dest``, which rank it should be forwarded to
next (``next_hop``), and for broadcasts, the fan-out a holder performs
(``bcast_targets``).  Schemes also expose their channel structure for the
bandwidth analysis of Section III-E.

All schemes are pure functions of the machine shape ``(N nodes, C cores)``
-- the paper's point versus NAPSpMV is precisely that the routing depends
only on topology, not on the application (Section II).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

import numpy as np

from ...machine import address


class RoutingScheme(ABC):
    """Base class for YGM message-routing schemes."""

    #: Registry name (e.g. ``"nlnr"``).
    name: str = "base"
    #: Whether local hops are free (models the hybrid MPI+threads YGM of
    #: Section VII, where on-node copies are eliminated).
    free_local_hops: bool = False

    def __init__(self, nodes: int, cores_per_node: int):
        address.validate_shape(nodes, cores_per_node)
        self.nodes = nodes
        self.cores = cores_per_node
        self.nranks = nodes * cores_per_node

    # -- shape helpers (hot path: inline arithmetic, no Addr objects) --------
    def _node(self, rank: int) -> int:
        return rank // self.cores

    def _core(self, rank: int) -> int:
        return rank % self.cores

    def _rank(self, node: int, core: int) -> int:
        return node * self.cores + core

    def bind_machine(self, machine) -> None:
        """Attach the simulated machine this scheme routes on.

        Called once per :class:`~repro.core.context.YgmWorld` (and once
        per PDES worker, on the worker's own machine) before any traffic
        flows.  Static schemes ignore it; :class:`~.adaptive.Adaptive`
        stores the NIC resources so routing can consult live occupancy.
        """

    # -- point-to-point routing ------------------------------------------------
    @abstractmethod
    def next_hop(self, cur: int, dest: int) -> int:
        """The rank ``cur`` forwards a ``dest``-bound message to.

        Returns ``dest`` itself on the final hop.  ``cur == dest`` is a
        caller error (deliver instead of routing).
        """

    def next_hop_vec(self, cur: int, dests: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`next_hop` for a destination array.

        Default implementation loops; concrete schemes override with
        NumPy arithmetic (this is on the fast path of ``send_batch``).
        """
        return np.fromiter(
            (self.next_hop(cur, int(d)) for d in dests),
            dtype=np.int64,
            count=len(dests),
        )

    def bin_by_hop(self, cur: int, dests: np.ndarray):
        """Group a destination column by next hop (batch re-binning kernel).

        Returns ``(hops, order, starts, ends)``: ``order`` is the stable
        permutation that groups ``dests`` by hop (``None`` when every
        destination already shares one hop -- the permutation would be the
        identity, so callers skip the gather), and ``hops[starts[k]]`` is
        the hop of segment ``k`` = ``[starts[k], ends[k])`` *after*
        applying ``order``.  Stability keeps per-hop message order equal
        to input order, which is what makes the columnar and the
        one-object-per-message paths bit-identical.
        """
        hops = self.next_hop_vec(cur, dests)
        n = len(hops)
        one = np.ones(1, dtype=np.int64)
        if n == 0:
            return hops, None, np.empty(0, np.int64), np.empty(0, np.int64)
        if hops[0] == hops[n - 1] and (hops == hops[0]).all():
            return hops, None, 0 * one, n * one
        order = np.argsort(hops, kind="stable")
        hops = hops[order]
        boundaries = np.flatnonzero(hops[1:] != hops[:-1]) + 1
        starts = np.concatenate((0 * one, boundaries))
        ends = np.concatenate((boundaries, n * one))
        return hops, order, starts, ends

    @abstractmethod
    def max_hops(self) -> int:
        """Upper bound on transmissions per point-to-point message."""

    # -- broadcast routing ---------------------------------------------------
    @abstractmethod
    def bcast_targets(self, cur: int, origin: int) -> List[int]:
        """Ranks that ``cur`` forwards a broadcast from ``origin`` to.

        Called once at the origin (``cur == origin``) when the broadcast
        is injected, and once at every rank that receives a copy.  The
        union of the induced forwarding tree must reach every rank except
        ``origin`` exactly once.
        """

    # -- channel structure (Section III-E analysis) ------------------------------
    @abstractmethod
    def remote_partners(self, rank: int) -> List[int]:
        """Ranks that ``rank`` may exchange *remote* packets with."""

    def remote_partner_count(self, rank: int) -> int:
        return len(self.remote_partners(rank))

    @abstractmethod
    def channel_count(self) -> int:
        """Number of remote communication channels (Section III-E)."""

    def expected_avg_message_fraction(self) -> float:
        """Of a rank's total send volume V (uniform traffic), the average
        fraction per remote partner -- the paper's O(V/NC), O(V/N),
        O(VC/N) analysis.  Returns 1/partner_count for a generic rank."""
        count = max(1, self.remote_partner_count(0))
        return 1.0 / count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} N={self.nodes} C={self.cores}>"
