"""Mailbox configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MailboxConfig:
    """Tunables of a YGM mailbox.

    ``capacity`` is the message capacity of the paper's mailbox: once this
    many messages are queued across all coalescing buffers, the rank
    enters its communication context (flush + receive).  The paper's
    experiments use 2^18; the scaled benchmarks default to 2^14.
    """

    capacity: int = 2**14

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"mailbox capacity must be >= 1, got {self.capacity}")

    def with_overrides(self, **kwargs) -> "MailboxConfig":
        return replace(self, **kwargs)
