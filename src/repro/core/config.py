"""Mailbox configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (routing -> config)
    from .routing.combiner import Combiner


@dataclass(frozen=True)
class MailboxConfig:
    """Tunables of a YGM mailbox.

    ``capacity`` is the message capacity of the paper's mailbox: once this
    many messages are queued across all coalescing buffers, the rank
    enters its communication context (flush + receive).  The paper's
    experiments use 2^18; the scaled benchmarks default to 2^14.

    ``columnar`` selects the struct-of-arrays hot path: runs of scalar
    point-to-point messages ride coalescing buffers, packets and routing
    intermediaries as NumPy columns (one :class:`~repro.core.coalescing.
    P2PColumns` entry per run) and are materialised as per-message Python
    values only at handler boundaries.  ``False`` keeps the historical
    one-object-per-message path; the two are bit-identical in results and
    simulated time (pinned by ``tests/core/test_columnar.py``), so the
    flag exists for differential testing, not tuning.

    ``combiner`` attaches an in-network combining algebra
    (:class:`~repro.core.routing.combiner.Combiner`): mergeable batch
    records with equal ``(destination, key)`` collapse during re-binning
    -- at injection and at every forwarding hop -- before re-transmission.
    ``None`` (the default) disables combining; results then match the
    paper's pure re-binning schemes exactly.
    """

    capacity: int = 2**14
    columnar: bool = True
    combiner: Optional["Combiner"] = None

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"mailbox capacity must be >= 1, got {self.capacity}")

    def with_overrides(self, **kwargs) -> "MailboxConfig":
        return replace(self, **kwargs)
