"""YGM core: mailboxes, routing schemes, coalescing, termination.

This package is the reproduction of the paper's primary contribution
(Sections III and IV).
"""

from .coalescing import ENTRY_HEADER_BYTES, BatchEntry, BcastEntry, CoalescingBuffer, P2PEntry
from .config import MailboxConfig
from .context import YgmContext, YgmResult, YgmWorld
from .mailbox import Mailbox
from .routing import PAPER_SCHEMES, SCHEMES, RoutingScheme, get_scheme
from .stats import MailboxStats, aggregate
from .termination import TerminationDetector, binomial_children, binomial_parent

__all__ = [
    "BatchEntry",
    "BcastEntry",
    "CoalescingBuffer",
    "ENTRY_HEADER_BYTES",
    "Mailbox",
    "MailboxConfig",
    "MailboxStats",
    "P2PEntry",
    "PAPER_SCHEMES",
    "RoutingScheme",
    "SCHEMES",
    "TerminationDetector",
    "YgmContext",
    "YgmResult",
    "YgmWorld",
    "aggregate",
    "binomial_children",
    "binomial_parent",
    "get_scheme",
]
