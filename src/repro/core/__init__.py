"""YGM core: mailboxes, routing schemes, coalescing, termination.

This package is the reproduction of the paper's primary contribution
(Sections III and IV).
"""

from .coalescing import ENTRY_HEADER_BYTES, BatchEntry, BcastEntry, CoalescingBuffer, P2PEntry
from .config import MailboxConfig
from .context import Occupancy, YgmContext, YgmResult, YgmWorld
from .mailbox import Mailbox
from .routing import (
    EXTENDED_SCHEMES,
    PAPER_SCHEMES,
    SCHEMES,
    Combiner,
    RoutingScheme,
    get_scheme,
)
from .stats import MailboxStats, aggregate
from .termination import TerminationDetector, binomial_children, binomial_parent

__all__ = [
    "BatchEntry",
    "BcastEntry",
    "CoalescingBuffer",
    "Combiner",
    "ENTRY_HEADER_BYTES",
    "EXTENDED_SCHEMES",
    "Mailbox",
    "MailboxConfig",
    "MailboxStats",
    "Occupancy",
    "P2PEntry",
    "PAPER_SCHEMES",
    "RoutingScheme",
    "SCHEMES",
    "TerminationDetector",
    "YgmContext",
    "YgmResult",
    "YgmWorld",
    "aggregate",
    "binomial_children",
    "binomial_parent",
    "get_scheme",
]
