"""The YGM mailbox: the paper's central abstraction (Section IV).

A :class:`Mailbox` is created with a receive callback and a message
capacity.  User code queues messages with ``send`` / ``send_bcast`` (or
the vectorized ``send_batch``); when the mailbox is full the rank enters
its *communication context* -- it flushes all coalescing buffers along the
routing scheme's next hops and processes every packet that has already
arrived (delivering to the callback, forwarding intermediary traffic) --
then drops back into computation, regardless of what other ranks are
doing.  ``wait_empty`` runs the termination-detection protocol until all
ranks are globally quiescent.

Conventions:

* methods that can block or take simulated time are generators -- drive
  them with ``yield from`` inside the rank program;
* receive callbacks are plain functions; to emit messages from inside a
  callback use the nonblocking ``post`` / ``post_bcast`` (the surrounding
  communication context flushes them).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

import numpy as np

from ..mpi.envelope import HEADER_BYTES, Packet
from ..mpi.sizes import payload_nbytes, payload_nbytes_many
from ..serde import RecordSpec
from .coalescing import (
    BatchEntry,
    BcastEntry,
    CoalescingBuffer,
    ListPool,
    P2PColumns,
    P2PEntry,
)
from .config import MailboxConfig
from .stats import MailboxStats
from .termination import TerminationDetector


class Mailbox:
    """An asynchronous mailbox over a routing scheme.

    Created through :meth:`repro.core.context.YgmContext.mailbox`; all
    ranks must create their mailboxes in the same order (like MPI
    communicator construction).
    """

    def __init__(
        self,
        ctx,  # YgmContext
        recv: Optional[Callable[[Any], None]] = None,
        recv_batch: Optional[Callable[[np.ndarray], None]] = None,
        recv_bcast: Optional[Callable[[Any], None]] = None,
        config: Optional[MailboxConfig] = None,
        mailbox_id: int = 0,
    ):
        if recv is None and recv_batch is None and recv_bcast is None:
            raise ValueError("a mailbox needs at least one receive callback")
        self.ctx = ctx
        self.comm = ctx.comm
        self.rank = ctx.rank
        self.scheme = ctx.scheme
        self.config = config or MailboxConfig()
        self.recv = recv
        self.recv_batch = recv_batch
        self.recv_bcast = recv_bcast if recv_bcast is not None else recv
        self.stats = MailboxStats()

        self._app_kind = ("ygm", mailbox_id, "app")
        self._term_kind = ("ygm", mailbox_id, "term")
        inbox = ctx.world.inboxes[ctx.world_rank]
        self._app_store = inbox.subscribe(self.comm.ctx, self._app_kind)
        self._term_store = inbox.subscribe(self.comm.ctx, self._term_kind)

        self._buffers: Dict[int, CoalescingBuffer] = {}
        #: The causal profiler (:mod:`repro.trace.profile`) when the
        #: installed tracer has ``profile=True``, else ``None``.  Cached
        #: here so every lineage hook on the hot path is a single
        #: attribute load plus an identity check -- the same cost shape
        #: as the event-trace hooks.
        tracer = ctx.sim.tracer
        self._prof = tracer.lineage if tracer is not None else None
        #: Recycles handled packets' entry lists into fresh buffers.
        self._pool = ListPool()
        #: Columnar (struct-of-arrays) scalar-message hot path toggle.
        self._columnar = self.config.columnar
        #: In-network combining algebra (``None`` = pure re-binning).
        self._combiner = self.config.combiner
        self._queued = 0  # messages across all buffers
        self._pending_handle_cost = 0.0
        #: Forwards deferred while a mixed columnar run delivers (see
        #: :meth:`_handle_packet`): the run's columns plus the indices
        #: of not-yet-binned forwards.  Any post from inside a receive
        #: callback flushes them first, preserving buffer order.
        self._deferred_cols = None
        self._deferred_idx: List[int] = []
        self._lane = f"rank {ctx.world_rank}"  # trace lane label
        #: Completed quiescence epochs (wait_empty/test_empty returning done).
        self._epoch = 0
        self._term = TerminationDetector(
            rank=self.rank,
            size=self.comm.size,
            get_counts=lambda: (self.stats.entries_sent, self.stats.entries_received),
            send=self._send_term,
        )

    # ------------------------------------------------------------------ sends
    def post(self, dest: int, payload: Any, nbytes: Optional[int] = None) -> None:
        """Queue a point-to-point message without entering communication.

        Safe to call from receive callbacks.  Messages to self are
        delivered immediately (they never touch the transport).
        """
        if self._deferred_idx:
            self._flush_deferred()
        if not 0 <= dest < self.comm.size:
            raise ValueError(f"destination {dest} out of range [0, {self.comm.size})")
        self.stats.app_messages_sent += 1
        prof = self._prof
        if dest == self.rank:
            if prof is not None:
                self._deliver_p2p(
                    payload,
                    prof.new_message(self.rank, dest, self.ctx.sim.now),
                )
            else:
                self._deliver_p2p(payload)
            return
        size = payload_nbytes(payload, nbytes)
        hop = self.scheme.next_hop(self.rank, dest)
        lid = None
        if prof is not None:
            t = self.ctx.sim.now
            lid = prof.new_message(self.rank, dest, t)
            prof.enqueue(lid, self.rank, hop, t)
        if self._columnar:
            # Struct-of-arrays hot path: the message joins the buffer's
            # open columnar run; no per-message entry object exists.
            self._buffer_for(hop).add_p2p(dest, payload, size, lid)
        else:
            self._buffer_for(hop).add(P2PEntry(dest, payload, size, lid))
        self._queued += 1

    def send(self, dest: int, payload: Any, nbytes: Optional[int] = None) -> Generator:
        """Queue a message; enter the communication context if full."""
        self.post(dest, payload, nbytes=nbytes)
        yield from self._maybe_communicate()

    def post_many(
        self,
        dests,
        payloads,
        nbytes=None,
    ) -> None:
        """Queue many scalar messages at once (a vectorized ``post``).

        ``dests[i]`` is the destination rank of ``payloads[i]`` (a
        sequence of arbitrary payload values); ``nbytes`` optionally
        supplies the wire sizes (one int for all, or a parallel array).
        Unlike ``post_batch`` this does not require fixed-width records:
        the payloads ride the pipeline as an object column and only
        materialise per message at the receive callback.  Self-addressed
        messages are delivered immediately, in index order, before the
        remainder is binned by next hop.
        """
        if self._deferred_idx:
            self._flush_deferred()
        dests = np.asarray(dests, dtype=np.int64)
        n = len(dests)
        if n != len(payloads):
            raise ValueError(
                f"dests ({n}) and payloads ({len(payloads)}) lengths differ"
            )
        if n == 0:
            return
        if dests.min() < 0 or dests.max() >= self.comm.size:
            raise ValueError(f"destination rank out of range [0, {self.comm.size})")
        if not self._columnar:
            # Reference (one-object-per-message) path: semantically a
            # loop of ``post``; sizes resolve identically either way.
            sizes = payload_nbytes_many(payloads, nbytes)
            for i in range(n):
                self.post(int(dests[i]), payloads[i], nbytes=int(sizes[i]))
            return
        self.stats.app_messages_sent += n
        sizes = payload_nbytes_many(payloads, nbytes)
        # ``fromiter`` with object dtype stores the caller's exact
        # objects (no str/array conversion) in one C loop.
        cols = np.fromiter(payloads, dtype=object, count=n)
        prof = self._prof
        lins = None
        if prof is not None:
            lins = prof.new_batch(self.rank, dests, self.ctx.sim.now)
        here = dests == self.rank
        if here.any():
            self._deliver_p2p_run(cols[here], None if lins is None else lins[here])
            keep = ~here
            dests = dests[keep]
            cols = cols[keep]
            sizes = sizes[keep]
            if lins is not None:
                lins = lins[keep]
            if len(dests) == 0:
                return
        self._bin_columns(dests, cols, sizes, lins, at_injection=True)

    def send_many(self, dests, payloads, nbytes=None) -> Generator:
        """Vectorized scalar send; may enter the communication context."""
        self.post_many(dests, payloads, nbytes=nbytes)
        yield from self._maybe_communicate()

    def post_bcast(self, payload: Any, nbytes: Optional[int] = None) -> None:
        """Queue a broadcast to every other rank (callback-safe)."""
        if self._deferred_idx:
            self._flush_deferred()
        self.stats.bcasts_initiated += 1
        size = payload_nbytes(payload, nbytes)
        prof = self._prof
        for target in self.scheme.bcast_targets(self.rank, self.rank):
            if prof is not None:
                t = self.ctx.sim.now
                lid = prof.new_message(self.rank, target, t, kind="bcast")
                prof.enqueue(lid, self.rank, target, t)
                self._buffer_for(target).add(
                    BcastEntry(self.rank, payload, size, lid)
                )
            else:
                self._buffer_for(target).add(BcastEntry(self.rank, payload, size))
            self._queued += 1

    def send_bcast(self, payload: Any, nbytes: Optional[int] = None) -> Generator:
        """Broadcast to all other ranks (paper's SEND_BCAST)."""
        self.post_bcast(payload, nbytes=nbytes)
        yield from self._maybe_communicate()

    def post_batch(self, dests: np.ndarray, batch: np.ndarray, spec: Optional[RecordSpec] = None) -> None:
        """Queue a batch of fixed-width records, binned by next hop.

        ``dests[i]`` is the destination rank of record ``batch[i]``.
        This is the vectorized fast path (cf. mpi4py's buffer methods):
        per-message Python overhead is eliminated and intermediaries
        re-bin with NumPy.
        """
        if self._deferred_idx:
            self._flush_deferred()
        if spec is not None:
            spec.validate(batch)
        dests = np.asarray(dests, dtype=np.int64)
        if dests.shape != (len(batch),):
            raise ValueError("dests and batch must be equal-length 1-D arrays")
        if len(dests) == 0:
            return
        if dests.min() < 0 or dests.max() >= self.comm.size:
            raise ValueError("destination rank out of range in batch")
        self.stats.app_messages_sent += len(dests)
        prof = self._prof
        lins = None
        if prof is not None:
            lins = prof.new_batch(self.rank, dests, self.ctx.sim.now)
        self._bin_batch(dests, batch, at_injection=True, lins=lins)

    def send_batch(self, dests: np.ndarray, batch: np.ndarray, spec: Optional[RecordSpec] = None) -> Generator:
        """Vectorized send; may enter the communication context."""
        self.post_batch(dests, batch, spec=spec)
        yield from self._maybe_communicate()

    # -------------------------------------------------------------- internals
    def _buffer_for(self, hop: int) -> CoalescingBuffer:
        buf = self._buffers.get(hop)
        if buf is None:
            buf = CoalescingBuffer(hop, pool=self._pool)
            self._buffers[hop] = buf
        return buf

    def _bin_batch(
        self,
        dests: np.ndarray,
        batch: np.ndarray,
        at_injection: bool,
        lins: Optional[np.ndarray] = None,
    ) -> None:
        """Deliver self-addressed records, bin the rest by next hop.

        ``at_injection`` distinguishes freshly posted batches from batches
        re-binned at a routing intermediary: only the latter count toward
        ``stats.entries_forwarded``.  ``lins`` is the parallel lineage-id
        array when the causal profiler is enabled; it is masked, reordered
        and sliced in lock-step with ``dests``.

        When the mailbox has a :class:`~repro.core.routing.combiner.
        Combiner`, equal-``(dest, key)`` records collapse here -- at
        injection and again at every forwarding hop -- *before* they are
        counted as forwarded or queued for re-transmission (in-network
        combining).  Merged-away records end their lineage at this rank;
        they are tallied in ``stats.entries_combined``.
        """
        here = dests == self.rank
        if here.any():
            self._deliver_batch(batch[here], None if lins is None else lins[here])
            dests = dests[~here]
            batch = batch[~here]
            if lins is not None:
                lins = lins[~here]
            if len(dests) == 0:
                return
        comb = self._combiner
        if comb is not None and len(dests) > 1:
            dests, batch, lins, eliminated = comb.combine(dests, batch, lins)
            self.stats.entries_combined += eliminated
        if not at_injection:
            self.stats.entries_forwarded += len(dests)
        hops, order, starts, ends = self.scheme.bin_by_hop(self.rank, dests)
        if order is not None:
            dests = dests[order]
            batch = batch[order]
            if lins is not None:
                lins = lins[order]
        for s, e in zip(starts.tolist(), ends.tolist()):
            hop = int(hops[s])
            seg_lins = None if lins is None else lins[s:e]
            if seg_lins is not None:
                self._prof.enqueue_batch(seg_lins, self.rank, hop, self.ctx.sim.now)
            entry = BatchEntry(dests[s:e], batch[s:e], seg_lins)
            self._buffer_for(hop).add(entry)
            self._queued += entry.count

    def _bin_columns(
        self,
        dests: np.ndarray,
        payloads: np.ndarray,
        sizes: np.ndarray,
        lins: Optional[np.ndarray],
        at_injection: bool,
    ) -> None:
        """Bin a columnar scalar-message run by next hop.

        The struct-of-arrays twin of :meth:`_bin_batch`: the whole run is
        regrouped with one vectorized routing call plus one stable sort
        (skipped when all destinations share a hop); no per-message
        Python objects are created.  ``at_injection`` has the same
        meaning as in :meth:`_bin_batch`.
        """
        if not at_injection:
            self.stats.entries_forwarded += len(dests)
        hops, order, starts, ends = self.scheme.bin_by_hop(self.rank, dests)
        if order is not None:
            dests = dests[order]
            payloads = payloads[order]
            sizes = sizes[order]
            if lins is not None:
                lins = lins[order]
        prof = self._prof
        for s, e in zip(starts.tolist(), ends.tolist()):
            hop = int(hops[s])
            seg_lins = None if lins is None else lins[s:e]
            if seg_lins is not None:
                prof.enqueue_batch(seg_lins, self.rank, hop, self.ctx.sim.now)
            self._buffer_for(hop).add_columns(
                P2PColumns(dests[s:e], payloads[s:e], sizes[s:e], seg_lins)
            )
            self._queued += e - s

    def _maybe_communicate(self) -> Generator:
        if self._queued >= self.config.capacity:
            yield from self.flush()
            yield from self.progress()

    # --------------------------------------------------------------- flushing
    @property
    def queued(self) -> int:
        """Messages currently buffered (not yet flushed)."""
        return self._queued

    @property
    def has_incoming(self) -> bool:
        return len(self._app_store) > 0

    def flush(self) -> Generator:
        """Send every nonempty coalescing buffer along its next hop."""
        if self._queued == 0:
            return
        tracer = self.ctx.sim.tracer
        trace = tracer is not None and tracer.wants("mailbox")
        started = self.ctx.sim.now
        messages = self._queued
        self.stats.flushes += 1
        compute = self.ctx.machine.config.compute
        prof = self._prof
        # Per-message packing cost, charged in bulk.
        pack_cost = self._queued * compute.per_message_queue
        if pack_cost > 0:
            yield self.ctx.sim.timeout(pack_cost)
            if prof is not None:
                prof.span(self.ctx.world_rank, "serialize", started, self.ctx.sim.now)
        # Deterministic hop order.
        packets = 0
        for hop in sorted(self._buffers):
            buf = self._buffers[hop]
            if not buf:
                continue
            entries, nbytes, count = buf.take()
            self._queued -= count
            if self._combiner is not None and len(entries) > 1:
                entries, nbytes, count = self._merge_batch_entries(
                    entries, nbytes, count
                )
            packets += 1
            yield from self._send_packet(hop, entries, nbytes, count, pack_cost)
        if trace:
            tracer.complete(
                started, self.ctx.sim.now - started, "mailbox", "flush",
                self._lane, messages=messages, packets=packets,
            )

    def _merge_batch_entries(self, entries: List[Any], nbytes: int, count: int):
        """Combine across a buffer's batch entries at flush time.

        Records binned by *separate* ``post_batch`` calls (or separate
        forwarded packets) land in separate :class:`BatchEntry` chunks of
        the same coalescing buffer; per-chunk combining in
        :meth:`_bin_batch` cannot see across them.  One more combining
        pass over the whole buffer catches those duplicates just before
        the packet goes out.  Only applies when every entry is a batch
        chunk of one record dtype (the invariable case for a combined
        mailbox); the post-merge ``(entries, nbytes, count)`` keep
        ``entries_sent == entries_received`` balanced because
        :meth:`_send_packet` sees only the merged view.
        """
        first = entries[0]
        if first.kind != "batch":
            return entries, nbytes, count
        dtype = first.batch.dtype
        for entry in entries[1:]:
            if entry.kind != "batch" or entry.batch.dtype != dtype:
                return entries, nbytes, count
        dests = np.concatenate([e.dests for e in entries])
        batch = np.concatenate([e.batch for e in entries])
        lins = None
        if all(e.lins is not None for e in entries):
            lins = np.concatenate([e.lins for e in entries])
        dests, batch, lins, eliminated = self._combiner.combine(dests, batch, lins)
        if eliminated == 0:
            return entries, nbytes, count
        self.stats.entries_combined += eliminated
        merged = BatchEntry(dests, batch, lins)
        return [merged], merged.wire_bytes, merged.count

    def _send_packet(
        self, hop: int, entries: List[Any], nbytes: int, count: int,
        serialize: float = 0.0,
    ) -> Generator:
        self.stats.entries_sent += count
        dst_w = self.comm.world_rank_of(hop)
        local = self.ctx.machine.same_node(self.ctx.world_rank, dst_w)
        if local:
            self.stats.local_packets_sent += 1
            self.stats.local_bytes_sent += nbytes
        else:
            self.stats.remote_packets_sent += 1
            self.stats.remote_bytes_sent += nbytes
        prof = self._prof
        pid = None
        if prof is not None:
            pid = prof.packet_out(
                self.ctx.world_rank, dst_w, nbytes + HEADER_BYTES, count,
                self.ctx.sim.now, serialize, entries,
            )
        if local and self.scheme.free_local_hops:
            # Hybrid MPI+threads model (Section VII): on-node hand-off is a
            # pointer exchange -- no copy cost, immediate delivery.
            pkt = Packet(
                src=self.ctx.world_rank, dst=dst_w, ctx=self.comm.ctx,
                kind=self._app_kind, tag=0, payload=entries,
                nbytes=nbytes + HEADER_BYTES, lin=pid,
            )
            if pid is not None:
                prof.packet_free_local(pid, self.ctx.sim.now)
            self.ctx.world.inboxes[dst_w].deliver(pkt)
            return
        if pid is None:
            yield from self.comm.send(
                hop, entries, tag=0, nbytes=nbytes, kind=self._app_kind
            )
        else:
            t0 = self.ctx.sim.now
            yield from self.comm.send(
                hop, entries, tag=0, nbytes=nbytes, kind=self._app_kind, lin=pid
            )
            prof.span(self.ctx.world_rank, "nic", t0, self.ctx.sim.now)

    # -------------------------------------------------------------- receiving
    def progress(self) -> Generator:
        """Process all already-arrived packets; returns packets handled.

        Forwarded (intermediary) traffic generated while processing is
        flushed before returning, so a rank sitting in its communication
        context keeps the routes moving.
        """
        handled = 0
        while True:
            pkt = self._app_store.try_get()
            if pkt is None:
                break
            yield from self._handle_packet(pkt)
            handled += 1
        self._drain_term()
        if handled and self._queued:
            # Forwarding may have enqueued follow-on packets.
            yield from self.flush()
        yield from self._charge_pending_handles()
        return handled

    def _handle_packet(self, pkt: Packet) -> Generator:
        forwarded_before = self.stats.entries_forwarded
        stats = self.stats
        rank = self.rank
        prof = self._prof
        for entry in pkt.payload:
            kind = entry.kind
            if kind == "p2p":
                stats.entries_received += 1
                if entry.dest == rank:
                    self._deliver_p2p(entry.payload, entry.lin)
                else:
                    stats.entries_forwarded += 1
                    hop = self.scheme.next_hop(rank, entry.dest)
                    if prof is not None and entry.lin is not None:
                        prof.enqueue(entry.lin, rank, hop, self.ctx.sim.now)
                    self._buffer_for(hop).add(entry)
                    self._queued += 1
            elif kind == "p2p_cols":
                stats.entries_received += entry.count
                dests = entry.dests
                here = dests == rank
                if here.all():
                    # Terminal hop for the whole run (the common case on
                    # every scheme's last hop): deliver in column order.
                    self._deliver_p2p_run(entry.payloads, entry.lins)
                elif not here.any():
                    # Pure intermediary: re-bin the whole run vectorized.
                    self._bin_columns(
                        dests, entry.payloads, entry.nbytes, entry.lins,
                        at_injection=False,
                    )
                else:
                    self._handle_mixed_run(entry, here)
            elif kind == "batch":
                # Forwarding is accounted inside _bin_batch (counting the
                # re-binned records directly); inferring it from delivery
                # deltas would mis-count when a receive callback posts
                # additional self-addressed messages.
                self.stats.entries_received += entry.count
                self._bin_batch(
                    entry.dests, entry.batch, at_injection=False,
                    lins=entry.lins,
                )
            elif kind == "bcast":
                self.stats.entries_received += 1
                self._deliver_bcast(entry.payload, entry.lin)
                for target in self.scheme.bcast_targets(self.rank, entry.origin):
                    child = None
                    if prof is not None:
                        t = self.ctx.sim.now
                        child = prof.new_message(
                            rank, target, t, kind="bcast", parent=entry.lin
                        )
                        prof.enqueue(child, rank, target, t)
                    self._buffer_for(target).add(
                        BcastEntry(entry.origin, entry.payload, entry.nbytes, child)
                    )
                    self._queued += 1
                    self.stats.entries_forwarded += 1
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown entry kind {kind!r}")
        # The packet's entry list is dead from here on; recycle it into
        # this mailbox's coalescing buffers.
        self._pool.put(pkt.payload)
        forwarded = self.stats.entries_forwarded - forwarded_before
        if forwarded:
            tracer = self.ctx.sim.tracer
            if tracer is not None and tracer.wants("mailbox"):
                tracer.instant(
                    self.ctx.sim.now, "mailbox", "forward", self._lane,
                    entries=forwarded,
                )
        yield from self._charge_pending_handles()

    def _handle_mixed_run(self, entry: P2PColumns, here: np.ndarray) -> None:
        """Handle a columnar run mixing terminal deliveries and forwards.

        Deliveries run per message (the handler boundary); forwards are
        *deferred* -- only their column indices accumulate -- and re-bin
        in one vectorized call afterwards.  The deferral is what keeps
        the interleaving bit-identical to the per-entry path: a receive
        callback may post follow-on messages whose buffer position
        depends on the deliver-vs-forward order, so every ``post*``
        entry point first flushes the forwards deferred *so far*
        (:meth:`_flush_deferred`), landing them in the buffers before
        the callback's own message exactly as a per-entry walk would.
        When callbacks post nothing -- the common case -- the whole
        forward set is binned once at the end.
        """
        recv = self.recv
        if recv is None:
            raise RuntimeError("mailbox has no scalar receive callback")
        plist = entry.payloads.tolist()  # the objects themselves, unboxed once
        lins = entry.lins
        n_here = int(here.sum())
        self.stats.app_messages_delivered += n_here
        self._pending_handle_cost += (
            n_here * self.ctx.machine.config.compute.per_message_handle
        )
        self._deferred_cols = entry
        idx = self._deferred_idx
        append = idx.append
        prof = self._prof
        if prof is None or lins is None:
            for i, h in enumerate(here.tolist()):
                if h:
                    recv(plist[i])
                else:
                    append(i)
        else:
            # Callbacks are plain functions (no yields): simulated time
            # cannot advance inside the loop.
            now = self.ctx.sim.now
            rank = self.rank
            llist = lins.tolist()
            prev = prof.cause
            try:
                for i, h in enumerate(here.tolist()):
                    if h:
                        lin = llist[i]
                        prof.delivered(lin, rank, now)
                        prof.cause = lin
                        recv(plist[i])
                    else:
                        append(i)
            finally:
                prof.cause = prev
        self._flush_deferred()
        self._deferred_cols = None

    def _flush_deferred(self) -> None:
        """Re-bin the forwards deferred by :meth:`_handle_mixed_run`."""
        idx = self._deferred_idx
        if not idx:
            return
        entry = self._deferred_cols
        take = np.asarray(idx, dtype=np.int64)
        idx.clear()
        lins = entry.lins
        self._bin_columns(
            entry.dests[take],
            entry.payloads[take],
            entry.nbytes[take],
            None if lins is None else lins[take],
            at_injection=False,
        )

    def _deliver_p2p(self, payload: Any, lin=None) -> None:
        self.stats.app_messages_delivered += 1
        self._pending_handle_cost += self.ctx.machine.config.compute.per_message_handle
        if self.recv is None:
            raise RuntimeError("mailbox has no scalar receive callback")
        prof = self._prof
        if prof is None or lin is None:
            self.recv(payload)
            return
        # Messages posted from inside the callback are caused by this one.
        prof.delivered(lin, self.rank, self.ctx.sim.now)
        prev, prof.cause = prof.cause, lin
        try:
            self.recv(payload)
        finally:
            prof.cause = prev

    def _deliver_p2p_run(
        self, payloads: np.ndarray, lins: Optional[np.ndarray] = None
    ) -> None:
        """Deliver a columnar run of scalar messages (handler boundary).

        Stats and handler cost accrue in bulk; the receive callback (and
        the per-message causal bookkeeping, identical to
        :meth:`_deliver_p2p`) still runs once per message -- this is
        where the columns materialise back into Python values.
        """
        n = len(payloads)
        if n == 0:
            return
        self.stats.app_messages_delivered += n
        self._pending_handle_cost += (
            n * self.ctx.machine.config.compute.per_message_handle
        )
        recv = self.recv
        if recv is None:
            raise RuntimeError("mailbox has no scalar receive callback")
        prof = self._prof
        # ``tolist`` hands back the column's objects unchanged; looping a
        # plain list beats per-element ndarray indexing.
        plist = payloads.tolist() if isinstance(payloads, np.ndarray) else payloads
        if prof is None or lins is None:
            for payload in plist:
                recv(payload)
            return
        # Callbacks are plain functions (no yields), so simulated time
        # cannot advance inside the loop.
        now = self.ctx.sim.now
        rank = self.rank
        prev = prof.cause
        try:
            for payload, lin in zip(plist, lins.tolist()):
                prof.delivered(lin, rank, now)
                prof.cause = lin
                recv(payload)
        finally:
            prof.cause = prev

    def _deliver_batch(self, batch: np.ndarray, lins: Optional[np.ndarray] = None) -> None:
        n = len(batch)
        if n == 0:
            return
        self.stats.app_messages_delivered += n
        self._pending_handle_cost += (
            n * self.ctx.machine.config.compute.per_message_handle
        )
        prof = self._prof
        if prof is not None and lins is not None:
            prof.delivered_batch(lins, self.rank, self.ctx.sim.now)
            # A whole batch is handled by one callback invocation; charge
            # follow-on messages to its first member (the causal DAG keeps
            # one representative edge rather than a fan-in of n).
            prev, prof.cause = prof.cause, int(lins[0])
        else:
            prof = None
        try:
            if self.recv_batch is not None:
                self.recv_batch(batch)
            elif self.recv is not None:
                for item in batch:
                    self.recv(item)
            else:
                raise RuntimeError("mailbox has no batch receive callback")
        finally:
            if prof is not None:
                prof.cause = prev

    def _deliver_bcast(self, payload: Any, lin=None) -> None:
        self.stats.bcast_deliveries += 1
        self._pending_handle_cost += self.ctx.machine.config.compute.per_message_handle
        if self.recv_bcast is None:
            raise RuntimeError("mailbox has no broadcast receive callback")
        prof = self._prof
        if prof is None or lin is None:
            self.recv_bcast(payload)
            return
        prof.delivered(lin, self.rank, self.ctx.sim.now)
        prev, prof.cause = prof.cause, lin
        try:
            self.recv_bcast(payload)
        finally:
            prof.cause = prev

    def _charge_pending_handles(self) -> Generator:
        if self._pending_handle_cost > 0:
            cost, self._pending_handle_cost = self._pending_handle_cost, 0.0
            t0 = self.ctx.sim.now
            yield self.ctx.sim.timeout(cost)
            if self._prof is not None:
                self._prof.span(self.ctx.world_rank, "handler", t0, self.ctx.sim.now)

    # ------------------------------------------------------------ termination
    def _send_term(self, dest: int, payload, tag) -> Generator:
        yield from self.comm.send(dest, payload, tag=tag, kind=self._term_kind)

    def _drain_term(self) -> None:
        while True:
            pkt = self._term_store.try_get()
            if pkt is None:
                return
            self._term.on_packet(pkt.tag, pkt.payload)

    def _advance_term(self) -> Generator:
        """Drive the detector; trace any rounds completed by this call."""
        rounds_before = self._term.rounds_completed
        t0 = self.ctx.sim.now
        progressed = yield from self._term.advance()
        if self._prof is not None:
            self._prof.span(self.ctx.world_rank, "term", t0, self.ctx.sim.now)
        completed = self._term.rounds_completed - rounds_before
        if completed:
            tracer = self.ctx.sim.tracer
            if tracer is not None and tracer.wants("mailbox"):
                tracer.instant(
                    self.ctx.sim.now, "mailbox", "term_round", self._lane,
                    completed=completed, epoch_rounds=self._term.rounds_completed,
                )
        return progressed

    def wait_empty(self) -> Generator:
        """Block until global quiescence (paper's WAIT_EMPTY).

        Flushes everything, keeps processing and forwarding application
        traffic, and participates in termination-detection rounds until
        the protocol declares the whole job quiescent.
        """
        if self._term.done:
            self._term.reset()
        while True:
            yield from self.flush()
            handled = yield from self.progress()
            if handled or self._queued:
                continue
            self._drain_term()
            progressed = yield from self._advance_term()
            if self._term.done:
                self.stats.term_rounds += self._term.rounds_completed
                self._trace_quiescent()
                return
            if progressed:
                continue
            yield from self._wait_any_traffic()

    def test_empty(self) -> Generator:
        """Nonblocking completion poll (paper's TEST_EMPTY).

        Flushes, processes available traffic, advances the termination
        protocol as far as possible without waiting, and returns whether
        global quiescence has been detected.  Like :meth:`wait_empty`,
        a call after a completed epoch re-arms the detector and begins a
        fresh quiescence epoch.
        """
        if self._term.done:
            self._term.reset()
        yield from self.flush()
        yield from self.progress()
        self._drain_term()
        yield from self._advance_term()
        if self._term.done:
            self.stats.term_rounds += self._term.rounds_completed
            self._trace_quiescent()
        return self._term.done

    @property
    def term_totals(self):
        """Agreed global ``(sent, received)`` of the last quiescence epoch."""
        return self._term.last_totals

    @property
    def term_contribution(self):
        """This rank's own ``(sent, received)`` sample from the agreed round.

        Partition-composable: summed over every rank of the world (in any
        grouping -- e.g. per PDES partition) it reproduces
        :attr:`term_totals` exactly, which is how the parallel engine
        audits global quiescence without a global detector instance.
        """
        return self._term.last_contribution

    def _trace_quiescent(self) -> None:
        """Record the completion of a quiescence epoch.

        ``term_sent``/``term_received`` are the *protocol's* agreed
        global totals (identical on every rank of the epoch, unlike the
        raw per-rank counters, which keep moving as soon as any rank
        exits the epoch and starts the next phase).
        :class:`repro.check.InvariantChecker` uses the snapshot to prove
        the termination detector never declared quiet while messages
        were still queued or in flight.
        """
        self._epoch += 1
        tracer = self.ctx.sim.tracer
        if tracer is not None and tracer.wants("mailbox"):
            totals = self._term.last_totals or (0, 0)
            tracer.instant(
                self.ctx.sim.now, "mailbox", "quiescent", self._lane,
                mailbox=self._app_kind[1],
                epoch=self._epoch,
                rank=self.rank,
                size=self.comm.size,
                term_sent=totals[0],
                term_received=totals[1],
                entries_sent=self.stats.entries_sent,
                entries_received=self.stats.entries_received,
                queued=self._queued,
            )

    def _wait_any_traffic(self) -> Generator:
        get_app = self._app_store.get()
        get_term = self._term_store.get()
        blocked_at = self.ctx.sim.now
        yield self.ctx.sim.any_of([get_app, get_term])
        idle = self.ctx.sim.now - blocked_at
        self.stats.idle_time += idle
        if self._prof is not None:
            self._prof.span(self.ctx.world_rank, "idle", blocked_at, self.ctx.sim.now)
        tracer = self.ctx.sim.tracer
        if tracer is not None and tracer.wants("mailbox"):
            tracer.complete(blocked_at, idle, "mailbox", "idle", self._lane)
        if get_app.triggered:
            yield from self._handle_packet(get_app.value)
        else:
            get_app.cancel()
        if get_term.triggered:
            pkt = get_term.value
            self._term.on_packet(pkt.tag, pkt.payload)
        else:
            get_term.cancel()
