"""Message coalescing: per-next-hop aggregation buffers (Section IV-A).

When sending many small messages, per-message metadata would dominate the
wire; YGM therefore bundles all messages sharing a next hop into one
packet.  Each buffered *entry* is one application message (or one
broadcast copy, or a whole batch of fixed-width records); a flush turns a
buffer into a single transport packet.

Every entry is charged :data:`ENTRY_HEADER_BYTES` of wire overhead on top
of its payload -- identical for the scalar and the batch path, so routing
schemes are compared on equal terms.
"""

from __future__ import annotations

from typing import Any, List, Tuple

import numpy as np

#: Per-message wire overhead inside a coalesced packet (destination rank,
#: length/type word).
ENTRY_HEADER_BYTES = 8


class P2PEntry:
    """One buffered point-to-point message.

    ``lin`` is the message's lineage id when the causal profiler is
    enabled (:mod:`repro.trace.profile`), ``None`` otherwise; it rides
    along through forwarding hops at no simulated cost.
    """

    __slots__ = ("dest", "payload", "nbytes", "lin")
    kind = "p2p"

    def __init__(self, dest: int, payload: Any, nbytes: int, lin=None):
        self.dest = dest
        self.payload = payload
        self.nbytes = nbytes
        self.lin = lin

    @property
    def count(self) -> int:
        return 1

    @property
    def wire_bytes(self) -> int:
        return self.nbytes + ENTRY_HEADER_BYTES


class BcastEntry:
    """One buffered broadcast copy (still fanning out)."""

    __slots__ = ("origin", "payload", "nbytes", "lin")
    kind = "bcast"

    def __init__(self, origin: int, payload: Any, nbytes: int, lin=None):
        self.origin = origin
        self.payload = payload
        self.nbytes = nbytes
        self.lin = lin

    @property
    def count(self) -> int:
        return 1

    @property
    def wire_bytes(self) -> int:
        return self.nbytes + ENTRY_HEADER_BYTES


class BatchEntry:
    """A batch of fixed-width record messages sharing a next hop.

    ``dests`` carries the final destination rank of each record --
    intermediaries re-bin on it; ``batch`` is the structured payload
    array (same length).  ``lins`` is the parallel lineage-id array when
    the causal profiler is enabled, ``None`` otherwise.
    """

    __slots__ = ("dests", "batch", "lins")
    kind = "batch"

    def __init__(self, dests: np.ndarray, batch: np.ndarray, lins=None):
        if len(dests) != len(batch):
            raise ValueError(
                f"dests ({len(dests)}) and batch ({len(batch)}) lengths differ"
            )
        self.dests = dests
        self.batch = batch
        self.lins = lins

    @property
    def count(self) -> int:
        return len(self.batch)

    @property
    def wire_bytes(self) -> int:
        return self.count * (self.batch.dtype.itemsize + ENTRY_HEADER_BYTES)


class ListPool:
    """A bounded free list of entry lists (buffer pooling).

    Every flush hands its entry list to a packet and replaces it with a
    fresh one; every handled packet discards its list.  Recycling the
    handled lists back into the buffers avoids reallocating (and
    regrowing) a list per packet on the mailbox hot path.  Lists are
    cleared on return, so pooling is invisible to correctness; the bound
    caps memory retained after a traffic burst.
    """

    __slots__ = ("_free", "capacity")

    def __init__(self, capacity: int = 64):
        self._free: List[list] = []
        self.capacity = capacity

    def get(self) -> list:
        """A fresh (empty) list, recycled when one is available."""
        return self._free.pop() if self._free else []

    def put(self, lst: Any) -> None:
        """Return ``lst`` to the pool (ignored unless it is a plain list)."""
        if type(lst) is list and len(self._free) < self.capacity:
            lst.clear()
            self._free.append(lst)

    def __len__(self) -> int:
        return len(self._free)


class CoalescingBuffer:
    """Aggregation buffer for one next hop."""

    __slots__ = ("hop", "entries", "nbytes", "count", "_pool")

    def __init__(self, hop: int, pool: "ListPool | None" = None):
        self.hop = hop
        self._pool = pool
        self.entries: List[Any] = [] if pool is None else pool.get()
        self.nbytes = 0  # wire bytes including per-entry headers
        self.count = 0  # messages

    def add(self, entry) -> None:
        self.entries.append(entry)
        self.nbytes += entry.wire_bytes
        self.count += entry.count

    def take(self) -> Tuple[List[Any], int, int]:
        """Drain the buffer; returns ``(entries, wire_bytes, messages)``.

        Ownership of the entries list transfers to the caller; the
        replacement comes from the pool when one is attached.
        """
        out = (self.entries, self.nbytes, self.count)
        self.entries = [] if self._pool is None else self._pool.get()
        self.nbytes = 0
        self.count = 0
        return out

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0
