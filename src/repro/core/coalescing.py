"""Message coalescing: per-next-hop aggregation buffers (Section IV-A).

When sending many small messages, per-message metadata would dominate the
wire; YGM therefore bundles all messages sharing a next hop into one
packet.  Each buffered *entry* is one application message (or one
broadcast copy, or a whole batch of fixed-width records); a flush turns a
buffer into a single transport packet.

Every entry is charged :data:`ENTRY_HEADER_BYTES` of wire overhead on top
of its payload -- identical for the scalar and the batch path, so routing
schemes are compared on equal terms.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Tuple

import numpy as np

#: Per-message wire overhead inside a coalesced packet (destination rank,
#: length/type word).
ENTRY_HEADER_BYTES = 8


class P2PEntry:
    """One buffered point-to-point message.

    ``lin`` is the message's lineage id when the causal profiler is
    enabled (:mod:`repro.trace.profile`), ``None`` otherwise; it rides
    along through forwarding hops at no simulated cost.
    """

    __slots__ = ("dest", "payload", "nbytes", "lin")
    kind = "p2p"

    def __init__(self, dest: int, payload: Any, nbytes: int, lin=None):
        self.dest = dest
        self.payload = payload
        self.nbytes = nbytes
        self.lin = lin

    @property
    def count(self) -> int:
        return 1

    @property
    def wire_bytes(self) -> int:
        return self.nbytes + ENTRY_HEADER_BYTES


class BcastEntry:
    """One buffered broadcast copy (still fanning out)."""

    __slots__ = ("origin", "payload", "nbytes", "lin")
    kind = "bcast"

    def __init__(self, origin: int, payload: Any, nbytes: int, lin=None):
        self.origin = origin
        self.payload = payload
        self.nbytes = nbytes
        self.lin = lin

    @property
    def count(self) -> int:
        return 1

    @property
    def wire_bytes(self) -> int:
        return self.nbytes + ENTRY_HEADER_BYTES


class BatchEntry:
    """A batch of fixed-width record messages sharing a next hop.

    ``dests`` carries the final destination rank of each record --
    intermediaries re-bin on it; ``batch`` is the structured payload
    array (same length).  ``lins`` is the parallel lineage-id array when
    the causal profiler is enabled, ``None`` otherwise.
    """

    __slots__ = ("dests", "batch", "lins")
    kind = "batch"

    def __init__(self, dests: np.ndarray, batch: np.ndarray, lins=None):
        if len(dests) != len(batch):
            raise ValueError(
                f"dests ({len(dests)}) and batch ({len(batch)}) lengths differ"
            )
        self.dests = dests
        self.batch = batch
        self.lins = lins

    @property
    def count(self) -> int:
        return len(self.batch)

    @property
    def wire_bytes(self) -> int:
        return self.count * (self.batch.dtype.itemsize + ENTRY_HEADER_BYTES)


class P2PColumns:
    """A run of point-to-point messages in struct-of-arrays layout.

    The columnar counterpart of a run of :class:`P2PEntry` objects: one
    NumPy array per field instead of one Python object per message.
    ``dests[i]`` is the final destination rank of message ``i``,
    ``payloads[i]`` its payload (an object column -- payloads stay
    arbitrary Python values until a handler boundary), ``nbytes[i]`` its
    wire size, and ``lins`` the parallel lineage-id column when the
    causal profiler is enabled (``None`` otherwise).

    All columns are plain contiguous ndarrays, so a whole run pickles as
    four buffers -- the layout a future PDES engine can ship between
    worker processes without touching individual messages.
    """

    __slots__ = ("dests", "payloads", "nbytes", "lins", "count", "wire_bytes")
    kind = "p2p_cols"

    def __init__(
        self,
        dests: np.ndarray,
        payloads: np.ndarray,
        nbytes: np.ndarray,
        lins: Optional[np.ndarray] = None,
    ):
        n = len(dests)
        if not (n == len(payloads) == len(nbytes)):
            raise ValueError(
                f"column lengths differ: dests {n}, "
                f"payloads {len(payloads)}, nbytes {len(nbytes)}"
            )
        self.dests = dests
        self.payloads = payloads
        self.nbytes = nbytes
        self.lins = lins
        self.count = n
        # Precomputed: the flush path reads it once per run, and columns
        # are immutable after construction.
        self.wire_bytes = int(nbytes.sum()) + n * ENTRY_HEADER_BYTES


class _PoisonEntry:
    """Sentinel filling recycled lists in ListPool debug mode.

    Any attribute access (``.kind``, ``.payload``, iteration through a
    handler loop) raises immediately, converting a silent use-after-
    recycle corruption into a loud failure at the exact access site.
    """

    __slots__ = ()

    def __getattr__(self, name):
        raise RuntimeError(
            "use-after-recycle: this entry list was already returned to "
            "the ListPool (a reference escaped a handler or profiler hook)"
        )

    def __repr__(self) -> str:
        return "<poisoned entry>"


_POISON = _PoisonEntry()


class ListPool:
    """A bounded free list of entry lists (buffer pooling).

    Every flush hands its entry list to a packet and replaces it with a
    fresh one; every handled packet discards its list.  Recycling the
    handled lists back into the buffers avoids reallocating (and
    regrowing) a list per packet on the mailbox hot path.  Lists are
    cleared on return, so pooling is invisible to correctness; the bound
    caps memory retained after a traffic burst.

    Debug mode (``debug=True``, or the ``REPRO_DEBUG_POOL`` environment
    variable) hardens the pool against aliasing bugs: returned lists are
    filled with poison sentinels instead of being cleared, so a stale
    reference that reads an entry after recycling raises instead of
    silently observing an empty (or refilled) list, and returning the
    same list twice is detected and raises.
    """

    __slots__ = ("_free", "capacity", "debug")

    def __init__(self, capacity: int = 64, debug: Optional[bool] = None):
        self._free: List[list] = []
        self.capacity = capacity
        if debug is None:
            debug = bool(os.environ.get("REPRO_DEBUG_POOL"))
        self.debug = debug

    def get(self) -> list:
        """A fresh (empty) list, recycled when one is available."""
        if not self._free:
            return []
        lst = self._free.pop()
        if self.debug:
            lst.clear()  # drop the poison only once the list is reissued
        return lst

    def put(self, lst: Any) -> None:
        """Return ``lst`` to the pool (ignored unless it is a plain list)."""
        if type(lst) is not list:
            return
        if self.debug:
            if lst and lst[0] is _POISON:
                raise RuntimeError(
                    "double recycle: this list was already returned to the pool"
                )
            lst[:] = [_POISON] * len(lst)
            if len(self._free) < self.capacity:
                self._free.append(lst)
            return
        if len(self._free) < self.capacity:
            lst.clear()
            self._free.append(lst)

    def __len__(self) -> int:
        return len(self._free)


class CoalescingBuffer:
    """Aggregation buffer for one next hop.

    Besides whole entries (:meth:`add`), the buffer accumulates scalar
    point-to-point messages into an open *columnar run* (:meth:`add_p2p`):
    consecutive scalars are appended to plain per-field Python lists and
    materialised as one :class:`P2PColumns` entry only when the run is
    interrupted (a non-scalar entry arrives) or the buffer is drained.
    Entry order -- and therefore packet content order -- is exactly the
    order of the ``add*`` calls.
    """

    __slots__ = (
        "hop", "entries", "nbytes", "count", "_pool",
        "_run_dests", "_run_payloads", "_run_nbytes", "_run_lins",
    )

    def __init__(self, hop: int, pool: "ListPool | None" = None):
        self.hop = hop
        self._pool = pool
        self.entries: List[Any] = [] if pool is None else pool.get()
        self.nbytes = 0  # wire bytes including per-entry headers
        self.count = 0  # messages
        self._run_dests: List[int] = []
        self._run_payloads: List[Any] = []
        self._run_nbytes: List[int] = []
        self._run_lins: List[Any] = []

    def add(self, entry) -> None:
        if self._run_dests:
            self._close_run()
        self.entries.append(entry)
        self.nbytes += entry.wire_bytes
        self.count += entry.count

    def add_p2p(self, dest: int, payload: Any, nbytes: int, lin=None) -> None:
        """Append one scalar message to the open columnar run."""
        self._run_dests.append(dest)
        self._run_payloads.append(payload)
        self._run_nbytes.append(nbytes)
        self._run_lins.append(lin)
        self.nbytes += nbytes + ENTRY_HEADER_BYTES
        self.count += 1

    def add_columns(self, cols: P2PColumns) -> None:
        """Append a pre-built columnar run (intermediary re-binning)."""
        if self._run_dests:
            self._close_run()
        self.entries.append(cols)
        self.nbytes += cols.wire_bytes
        self.count += cols.count

    def _close_run(self) -> None:
        n = len(self._run_dests)
        dests = np.array(self._run_dests, dtype=np.int64)
        payloads = np.fromiter(self._run_payloads, dtype=object, count=n)
        sizes = np.array(self._run_nbytes, dtype=np.int64)
        # A mailbox either profiles every message or none, so the run's
        # lineage column is all-ints or all-None.
        lins = None
        if self._run_lins[0] is not None:
            lins = np.array(self._run_lins, dtype=np.int64)
        self.entries.append(P2PColumns(dests, payloads, sizes, lins))
        self._run_dests.clear()
        self._run_payloads.clear()
        self._run_nbytes.clear()
        self._run_lins.clear()

    def take(self) -> Tuple[List[Any], int, int]:
        """Drain the buffer; returns ``(entries, wire_bytes, messages)``.

        Ownership of the entries list transfers to the caller; the
        replacement comes from the pool when one is attached.
        """
        if self._run_dests:
            self._close_run()
        out = (self.entries, self.nbytes, self.count)
        self.entries = [] if self._pool is None else self._pool.get()
        self.nbytes = 0
        self.count = 0
        return out

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0
