"""Per-mailbox and aggregated communication statistics.

These counters feed the figure harness: broadcast counts (Fig 7a),
remote/local packet and byte volumes, average remote packet sizes (the
Section III-E analysis), and flush/termination diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List


@dataclass
class MailboxStats:
    """Counters for one rank's mailbox."""

    #: Application messages injected via ``send``/``send_batch``.
    app_messages_sent: int = 0
    #: Application messages delivered to this rank's receive callback.
    app_messages_delivered: int = 0
    #: Broadcasts initiated via ``send_bcast``.
    bcasts_initiated: int = 0
    #: Broadcast copies delivered to this rank.
    bcast_deliveries: int = 0
    #: Transport-level entries sent (each hop counts once; the
    #: termination detector balances this against ``entries_received``).
    entries_sent: int = 0
    #: Transport-level entries received.
    entries_received: int = 0
    #: Entries forwarded as an intermediary (subset of both of the above).
    entries_forwarded: int = 0
    #: Application messages eliminated by in-network combining (each
    #: merged-away record counts once, at the rank that merged it; the
    #: conservation invariant becomes ``sent == delivered + combined``).
    entries_combined: int = 0
    #: Coalesced packets sent, split by locality.
    local_packets_sent: int = 0
    remote_packets_sent: int = 0
    #: Payload bytes sent, split by locality.
    local_bytes_sent: int = 0
    remote_bytes_sent: int = 0
    #: Number of capacity-triggered and explicit flushes.
    flushes: int = 0
    #: Termination-detection rounds participated in.
    term_rounds: int = 0
    #: Simulated seconds this rank spent blocked waiting for traffic
    #: inside wait_empty (the idle time the paper's asynchrony reduces).
    idle_time: float = 0.0

    @property
    def avg_remote_packet_bytes(self) -> float:
        """Average coalesced remote packet size -- where each scheme lands
        on the Fig 5 bandwidth curve."""
        if self.remote_packets_sent == 0:
            return 0.0
        return self.remote_bytes_sent / self.remote_packets_sent

    def merge(self, other: "MailboxStats") -> "MailboxStats":
        """Element-wise sum (for world-level aggregation)."""
        out = MailboxStats()
        for f in fields(MailboxStats):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    def as_dict(self) -> Dict[str, float]:
        d = {f.name: getattr(self, f.name) for f in fields(MailboxStats)}
        d["avg_remote_packet_bytes"] = self.avg_remote_packet_bytes
        return d


def aggregate(stats: Iterable[MailboxStats]) -> MailboxStats:
    """Sum a collection of per-rank stats."""
    total = MailboxStats()
    for s in stats:
        total = total.merge(s)
    return total
