"""YGM execution context and world runner -- the library's front door.

Typical use::

    from repro import YgmWorld
    from repro.machine import bench_machine

    def rank_main(ctx):
        counts = {}

        def on_recv(vertex):
            counts[vertex] = counts.get(vertex, 0) + 1

        mb = ctx.mailbox(recv=on_recv)
        for v in my_vertices:
            yield from mb.send(owner(v), v)
        yield from mb.wait_empty()
        return counts

    world = YgmWorld(bench_machine(nodes=4), scheme="nlnr", seed=0)
    result = world.run(rank_main)
    print(result.elapsed, result.mailbox_stats.bcasts_initiated)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Union

import numpy as np

from ..machine import Machine, MachineConfig, bench_machine
from ..mpi import Comm, RankContext, World, WorldResult
from .config import MailboxConfig
from .mailbox import Mailbox
from .routing import RoutingScheme, get_scheme
from .stats import MailboxStats, aggregate


@dataclass(frozen=True)
class Occupancy:
    """Point-in-time runtime occupancy counters (``YgmContext.occupancy``).

    ``nic_*_in_use`` are packets currently holding the node's NIC
    resource, ``nic_*_queued`` the waiters behind them;
    ``buffered_messages`` counts this rank's messages sitting in
    coalescing buffers across all its mailboxes, and ``buffer_fill`` is
    that count over the summed mailbox capacities (0.0 with no
    mailboxes).
    """

    nic_tx_in_use: int
    nic_tx_queued: int
    nic_rx_in_use: int
    nic_rx_queued: int
    buffered_messages: int
    buffer_fill: float


class YgmContext:
    """What a YGM rank program receives.

    Wraps the simulated-MPI rank context with the routing scheme and a
    mailbox factory.  All ranks must create mailboxes in the same order.
    """

    def __init__(self, mpi_ctx: RankContext, scheme: RoutingScheme, default_config: MailboxConfig):
        self._mpi = mpi_ctx
        self.scheme = scheme
        self.default_config = default_config
        self.mailboxes: List[Mailbox] = []

    # -- identity ------------------------------------------------------------
    @property
    def comm(self) -> Comm:
        return self._mpi.comm

    @property
    def rank(self) -> int:
        return self._mpi.comm.rank

    @property
    def world_rank(self) -> int:
        return self._mpi.rank

    @property
    def nranks(self) -> int:
        return self._mpi.nranks

    @property
    def node(self) -> int:
        return self._mpi.node

    @property
    def core(self) -> int:
        return self._mpi.core

    @property
    def world(self) -> World:
        return self._mpi.world

    @property
    def machine(self) -> Machine:
        return self._mpi.machine

    @property
    def sim(self):
        return self._mpi.sim

    @property
    def rng(self) -> np.random.Generator:
        return self._mpi.rng

    def compute(self, seconds: float):
        """Charge application CPU time: ``yield ctx.compute(t)``."""
        return self._mpi.compute(seconds)

    # -- observability -------------------------------------------------------
    def occupancy(self) -> "Occupancy":
        """Cheap live occupancy counters for this rank's node.

        A point-in-time snapshot of the signals adaptive policies (and
        application-level backpressure) can key on: the node's NIC
        transmit/receive occupancy (``in_use + queue_length`` of the
        simulated :class:`~repro.sim.resources.Resource`) and this
        rank's own coalescing-buffer fill.  Reading it never advances
        simulated time and never perturbs the run.
        """
        machine = self._mpi.machine
        node = self._mpi.node
        tx = machine.nic_tx[node]
        rx = machine.nic_rx[node]
        buffered = sum(mb.queued for mb in self.mailboxes)
        capacity = sum(mb.config.capacity for mb in self.mailboxes)
        return Occupancy(
            nic_tx_in_use=tx.in_use,
            nic_tx_queued=tx.queue_length,
            nic_rx_in_use=rx.in_use,
            nic_rx_queued=rx.queue_length,
            buffered_messages=buffered,
            buffer_fill=(buffered / capacity) if capacity else 0.0,
        )

    # -- tracing -------------------------------------------------------------
    @property
    def tracer(self):
        """The installed :class:`repro.trace.Tracer`, or ``None``."""
        return self._mpi.sim.tracer

    def trace(self, name: str, **args) -> None:
        """Emit an application-level trace marker on this rank's lane.

        A no-op (one attribute check) when no tracer is installed, so
        rank programs can annotate phases unconditionally.
        """
        tracer = self._mpi.sim.tracer
        if tracer is not None and tracer.wants("app"):
            tracer.instant(
                self._mpi.sim.now, "app", name, f"rank {self.world_rank}", **args
            )

    # -- mailbox factory -----------------------------------------------------
    def mailbox(
        self,
        recv: Optional[Callable[[Any], None]] = None,
        recv_batch: Optional[Callable[[np.ndarray], None]] = None,
        recv_bcast: Optional[Callable[[Any], None]] = None,
        capacity: Optional[int] = None,
        columnar: Optional[bool] = None,
        combiner=None,
    ) -> Mailbox:
        """Create this rank's next mailbox (collective: same order everywhere).

        ``columnar`` overrides the struct-of-arrays hot-path toggle (see
        :class:`~repro.core.config.MailboxConfig`); the differential
        tests pin the two paths bit-identical through it.  ``combiner``
        attaches an in-network combining algebra
        (:class:`~repro.core.routing.combiner.Combiner`) for this
        mailbox's batch records.
        """
        config = self.default_config
        if capacity is not None:
            config = config.with_overrides(capacity=capacity)
        if columnar is not None:
            config = config.with_overrides(columnar=columnar)
        if combiner is not None:
            config = config.with_overrides(combiner=combiner)
        mb = Mailbox(
            self,
            recv=recv,
            recv_batch=recv_batch,
            recv_bcast=recv_bcast,
            config=config,
            mailbox_id=len(self.mailboxes),
        )
        self.mailboxes.append(mb)
        return mb


@dataclass
class YgmResult:
    """Outcome of a YGM world run."""

    values: List[Any]
    elapsed: float
    finish_times: List[float]
    transport: Dict[str, Any]
    per_rank_stats: List[MailboxStats]
    mailbox_stats: MailboxStats

    def utilization(self) -> List[float]:
        """Per-rank busy fraction: 1 - (mailbox idle time / finish time).

        The "core utilization" the paper's asynchrony improves: time not
        spent blocked waiting for traffic in wait_empty.
        """
        out = []
        for stats, finish in zip(self.per_rank_stats, self.finish_times):
            if finish and finish > 0:
                out.append(max(0.0, 1.0 - stats.idle_time / finish))
            else:
                out.append(1.0)
        return out

    @classmethod
    def from_world(cls, res: WorldResult, contexts: List[YgmContext]) -> "YgmResult":
        per_rank = [
            aggregate(mb.stats for mb in ctx.mailboxes) for ctx in contexts
        ]
        return cls(
            values=res.values,
            elapsed=res.elapsed,
            finish_times=res.finish_times,
            transport=res.transport,
            per_rank_stats=per_rank,
            mailbox_stats=aggregate(per_rank),
        )


class YgmWorld:
    """A simulated machine running YGM with a chosen routing scheme."""

    def __init__(
        self,
        machine: Union[MachineConfig, int],
        scheme: Union[str, RoutingScheme] = "nlnr",
        seed: int = 0,
        mailbox_capacity: int = MailboxConfig().capacity,
        cores_per_node: int = 8,
        tracer=None,
        tiebreaker=None,
        columnar: bool = MailboxConfig().columnar,
    ):
        if isinstance(machine, int):
            machine = bench_machine(nodes=machine, cores_per_node=cores_per_node)
        self.machine_config = machine
        self.tracer = tracer
        self.world = World(machine, seed=seed, tracer=tracer, tiebreaker=tiebreaker)
        if isinstance(scheme, str):
            scheme = get_scheme(scheme, machine.nodes, machine.cores_per_node)
        elif (scheme.nodes, scheme.cores) != (machine.nodes, machine.cores_per_node):
            raise ValueError("routing scheme shape does not match the machine")
        # Adaptive schemes read live NIC occupancy; static schemes ignore this.
        scheme.bind_machine(self.world.machine)
        self.scheme = scheme
        self.default_config = MailboxConfig(
            capacity=mailbox_capacity, columnar=columnar
        )

    @property
    def nranks(self) -> int:
        return self.world.nranks

    def run(self, rank_main: Callable[[YgmContext], Generator]) -> YgmResult:
        """Run ``rank_main(ctx)`` on every rank to completion."""
        contexts: List[YgmContext] = []

        def wrapper(mpi_ctx: RankContext) -> Generator:
            ctx = YgmContext(mpi_ctx, self.scheme, self.default_config)
            contexts.append(ctx)
            value = yield from rank_main(ctx)
            return value

        res = self.world.run(wrapper)
        contexts.sort(key=lambda c: c.world_rank)
        return YgmResult.from_world(res, contexts)
