"""Distributed termination detection (paper Section IV-B).

YGM terminates a ``wait_empty`` when *all* ranks have finished producing
messages and every in-flight message has been received.  We implement the
standard double-counting protocol the production YGM uses (asynchronous
global counting rounds):

* every rank tracks transport-level ``(entries_sent, entries_received)``,
* rounds of a tree-based global sum run over a dedicated traffic class,
* the root declares termination when the global sums are **equal and
  unchanged across two consecutive rounds** -- one equal round is not
  sufficient because counter reports are not causally synchronized.

The detector is a resumable state machine (not a blocking collective):
``advance()`` makes whatever progress the already-arrived protocol
messages allow and returns.  The mailbox keeps processing *application*
traffic between advances, so ranks acting as routing intermediaries keep
forwarding while the protocol converges -- the "pseudo-asynchronous"
behaviour the paper describes.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple

Counts = Tuple[int, int]

# Phases of the per-round state machine.
IDLE = "idle"
COLLECTING = "collecting"
WAIT_RESULT = "wait_result"


def binomial_children(rank: int, size: int) -> List[int]:
    """Children of ``rank`` in the binomial tree rooted at 0."""
    children = []
    mask = 1
    while mask < size:
        if rank & mask:
            break
        child = rank | mask
        if child < size:
            children.append(child)
        mask <<= 1
    return children


def binomial_parent(rank: int) -> Optional[int]:
    """Parent of ``rank`` (None for the root)."""
    if rank == 0:
        return None
    return rank & (rank - 1)


class TerminationDetector:
    """Counting termination detection over a mailbox's TERM channel.

    Parameters
    ----------
    comm:
        The communicator used for protocol messages.
    kind:
        Traffic-class key isolating this mailbox's protocol packets.
    get_counts:
        Callable returning this rank's current ``(sent, received)``
        transport-entry counters.
    send:
        ``send(dest, payload, tag)`` generator factory (the mailbox wires
        this to ``comm.send(..., kind=kind)``).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        get_counts: Callable[[], Counts],
        send: Callable,
    ):
        self.rank = rank
        self.size = size
        self.get_counts = get_counts
        self._send = send
        self.children = binomial_children(rank, size)
        self.parent = binomial_parent(rank)
        self.round = 0
        self.phase = IDLE
        self.done = False
        self.rounds_completed = 0
        #: Global ``(sent, received)`` totals of the last completed round.
        #: After ``done``, this is the protocol's agreed-on quiescence
        #: snapshot -- identical on every rank, unlike the raw per-rank
        #: counters which keep moving as soon as a rank exits its epoch.
        #: The invariant checker (:mod:`repro.check`) audits it.
        self.last_totals: Optional[Counts] = None
        #: This rank's *own* ``(sent, received)`` sample from the round
        #: that produced :attr:`last_totals` -- before children were
        #: merged in.  Unlike ``last_totals`` (a global total, identical
        #: on every rank, so summing it across ranks or partitions
        #: overcounts), contributions are partition-composable by
        #: construction: the sum of ``last_contribution`` over all ranks
        #: equals ``last_totals`` exactly, because the agreed totals were
        #: computed from precisely these samples.  The PDES engine
        #: aggregates quiescence totals across partitions from this.
        self.last_contribution: Optional[Counts] = None
        self._own: Counts = (0, 0)
        self._partial: Counts = (0, 0)
        self._prev_totals: Optional[Counts] = None
        #: Arrived protocol messages keyed by tag.
        self._cache: Dict[tuple, object] = {}

    # -- incoming protocol traffic (fed by the mailbox) ------------------------
    def on_packet(self, tag: tuple, payload) -> None:
        self._cache[tag] = payload

    # -- the state machine -------------------------------------------------------
    def advance(self) -> Generator:
        """Make all currently-possible progress; returns True if any
        state transition happened (generator -- drive with yield from)."""
        progressed = False
        while not self.done:
            step = yield from self._step()
            if not step:
                return progressed
            progressed = True
        return progressed

    def _step(self) -> Generator:
        if self.done:
            return False
        if self.phase == IDLE:
            self.phase = COLLECTING
            return True
        if self.phase == COLLECTING:
            result = yield from self._try_collect()
            return result
        if self.phase == WAIT_RESULT:
            result = yield from self._try_result()
            return result
        raise AssertionError(f"bad phase {self.phase}")
        yield  # pragma: no cover -- keeps this a generator

    def _try_collect(self) -> Generator:
        """Fire once every child's round contribution has arrived."""
        tags = [("r", self.round, child) for child in self.children]
        if not all(t in self._cache for t in tags):
            return False
        sent, recv = self.get_counts()
        self._own = (sent, recv)
        for t in tags:
            c_sent, c_recv = self._cache.pop(t)
            sent += c_sent
            recv += c_recv
        self._partial = (sent, recv)
        if self.parent is not None:
            yield from self._send(self.parent, self._partial, ("r", self.round, self.rank))
            self.phase = WAIT_RESULT
        else:
            # Root: evaluate and broadcast the verdict.
            totals = self._partial
            done = totals[0] == totals[1] and totals == self._prev_totals
            self._prev_totals = totals
            yield from self._broadcast_result((done, totals))
            self._finish_round(done)
        return True

    def _try_result(self) -> Generator:
        tag = ("b", self.round)
        if tag not in self._cache:
            return False
        done, totals = self._cache.pop(tag)
        self._prev_totals = totals
        yield from self._broadcast_result((done, totals))
        self._finish_round(done)
        return True

    def _broadcast_result(self, result) -> Generator:
        for child in self.children:
            yield from self._send(child, result, ("b", self.round))

    def _finish_round(self, done: bool) -> None:
        self.rounds_completed += 1
        self.last_totals = self._prev_totals
        self.last_contribution = self._own
        if done:
            self.done = True
        else:
            self.round += 1
            self.phase = IDLE

    def reset(self) -> None:
        """Re-arm the detector for a subsequent quiescence epoch.

        ``rounds_completed`` is cleared so it always reads as *this
        epoch's* round count; the mailbox accumulates the per-epoch
        values into ``MailboxStats.term_rounds`` at epoch completion.
        """
        if not self.done:
            raise RuntimeError("cannot reset a detector mid-protocol")
        self.done = False
        self.round += 1  # keep tags globally unique across epochs
        self.phase = IDLE
        self.rounds_completed = 0
        self._prev_totals = None
