"""Core event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot future bound to a :class:`~repro.sim.kernel.
Simulator`.  Processes (generator coroutines, see :mod:`repro.sim.process`)
``yield`` events to suspend until they trigger.  Events move through three
states:

``pending``
    created, not yet triggered; callbacks may be attached.
``triggered``
    a value (or exception) has been assigned and the event has been placed
    on the simulator's queue.
``processed``
    the simulator has popped the event and run its callbacks.

The distinction between *triggered* and *processed* matters for
determinism: all state changes at a given simulated time are serialized
through the event queue in FIFO order of triggering.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from .errors import EventStateError

#: Sentinel for "no value assigned yet".
_PENDING = object()


class Event:
    """A one-shot future that processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulator.  Events may only be triggered and waited on
        within their own simulator.
    name:
        Optional debug label shown in ``repr``.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, sim: "Simulator", name: str = ""):  # noqa: F821
        self.sim = sim
        self.name = name
        #: Callbacks run (with the event as sole argument) when processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once a value or exception has been assigned."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """``True`` if succeeded, ``False`` if failed, ``None`` if pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise EventStateError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Assign a success value and schedule callback processing *now*.

        Returns ``self`` so it can be chained/yielded.
        """
        if self._value is not _PENDING:
            raise EventStateError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.sim._enqueue(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Assign an exception; waiters will have it raised into them."""
        if self._value is not _PENDING:
            raise EventStateError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exc
        self._ok = False
        self.sim._enqueue(self)
        return self

    # -- kernel hooks --------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks.  Called exactly once by the kernel."""
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    def attach(self, callback: Callable[["Event"], None]) -> None:
        """Attach *callback*; runs immediately if already processed."""
        if self.callbacks is None:
            # Already processed -- run inline to preserve "never lost".
            callback(self)
        else:
            self.callbacks.append(callback)

    def detach(self, callback: Callable[["Event"], None]) -> None:
        """Best-effort removal of a previously attached callback."""
        if self.callbacks is not None:
            try:
                self.callbacks.remove(callback)
            except ValueError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation.

    The value is assigned when the delay elapses (not at creation), so
    ``triggered`` correctly reads False while the timeout is pending --
    condition events (AnyOf/AllOf) rely on this.

    Timeouts are the single most-allocated event type (every modelled
    cost is one), so construction writes the slots directly and the
    debug ``name`` is computed lazily instead of f-formatted per event.
    """

    __slots__ = ("delay", "_timeout_value")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._processed = False
        self.delay = delay
        self._timeout_value = value
        sim._enqueue(self, delay)

    @property
    def name(self) -> str:  # shadows the base slot; computed on demand
        return f"timeout({self.delay})"

    def _process(self) -> None:
        self._value = self._timeout_value
        self._ok = True
        super()._process()


class Callback(Event):
    """A scheduled-callback event: the fast path behind ``sim.schedule``.

    Triggers ``delay`` seconds after creation and runs ``fn()`` before
    any attached callbacks -- equivalent to a :class:`Timeout` plus an
    attached closure, without allocating either.  ``_defer`` skips the
    self-enqueue so :meth:`~repro.sim.kernel.Simulator.schedule_batch`
    can enqueue a whole batch in one pass.
    """

    __slots__ = ("fn",)
    name = "callback"

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        delay: float,
        fn: Callable[[], None],
        _defer: bool = False,
    ):
        if delay < 0:
            raise ValueError(f"negative schedule delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._processed = False
        self.fn = fn
        if not _defer:
            sim._enqueue(self, delay)

    def _process(self) -> None:
        self._value = None
        self._ok = True
        self.fn()
        super()._process()


class AnyOf(Event):
    """Triggers when the *first* of ``events`` triggers.

    The value is the list of child events; the caller should inspect each
    child's ``triggered`` flag (several may fire at the same timestamp) and
    cancel those that support cancellation and did not fire.
    """

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: Sequence[Event]):  # noqa: F821
        super().__init__(sim, name="any_of")
        self.events = list(events)
        self._done = False
        if not self.events:
            self.succeed(self.events)
            return
        for ev in self.events:
            if ev.triggered:
                # Child already triggered; fire immediately.
                self._on_child(ev)
                break
        else:
            for ev in self.events:
                ev.attach(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._done:
            return
        self._done = True
        if ev.ok is False:
            self.fail(ev.value)
        else:
            self.succeed(self.events)


class AllOf(Event):
    """Triggers when *all* of ``events`` have triggered.

    The value is the list of child event values, in input order.  Fails
    fast if any child fails.
    """

    __slots__ = ("events", "_remaining", "_done")

    def __init__(self, sim: "Simulator", events: Sequence[Event]):  # noqa: F821
        super().__init__(sim, name="all_of")
        self.events = list(events)
        self._done = False
        self._remaining = sum(1 for ev in self.events if not ev.triggered)
        for ev in self.events:
            if ev.triggered and ev.ok is False:
                self._done = True
                self.fail(ev.value)
                return
        if self._remaining == 0:
            self.succeed([ev.value for ev in self.events])
            return
        for ev in self.events:
            if not ev.triggered:
                ev.attach(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._done:
            return
        if ev.ok is False:
            self._done = True
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._done = True
            self.succeed([e.value for e in self.events])
