"""Processes: generator coroutines driven by the simulation kernel.

A simulated process is a generator that ``yield``\\ s
:class:`~repro.sim.events.Event` objects.  Each yield suspends the process
until the event triggers; the event's value is sent back into the
generator (or its exception thrown in, if the event failed).

A :class:`Process` is itself an event that triggers when the generator
returns, with the generator's return value -- so processes can wait on
each other::

    def child(sim):
        yield sim.timeout(1)
        return 42

    def parent(sim):
        result = yield sim.process(child(sim))
        assert result == 42
"""

from __future__ import annotations

from typing import Generator

from .errors import ProcessError
from .events import Event


class Process(Event):
    """An event wrapping a running generator coroutine."""

    __slots__ = ("gen", "_waiting_on", "_blocked_since")

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        gen: Generator,
        name: str = "",
        _defer_start: bool = False,
    ):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"process target must be a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self._waiting_on: Event | None = None
        #: Block timestamp for the (trace-only) blocked-span events.
        self._blocked_since: float | None = None
        sim._live_processes += 1
        # Kick off at the current time via an initialisation event so that
        # process startup is serialized through the queue (deterministic).
        # ``_defer_start`` leaves the event to the caller
        # (Simulator.process_batch), which enqueues a whole batch at once.
        if not _defer_start:
            self.sim._enqueue(self._make_init_event())

    def _make_init_event(self) -> Event:
        """The triggered startup event; caller is responsible for enqueueing."""
        init = Event(
            self.sim,
            # The per-process label only matters to the kernel trace lane;
            # skip the f-string when nobody is tracing.
            f"init:{self.name}" if self.sim.tracer is not None else "init",
        )
        init.callbacks.append(self._resume)
        init._value = None
        init._ok = True
        return init

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s value (kernel callback)."""
        self._waiting_on = None
        tracer = self.sim.tracer
        if self._blocked_since is not None:
            if tracer is not None and tracer.wants("process"):
                tracer.complete(
                    self._blocked_since,
                    self.sim.now - self._blocked_since,
                    "process",
                    "blocked",
                    self.name,
                )
            self._blocked_since = None
        try:
            if event.ok is False:
                target = self.gen.throw(event.value)
            else:
                target = self.gen.send(event.value)
        except StopIteration as stop:
            self.sim._live_processes -= 1
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._live_processes -= 1
            # Surface the failure: if nobody is waiting on this process the
            # error would otherwise vanish, so re-raise out of the kernel.
            if self.callbacks:
                self.fail(exc)
            else:
                err = ProcessError(f"unhandled error in process {self.name!r}")
                raise err from exc
            return
        if not isinstance(target, Event):
            self.sim._live_processes -= 1
            exc2: BaseException = TypeError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
            if self.callbacks:
                self.fail(exc2)
            else:
                raise exc2
            return
        if target.sim is not self.sim:
            raise ProcessError(
                f"process {self.name!r} yielded an event from a different simulator"
            )
        self._waiting_on = target
        if tracer is not None and tracer.wants("process"):
            self._blocked_since = self.sim.now
        target.attach(self._resume)
