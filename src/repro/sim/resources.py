"""FIFO resources used to model contended hardware.

A :class:`Resource` models a server with ``capacity`` concurrent slots and
a FIFO wait queue.  In the machine model, each core's injection engine and
each node's NIC is a capacity-1 resource: holding it for
``bytes / bandwidth`` seconds is how transmission serialization (and hence
congestion at hot nodes) arises in the simulation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator

from .events import Event


class Resource:
    """A FIFO-ordered multi-slot resource."""

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):  # noqa: F821
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        #: Total simulated seconds of holds completed (utilisation metric).
        self.busy_time = 0.0
        #: Number of completed holds.
        self.holds = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event triggering when a slot is granted to the caller."""
        ev = Event(self.sim, name=f"acquire:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
            self._trace_queue_depth()
        return ev

    def release(self) -> None:
        """Release one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter (in_use unchanged).
            self._waiters.popleft().succeed(None)
            self._trace_queue_depth()
        else:
            self._in_use -= 1

    def _trace_queue_depth(self) -> None:
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("resource"):
            tracer.counter(
                self.sim.now, "resource", "queue_depth", self.name,
                len(self._waiters),
            )

    def timed(self, duration: float) -> Generator:
        """Generator helper: acquire, hold for ``duration``, release.

        Usage from a process: ``yield from resource.timed(t)``.
        """
        tracer = self.sim.tracer
        trace = tracer is not None and tracer.wants("resource")
        requested = self.sim.now
        yield self.acquire()
        granted = self.sim.now
        if trace and granted > requested:
            tracer.complete(
                requested, granted - requested, "resource", "wait", self.name
            )
        try:
            if duration > 0:
                yield self.sim.timeout(duration)
            self.busy_time += duration
            self.holds += 1
        finally:
            self.release()
            if trace:
                tracer.complete(
                    granted, self.sim.now - granted, "resource", "hold", self.name
                )
