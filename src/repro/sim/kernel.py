"""The discrete-event simulation kernel.

:class:`Simulator` owns a priority queue of triggered events.  By default
(no tiebreaker) heap entries are ``(time, sequence_number, event)``: the
sequence number makes execution fully deterministic -- two events
triggered for the same simulated time are processed in the order they
were triggered.

The tiebreak key is *pluggable*: pass a ``tiebreaker`` callable to
reorder same-timestamp events; entries then carry an extra key,
``(time, tiebreak_key, sequence_number, event)`` (the sequence number
still breaks the remaining ties, so any tiebreaker yields a
deterministic run).  This is the hook the correctness harness's schedule
fuzzer (:mod:`repro.check.fuzz`) uses to explore adversarial
interleavings -- any application property that holds for the default
FIFO order must hold for every tiebreaker, because same-timestamp
ordering is an artifact of the kernel, not of the modelled machine.

The enqueue path is specialised per shape at construction time
(:meth:`_enqueue` is bound to the FIFO or the tiebreaker variant), so
the no-tiebreaker hot path never branches on the hook.  The run loops
likewise pop and dispatch inline rather than calling :meth:`step` per
event; :meth:`step` remains the single-step API.

The kernel is intentionally tiny -- the whole simulated-MPI/YGM stack is
expressed in terms of :class:`~repro.sim.events.Event`,
:class:`~repro.sim.process.Process`, :class:`~repro.sim.stores.Store` and
:class:`~repro.sim.resources.Resource`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Sequence

from .errors import DeadlockError
from .events import AllOf, AnyOf, Callback, Event, Timeout


#: Type of a same-timestamp ordering hook: ``tiebreaker(time, seq)``
#: returns a sort key inserted between the timestamp and the sequence
#: number.  Must be deterministic for reproducible runs.
Tiebreaker = Callable[[float, int], int]

#: The run loops record a wall-clock progress sample on the installed
#: tracer every this many events (plus one at loop entry and exit), which
#: is what :mod:`repro.trace.metrics` turns into ``events_per_sec`` /
#: ``wall_ms`` columns.  Sampling only appends to a tracer-side list, so
#: traced runs stay bit-identical to untraced ones.
PROGRESS_SAMPLE_EVERY = 1024


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    tiebreaker:
        Optional ``(time, seq) -> key`` hook ordering same-timestamp
        events by ``key`` (then by ``seq``).  ``None`` (the default)
        keeps pure FIFO order of triggering.

    Example
    -------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(1.5)
    ...     return "done"
    >>> p = sim.process(hello(sim))
    >>> sim.run()
    >>> p.value
    'done'
    >>> sim.now
    1.5
    """

    def __init__(self, tiebreaker: Optional[Tiebreaker] = None) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._tiebreaker = tiebreaker
        # Heap entry shape is fixed per simulator: 3-tuples for FIFO,
        # 4-tuples (with the tiebreak key) when a tiebreaker is given.
        # Binding the matching enqueue variant here hoists the branch out
        # of every triggering site.
        if tiebreaker is None:
            self._heap: List[tuple] = []
            self._enqueue = self._enqueue_fifo
        else:
            self._heap = []
            self._enqueue = self._enqueue_tiebreak
        #: Number of live (unfinished) processes; used for deadlock checks.
        self._live_processes: int = 0
        self._steps: int = 0
        #: Optional :class:`repro.trace.Tracer`; every layer reads its
        #: tracer from here.  ``None`` (the default) makes all trace
        #: hooks a single attribute check.
        self.tracer = None

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Total number of events processed so far (diagnostic)."""
        return self._steps

    # -- event factories -----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Sequence[Event]) -> AnyOf:
        """An event triggering when the first of ``events`` triggers."""
        return AnyOf(self, events)

    def all_of(self, events: Sequence[Event]) -> AllOf:
        """An event triggering when all of ``events`` have triggered."""
        return AllOf(self, events)

    def process(self, gen: Generator, name: str = "") -> "Process":  # noqa: F821
        """Launch *gen* as a simulated process; returns its Process event."""
        from .process import Process

        return Process(self, gen, name=name)

    def process_batch(
        self, gens: Iterable[Generator], names: Optional[Sequence[str]] = None
    ) -> List["Process"]:  # noqa: F821
        """Launch many processes whose init events share one timestamp.

        Equivalent to calling :meth:`process` in order (identical
        sequence numbers, hence identical schedules), but the startup
        events go through one batched enqueue pass -- the fast path for
        launching a whole machine's rank programs at once.
        """
        from .process import Process

        gens = list(gens)
        if names is None:
            names = [""] * len(gens)
        procs = [
            Process(self, gen, name=name, _defer_start=True)
            for gen, name in zip(gens, names)
        ]
        self._enqueue_batch([p._make_init_event() for p in procs])
        return procs

    # -- queue management ------------------------------------------------------
    def _enqueue_fifo(self, event: Event, delay: float = 0.0) -> None:
        """Place a triggered event on the queue (no-tiebreaker fast path)."""
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (self._now + delay, seq, event))

    def _enqueue_tiebreak(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue with the pluggable same-timestamp ordering key."""
        self._seq = seq = self._seq + 1
        t = self._now + delay
        heapq.heappush(self._heap, (t, self._tiebreaker(t, seq), seq, event))

    # Kept as a plain method so subclasses/docs have a stable name; the
    # constructor rebinds it to the matching specialisation per instance.
    _enqueue = _enqueue_fifo

    def _enqueue_batch(self, events: Sequence[Event], delay: float = 0.0) -> None:
        """Enqueue many triggered events for the same timestamp.

        One pass with hoisted locals; sequence numbers are assigned in
        input order, so this is bit-identical to enqueueing one by one.
        """
        t = self._now + delay
        heap = self._heap
        push = heapq.heappush
        seq = self._seq
        if self._tiebreaker is None:
            for ev in events:
                seq += 1
                push(heap, (t, seq, ev))
        else:
            tb = self._tiebreaker
            for ev in events:
                seq += 1
                push(heap, (t, tb(t, seq), seq, ev))
        self._seq = seq

    def _enqueue_abs(self, event: Event, at: float) -> None:
        """Enqueue a triggered event at the *absolute* time ``at``.

        The parallel-DES engine (:mod:`repro.pdes`) uses this to place
        cross-partition packet arrivals at their exact simulated
        timestamp: computing the time as ``delay = at - now`` and going
        through :meth:`_enqueue` would round-trip through float
        subtraction and lose bit-identity with the serial kernel, which
        computed the same instant as ``t_wire + remote_delay``.  ``at``
        may not be in the past (events before ``now`` have already been
        processed; injecting one would violate causality).
        """
        if at < self._now:
            raise ValueError(
                f"cannot enqueue at t={at!r}: simulator already at {self._now!r}"
            )
        self._seq = seq = self._seq + 1
        if self._tiebreaker is None:
            heapq.heappush(self._heap, (at, seq, event))
        else:
            heapq.heappush(self._heap, (at, self._tiebreaker(at, seq), seq, event))

    def process_at(self, gen: Generator, at: float, name: str = "") -> "Process":  # noqa: F821
        """Launch *gen* as a process whose first step runs at time ``at``.

        Exactly one kernel event is consumed at ``at`` (the process init
        event), mirroring how a timeout completion resumes a suspended
        generator -- this is what keeps an injected cross-partition
        arrival's event footprint identical to the serial
        ``timeout(remote_delay)`` resume it replaces.
        """
        from .process import Process

        proc = Process(self, gen, name=name, _defer_start=True)
        self._enqueue_abs(proc._make_init_event(), at)
        return proc

    def run_window(self, limit: float) -> Optional[float]:
        """Process every queued event with timestamp strictly below ``limit``.

        The conservative-synchronisation window of :mod:`repro.pdes`:
        events at or beyond ``limit`` may still be affected by
        not-yet-received cross-partition traffic, so the loop leaves them
        queued and returns the earliest pending timestamp (``None`` if
        the queue drained).  Unlike :meth:`run`, the clock is never
        advanced past the last *processed* event and an empty queue is
        not a deadlock -- the partition may simply be waiting for
        injections, which only the driver can rule out globally.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] < limit:
            item = pop(heap)
            self._now = item[0]
            self._steps += 1
            tracer = self.tracer
            if tracer is not None:
                self._trace_step(tracer, item[-1])
            item[-1]._process()
        return heap[0][0] if heap else None

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` after ``delay`` seconds; returns the event.

        Uses the lightweight :class:`~repro.sim.events.Callback` event --
        no Timeout + closure pair per call.
        """
        return Callback(self, delay, callback)

    def schedule_batch(
        self, delay: float, callbacks: Iterable[Callable[[], None]]
    ) -> List[Event]:
        """Schedule many callbacks for the same future time in one pass."""
        events = [Callback(self, delay, fn, _defer=True) for fn in callbacks]
        self._enqueue_batch(events, delay=delay)
        return events

    # -- execution -------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        item = heapq.heappop(self._heap)
        self._now = item[0]
        self._steps += 1
        tracer = self.tracer
        if tracer is not None:
            self._trace_step(tracer, item[-1])
        item[-1]._process()

    def _trace_step(self, tracer, event: Event) -> None:
        """Per-event trace hook + periodic wall-clock progress sample."""
        if tracer.wants("kernel"):
            tracer.instant(
                self._now, "kernel", event.name or type(event).__name__, "kernel"
            )
        if not self._steps % PROGRESS_SAMPLE_EVERY:
            tracer.progress(self._now, self._steps)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time passes ``until``.

        Raises
        ------
        DeadlockError
            If the queue drains while processes are still live.  (Live
            means started and not finished; a blocked process with no
            pending event can never make progress again.)
        """
        heap = self._heap
        pop = heapq.heappop
        tracer = self.tracer
        if tracer is not None:
            tracer.progress(self._now, self._steps)
        if until is None:
            while heap:
                item = pop(heap)
                self._now = item[0]
                self._steps += 1
                tracer = self.tracer
                if tracer is not None:
                    self._trace_step(tracer, item[-1])
                item[-1]._process()
        else:
            while heap:
                if heap[0][0] > until:
                    self._now = until
                    self._finish_trace()
                    return
                item = pop(heap)
                self._now = item[0]
                self._steps += 1
                tracer = self.tracer
                if tracer is not None:
                    self._trace_step(tracer, item[-1])
                item[-1]._process()
        self._finish_trace()
        if self._live_processes > 0:
            raise DeadlockError(self._live_processes, self._now)

    def _finish_trace(self) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.progress(self._now, self._steps)

    def run_until_complete(self, *processes: "Process") -> None:  # noqa: F821
        """Run until every given process has finished.

        Unlike :meth:`run`, other still-live processes (e.g. daemon-like
        service loops) do not count as a deadlock once the awaited
        processes are done.  Completion is tracked by a countdown fed
        from per-process callbacks -- O(1) per step, independent of the
        number of awaited processes.
        """
        remaining = len(processes)

        def finished(_ev: Event) -> None:
            nonlocal remaining
            remaining -= 1

        for p in processes:
            p.attach(finished)  # runs inline if already processed

        heap = self._heap
        pop = heapq.heappop
        tracer = self.tracer
        if tracer is not None:
            tracer.progress(self._now, self._steps)
        while remaining > 0:
            if not heap:
                raise DeadlockError(self._live_processes, self._now)
            item = pop(heap)
            self._now = item[0]
            self._steps += 1
            tracer = self.tracer
            if tracer is not None:
                self._trace_step(tracer, item[-1])
            item[-1]._process()
        self._finish_trace()
