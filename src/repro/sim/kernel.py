"""The discrete-event simulation kernel.

:class:`Simulator` owns a priority queue of triggered events keyed by
``(time, tiebreak_key, sequence_number)``.  By default the tiebreak key
is a constant, so the sequence number makes execution fully
deterministic: two events triggered for the same simulated time are
processed in the order they were triggered.

The tiebreak key is *pluggable*: pass a ``tiebreaker`` callable to
reorder same-timestamp events (the sequence number still breaks the
remaining ties, so any tiebreaker yields a deterministic run).  This is
the hook the correctness harness's schedule fuzzer
(:mod:`repro.check.fuzz`) uses to explore adversarial interleavings --
any application property that holds for the default FIFO order must hold
for every tiebreaker, because same-timestamp ordering is an artifact of
the kernel, not of the modelled machine.

The kernel is intentionally tiny -- the whole simulated-MPI/YGM stack is
expressed in terms of :class:`~repro.sim.events.Event`,
:class:`~repro.sim.process.Process`, :class:`~repro.sim.stores.Store` and
:class:`~repro.sim.resources.Resource`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from .errors import DeadlockError
from .events import AllOf, AnyOf, Event, Timeout


#: Type of a same-timestamp ordering hook: ``tiebreaker(time, seq)``
#: returns a sort key inserted between the timestamp and the sequence
#: number.  Must be deterministic for reproducible runs.
Tiebreaker = Callable[[float, int], int]


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    tiebreaker:
        Optional ``(time, seq) -> key`` hook ordering same-timestamp
        events by ``key`` (then by ``seq``).  ``None`` (the default)
        keeps pure FIFO order of triggering.

    Example
    -------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(1.5)
    ...     return "done"
    >>> p = sim.process(hello(sim))
    >>> sim.run()
    >>> p.value
    'done'
    >>> sim.now
    1.5
    """

    def __init__(self, tiebreaker: Optional[Tiebreaker] = None) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._tiebreaker = tiebreaker
        self._heap: List[Tuple[float, int, int, Event]] = []
        #: Number of live (unfinished) processes; used for deadlock checks.
        self._live_processes: int = 0
        #: Processes currently blocked (not finished, not on the queue).
        self._steps: int = 0
        #: Optional :class:`repro.trace.Tracer`; every layer reads its
        #: tracer from here.  ``None`` (the default) makes all trace
        #: hooks a single attribute check.
        self.tracer = None

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Total number of events processed so far (diagnostic)."""
        return self._steps

    # -- event factories -----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Sequence[Event]) -> AnyOf:
        """An event triggering when the first of ``events`` triggers."""
        return AnyOf(self, events)

    def all_of(self, events: Sequence[Event]) -> AllOf:
        """An event triggering when all of ``events`` have triggered."""
        return AllOf(self, events)

    def process(self, gen: Generator, name: str = "") -> "Process":  # noqa: F821
        """Launch *gen* as a simulated process; returns its Process event."""
        from .process import Process

        return Process(self, gen, name=name)

    # -- queue management ------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        """Place a triggered event on the processing queue."""
        self._seq += 1
        t = self._now + delay
        key = 0 if self._tiebreaker is None else self._tiebreaker(t, self._seq)
        heapq.heappush(self._heap, (t, key, self._seq, event))

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` after ``delay`` seconds; returns the event."""
        ev = self.timeout(delay)
        ev.attach(lambda _ev: callback())
        return ev

    # -- execution -------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        t, _key, _seq, event = heapq.heappop(self._heap)
        self._now = t
        self._steps += 1
        tracer = self.tracer
        if tracer is not None and tracer.wants("kernel"):
            tracer.instant(
                t, "kernel", event.name or type(event).__name__, "kernel"
            )
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time passes ``until``.

        Raises
        ------
        DeadlockError
            If the queue drains while processes are still live.  (Live
            means started and not finished; a blocked process with no
            pending event can never make progress again.)
        """
        heap = self._heap
        while heap:
            if until is not None and heap[0][0] > until:
                self._now = until
                return
            self.step()
        if self._live_processes > 0:
            raise DeadlockError(self._live_processes, self._now)

    def run_until_complete(self, *processes: "Process") -> None:  # noqa: F821
        """Run until every given process has finished.

        Unlike :meth:`run`, other still-live processes (e.g. daemon-like
        service loops) do not count as a deadlock once the awaited
        processes are done.
        """
        pending = [p for p in processes if not p.triggered]
        while pending:
            if not self._heap:
                raise DeadlockError(self._live_processes, self._now)
            self.step()
            pending = [p for p in pending if not p.triggered]
