"""Exception types raised by the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when no events remain but live
    processes are still blocked.

    A deadlock in the simulated world almost always indicates a protocol
    bug (e.g. a receive posted for a message that is never sent), so the
    kernel surfaces it loudly instead of returning silently.
    """

    def __init__(self, blocked: int, now: float):
        self.blocked = blocked
        self.now = now
        super().__init__(
            f"simulation deadlocked at t={now!r}: event queue empty but "
            f"{blocked} process(es) still blocked"
        )


class EventStateError(SimulationError):
    """Raised when an event is succeeded/failed more than once, or a
    cancellation is attempted on an already-triggered event."""


class ProcessError(SimulationError):
    """Wraps an exception that escaped a simulated process.

    The original exception is available as ``__cause__``.
    """
