"""FIFO message stores with cancellable gets.

:class:`Store` is the rendezvous point between simulated message delivery
and blocked receivers.  Puts never block (stores are unbounded -- flow
control in the simulated network is modelled with
:class:`~repro.sim.resources.Resource` holds, not store capacity).  Gets
block until an item is available and are *cancellable*, which is what lets
a process wait on "either an application message or a termination-protocol
message" via :class:`~repro.sim.events.AnyOf` without losing items.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .errors import EventStateError
from .events import _PENDING, Event


class StoreGet(Event):
    """A pending (cancellable) get on a :class:`Store`."""

    __slots__ = ("store", "_cancelled")

    def __init__(self, store: "Store"):
        # Gets are allocated on every receive poll; write the slots
        # directly and compute the debug name lazily.
        self.sim = store.sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._processed = False
        self.store = store
        self._cancelled = False

    @property
    def name(self) -> str:  # shadows the base slot; computed on demand
        return f"get:{self.store.name}"

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Withdraw this get if it has not yet been matched to an item.

        Cancelling an already-triggered get raises
        :class:`~repro.sim.errors.EventStateError` -- the caller must
        consume the item instead (it has already been removed from the
        store and would otherwise be lost).
        """
        if self.triggered:
            raise EventStateError(
                "cannot cancel a triggered StoreGet; consume its value instead"
            )
        self._cancelled = True
        # Lazy removal: Store skips cancelled getters when matching.


class Store:
    """An unbounded FIFO queue of items with blocking, cancellable gets."""

    def __init__(self, sim: "Simulator", name: str = ""):  # noqa: F821
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Deque[Any]:
        """The queued items (read-only use only)."""
        return self._items

    def peek(self) -> Any:
        """Return (without removing) the head item; raises IndexError if empty."""
        return self._items[0]

    def put(self, item: Any) -> None:
        """Enqueue ``item``; wakes the oldest live getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.cancelled:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> StoreGet:
        """Return an event that triggers with the next available item."""
        ev = StoreGet(self)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: the next item, or ``None`` if empty."""
        if self._items:
            return self._items.popleft()
        return None

    def drain(self) -> list:
        """Remove and return all currently queued items."""
        items = list(self._items)
        self._items.clear()
        return items
