"""A minimal deterministic discrete-event simulation (DES) kernel.

This package is the foundation of the reproduction: simulated MPI ranks
are generator coroutines (:class:`Process`) scheduled by a
:class:`Simulator`, and all timing in the reproduced figures is the
simulated clock of this kernel.

The design follows the classic process-interaction style (cf. SimPy, which
is not available offline): processes ``yield`` events; stores provide
cancellable blocking gets; resources model contended hardware.
"""

from .errors import DeadlockError, EventStateError, ProcessError, SimulationError
from .events import AllOf, AnyOf, Callback, Event, Timeout
from .kernel import Simulator
from .process import Process
from .resources import Resource
from .stores import Store, StoreGet

__all__ = [
    "AllOf",
    "AnyOf",
    "Callback",
    "DeadlockError",
    "Event",
    "EventStateError",
    "Process",
    "ProcessError",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "StoreGet",
    "Timeout",
]
