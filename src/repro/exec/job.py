"""The :class:`Job` abstraction: a picklable, hashable unit of sweep work.

A job names a module-level *cell function* by dotted path
(``"repro.bench.fig6:weak_cell"``) plus JSON-serializable keyword
arguments.  That representation serves three masters at once:

* **picklability** -- only the path string and plain data cross the
  process boundary, so any cell function works under any
  ``multiprocessing`` start method;
* **content addressing** -- the canonical JSON of ``(fn, kwargs)``
  plus the :func:`~repro.exec.fingerprint.code_fingerprint` hashes to a
  stable cache key (:meth:`Job.cache_key`), and
* **determinism** -- a cell rebuilds its workload from scalar kwargs
  (seeds, sizes, scheme names), never from ambient driver state, so the
  same job always computes the same result.

Cacheable cell results must be JSON-serializable; results are
round-tripped through JSON even on a cache miss so that fresh and
cached runs produce *identical* Python values (tuples become lists in
both cases, never in just one).
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from .fingerprint import code_fingerprint

#: Bump when the job/cache entry layout changes shape: old entries
#: stop matching and are simply never read again.
CACHE_SCHEMA = 1


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _check_jsonable(kwargs: Mapping[str, Any], label: str) -> None:
    try:
        canonical_json(dict(kwargs))
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"job {label or '<unnamed>'}: kwargs must be JSON-serializable "
            f"(got {exc})"
        ) from None


def resolve(fn_path: str) -> Callable[..., Any]:
    """Import ``"pkg.mod:func"`` and return the callable."""
    mod_name, sep, attr = fn_path.partition(":")
    if not mod_name or not sep or not attr:
        raise ValueError(
            f"job fn {fn_path!r} must look like 'package.module:function'"
        )
    fn = getattr(importlib.import_module(mod_name), attr, None)
    if not callable(fn):
        raise ValueError(f"job fn {fn_path!r} does not resolve to a callable")
    return fn


@dataclass(frozen=True)
class Job:
    """One unit of work for :class:`repro.exec.pool.Pool`.

    ``fn`` is a ``"module:function"`` dotted path; ``kwargs`` must be
    JSON-serializable.  ``label`` is for progress/trace display only
    and does not participate in the cache key.  ``cacheable=False``
    opts out of the result cache (wall-clock measurements must).
    ``timeout``/``retries`` override the pool defaults for this job.
    """

    fn: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""
    cacheable: bool = True
    timeout: Optional[float] = None
    retries: Optional[int] = None

    def __post_init__(self) -> None:
        _check_jsonable(self.kwargs, self.label or self.fn)

    def cache_key(self) -> str:
        """Content address: hash of (schema, code fingerprint, fn, kwargs)."""
        payload = canonical_json(
            {
                "schema": CACHE_SCHEMA,
                "code": code_fingerprint(),
                "fn": self.fn,
                "kwargs": dict(self.kwargs),
            }
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def run_inline(self) -> Any:
        """Execute the cell in this process (the ``--jobs 1`` path)."""
        return resolve(self.fn)(**self.kwargs)


def call_job(fn: str, kwargs: Dict[str, Any]) -> Any:
    """Worker-side entry point: resolve and call one cell function.

    Module-level (hence picklable) on purpose; this is the only
    function the process pool ever submits.
    """
    return resolve(fn)(**kwargs)


@dataclass
class JobRecord:
    """Observability record for one job execution (host wall clock).

    ``queued``/``started``/``finished`` are ``time.perf_counter()``
    readings relative to the pool run's start; ``wall_ms`` is the
    execution time observed by the pool (0 for cache hits).
    """

    label: str
    queued: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    wall_ms: float = 0.0
    cache_hit: bool = False
    retries: int = 0
    error: str = ""


class JobError(RuntimeError):
    """One or more jobs failed; carries every failed cell, not just one."""

    def __init__(self, failures):
        self.failures = list(failures)  # (label, message) pairs
        lines = [f"{len(self.failures)} job(s) failed:"]
        lines += [f"  {label}: {msg}" for label, msg in self.failures]
        super().__init__("\n".join(lines))
