"""Multi-core job pool with caching, timeouts and crash containment.

``Pool.run(jobs)`` executes a list of :class:`~repro.exec.job.Job`
cells and returns their results **in submission order**, regardless of
completion order -- aggregation downstream is therefore identical for
``--jobs 1`` and ``--jobs N`` and the rendered tables are byte-for-byte
the same.  Per-cell determinism is the cells' own contract (they
rebuild workloads from scalar kwargs); the pool adds:

* a content-addressed result cache (:class:`~repro.exec.cache.ResultCache`)
  consulted before submission and populated after completion, with
  results round-tripped through JSON so cache hits and fresh runs
  yield identical values;
* per-job wall-clock **timeouts** (measured from the moment a worker
  picks the job up, polled at ``TICK`` granularity) -- on expiry the
  worker processes are killed, the job is retried or failed, and the
  remaining jobs are resubmitted to a fresh pool;
* bounded **retries** for jobs whose worker died (crash or timeout);
  a job that raises an ordinary exception is *not* retried -- cells
  are deterministic, so the error would just repeat;
* **Ctrl-C containment**: ``KeyboardInterrupt`` kills outstanding
  workers before propagating, so no orphan processes survive and (via
  the cache's write-to-temp + atomic rename) no half-written cache
  entries either;
* per-job :class:`~repro.exec.job.JobRecord` observability
  (queued/started/finished/wall/cache-hit), optionally mirrored to a
  :class:`repro.trace.Tracer` under the ``"exec"`` category.

``jobs=1`` (the default when only one CPU is visible) runs every cell
inline in this process -- no subprocesses, same cache, same ordering,
same results; timeouts are not enforced on the inline path.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .job import Job, JobError, JobRecord, call_job

#: Scheduling/timeout poll granularity (seconds).
TICK = 0.05

ProgressFn = Callable[[int, int, int, int], None]


def default_jobs() -> int:
    """Default worker count: every visible CPU."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def stderr_progress(done: int, total: int, hits: int, running: int) -> None:
    """Single-line live progress on stderr (stdout stays table-clean)."""
    msg = f"[pool] {done}/{total} done, {running} running, {hits} cache hits"
    if sys.stderr.isatty():
        end = "\n" if done == total else "\r"
        print(f"\x1b[2K{msg}", end=end, file=sys.stderr, flush=True)
    elif done == total:
        print(msg, file=sys.stderr, flush=True)


class Pool:
    """Run job cells serially or across worker processes; see module doc."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        tracer=None,
        default_timeout: Optional[float] = None,
        default_retries: int = 1,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else default_jobs())
        self.cache = cache
        self.tracer = tracer
        self.default_timeout = default_timeout
        self.default_retries = default_retries
        self.progress = progress
        #: JobRecords of the most recent :meth:`run`, in submission order.
        self.records: List[JobRecord] = []

    # -- public API --------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> List[Any]:
        """Execute ``jobs``; results in submission order.

        Raises :class:`~repro.exec.job.JobError` listing *every* failed
        cell after all jobs have settled (successes keep their results).
        """
        jobs = list(jobs)
        t0 = time.perf_counter()
        self.records = [JobRecord(label=j.label or j.fn) for j in jobs]
        results: List[Any] = [None] * len(jobs)
        failures: List[Tuple[str, str]] = []
        self._done = 0
        self._total = len(jobs)

        pending: List[int] = []
        for i, job in enumerate(jobs):
            hit, value = (False, None)
            if self.cache is not None:
                hit, value = self.cache.get(job)
            if hit:
                results[i] = value
                rec = self.records[i]
                rec.cache_hit = True
                # A hit never queues or runs: anchor all three stamps at
                # the lookup time so downstream consumers (the trace
                # mirror's ``finished - started`` duration, the progress
                # callback's running count) see a zero-length execution
                # instead of one stretching back to the run start.
                rec.queued = rec.started = rec.finished = (
                    time.perf_counter() - t0
                )
                self._finish_one(rec)
            else:
                pending.append(i)

        if pending:
            if self.jobs == 1:
                self._run_serial(jobs, pending, results, failures, t0)
            else:
                self._run_parallel(jobs, pending, results, failures, t0)

        if failures:
            raise JobError(failures)
        return results

    # -- shared helpers ----------------------------------------------------
    def _finish_one(self, rec: JobRecord) -> None:
        self._done += 1
        if self.progress is not None:
            hits = sum(1 for r in self.records if r.cache_hit)
            running = sum(
                1 for r in self.records if r.started and not r.finished
            )
            self.progress(self._done, self._total, hits, running)
        tr = self.tracer
        if tr is not None and tr.wants("exec"):
            tr.complete(
                rec.started,
                max(0.0, rec.finished - rec.started),
                "exec",
                rec.label,
                "pool",
                queued=rec.queued,
                wall_ms=rec.wall_ms,
                cache_hit=rec.cache_hit,
                retries=rec.retries,
                error=rec.error or None,
            )

    def _complete(
        self,
        idx: int,
        job: Job,
        value: Any,
        results: List[Any],
        wall_ms: float,
        t0: float,
    ) -> None:
        value = self._normalize(job, value)
        if self.cache is not None:
            self.cache.put(job, value, wall_ms=wall_ms)
        results[idx] = value
        rec = self.records[idx]
        rec.finished = time.perf_counter() - t0
        rec.wall_ms = wall_ms
        self._finish_one(rec)

    def _fail(
        self,
        idx: int,
        job: Job,
        message: str,
        failures: List[Tuple[str, str]],
        t0: float,
    ) -> None:
        rec = self.records[idx]
        rec.error = message
        rec.finished = time.perf_counter() - t0
        failures.append((job.label or job.fn, message))
        self._finish_one(rec)

    @staticmethod
    def _normalize(job: Job, value: Any) -> Any:
        """JSON round-trip cacheable results so a fresh computation and a
        later cache hit hand identical Python values to the aggregator."""
        if not job.cacheable:
            return value
        try:
            return json.loads(json.dumps(value))
        except (TypeError, ValueError):
            return value

    def _retries_for(self, job: Job) -> int:
        return self.default_retries if job.retries is None else job.retries

    def _timeout_for(self, job: Job) -> Optional[float]:
        return self.default_timeout if job.timeout is None else job.timeout

    # -- serial path -------------------------------------------------------
    def _run_serial(
        self,
        jobs: Sequence[Job],
        pending: List[int],
        results: List[Any],
        failures: List[Tuple[str, str]],
        t0: float,
    ) -> None:
        for idx in pending:
            job = jobs[idx]
            rec = self.records[idx]
            rec.queued = rec.started = time.perf_counter() - t0
            start = time.perf_counter()
            try:
                value = job.run_inline()
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                self._fail(
                    idx, job, f"{type(exc).__name__}: {exc}", failures, t0
                )
                continue
            self._complete(
                idx, job, value, results,
                (time.perf_counter() - start) * 1e3, t0,
            )

    # -- parallel path -----------------------------------------------------
    def _run_parallel(
        self,
        jobs: Sequence[Job],
        pending: List[int],
        results: List[Any],
        failures: List[Tuple[str, str]],
        t0: float,
    ) -> None:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
        from concurrent.futures.process import BrokenProcessPool

        retries_left: Dict[int, int] = {
            i: self._retries_for(jobs[i]) for i in pending
        }
        todo = list(pending)
        while todo:
            executor = ProcessPoolExecutor(max_workers=self.jobs)
            fut_idx: Dict[Any, int] = {}
            started_at: Dict[int, float] = {}
            rebuild: List[int] = []
            try:
                now = time.perf_counter() - t0
                for idx in todo:
                    job = jobs[idx]
                    self.records[idx].queued = now
                    fut = executor.submit(call_job, job.fn, dict(job.kwargs))
                    fut_idx[fut] = idx
                todo = []
                while fut_idx:
                    done, _ = wait(
                        set(fut_idx), timeout=TICK,
                        return_when=FIRST_COMPLETED,
                    )
                    now = time.perf_counter()
                    # Record start times as workers pick jobs up.
                    for fut, idx in fut_idx.items():
                        if idx not in started_at and (
                            fut.running() or fut in done
                        ):
                            started_at[idx] = now
                            self.records[idx].started = now - t0
                    broken = False
                    for fut in done:
                        idx = fut_idx.pop(fut)
                        job = jobs[idx]
                        exc = fut.exception()
                        if exc is None:
                            wall = (now - started_at.get(idx, now)) * 1e3
                            self._complete(
                                idx, job, fut.result(), results, wall, t0
                            )
                        elif isinstance(exc, BrokenProcessPool):
                            broken = True
                            rebuild.append(idx)
                        else:
                            # Deterministic cell error: no point retrying.
                            self._fail(
                                idx, job,
                                f"{type(exc).__name__}: {exc}", failures, t0,
                            )
                    if broken:
                        rebuild.extend(fut_idx.values())
                        fut_idx.clear()
                        raise BrokenProcessPool("worker process died")
                    # Enforce per-job wall-clock timeouts.
                    expired = [
                        (fut, idx)
                        for fut, idx in fut_idx.items()
                        if idx in started_at
                        and self._timeout_for(jobs[idx]) is not None
                        and now - started_at[idx] > self._timeout_for(jobs[idx])
                    ]
                    if expired:
                        for fut, idx in expired:
                            del fut_idx[fut]
                            rebuild.append(idx)
                        rebuild.extend(fut_idx.values())
                        fut_idx.clear()
                        raise _JobTimeout(
                            [idx for _, idx in expired]
                        )
            except (BrokenProcessPool, _JobTimeout) as exc:
                self._kill(executor)
                timed_out = set(exc.indices) if isinstance(exc, _JobTimeout) else set()
                # A BrokenProcessPool raised by submit()/the executor
                # itself (rather than our re-raise) leaves in-flight
                # futures out of ``rebuild``; fold them in (deduplicated,
                # order-preserving) so no job is silently dropped.
                rebuild.extend(fut_idx.values())
                fut_idx.clear()
                for idx in dict.fromkeys(rebuild):
                    job = jobs[idx]
                    # Charge the retry budget of jobs that were actually
                    # running (their worker died / they timed out); jobs
                    # still queued resubmit for free.
                    charged = idx in timed_out or (
                        not timed_out and idx in started_at
                    )
                    if charged:
                        retries_left[idx] -= 1
                        self.records[idx].retries += 1
                    if retries_left[idx] < 0:
                        kind = (
                            "timed out after "
                            f"{self._timeout_for(job):g}s"
                            if idx in timed_out
                            else "worker process crashed"
                        )
                        self._fail(
                            idx, job, f"{kind} (retries exhausted)",
                            failures, t0,
                        )
                    else:
                        todo.append(idx)
                        started_at.pop(idx, None)
                        # The record must describe the attempt that will
                        # actually produce the result: clear the dead
                        # attempt's start stamp (re-set when a worker
                        # picks the retry up) so the job is not reported
                        # as running while it waits for resubmission.
                        self.records[idx].started = 0.0
                todo.sort()
            except BaseException:
                # KeyboardInterrupt (or anything unexpected): kill all
                # outstanding workers so nothing is orphaned, then
                # propagate to the caller.
                self._kill(executor)
                raise
            else:
                executor.shutdown(wait=True)

    @staticmethod
    def _kill(executor) -> None:
        """Terminate worker processes and abandon the executor."""
        processes = list(getattr(executor, "_processes", {}).values())
        for proc in processes:
            try:
                proc.terminate()
            except Exception:
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            try:
                proc.join(timeout=1.0)
            except Exception:
                pass


class _JobTimeout(Exception):
    """Internal control flow: one or more running jobs exceeded their
    wall-clock budget (``indices`` names them)."""

    def __init__(self, indices: List[int]) -> None:
        super().__init__(f"jobs timed out: {indices}")
        self.indices = indices


def make_pool(
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    **kwargs,
) -> Pool:
    """Convenience factory used by the CLI and the sweep drivers."""
    if cache is None and use_cache:
        cache = ResultCache(cache_dir)
    return Pool(jobs=jobs, cache=cache, **kwargs)


def run_jobs(jobs: Sequence[Job], pool: Optional[Pool] = None) -> List[Any]:
    """Run jobs through ``pool``, or inline+uncached when ``pool`` is None.

    The drivers' default: calling ``fig6.run_weak(sweep)`` from a test
    or a notebook with no pool behaves exactly like the pre-pool serial
    code path (no worker processes, no cache directory created).
    """
    if pool is None:
        pool = Pool(jobs=1, cache=None)
    return pool.run(jobs)
