"""``repro.exec``: parallel sweep execution for the repo's drivers.

Every top-level workload here -- figure sweeps, the routing-differential
oracle, the schedule fuzzer, perf repeats -- is a bag of independent
deterministic simulations.  This package turns those bags into
:class:`Job` cells and runs them on a :class:`Pool` of worker processes
with an on-disk content-addressed :class:`ResultCache`, so sweeps scale
with available cores and unchanged cells re-run in milliseconds.  See
EXPERIMENTS.md ("Parallel sweeps and the result cache").
"""

from .cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, ResultCache, default_cache_dir
from .fingerprint import code_fingerprint
from .job import CACHE_SCHEMA, Job, JobError, JobRecord, canonical_json, resolve
from .pool import Pool, default_jobs, make_pool, run_jobs, stderr_progress

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "Job",
    "JobError",
    "JobRecord",
    "Pool",
    "ResultCache",
    "canonical_json",
    "code_fingerprint",
    "default_cache_dir",
    "default_jobs",
    "make_pool",
    "resolve",
    "run_jobs",
    "stderr_progress",
]
