"""Code fingerprint: one hash over every source file of ``repro``.

Cache keys fold this fingerprint in (:mod:`repro.exec.job`), so any
edit to any file under ``src/repro`` changes every key and stale
entries self-invalidate -- there is no manual cache-busting step after
touching the simulator.

The fingerprint is the SHA-256 of the sorted ``(relative path, file
digest)`` pairs of all ``*.py`` files under the package root.  It is
computed lazily once per process and memoised; workers inherit it via
the job spec rather than recomputing.
"""

from __future__ import annotations

import hashlib
import os
from typing import List, Optional, Tuple

#: Memoised fingerprint of the installed ``repro`` tree (per process).
_CACHED: Optional[str] = None


def _package_root() -> str:
    """Directory of the ``repro`` package itself (``src/repro``)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _iter_source_files(root: str) -> List[Tuple[str, str]]:
    out: List[Tuple[str, str]] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                out.append((os.path.relpath(path, root), path))
    return out


def code_fingerprint(refresh: bool = False) -> str:
    """Hex digest identifying the exact ``repro`` source tree.

    ``refresh=True`` drops the per-process memo (tests use it after
    monkeypatching source files; normal runs never need it).
    """
    global _CACHED
    if _CACHED is not None and not refresh:
        return _CACHED
    root = _package_root()
    h = hashlib.sha256()
    for rel, path in _iter_source_files(root):
        with open(path, "rb") as f:
            digest = hashlib.sha256(f.read()).hexdigest()
        h.update(rel.encode())
        h.update(b"\0")
        h.update(digest.encode())
        h.update(b"\n")
    _CACHED = h.hexdigest()
    return _CACHED
