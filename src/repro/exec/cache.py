"""On-disk content-addressed result cache for sweep cells.

Layout: ``<dir>/<key[:2]>/<key>.json`` where ``key`` is
:meth:`repro.exec.job.Job.cache_key` -- a hash over the cell function,
its kwargs, the cache schema version and the
:func:`~repro.exec.fingerprint.code_fingerprint` of the whole ``repro``
source tree.  Editing any source file therefore changes every key and
old entries silently stop matching; ``clear()`` (or deleting the
directory) reclaims the space.

Writes go to a temp file in the same directory followed by
``os.replace``, so a Ctrl-C or worker crash can never leave a
half-written entry behind; a concurrent writer of the same key just
wins the rename race with an identical payload.  Reads that hit a
corrupt or mismatched entry are treated as misses.

The default location is ``.repro-cache/`` under the current working
directory, overridable with ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Optional, Tuple

from .job import CACHE_SCHEMA, Job

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_MISS = object()


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


class ResultCache:
    """Content-addressed store of JSON cell results."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path or default_cache_dir()
        self.hits = 0
        self.misses = 0

    # -- key layout --------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        return os.path.join(self.path, key[:2], key + ".json")

    # -- read --------------------------------------------------------------
    def get(self, job: Job) -> Tuple[bool, Any]:
        """``(hit, result)``; uncacheable jobs always miss."""
        if not job.cacheable:
            return False, None
        key = job.cache_key()
        entry = self._read_entry(self._entry_path(key))
        if entry is _MISS:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, entry["result"]

    def _read_entry(self, path: str) -> Any:
        try:
            with open(path) as f:
                entry = json.load(f)
        except (OSError, ValueError):
            return _MISS
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA:
            return _MISS
        if "result" not in entry:
            return _MISS
        return entry

    # -- write -------------------------------------------------------------
    def put(self, job: Job, result: Any, wall_ms: float = 0.0) -> bool:
        """Store a result; returns False (and stores nothing) when the
        job is uncacheable or the result is not JSON-serializable."""
        if not job.cacheable:
            return False
        try:
            body = json.dumps(
                {
                    "schema": CACHE_SCHEMA,
                    "fn": job.fn,
                    "kwargs": dict(job.kwargs),
                    "created_unix": time.time(),
                    "wall_ms": wall_ms,
                    "result": result,
                },
                sort_keys=True,
            )
        except (TypeError, ValueError):
            return False
        path = self._entry_path(job.cache_key())
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # Atomic publish: temp file in the target dir, then rename.
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(body)
                f.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True

    # -- maintenance -------------------------------------------------------
    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not os.path.isdir(self.path):
            return removed
        for dirpath, _dirnames, filenames in os.walk(self.path, topdown=False):
            for name in filenames:
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
            if dirpath != self.path:
                try:
                    os.rmdir(dirpath)
                except OSError:
                    pass
        return removed

    def size(self) -> int:
        """Number of entries currently stored."""
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.path):
            count += sum(1 for n in filenames if n.endswith(".json"))
        return count
