"""Distributed sparse matrix-dense vector product with delegates
(paper Section V-C, Algorithm 2).

The matrix is stored in CSC with a 1D cyclic partitioning of columns
across ranks; ``x`` and ``y`` are partitioned the same way.  For a
nonzero ``a_ij``:

* neither column delegated: stored at ``p(j)``; ``p(j)`` computes
  ``a_ij * x_j`` and **sends** the product to ``p(i)`` -- one multiply,
  one add, one message per edge;
* column ``j`` delegated: stored at ``p(i)``, which holds a replica of
  ``x_j`` -- multiply + add, **no message**;
* row ``i`` delegated (only): stored at ``p(j)``, which accumulates into
  its local replica of ``y_i`` -- **no message**;
* both delegated: stays wherever it was generated; handled through the
  replicas.

After quiescence, the replicated ``y`` entries are combined with an
ALLREDUCE, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

import numpy as np

from ..core.context import YgmContext
from ..core.routing.combiner import Combiner
from ..graph.delegates import DelegateSet
from ..graph.partition import CyclicPartition
from ..serde import RecordSpec

#: Algorithm 2's message: accumulate ``val`` into ``y[row]``.
SPMV_SPEC = RecordSpec("spmv", [("row", "u8"), ("val", "f8")])

#: Partial-sum combining: products bound for one row add in-network.
#: ``exact=False``: float addition is associative only up to rounding,
#: and combining replaces the receiver's canonical post-quiescence
#: reduction order with window-dependent partial sums -- combined SpMV
#: is therefore verified to tolerance (and excluded from the oracle's
#: cross-scheme bit-identity digests), never bit-exactly.
SPMV_COMBINER = Combiner(
    "spmv_partial_sum",
    key_fields=("row",),
    reduce_fields={"val": "sum"},
    exact=False,
)


@dataclass
class SpmvProblem:
    """One rank's share of a distributed SpMV.

    ``rows``/``cols``/``vals`` are the COO triples *stored at this rank*
    after delegate colocation:

    * triples with a non-delegated column owned by this rank,
    * triples with a delegated column whose row is owned by this rank,
    * (both-delegated triples may be assigned to any one rank.)

    ``x_local`` is the owned slice of x (by local id); ``x_delegate`` the
    replicated delegated entries (by delegate slot).
    """

    n: int
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    x_local: np.ndarray
    x_delegate: np.ndarray
    delegates: DelegateSet


def partition_spmv_problem(
    rank: int,
    nranks: int,
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    x: np.ndarray,
    delegates: Optional[DelegateSet] = None,
) -> SpmvProblem:
    """Slice the global problem for ``rank`` (bench/test setup helper).

    Assignment rules follow Section V-C; both-delegated triples go to the
    rank owning the row (an arbitrary but deterministic choice).
    """
    part = CyclicPartition(n, nranks)
    if delegates is None:
        delegates = DelegateSet(np.empty(0, dtype=np.int64))
    col_delegated = delegates.is_delegate_vec(cols)
    owner = np.where(
        col_delegated, part.owner_vec(rows), part.owner_vec(cols)
    )
    mine = owner == rank
    x_local = x[part.local_vertices(rank)]
    x_delegate = (
        x[delegates.vertices] if delegates.count else np.empty(0, dtype=x.dtype)
    )
    return SpmvProblem(
        n=n,
        rows=rows[mine],
        cols=cols[mine],
        vals=vals[mine],
        x_local=x_local.astype(np.float64),
        x_delegate=x_delegate.astype(np.float64),
        delegates=delegates,
    )


@dataclass
class SpmvRankResult:
    """Per-rank output: the owned slice of y plus message diagnostics."""

    y_local: np.ndarray
    messages_sent: int
    local_accumulations: int


def make_spmv(
    problems: List[SpmvProblem],
    batch_size: int = 8192,
    capacity: Optional[int] = None,
    combining: bool = False,
) -> Callable[[YgmContext], Generator]:
    """Build the SpMV rank program; ``problems[rank]`` is that rank's share.

    ``combining=True`` sums equal-row partial products in-network
    (:data:`SPMV_COMBINER`).  The receiver's canonical-order reduction
    still runs over whatever records arrive, so results are deterministic
    for a fixed configuration, but they differ from the uncombined run
    (and across schemes) by float-rounding only -- compare with a
    tolerance.
    """

    def rank_main(ctx: YgmContext) -> Generator:
        rank, nranks = ctx.rank, ctx.nranks
        prob = problems[rank]
        part = CyclicPartition(prob.n, nranks)
        delegates = prob.delegates
        flop = ctx.machine.config.compute.per_flop

        y_local = np.zeros(part.local_count(rank), dtype=np.float64)
        y_delegate = np.zeros(delegates.count, dtype=np.float64)

        # Arriving partial products are buffered and reduced *after*
        # quiescence in a canonical order (row, then value bit pattern):
        # float addition is not associative, so accumulating in arrival
        # order would make y depend on the routing scheme and on message
        # interleaving.  The canonical reduction makes the result
        # bit-identical across all four schemes and any schedule, which
        # is what repro.check's differential oracle asserts.
        recv_rows: List[np.ndarray] = []
        recv_vals: List[np.ndarray] = []

        def on_batch(batch: np.ndarray) -> None:
            recv_rows.append(batch["row"].astype(np.int64))
            recv_vals.append(batch["val"].astype(np.float64))

        mb = ctx.mailbox(
            recv_batch=on_batch,
            capacity=capacity,
            combiner=SPMV_COMBINER if combining else None,
        )

        rows, cols, vals = prob.rows, prob.cols, prob.vals
        row_delegated = delegates.is_delegate_vec(rows)
        col_delegated = delegates.is_delegate_vec(cols)

        # x value per stored triple: replicated for delegated columns,
        # owned otherwise (colocation guarantees we have whichever we need).
        xj = np.empty(len(cols), dtype=np.float64)
        if col_delegated.any():
            xj[col_delegated] = prob.x_delegate[
                delegates.slots_vec(cols[col_delegated])
            ]
        own_col = ~col_delegated
        xj[own_col] = prob.x_local[part.local_id_vec(cols[own_col])]
        prods = vals * xj
        yield ctx.compute(2.0 * len(prods) * flop)

        # Local accumulations: delegated rows (replica) and rows we own.
        row_owner = part.owner_vec(rows)
        local_rows = ~row_delegated & (row_owner == rank)
        if local_rows.any():
            ids = part.local_id_vec(rows[local_rows])
            np.add.at(y_local, ids, prods[local_rows])
        if row_delegated.any():
            slots = delegates.slots_vec(rows[row_delegated])
            np.add.at(y_delegate, slots, prods[row_delegated])

        # Remote accumulations: one message per remaining nonzero.
        remote = ~row_delegated & (row_owner != rank)
        r_rows, r_prods, r_owner = rows[remote], prods[remote], row_owner[remote]
        for lo in range(0, len(r_rows), batch_size):
            hi = lo + batch_size
            batch = SPMV_SPEC.build(
                row=r_rows[lo:hi].astype("u8"), val=r_prods[lo:hi]
            )
            yield from mb.send_batch(r_owner[lo:hi], batch, spec=SPMV_SPEC)
        yield from mb.wait_empty()

        # Canonical-order reduction of the buffered remote products.
        if recv_rows:
            in_rows = np.concatenate(recv_rows)
            in_vals = np.concatenate(recv_vals)
            ids = part.local_id_vec(in_rows)
            order = np.lexsort((in_vals.view(np.uint64), ids))
            np.add.at(y_local, ids[order], in_vals[order])

        # Combine replicated y entries (paper: "all delegated entries in y
        # are combined using an ALLREDUCE operation").
        if delegates.count:
            y_delegate_sum = yield from ctx.comm.allreduce(
                y_delegate, lambda a, b: a + b
            )
            owned = part.owner_vec(delegates.vertices) == rank
            if owned.any():
                ids = part.local_id_vec(delegates.vertices[owned])
                y_local[ids] += y_delegate_sum[owned]

        return SpmvRankResult(
            y_local=y_local,
            messages_sent=int(remote.sum()),
            local_accumulations=int(local_rows.sum() + row_delegated.sum()),
        )

    return rank_main


def gather_global_y(values: List[SpmvRankResult], n: int, nranks: int) -> np.ndarray:
    """Reassemble the global y vector from per-rank results."""
    part = CyclicPartition(n, nranks)
    out = np.zeros(n, dtype=np.float64)
    for rank, res in enumerate(values):
        out[part.local_vertices(rank)] = res.y_local
    return out
