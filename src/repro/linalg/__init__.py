"""Distributed linear-algebra substrate: the YGM SpMV with delegates."""

from .spmv import (
    SPMV_SPEC,
    SpmvProblem,
    SpmvRankResult,
    gather_global_y,
    make_spmv,
    partition_spmv_problem,
)

__all__ = [
    "SPMV_SPEC",
    "SpmvProblem",
    "SpmvRankResult",
    "gather_global_y",
    "make_spmv",
    "partition_spmv_problem",
]
