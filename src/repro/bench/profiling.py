"""Causal-profile mode behind the CLI's ``--profile``.

Like the traced mode (:mod:`repro.bench.tracing`), profiling runs one
*representative* configuration of the requested figure rather than the
whole sweep -- but where a trace answers "what happened when", the causal
profile answers "what did the completion time consist of": it runs the
configuration once under **every** routing scheme with the lineage
profiler enabled (``Tracer(profile=True)``), extracts each run's critical
dependency chain to quiescence with a per-edge stage breakdown, attributes
every rank's simulated time to utilization buckets, and writes a
self-contained HTML report (plus a machine-readable JSON document)
comparing the schemes side by side.

The configuration is chosen so all four paper schemes are eligible: the
smallest sweep node count with ``nodes >= cores_per_node`` (NLNR's
validity threshold, Section VI), falling back to the largest offered.

Profiling is non-perturbing (``tests/trace/test_noperturb.py``), so the
per-scheme timings in the report are identical to what the figure sweep
reports for the same cells.
"""

from __future__ import annotations

from typing import List

from ..trace import SchemeProfile, Tracer, analyze_profile, write_report
from .harness import SweepConfig, run_ygm, schemes_for
from .report import Table
from .tracing import TRACEABLE, _workload


def pick_nodes(sweep: SweepConfig) -> int:
    """Smallest sweep node count at which every paper scheme is valid."""
    candidates = [
        n for n in sweep.node_counts if n >= max(2, sweep.cores_per_node)
    ]
    return min(candidates) if candidates else max(sweep.node_counts)


def profile_figure(fig: str, sweep: SweepConfig) -> List[SchemeProfile]:
    """Run ``fig``'s representative configuration under every scheme."""
    if fig not in TRACEABLE:
        raise ValueError(
            f"figure {fig!r} has no profiled mode; profilable figures: "
            f"{TRACEABLE}"
        )
    nodes = pick_nodes(sweep)
    profiles: List[SchemeProfile] = []
    for scheme in schemes_for(nodes, sweep.cores_per_node):
        # Event categories off: the causal profile only needs lineage.
        tracer = Tracer(categories=(), profile=True)
        res = run_ygm(
            _workload(fig, sweep, nodes),
            sweep.machine(nodes),
            scheme,
            sweep.mailbox_capacity,
            seed=sweep.seed,
            tracer=tracer,
        )
        tracer.close()
        profiles.append(
            analyze_profile(
                tracer.lineage, res, sweep.machine(nodes), scheme
            )
        )
    return profiles


def run_profiled(
    fig: str,
    sweep: SweepConfig,
    html_path: str,
    json_path: str,
) -> Table:
    """Profile ``fig`` under all schemes and write the HTML/JSON reports."""
    profiles = profile_figure(fig, sweep)
    nodes = pick_nodes(sweep)
    title = (
        f"Causal profile: fig {fig}, {nodes} nodes x "
        f"{sweep.cores_per_node} cores"
    )
    write_report(
        profiles,
        html_path,
        json_path,
        title,
        meta={
            "fig": fig,
            "nodes": nodes,
            "cores_per_node": sweep.cores_per_node,
            "mailbox_capacity": sweep.mailbox_capacity,
            "seed": sweep.seed,
        },
    )
    table = Table(
        title=title,
        columns=[
            "scheme", "seconds", "messages", "packets", "comm_share",
            "dominant_stage", "idle_share",
        ],
    )
    for p in profiles:
        comm = {
            k: v for k, v in p.cp_stages.items()
            if k not in ("compute", "term_tail")
        }
        dominant = max(comm, key=comm.get) if any(comm.values()) else "-"
        total_time = sum(r["total"] for r in p.rank_buckets) or 1.0
        table.add(
            scheme=p.scheme,
            seconds=p.elapsed,
            messages=p.messages,
            packets=p.packets,
            comm_share=p.comm_share,
            dominant_stage=dominant,
            idle_share=p.bucket_totals.get("idle", 0.0) / total_time,
        )
    table.note(f"HTML report written to {html_path}")
    table.note(f"JSON report written to {json_path}")
    return table
