"""Entry point: ``python -m repro.bench --fig 6a``."""

import sys

from .cli import main

sys.exit(main())
