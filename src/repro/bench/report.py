"""Plain-text table rendering for the figure harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class Table:
    """A printable experiment result: header, rows, free-form notes."""

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1000 or abs(value) < 1e-3:
                    return f"{value:.3e}"
                return f"{value:.4g}"
            return str(value)

        cells = [[fmt(row.get(c)) for c in self.columns] for row in self.rows]
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"# {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def series(self, key_col: str, val_col: str, **filters: Any) -> Dict[Any, Any]:
        """Extract ``{key: value}`` from rows matching ``filters``."""
        out = {}
        for row in self.rows:
            if all(row.get(k) == v for k, v in filters.items()):
                out[row[key_col]] = row[val_col]
        return out
